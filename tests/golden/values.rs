// Golden metric bit patterns for tests/golden_determinism.rs.
// Regenerate (only for intentional semantic changes) with:
//   GOLDEN_REGEN=1 cargo test --release --test golden_determinism -- --nocapture
const GOLDEN_SEED_11: &[u64] = &[
    0x3ff0000000000000, // e1.delivery_ratio = 1
    0x4000cccccccccccd, // e1.mean_hops = 2.1
    0x40d9e3999999999a, // e1.mean_latency_us = 26510.4
    0x4055000000000000, // e1.sent_data = 84
    0x4070600000000000, // e1.sent_control = 262
    0x4090340000000000, // e1.received = 1037
    0x0000000000000000, // e1.collided = 0
    0x0000000000000000, // e1.csma_deferrals = 0
    0x3ff44189374bc6ac, // e1.total_energy = 1.266000000000001
    0x3f78cf546689a1e2, // e1.energy_d2 = 0.006057100000000011
    0x402e000000000000, // e3.n=20 spr m=1 lifetime_rounds = 15
    0x403bc71e7797fa37, // e3.n=20 spr m=1 optimal_bound_rounds = 27.7778086420096
    0x403c000000000000, // e3.n=20 spr m=3 lifetime_rounds = 28
    0x4049000d1b7854ce, // e3.n=20 spr m=3 optimal_bound_rounds = 50.000400003200056
    0x4041000000000000, // e3.n=20 mlr m=3 lifetime_rounds = 34
    0x4049000d1b7854ce, // e3.n=20 mlr m=3 optimal_bound_rounds = 50.000400003200056
    0x3ff0000000000000, // e6.mlr vs none delivery_ratio = 1
    0x3fe0000000000000, // e6.mlr vs blackhole delivery_ratio = 0.5
    0x0000000000000000, // e6.mlr vs sinkhole delivery_ratio = 0
    0x3ff0000000000000, // e6.mlr vs replay delivery_ratio = 1
    0x4079000000000000, // e6.mlr vs replay duplicate_deliveries = 400
    0x0000000000000000, // e6.mlr vs false_announce delivery_ratio = 0
    0x0000000000000000, // e6.mlr vs hello_flood delivery_ratio = 0
    0x0000000000000000, // e6.mlr vs wormhole delivery_ratio = 0
    0x0000000000000000, // e6.mlr vs wormhole_guarded delivery_ratio = 0
    0x3ff0000000000000, // e6.secmlr vs none delivery_ratio = 1
    0x3fe0000000000000, // e6.secmlr vs blackhole delivery_ratio = 0.5
    0x3ff0000000000000, // e6.secmlr vs sinkhole delivery_ratio = 1
    0x3ff0000000000000, // e6.secmlr vs replay delivery_ratio = 1
    0x0000000000000000, // e6.secmlr vs replay duplicate_deliveries = 0
    0x3ff0000000000000, // e6.secmlr vs false_announce delivery_ratio = 1
    0x3ff0000000000000, // e6.secmlr vs hello_flood delivery_ratio = 1
    0x0000000000000000, // e6.secmlr vs wormhole delivery_ratio = 0
    0x3ff0000000000000, // e6.secmlr vs wormhole_guarded delivery_ratio = 1
];
const GOLDEN_SEED_23: &[u64] = &[
    0x3ff0000000000000, // e1.delivery_ratio = 1
    0x3ffccccccccccccd, // e1.mean_hops = 1.8
    0x40d91ecccccccccd, // e1.mean_latency_us = 25723.2
    0x4052000000000000, // e1.sent_data = 72
    0x4074f00000000000, // e1.sent_control = 335
    0x4099e80000000000, // e1.received = 1658
    0x0000000000000000, // e1.collided = 0
    0x0000000000000000, // e1.csma_deferrals = 0
    0x3ffeb851eb851ec2, // e1.total_energy = 1.9200000000000021
    0x3f8a3a08398a6557, // e1.energy_d2 = 0.012806000000000024
    0x402a000000000000, // e3.n=20 spr m=1 lifetime_rounds = 13
    0x40356db8764cb502, // e3.n=20 spr m=1 optimal_bound_rounds = 21.428595918395338
    0x4030000000000000, // e3.n=20 spr m=3 lifetime_rounds = 16
    0x404900068dba728e, // e3.n=20 spr m=3 optimal_bound_rounds = 50.00020000079995
    0x4041000000000000, // e3.n=20 mlr m=3 lifetime_rounds = 34
    0x404900068dba728e, // e3.n=20 mlr m=3 optimal_bound_rounds = 50.00020000079995
    0x3ff0000000000000, // e6.mlr vs none delivery_ratio = 1
    0x3fe0000000000000, // e6.mlr vs blackhole delivery_ratio = 0.5
    0x0000000000000000, // e6.mlr vs sinkhole delivery_ratio = 0
    0x3ff0000000000000, // e6.mlr vs replay delivery_ratio = 1
    0x4079000000000000, // e6.mlr vs replay duplicate_deliveries = 400
    0x0000000000000000, // e6.mlr vs false_announce delivery_ratio = 0
    0x0000000000000000, // e6.mlr vs hello_flood delivery_ratio = 0
    0x0000000000000000, // e6.mlr vs wormhole delivery_ratio = 0
    0x0000000000000000, // e6.mlr vs wormhole_guarded delivery_ratio = 0
    0x3ff0000000000000, // e6.secmlr vs none delivery_ratio = 1
    0x3fe0000000000000, // e6.secmlr vs blackhole delivery_ratio = 0.5
    0x3ff0000000000000, // e6.secmlr vs sinkhole delivery_ratio = 1
    0x3ff0000000000000, // e6.secmlr vs replay delivery_ratio = 1
    0x0000000000000000, // e6.secmlr vs replay duplicate_deliveries = 0
    0x3ff0000000000000, // e6.secmlr vs false_announce delivery_ratio = 1
    0x3ff0000000000000, // e6.secmlr vs hello_flood delivery_ratio = 1
    0x0000000000000000, // e6.secmlr vs wormhole delivery_ratio = 0
    0x3ff0000000000000, // e6.secmlr vs wormhole_guarded delivery_ratio = 1
];
const GOLDEN_SEED_37: &[u64] = &[
    0x3ff0000000000000, // e1.delivery_ratio = 1
    0x3ffe000000000000, // e1.mean_hops = 1.875
    0x40e0518000000000, // e1.mean_latency_us = 33420
    0x4052c00000000000, // e1.sent_data = 75
    0x406fe00000000000, // e1.sent_control = 255
    0x408ee00000000000, // e1.received = 988
    0x0000000000000000, // e1.collided = 0
    0x0000000000000000, // e1.csma_deferrals = 0
    0x3ff3126e978d4fe4, // e1.total_energy = 1.192000000000001
    0x3f78e9dbd14c8e5b, // e1.energy_d2 = 0.006082400000000011
    0x402a000000000000, // e3.n=20 spr m=1 lifetime_rounds = 13
    0x4041db7466d3e6e7, // e3.n=20 spr m=1 optimal_bound_rounds = 35.714489797084575
    0x402e000000000000, // e3.n=20 spr m=3 lifetime_rounds = 15
    0x4049000d1b7854cd, // e3.n=20 spr m=3 optimal_bound_rounds = 50.00040000320005
    0x4039000000000000, // e3.n=20 mlr m=3 lifetime_rounds = 25
    0x4049000d1b7854cd, // e3.n=20 mlr m=3 optimal_bound_rounds = 50.00040000320005
    0x3ff0000000000000, // e6.mlr vs none delivery_ratio = 1
    0x3fe0000000000000, // e6.mlr vs blackhole delivery_ratio = 0.5
    0x0000000000000000, // e6.mlr vs sinkhole delivery_ratio = 0
    0x3ff0000000000000, // e6.mlr vs replay delivery_ratio = 1
    0x4079000000000000, // e6.mlr vs replay duplicate_deliveries = 400
    0x0000000000000000, // e6.mlr vs false_announce delivery_ratio = 0
    0x0000000000000000, // e6.mlr vs hello_flood delivery_ratio = 0
    0x0000000000000000, // e6.mlr vs wormhole delivery_ratio = 0
    0x0000000000000000, // e6.mlr vs wormhole_guarded delivery_ratio = 0
    0x3ff0000000000000, // e6.secmlr vs none delivery_ratio = 1
    0x3fe0000000000000, // e6.secmlr vs blackhole delivery_ratio = 0.5
    0x3ff0000000000000, // e6.secmlr vs sinkhole delivery_ratio = 1
    0x3ff0000000000000, // e6.secmlr vs replay delivery_ratio = 1
    0x0000000000000000, // e6.secmlr vs replay duplicate_deliveries = 0
    0x3ff0000000000000, // e6.secmlr vs false_announce delivery_ratio = 1
    0x3ff0000000000000, // e6.secmlr vs hello_flood delivery_ratio = 1
    0x0000000000000000, // e6.secmlr vs wormhole delivery_ratio = 0
    0x3ff0000000000000, // e6.secmlr vs wormhole_guarded delivery_ratio = 1
];
const GOLDEN_SEED_53: &[u64] = &[
    0x3ff0000000000000, // e1.delivery_ratio = 1
    0x3ffe666666666666, // e1.mean_hops = 1.9
    0x40d9606666666666, // e1.mean_latency_us = 25985.6
    0x4053000000000000, // e1.sent_data = 76
    0x4071500000000000, // e1.sent_control = 277
    0x4092900000000000, // e1.received = 1188
    0x0000000000000000, // e1.collided = 0
    0x0000000000000000, // e1.csma_deferrals = 0
    0x3ff63d70a3d70a42, // e1.total_energy = 1.390000000000001
    0x3f6e1c15097c8095, // e1.energy_d2 = 0.0036755000000000073
    0x4026000000000000, // e3.n=20 spr m=1 lifetime_rounds = 11
    0x402d696df277ae90, // e3.n=20 spr m=1 optimal_bound_rounds = 14.70591695509873
    0x4031000000000000, // e3.n=20 spr m=3 lifetime_rounds = 17
    0x4041db7466d3e6e7, // e3.n=20 spr m=3 optimal_bound_rounds = 35.714489797084575
    0x403a000000000000, // e3.n=20 mlr m=3 lifetime_rounds = 26
    0x4041db7466d3e6e7, // e3.n=20 mlr m=3 optimal_bound_rounds = 35.714489797084575
    0x3ff0000000000000, // e6.mlr vs none delivery_ratio = 1
    0x3fe0000000000000, // e6.mlr vs blackhole delivery_ratio = 0.5
    0x0000000000000000, // e6.mlr vs sinkhole delivery_ratio = 0
    0x3ff0000000000000, // e6.mlr vs replay delivery_ratio = 1
    0x4079000000000000, // e6.mlr vs replay duplicate_deliveries = 400
    0x0000000000000000, // e6.mlr vs false_announce delivery_ratio = 0
    0x0000000000000000, // e6.mlr vs hello_flood delivery_ratio = 0
    0x0000000000000000, // e6.mlr vs wormhole delivery_ratio = 0
    0x0000000000000000, // e6.mlr vs wormhole_guarded delivery_ratio = 0
    0x3ff0000000000000, // e6.secmlr vs none delivery_ratio = 1
    0x3fe0000000000000, // e6.secmlr vs blackhole delivery_ratio = 0.5
    0x3ff0000000000000, // e6.secmlr vs sinkhole delivery_ratio = 1
    0x3ff0000000000000, // e6.secmlr vs replay delivery_ratio = 1
    0x0000000000000000, // e6.secmlr vs replay duplicate_deliveries = 0
    0x3ff0000000000000, // e6.secmlr vs false_announce delivery_ratio = 1
    0x3ff0000000000000, // e6.secmlr vs hello_flood delivery_ratio = 1
    0x0000000000000000, // e6.secmlr vs wormhole delivery_ratio = 0
    0x3ff0000000000000, // e6.secmlr vs wormhole_guarded delivery_ratio = 1
];
