//! Windowed health forensics: checkpointed detector replay, alert
//! explain reports, and capture compaction.
//!
//! The correctness bar is byte equality, matching the rest of the
//! trace stack: windowed replay from a checkpoint must produce the
//! same in-window alert bytes as a genesis replay; `explain` must
//! render the same report from either mode while reading only the
//! alert-window segments; compaction must keep the index exact, keep
//! windowed queries over retained ranges byte-identical, and fail
//! loudly — never approximately — when frames are gone.

use std::path::PathBuf;
use wmsn::core::experiments::e18_forensics_capture;
use wmsn::health::{
    alerts_in_window, alerts_to_jsonl, compact_capture, explain_alert, replay_window, restore,
    snapshot, CompactionPolicy, HealthAlert, HealthConfig, HealthMonitor,
};
use wmsn::trace::{capture_counts, CaptureReader, ScanFilter};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "wmsn-health-forensics-{}-{name}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Record the E18 gateway-death capture (256-frame segments, a
/// checkpoint at every boundary) and open it.
fn recorded(name: &str) -> (PathBuf, CaptureReader<std::io::BufReader<std::fs::File>>) {
    let dir = scratch(name);
    let path = dir.join("e18.wcap");
    let (stats, alerts) = e18_forensics_capture(&path, 1);
    assert!(stats.segments > 10, "need a multi-segment capture");
    assert!(alerts >= 1, "the gateway death must be detected");
    let r = CaptureReader::open(&path).expect("open capture");
    (path, r)
}

#[test]
fn embedded_checkpoints_round_trip_at_scale() {
    let (path, r) = recorded("checkpoints");
    assert!(
        r.checkpoints().len() > 10,
        "checkpoint_every=1 over a multi-segment run must embed many checkpoints"
    );
    for (seg, blob) in r.checkpoints() {
        let m = restore(blob).expect("restore embedded checkpoint");
        assert_eq!(
            &snapshot(&m),
            blob,
            "checkpoint at segment {seg} must survive restore→snapshot byte-for-byte"
        );
    }
    std::fs::remove_file(path).ok();
}

#[test]
fn embedded_alerts_equal_an_offline_replay() {
    let (path, mut r) = recorded("embedded-alerts");
    let mut monitor = HealthMonitor::with_config(HealthConfig::default());
    r.scan(&ScanFilter::all(), |ev, _, _| monitor.observe(ev))
        .expect("full scan");
    monitor.finalize();
    // The co-hosted monitor saw driver flushes mid-run; they must not
    // have perturbed it — its embedded alert stream is the offline
    // replay's, byte for byte.
    assert_eq!(r.alerts_jsonl(), monitor.alerts_jsonl());
    std::fs::remove_file(path).ok();
}

#[test]
fn windowed_replay_is_byte_identical_to_full_replay() {
    let (path, mut r) = recorded("window-parity");
    let cfg = HealthConfig::default();
    let windows = [
        (0u64, 1_000_000u64),
        (2_000_000, 3_000_000),
        (4_000_000, 6_000_000),
        (5_500_000, 5_500_000),
        (8_000_000, 20_000_000),
    ];
    let mut resumed_from_checkpoint = false;
    for (lo, hi) in windows {
        let (fast, fast_stats) = replay_window(&mut r, lo, hi, cfg, false).expect("windowed");
        let (full, full_stats) = replay_window(&mut r, lo, hi, cfg, true).expect("full");
        assert_eq!(full_stats.checkpoint_seg, None);
        assert_eq!(
            alerts_to_jsonl(&alerts_in_window(&fast, lo, hi)),
            alerts_to_jsonl(&alerts_in_window(&full, lo, hi)),
            "window {lo}..{hi}: checkpoint replay diverged from genesis replay"
        );
        if fast_stats.checkpoint_seg.is_some() {
            resumed_from_checkpoint = true;
            assert!(
                fast_stats.segments_read < fast_stats.segments_total,
                "window {lo}..{hi}: a checkpoint resume must skip the prefix"
            );
        }
    }
    assert!(
        resumed_from_checkpoint,
        "at least one window must exercise a non-genesis checkpoint"
    );
    std::fs::remove_file(path).ok();
}

#[test]
fn explain_reads_only_the_alert_window_and_is_mode_independent() {
    let (path, mut r) = recorded("explain");
    let cfg = HealthConfig::default();
    let alert =
        HealthAlert::from_json_line(r.alerts_jsonl().lines().next().expect("an embedded alert"))
            .expect("parse embedded alert");
    let span = 4u64;
    let (fast, fast_stats) = explain_alert(&mut r, alert, span, cfg, false).expect("explain");
    let (full, full_stats) = explain_alert(&mut r, alert, span, cfg, true).expect("explain full");
    assert_eq!(
        fast.report(),
        full.report(),
        "explain must render identically from checkpoint and genesis replays"
    );
    assert!(
        fast.reproduced,
        "the windowed replay must re-raise the alert"
    );
    assert!(
        !fast.contributors.is_empty(),
        "provenance must name contributors"
    );
    assert_eq!(full_stats.segments_read, full_stats.segments_total);

    // O(alert-window segments): with a checkpoint at every boundary the
    // replay reads exactly the segments whose at-range touches the
    // window (±1 for the window-boundary rounding of eligibility).
    let lo = alert.t - span * cfg.window_us;
    let touching = r
        .segments()
        .iter()
        .filter(|m| m.at_max >= lo && m.at_min <= alert.t)
        .count() as u64;
    assert!(
        fast_stats.segments_read <= touching + 1,
        "read {} segments for a window touching {touching} of {}",
        fast_stats.segments_read,
        fast_stats.segments_total
    );
    assert!(
        fast_stats.segments_read * 4 < fast_stats.segments_total,
        "windowed explain must not approach a full scan: {} of {}",
        fast_stats.segments_read,
        fast_stats.segments_total
    );
    std::fs::remove_file(path).ok();
}

#[test]
fn compaction_keeps_the_index_exact_and_fails_frame_reads_loudly() {
    let (path, mut r) = recorded("compact");
    let cfg = HealthConfig::default();
    let out = path.with_extension("compact.wcap");
    let stats = compact_capture(&path, &out, cfg, CompactionPolicy::default()).expect("compact");
    assert_eq!(
        stats.segments_retained + stats.segments_compacted,
        stats.segments_total
    );
    assert!(stats.segments_compacted > 0, "an old prefix must compact");
    assert!(stats.alerts >= 1);

    let mut c = CaptureReader::open(&out).expect("open compacted");
    // Index-only queries stay exact.
    assert_eq!(capture_counts(&r), capture_counts(&c));
    assert_eq!(r.frames(), c.frames());
    assert_eq!(r.alerts_jsonl(), c.alerts_jsonl());
    for (a, b) in r.segments().iter().zip(c.segments()) {
        assert_eq!(a.frames, b.frames);
        assert_eq!((a.at_min, a.at_max), (b.at_min, b.at_max));
        assert_eq!(a.kind_counts, b.kind_counts);
    }

    // Frame-level access into a compacted range fails loudly.
    let first_err = c.read_segment_raw(0).expect_err("compacted read must fail");
    assert!(first_err.contains("compacted"), "{first_err}");
    let full_err = c
        .scan(&ScanFilter::all(), |_, _, _| {})
        .expect_err("full scan must fail");
    assert!(full_err.contains("compacted"), "{full_err}");

    // Windowed queries over retained ranges answer byte-identically to
    // the uncompacted capture.
    let alert = HealthAlert::from_json_line(c.alerts_jsonl().lines().next().expect("alert"))
        .expect("parse alert");
    let (before, _) = explain_alert(&mut r, alert, 4, cfg, false).expect("explain original");
    let (after, _) = explain_alert(&mut c, alert, 4, cfg, false).expect("explain compacted");
    assert_eq!(
        before.report(),
        after.report(),
        "compaction must not change the explain report over retained windows"
    );
    let lo = alert.t - 2 * cfg.window_us;
    let (wb, _) = replay_window(&mut r, lo, alert.t, cfg, false).expect("window original");
    let (wa, _) = replay_window(&mut c, lo, alert.t, cfg, false).expect("window compacted");
    assert_eq!(
        alerts_to_jsonl(&alerts_in_window(&wb, lo, alert.t)),
        alerts_to_jsonl(&alerts_in_window(&wa, lo, alert.t))
    );

    // Re-compacting a compacted capture is refused: the detector
    // replay would be built on missing frames.
    let twice = out.with_extension("twice.wcap");
    let err = compact_capture(&out, &twice, cfg, CompactionPolicy::default())
        .expect_err("compacting a compacted capture must fail");
    assert!(err.contains("already compacted"), "{err}");

    std::fs::remove_file(path).ok();
    std::fs::remove_file(out).ok();
}
