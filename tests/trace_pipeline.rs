//! Ring-pipeline parity suite: the off-thread trace pipeline is
//! observationally identical to inline sinks.
//!
//! The ring pipeline (PR 7) moves sink work — JSONL rendering, the
//! health monitor's detector bank — off the simulation thread, behind
//! a bounded SPSC ring with an explicit flush barrier. Its correctness
//! claim is *byte* equality, not statistical similarity, so this suite
//! compares bytes:
//!
//! * the E1 JSONL trace drained through the ring must be
//!   byte-identical to the inline `BufferSink` capture, including with
//!   flush barriers exercised at round (`run_until`) boundaries;
//! * the E18 attack cells' alert JSONL with the monitor fed from the
//!   drain thread must be byte-identical to the inline monitor's, and
//!   the healthy baseline must stay silent through the ring too;
//! * the self-healing loop (`drain_actions`) must produce the same
//!   actions whichever pipeline hosts the monitor;
//! * a binary capture of the E1 run, decoded and re-rendered, must be
//!   byte-identical to the live `JsonlSink` output (the `convert`
//!   golden); and the binary round-trip must preserve causal keys;
//! * the sharded kernel with per-shard rings must merge back to the
//!   reference trace bytes, exactly as the inline `KeyedBufferSink`
//!   path does.

use wmsn::core::builder::{build_mlr, build_spr, SprScenario};
use wmsn::core::drivers::{MlrDriver, SprDriver};
use wmsn::core::experiments::{run_attack_cell_monitored, run_attack_cell_monitored_ring, Attack};
use wmsn::core::health_loop::drain_actions;
use wmsn::core::params::{FieldParams, GatewayParams, TrafficParams};
use wmsn::health::{HealthConfig, HealthMonitor, HealthPolicy};
use wmsn::sim::ShardedWorld;
use wmsn::topology::strip_shards;
use wmsn::trace::{
    read_binary_trace, BackpressurePolicy, BinarySink, BufferSink, RingConfig, RingSink,
};
use wmsn_attacks::sinkhole::TargetProtocol;

fn test_threads() -> usize {
    std::env::var("SHARD_TEST_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2)
}

/// E1-style field (40 sensors, 3 gateways), death-free batteries so
/// the sharded arm can participate.
fn e1_field(seed: u64) -> (FieldParams, GatewayParams) {
    let field = FieldParams {
        battery_j: 10.0,
        ..FieldParams::default_uniform(40, seed)
    };
    (field, GatewayParams::default_three())
}

/// Run `rounds` E1 rounds with `sink` installed and hand the sink back.
fn traced_e1(
    seed: u64,
    rounds: u32,
    sink: Box<dyn wmsn::trace::TraceSink>,
    flush_each_round: bool,
) -> Box<dyn wmsn::trace::TraceSink> {
    let (field, gw) = e1_field(seed);
    let mut d = SprDriver::new(build_spr(&field, &gw, TrafficParams::default()));
    d.scenario.world.set_trace_sink(sink);
    for _ in 0..rounds {
        d.run_round();
        if flush_each_round {
            // The flush barrier at the run_until boundary: for the ring
            // this waits out the drain; for inline buffer sinks it is a
            // no-op. Either way the trace bytes must not change.
            d.scenario.world.flush_trace();
        }
    }
    d.scenario.world.take_trace_sink().expect("sink installed")
}

/// Small chunks and a small ring so a 2-round E1 trace crosses many
/// chunk and capacity boundaries — the worst case for ordering bugs.
fn tight_ring() -> RingConfig {
    RingConfig {
        chunk_frames: 7,
        capacity_chunks: 3,
        policy: BackpressurePolicy::Block,
    }
}

#[test]
fn ring_drained_e1_trace_is_byte_identical_to_inline() {
    for (seed, flush_each_round) in [(11, false), (11, true), (23, true)] {
        let inline = traced_e1(seed, 2, Box::new(BufferSink::new()), flush_each_round);
        let want = &inline
            .as_any()
            .downcast_ref::<BufferSink>()
            .expect("BufferSink")
            .out;
        assert!(!want.is_empty());

        let ring = RingSink::boxed(tight_ring(), vec![Box::new(BufferSink::new())]);
        let mut ring = traced_e1(seed, 2, ring, flush_each_round);
        let ring = ring
            .as_any_mut()
            .downcast_mut::<RingSink>()
            .expect("RingSink");
        let stats = ring.stats();
        assert_eq!(stats.frames_dropped, 0, "Block policy never drops");
        let got = ring
            .with_sink_mut::<BufferSink, _>(|b| b.out.clone())
            .expect("drained BufferSink");
        assert_eq!(
            &got, want,
            "seed {seed} flush={flush_each_round}: drained JSONL must equal inline bytes"
        );
        assert_eq!(stats.frames_written as usize, want.lines().count());
    }
}

#[test]
fn e18_alert_stream_through_the_ring_is_byte_identical_to_inline() {
    for attack in [Attack::Replay, Attack::Sinkhole, Attack::HelloFlood] {
        let (_, inline_monitor) =
            run_attack_cell_monitored(TargetProtocol::Mlr, attack, 1, HealthConfig::default());
        let (_, ring_monitor, stats) =
            run_attack_cell_monitored_ring(TargetProtocol::Mlr, attack, 1, HealthConfig::default());
        let want = inline_monitor.alerts_jsonl();
        assert!(!want.is_empty(), "{attack:?} must raise alerts");
        assert_eq!(
            ring_monitor.alerts_jsonl(),
            want,
            "{attack:?}: ring-fed monitor must match inline byte for byte"
        );
        assert!(stats.frames_written > 0);
        assert_eq!(stats.frames_dropped, 0);
    }
    // The healthy baseline must stay silent through the ring too.
    let (_, ring_monitor, _) = run_attack_cell_monitored_ring(
        TargetProtocol::Mlr,
        Attack::None,
        7,
        HealthConfig::default(),
    );
    assert_eq!(
        ring_monitor.alerts().len(),
        0,
        "healthy cell through the ring raised {}",
        ring_monitor.alerts_jsonl()
    );
}

#[test]
fn self_healing_loop_acts_identically_through_the_ring() {
    // E18-recovery shape: kill a gateway mid-run, then let the policy
    // loop drain the monitor — once hosted inline, once behind the
    // ring. Both runs are deterministic, so the action lists (and the
    // recovered delivery ratio) must match exactly.
    let run = |ring: bool| {
        let field = FieldParams {
            battery_j: 10.0,
            ..FieldParams::default_uniform(60, 5)
        };
        let mut d = MlrDriver::new(build_mlr(
            &field,
            &GatewayParams::default_three(),
            TrafficParams::default(),
            0.0,
        ));
        let sink: Box<dyn wmsn::trace::TraceSink> = if ring {
            RingSink::boxed(
                tight_ring(),
                vec![Box::new(
                    HealthMonitor::with_config(HealthConfig::default()),
                )],
            )
        } else {
            HealthMonitor::boxed(HealthConfig::default())
        };
        d.scenario.world.set_trace_sink(sink);
        d.run_round();
        let victim = d.scenario.gateways[0];
        d.scenario.world.kill(victim);
        d.run_round();
        let actions = drain_actions(&mut d.scenario.world, &HealthPolicy::default());
        format!("{actions:?}")
    };
    let inline = run(false);
    let ring = run(true);
    assert!(!inline.is_empty());
    assert_eq!(
        ring, inline,
        "policy actions must not depend on the pipeline"
    );
}

#[test]
fn binary_capture_converts_to_the_exact_jsonl_bytes() {
    // Two identical seeded runs: one through the live JSONL sink, one
    // through the binary sink. Decoding the binary capture and
    // re-rendering each event must reproduce the JSONL bytes — the
    // `wmsn-trace convert` golden property.
    let jsonl = traced_e1(11, 1, Box::new(BufferSink::new()), false);
    let want = &jsonl
        .as_any()
        .downcast_ref::<BufferSink>()
        .expect("BufferSink")
        .out;

    let mut bin = traced_e1(11, 1, Box::new(BinarySink::new(Vec::<u8>::new())), false);
    let bin = bin
        .as_any_mut()
        .downcast_mut::<BinarySink<Vec<u8>>>()
        .expect("BinarySink");
    let written = bin.frames_written();
    let buf = std::mem::replace(bin, BinarySink::new(Vec::new())).into_inner();
    let frames = read_binary_trace(&buf[..]).expect("capture decodes");
    assert_eq!(frames.len() as u64, written);
    let mut got = String::new();
    for (ev, _, _) in &frames {
        got.push_str(&ev.to_json().to_string());
        got.push('\n');
    }
    assert_eq!(&got, want, "decoded binary must render to identical JSONL");
    // Causal keys survive the binary round trip: strictly non-decreasing
    // (at, key) per emitting event and at least one non-zero key.
    assert!(frames.iter().any(|&(_, _, key)| key != 0));
    for w in frames.windows(2) {
        assert!(
            (w[0].1, w[0].2) <= (w[1].1, w[1].2),
            "frames arrive in causal order"
        );
    }
}

#[test]
fn sharded_per_shard_rings_merge_to_the_reference_trace_bytes() {
    let (field, gw) = e1_field(11);
    let inline = traced_e1(11, 1, Box::new(BufferSink::new()), false);
    let want = &inline
        .as_any()
        .downcast_ref::<BufferSink>()
        .expect("BufferSink")
        .out;

    let scen = build_spr(&field, &gw, TrafficParams::default());
    let mut positions = scen.sensor_positions.clone();
    positions.extend_from_slice(&scen.gateway_positions);
    let assignment = strip_shards(&positions, scen.range_m, 4);
    let sharded: SprScenario<ShardedWorld> =
        scen.map_world(|w| ShardedWorld::from_world(w, assignment, test_threads()));
    let mut d = SprDriver::new(sharded);
    d.scenario.world.install_ring_sinks(tight_ring());
    d.run_round();
    let (events, stats) = d
        .scenario
        .world
        .finish_ring_sinks()
        .expect("ring sinks installed");
    assert_eq!(stats.frames_dropped, 0);
    assert_eq!(stats.frames_written as usize, events.len());
    let mut got = String::new();
    for ev in &events {
        got.push_str(&ev.to_json().to_string());
        got.push('\n');
    }
    assert_eq!(
        &got, want,
        "merged per-shard ring frames must render to the reference JSONL"
    );
}
