//! Zero-copy equivalence: the borrowed-decode / in-place-forwarding
//! control plane is observationally identical to the owned one it
//! replaced.
//!
//! The committed golden artifacts were generated *before* the zero-copy
//! rework, so they are the "before" side of the comparison:
//!
//! * one E1 round (SPR, 40 sensors, 3 gateways) must reproduce the
//!   committed metric bit patterns exactly;
//! * one E6 round (the attack suite — the densest user of the MLR and
//!   SecMLR flood paths) must reproduce its committed tail of the same
//!   golden table;
//! * the E1 JSONL trace must hash to the pinned digest, which was
//!   verified against a pre-zero-copy checkout when this test landed
//!   (E6 has no trace hook, so its equivalence is pinned via metrics).
//!
//! The digests were re-pinned when the sharded kernel landed: causal
//! event keys (`node << 32 | per-node counter`, replacing the global
//! insertion counter as the event tiebreaker) reorder same-microsecond
//! trace lines, so the byte stream changed while the metric bit
//! patterns above did not. The new digests were verified identical
//! between the reference and sharded kernels by
//! `tests/shard_equivalence.rs` before being pinned here.
//!
//! To regenerate the digest after an *intentional* semantic change:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --release --test zero_copy_equivalence -- --nocapture
//! ```

use wmsn::core::builder::build_spr;
use wmsn::core::drivers::SprDriver;
use wmsn::core::experiments::e6_attacks;
use wmsn::core::params::{FieldParams, GatewayParams, TrafficParams};
use wmsn::trace::BufferSink;

const GOLDEN: [&[u64]; 4] = [
    GOLDEN_SEED_11,
    GOLDEN_SEED_23,
    GOLDEN_SEED_37,
    GOLDEN_SEED_53,
];

include!("golden/values.rs");

/// FNV-1a 64 over the trace bytes — cheap, dependency-free, and stable.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Pinned digests of the E1 trace JSONL, one per traced seed. Verified
/// byte-identical against the pre-zero-copy tree when introduced.
const E1_TRACE_FNV: [(u64, u64); 2] = [(11, 0x91bf92fa3aeeb67f), (23, 0x9761ea7e6a2dce79)];

fn e1_round(seed: u64, traced: bool) -> (Vec<f64>, String) {
    let field = FieldParams::default_uniform(40, seed);
    let scen = build_spr(
        &field,
        &GatewayParams::default_three(),
        TrafficParams::default(),
    );
    let mut d = SprDriver::new(scen);
    if traced {
        d.scenario.world.set_trace_sink(Box::new(BufferSink::new()));
    }
    let report = d.run_round();
    let sensors = d.scenario.sensors.clone();
    let m = d.scenario.world.metrics();
    let metrics = vec![
        report.delivery_ratio(),
        m.mean_hops(),
        m.mean_latency_us(),
        m.sent_data as f64,
        m.sent_control as f64,
        m.received as f64,
        m.collided as f64,
        m.csma_deferrals as f64,
        m.total_energy(&sensors),
        m.energy_d2(&sensors),
    ];
    let trace = if traced {
        d.scenario
            .world
            .take_trace_sink()
            .expect("sink installed")
            .as_any()
            .downcast_ref::<BufferSink>()
            .expect("BufferSink")
            .out
            .clone()
    } else {
        String::new()
    };
    (metrics, trace)
}

#[test]
fn e1_round_reproduces_the_pre_zero_copy_metrics_bit_for_bit() {
    // GOLDEN rows start with the ten e1.* metrics, in e1_round order.
    let (metrics, _) = e1_round(11, false);
    for (i, v) in metrics.iter().enumerate() {
        assert_eq!(
            v.to_bits(),
            GOLDEN[0][i],
            "e1 metric #{i}: got {v}, pre-zero-copy golden {}",
            f64::from_bits(GOLDEN[0][i])
        );
    }
}

#[test]
fn e6_round_reproduces_the_pre_zero_copy_metrics_bit_for_bit() {
    // GOLDEN rows end with the e6.* metrics, in e6_attacks order.
    let results = e6_attacks(11);
    assert!(!results.is_empty());
    let tail = &GOLDEN[0][GOLDEN[0].len() - results.len()..];
    for (r, &gold) in results.iter().zip(tail) {
        assert_eq!(
            r.value.to_bits(),
            gold,
            "e6 {} {}: got {}, pre-zero-copy golden {}",
            r.config,
            r.metric,
            r.value,
            f64::from_bits(gold)
        );
    }
}

#[test]
fn e1_trace_bytes_match_the_pinned_pre_zero_copy_digest() {
    let regen = std::env::var("GOLDEN_REGEN").is_ok();
    for (seed, expected) in E1_TRACE_FNV {
        let (_, trace) = e1_round(seed, true);
        assert!(!trace.is_empty(), "seed {seed}: trace must not be empty");
        let got = fnv1a(trace.as_bytes());
        if regen {
            println!("    ({seed}, {got:#018x}),");
            continue;
        }
        assert_eq!(
            got, expected,
            "seed {seed}: trace digest {got:#018x} != pinned {expected:#018x}"
        );
    }
    assert!(
        !regen,
        "GOLDEN_REGEN run: paste the printed digests into E1_TRACE_FNV"
    );
}

#[test]
fn tracing_does_not_perturb_the_simulation() {
    // The scratch-buffer plumbing and the trace layer share the hot
    // path; a traced run must produce exactly the metrics of an
    // untraced one.
    let (a, _) = e1_round(11, false);
    let (b, _) = e1_round(11, true);
    for (i, (x, y)) in a.iter().zip(&b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "metric #{i} drifted under tracing"
        );
    }
}
