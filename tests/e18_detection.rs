//! E18: blind attack fingerprinting and monitor-driven recovery.
//!
//! The monitor is installed as an ordinary trace sink and never told
//! which attack is running. Every E6 attack cell must raise its
//! expected alert class, the healthy baseline must raise none, and the
//! E8 gateway-death scenario must recover through the policy loop with
//! no scripted `remove_gateway`.

use wmsn::core::experiments::{
    e12_backbone_fault, e18_detection, e18_recovery, expected_alert_class,
    run_attack_cell_monitored, Attack,
};
use wmsn::core::report::find_value;
use wmsn::health::{AlertKind, HealthConfig};
use wmsn_attacks::sinkhole::TargetProtocol;

#[test]
fn every_attack_is_fingerprinted_and_baseline_is_clean() {
    let rows = e18_detection(1);
    for attack in Attack::all() {
        let label = format!("mlr vs {}", attack.label());
        let detected = find_value(&rows, &label, "detected").unwrap();
        assert_eq!(detected, 1.0, "{label}: expected class not raised");
        let alerts = find_value(&rows, &label, "alerts").unwrap();
        if attack == Attack::None {
            assert_eq!(alerts, 0.0, "baseline must raise zero alerts");
        } else {
            assert!(alerts >= 1.0, "{label}: attack run raised no alerts");
        }
    }
}

#[test]
fn fingerprints_accuse_the_adversary_not_the_honest_chain() {
    // The blackhole cell replaces the honest relay at node 1; the
    // asymmetry alert must name it, not some honest sensor.
    let (_, monitor) = run_attack_cell_monitored(
        TargetProtocol::Mlr,
        Attack::Blackhole,
        1,
        HealthConfig::default(),
    );
    let accused: Vec<u64> = monitor
        .alerts()
        .iter()
        .filter(|a| a.kind == AlertKind::ForwardAsymmetry)
        .map(|a| a.subject)
        .collect();
    assert_eq!(accused, vec![1], "blackhole relay is node 1");
}

#[test]
fn detection_is_stable_across_seeds() {
    for seed in [2, 3] {
        let rows = e18_detection(seed);
        for attack in Attack::all() {
            let label = format!("mlr vs {}", attack.label());
            assert_eq!(
                find_value(&rows, &label, "detected").unwrap(),
                1.0,
                "seed {seed}, {label}"
            );
        }
    }
}

#[test]
fn gateway_death_recovers_via_the_policy_loop() {
    let rows = e18_recovery(1);
    let healthy = find_value(&rows, "mlr healthy", "delivery_ratio").unwrap();
    let failure = find_value(&rows, "mlr gateway_killed", "delivery_ratio").unwrap();
    let recovered = find_value(&rows, "mlr monitor_recovered", "delivery_ratio").unwrap();
    let applied = find_value(&rows, "mlr recovery", "actions_applied").unwrap();
    assert!(applied >= 1.0, "the monitor must have driven an action");
    assert!(
        failure < healthy,
        "killing a gateway must hurt: {healthy} → {failure}"
    );
    assert!(
        recovered > failure,
        "monitor-driven redirect must recover delivery: {failure} → {recovered}"
    );
}

#[test]
fn backbone_faults_are_fingerprinted_and_healthy_backbone_is_clean() {
    let rows = e12_backbone_fault(1);
    // The healthy three-tier run must stay clean of both backbone
    // detectors (the sensor-tier bank is exercised elsewhere).
    assert_eq!(
        find_value(&rows, "backbone healthy", "backbone_asymmetry").unwrap(),
        0.0
    );
    assert_eq!(
        find_value(&rows, "backbone healthy", "base_silence").unwrap(),
        0.0
    );
    // Killing the base station must raise base_silence naming it: the
    // WMGs keep uplinking mesh data that nobody delivers any more.
    assert!(
        find_value(&rows, "base killed", "base_silence").unwrap() >= 1.0,
        "dead base station not flagged: {rows:?}"
    );
    assert_eq!(
        find_value(&rows, "base killed", "accused_base_station").unwrap(),
        1.0
    );
}

#[test]
fn baseline_expectation_is_empty_and_attacks_have_classes() {
    assert_eq!(expected_alert_class(Attack::None), None);
    for attack in Attack::all() {
        if attack != Attack::None {
            assert!(expected_alert_class(attack).is_some(), "{attack:?}");
        }
    }
}
