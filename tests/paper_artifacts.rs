//! Integration tests asserting the paper's concrete artefacts and
//! quantified claims, exactly as EXPERIMENTS.md records them.

use wmsn::core::experiments::*;
use wmsn::core::report::find_value;
use wmsn::topology::paper::{TABLE1_HOPS, TABLE1_SELECTED};

#[test]
fn fig2_hop_counts_match_the_paper_exactly() {
    let rows = e1_fig2();
    // Fig. 2(a): 2, 7, 6, 9. Fig. 2(b): 1, 1, 1, 2.
    let expect_a = [2.0, 7.0, 6.0, 9.0];
    let expect_b = [1.0, 1.0, 1.0, 2.0];
    for k in 1..=4usize {
        assert_eq!(
            find_value(&rows, &format!("fig2a S{k}"), "hops_measured"),
            Some(expect_a[k - 1]),
            "fig2a S{k}"
        );
        assert_eq!(
            find_value(&rows, &format!("fig2b S{k}"), "hops_measured"),
            Some(expect_b[k - 1]),
            "fig2b S{k}"
        );
    }
}

#[test]
fn table1_walkthrough_matches_the_paper_exactly() {
    let rows = e2_table1();
    for round in 1..=3usize {
        let sel = find_value(&rows, &format!("round {round}"), "selected_place_id").unwrap();
        assert_eq!(sel as usize, TABLE1_SELECTED[round - 1], "round {round}");
        let hops = find_value(&rows, &format!("round {round}"), "selected_hops").unwrap();
        assert_eq!(
            hops as u32,
            TABLE1_HOPS[TABLE1_SELECTED[round - 1]],
            "round {round} hops"
        );
    }
    // Incremental growth toward |P| = 5 entries.
    for (round, expected) in [(1, 3.0), (2, 4.0), (3, 5.0)] {
        assert_eq!(
            find_value(&rows, &format!("round {round}"), "table_entries"),
            Some(expected)
        );
    }
}

#[test]
fn e4_gateway_gains_saturate_like_kmax() {
    let rows = e4_kmax(&[1, 2, 8, 12], 11);
    let bound = |m: usize| find_value(&rows, &format!("m={m}"), "optimal_lifetime_rounds").unwrap();
    // More gateways never hurt…
    assert!(bound(2) >= bound(1));
    assert!(bound(8) >= bound(2));
    assert!(bound(12) >= bound(8));
    // …but the per-gateway gain collapses once coverage saturates — the
    // Gandham et al. K_max effect the paper cites (§4.1).
    let early_gain_per_gw = bound(2) - bound(1);
    let late_gain_per_gw = (bound(12) - bound(8)) / 4.0;
    assert!(
        late_gain_per_gw < early_gain_per_gw / 2.0,
        "gains must saturate: 1→2 gave {early_gain_per_gw:.1}/gw, 8→12 gave {late_gain_per_gw:.1}/gw"
    );
    // Placement ablation: exhaustive ≤ k-means ≤ random on mean hops.
    let hops = |name: &str| find_value(&rows, &format!("placement={name}"), "mean_hops").unwrap();
    assert!(hops("exhaustive") <= hops("kmeans") + 1e-9);
    assert!(hops("exhaustive") <= hops("random") + 1e-9);
}

#[test]
fn e8_wmsn_recovers_from_gateway_loss_where_leach_clusters_die() {
    let rows = e8_robustness(13);
    let v = |cfg: &str| find_value(&rows, cfg, "delivery_ratio").unwrap();
    // Both healthy baselines deliver.
    assert!(
        v("leach healthy") > 0.9,
        "leach healthy {}",
        v("leach healthy")
    );
    assert!(v("mlr healthy") > 0.9, "mlr healthy {}", v("mlr healthy"));
    // The failure rounds hurt both.
    assert!(v("leach heads_killed") < v("leach healthy") - 0.1);
    assert!(v("mlr gateway_killed") < v("mlr healthy"));
    // The WMSN redirect restores service (§4.2); LEACH recovers only by
    // re-electing in the next round.
    assert!(
        v("mlr after_redirect") > 0.9,
        "redirect {}",
        v("mlr after_redirect")
    );
}

#[test]
fn e9_single_sink_hops_grow_with_field_size_but_scaled_gateways_flatten() {
    let rows = e9_scalability(&[100, 400], 17, false);
    let hops =
        |n: usize, m: usize| find_value(&rows, &format!("n={n} m={m}"), "mean_hops").unwrap();
    // Flat architecture: mean hops grow markedly with the field.
    assert!(
        hops(400, 1) > hops(100, 1) * 1.5,
        "single sink must scale poorly: {} vs {}",
        hops(100, 1),
        hops(400, 1)
    );
    // Scaled gateways keep hops nearly flat.
    let m100 = 100 / 50;
    let m400 = 400 / 50;
    assert!(
        hops(400, m400) < hops(100, m100) * 1.5,
        "scaled gateways must flatten growth: {} vs {}",
        hops(100, m100),
        hops(400, m400)
    );
}

#[test]
fn e6_secmlr_resists_what_breaks_mlr() {
    use wmsn::attacks::sinkhole::TargetProtocol;
    // The three attacks SecMLR is designed to kill outright.
    for attack in [Attack::Sinkhole, Attack::FalseAnnounce, Attack::HelloFlood] {
        let mlr = run_attack_cell(TargetProtocol::Mlr, attack, 3);
        let sec = run_attack_cell(TargetProtocol::SecMlr, attack, 3);
        assert!(
            mlr.delivery_ratio < 0.7,
            "{attack:?} should break MLR: {}",
            mlr.delivery_ratio
        );
        assert!(
            sec.delivery_ratio > 0.95,
            "{attack:?} should bounce off SecMLR: {}",
            sec.delivery_ratio
        );
    }
    // Replay: MLR double-delivers, SecMLR does not.
    let mlr = run_attack_cell(TargetProtocol::Mlr, Attack::Replay, 3);
    let sec = run_attack_cell(TargetProtocol::SecMlr, Attack::Replay, 3);
    assert!(mlr.duplicate_deliveries > 0, "replay must dupe MLR");
    assert_eq!(sec.duplicate_deliveries, 0, "counters must kill replays");
}

#[test]
fn e7_security_costs_bytes_but_not_delivery() {
    let rows = e7_secmlr_cost(19);
    let v = |cfg: &str, metric: &str| find_value(&rows, cfg, metric).unwrap();
    assert!(v("mlr", "delivery_ratio") > 0.9);
    assert!(v("secmlr", "delivery_ratio") > 0.9);
    // Security costs real bytes...
    assert!(
        v("secmlr", "total_bytes") > v("mlr", "total_bytes"),
        "SecMLR must pay a byte overhead"
    );
    // ...including a nonzero μTESLA maintenance stream.
    assert!(v("secmlr", "security_bytes") > 0.0);
    assert_eq!(v("mlr", "security_bytes"), 0.0);
}

#[test]
fn e13_gaf_sleep_scheduling_saves_energy_without_losing_data() {
    let rows = e13_sleep_scheduling(7);
    let v = |cfg: &str, metric: &str| find_value(&rows, cfg, metric).unwrap();
    assert!(v("gaf", "awake_fraction") < 0.7, "dense field must sleep");
    assert!(v("gaf", "delivery_ratio") > 0.95);
    assert!(v("all_awake", "delivery_ratio") > 0.95);
    assert!(
        v("gaf", "sensor_energy_j") < v("all_awake", "sensor_energy_j") * 0.5,
        "sleeping most of the field must at least halve energy: {} vs {}",
        v("gaf", "sensor_energy_j"),
        v("all_awake", "sensor_energy_j")
    );
}

#[test]
fn e14_loss_degrades_gracefully_and_csma_rescues_collisions() {
    let rows = e14_loss_and_collisions(7);
    let v = |cfg: &str| find_value(&rows, cfg, "delivery_ratio").unwrap();
    assert!((v("mlr loss=0") - 1.0).abs() < 1e-9);
    assert!(v("mlr loss=0.1") > 0.5, "10% loss should not collapse MLR");
    assert!(v("secmlr loss=0.05") > 0.5);
    // Collisions without carrier sensing are catastrophic for flooding
    // discovery; CSMA recovers an order of magnitude.
    let bare = v("mlr collisions=true csma=false");
    let csma = v("mlr collisions=true csma=true");
    assert!(
        bare < 0.2,
        "no-CSMA collisions must be catastrophic: {bare}"
    );
    assert!(
        csma > bare * 3.0,
        "carrier sensing must rescue delivery: {bare} -> {csma}"
    );
}

#[test]
fn e15_baseline_table_shapes() {
    let rows = e15_baselines(7);
    let v = |cfg: &str, metric: &str| find_value(&rows, cfg, metric).unwrap();
    // Reliability: flooding, SPIN, MCFA, LEACH, PEGASIS, SPR all deliver;
    // gossiping is the lossy one (random walks miss the sink).
    for proto in ["flooding", "spin", "mcfa", "leach", "pegasis", "spr_m1"] {
        assert!(
            v(proto, "delivery_ratio") > 0.9,
            "{proto}: {}",
            v(proto, "delivery_ratio")
        );
    }
    assert!(v("gossiping", "delivery_ratio") < 0.9);
    // Implosion: flooding sends ~n data frames per message.
    assert!(v("flooding", "data_frames") >= 1500.0);
    // Aggregating protocols are the energy misers.
    assert!(v("pegasis", "sensor_energy_j") < v("flooding", "sensor_energy_j") * 0.1);
    assert!(v("leach", "sensor_energy_j") < v("flooding", "sensor_energy_j") * 0.1);
    // MCFA beats flooding on energy (gradient, no tables) but not the
    // aggregators.
    assert!(v("mcfa", "sensor_energy_j") < v("flooding", "sensor_energy_j"));
}

#[test]
fn e6_topology_guard_defeats_the_wormhole() {
    use wmsn::attacks::sinkhole::TargetProtocol;
    let bare = run_attack_cell(TargetProtocol::SecMlr, Attack::Wormhole, 1);
    let guarded = run_attack_cell(TargetProtocol::SecMlr, Attack::WormholeGuarded, 1);
    assert!(
        bare.delivery_ratio < 0.2,
        "unguarded wormhole wins: {}",
        bare.delivery_ratio
    );
    assert!(
        guarded.delivery_ratio > 0.95,
        "the topology guard must reject tunnelled paths: {}",
        guarded.delivery_ratio
    );
}

#[test]
fn e16_energy_aware_selection_extends_lifetime_and_balances_energy() {
    let rows = e16_energy_aware(31);
    let v = |cfg: &str, metric: &str| find_value(&rows, cfg, metric).unwrap();
    assert!(
        v("slack=2", "lifetime_rounds") > v("slack=0", "lifetime_rounds"),
        "energy-aware must outlive min-hop: {} vs {}",
        v("slack=0", "lifetime_rounds"),
        v("slack=2", "lifetime_rounds")
    );
    assert!(
        v("slack=2", "energy_d2_round8") < v("slack=0", "energy_d2_round8"),
        "energy-aware must balance better (lower D²)"
    );
    assert!(v("slack=2", "delivery_ratio") > 0.95);
    // The price: slightly longer paths.
    assert!(v("slack=2", "mean_hops") >= v("slack=0", "mean_hops"));
}
