//! Cross-crate end-to-end integration tests: the full stack from crypto
//! bytes to three-tier delivery, plus reproducibility guarantees.

use wmsn::core::builder::{build_mlr, build_secmlr};
use wmsn::core::drivers::{MlrDriver, SecMlrDriver};
use wmsn::core::experiments::e12_three_tier;
use wmsn::core::params::{FieldParams, GatewayParams, TrafficParams};
use wmsn::core::report::find_value;
use wmsn::routing::optimal_lifetime_rounds;
use wmsn::topology::Topology;
use wmsn::util::Rect;

#[test]
fn three_tier_architecture_delivers_to_the_base_station() {
    let rows = e12_three_tier(23);
    let v = |metric: &str| find_value(&rows, "three-tier", metric).unwrap();
    assert!(v("round0_delivery_ratio") > 0.9);
    assert!(v("round1_delivery_ratio") > 0.9);
    assert!(v("wmg_absorbed") > 0.0);
    assert_eq!(
        v("uplinked"),
        v("wmg_absorbed"),
        "every absorbed reading goes up the backbone"
    );
    assert_eq!(
        v("base_station_received"),
        v("uplinked"),
        "the backbone loses nothing"
    );
}

#[test]
fn simulated_lifetime_never_exceeds_the_optimal_bound() {
    // The Dinic bound is an upper bound on ANY protocol's lifetime; the
    // simulated MLR run (which also pays discovery energy) must sit at or
    // below it.
    let battery = 0.8; // survives the round-0 discovery flood, dies on data
    let field = FieldParams {
        battery_j: battery,
        ..FieldParams::default_uniform(40, 31)
    };
    let scen = build_mlr(
        &field,
        &GatewayParams::default_three(),
        TrafficParams::default(),
        0.0,
    );
    let topo = Topology::new(
        scen.sensor_positions.clone(),
        scen.schedule
            .current()
            .iter()
            .map(|&p| scen.places.position(p))
            .collect(),
        Rect::field(100.0, 100.0),
        scen.range_m,
    );
    let bound = optimal_lifetime_rounds(&topo, battery, 1e-3, 1e-3, 1.0);
    let mut driver = MlrDriver::new(scen);
    let lt = driver.run_until_first_death(300);
    let sim = lt.lifetime_rounds.expect("short batteries must die") as f64;
    assert!(
        sim <= bound + 1.0,
        "simulation ({sim}) must not beat the optimal bound ({bound:.1})"
    );
    assert!(sim > 0.0);
}

#[test]
fn identical_seeds_reproduce_identical_runs() {
    let run = || {
        let field = FieldParams::default_uniform(40, 99);
        let mut d = MlrDriver::new(build_mlr(
            &field,
            &GatewayParams::rotating(2, 2, 2),
            TrafficParams::default(),
            0.0,
        ));
        let reports = d.run_rounds(3);
        let m = d.scenario.world.metrics();
        (
            reports
                .iter()
                .map(|r| (r.delivered, r.control_frames, r.data_frames))
                .collect::<Vec<_>>(),
            m.total_bytes(),
            m.mean_latency_us().to_bits(),
            m.energy_consumed
                .iter()
                .map(|e| e.to_bits())
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(), run(), "runs must be bit-reproducible");
}

#[test]
fn different_seeds_give_different_fields_but_similar_quality() {
    let ratio = |seed: u64| {
        let field = FieldParams::default_uniform(50, seed);
        let mut d = MlrDriver::new(build_mlr(
            &field,
            &GatewayParams::default_three(),
            TrafficParams::default(),
            0.0,
        ));
        d.run_round();
        d.scenario.world.metrics().delivery_ratio()
    };
    for seed in [1, 2, 3] {
        let r = ratio(seed);
        assert!(r > 0.9, "seed {seed} ratio {r}");
    }
}

#[test]
fn secmlr_full_stack_round_trip_under_movement_and_loss() {
    // Lossy medium + moving gateways + crypto, all at once.
    let field = FieldParams {
        loss_prob: 0.03,
        battery_j: 20.0,
        ..FieldParams::default_uniform(40, 55)
    };
    let mut driver = SecMlrDriver::new(build_secmlr(
        &field,
        &GatewayParams::rotating(2, 3, 2),
        TrafficParams::default(),
    ));
    let reports = driver.run_rounds(3);
    for r in &reports {
        assert!(
            r.delivery_ratio() > 0.6,
            "round {} ratio {} under 3% loss",
            r.round,
            r.delivery_ratio()
        );
    }
    let m = driver.scenario.world.metrics();
    assert!(m.lost > 0, "the loss model must have fired");
    assert!(m.sent_security > 0, "μTESLA stream must be running");
}
