//! Segmented-capture parity suite: the disk-backed capture path is
//! observationally identical to the in-memory one.
//!
//! The segmented capture format (PR 9) streams the ring pipeline's
//! 64-byte frames to disk in indexed segments so queries run in
//! O(one segment) memory. Its correctness claim, like the ring's, is
//! *byte/structural* equality, not statistical similarity:
//!
//! * every streaming query (`capture_counts`, `capture_path_of`,
//!   `capture_drops_of_seq`, `capture_energy_of`) over a recorded E1
//!   capture must equal the in-memory `Replay` answer over the same
//!   events — including the not-found cases;
//! * the health monitor fed from a segment-at-a-time scan must produce
//!   an alert stream byte-identical to the inline monitor's;
//! * the sharded kernel's per-shard capture files, k-way merged with
//!   `merge_captures_with`, must render to the reference JSONL bytes —
//!   the same bar the in-memory per-shard ring merge clears.

use std::path::PathBuf;
use wmsn::core::builder::{build_spr, SprScenario};
use wmsn::core::drivers::SprDriver;
use wmsn::core::experiments::{e9_large_round, e9_large_scenario};
use wmsn::core::params::{FieldParams, GatewayParams, TrafficParams};
use wmsn::health::{HealthConfig, HealthMonitor};
use wmsn::sim::ShardedWorld;
use wmsn::topology::strip_shards;
use wmsn::trace::{
    capture_counts, capture_drops_of_seq, capture_energy_of, capture_path_of, merge_captures_with,
    merge_keyed_events, BackpressurePolicy, BufferSink, CaptureConfig, CaptureCursor,
    CaptureReader, CaptureSink, FrameBufferSink, Replay, RingConfig, ScanFilter, TraceEvent,
};

fn test_threads() -> usize {
    std::env::var("SHARD_TEST_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2)
}

/// E1-style field (40 sensors, 3 gateways), death-free batteries so
/// the sharded arm can participate.
fn e1_field(seed: u64) -> (FieldParams, GatewayParams) {
    let field = FieldParams {
        battery_j: 10.0,
        ..FieldParams::default_uniform(40, seed)
    };
    (field, GatewayParams::default_three())
}

/// Run `rounds` E1 rounds with `sink` installed and hand the sink back.
fn traced_e1(
    seed: u64,
    rounds: u32,
    sink: Box<dyn wmsn::trace::TraceSink>,
) -> Box<dyn wmsn::trace::TraceSink> {
    let (field, gw) = e1_field(seed);
    let mut d = SprDriver::new(build_spr(&field, &gw, TrafficParams::default()));
    d.scenario.world.set_trace_sink(sink);
    for _ in 0..rounds {
        d.run_round();
    }
    d.scenario.world.take_trace_sink().expect("sink installed")
}

/// A scratch directory unique to this test invocation.
fn scratch(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("wmsn-capture-parity-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// The reference `(at, key, event)` stream of a 2-round E1 run.
fn reference_frames(seed: u64) -> Vec<(u64, u64, TraceEvent)> {
    let sink = traced_e1(seed, 2, Box::new(FrameBufferSink::new()));
    sink.as_any()
        .downcast_ref::<FrameBufferSink>()
        .expect("FrameBufferSink")
        .entries
        .clone()
}

#[test]
fn streaming_queries_match_replay_on_a_recorded_e1_capture() {
    let dir = scratch("queries");
    let path = dir.join("e1.wcap");
    // Tiny segments so a 2-round E1 trace (~7k events) spans hundreds
    // of segments — the worst case for index pruning bugs.
    let sink = CaptureSink::create(&path, CaptureConfig { segment_frames: 32 }).expect("create");
    drop(traced_e1(11, 2, Box::new(sink))); // Drop finalizes the footer.

    let reference = reference_frames(11);
    let events: Vec<TraceEvent> = reference.iter().map(|f| f.2).collect();
    let replay = Replay::from_events(&events);

    let mut r = CaptureReader::open(&path).expect("open capture");
    assert_eq!(r.frames() as usize, events.len());
    assert_eq!(r.frames_dropped(), 0);
    assert!(
        r.segments().len() > 100,
        "want many segments, got {}",
        r.segments().len()
    );
    assert_eq!(capture_counts(&r), replay.counts());

    // A full scan reproduces the reference frames, causal stamps
    // included (the inline CaptureSink sees the same record_keyed
    // stream the FrameBufferSink does).
    let mut scanned = Vec::new();
    r.scan(&ScanFilter::all(), |ev, at, key| {
        scanned.push((at, key, *ev))
    })
    .expect("scan");
    assert_eq!(scanned, reference);

    // Query args harvested from the trace itself, plus not-found and
    // out-of-range cases.
    let mut path_args = vec![(1, 999), (u64::MAX, 0)];
    let mut drop_args = vec![u64::MAX];
    let mut energy_args = vec![0, 7, 999, u64::MAX];
    for ev in &events {
        if let TraceEvent::Deliver { origin, msg_id, .. } = ev {
            path_args.push((origin.0 as u64, *msg_id));
        }
        if let TraceEvent::Drop { seq, .. } = ev {
            drop_args.push(*seq);
        }
    }
    path_args.truncate(12);
    drop_args.truncate(8);
    energy_args.truncate(8);
    for (origin, msg_id) in path_args {
        assert_eq!(
            capture_path_of(&mut r, origin, msg_id).expect("scan"),
            replay.path_of(origin, msg_id),
            "path {origin}/{msg_id}"
        );
    }
    for seq in drop_args {
        assert_eq!(
            capture_drops_of_seq(&mut r, seq).expect("scan"),
            replay.drops_of_seq(seq),
            "drops {seq}"
        );
    }
    for node in energy_args {
        assert_eq!(
            capture_energy_of(&mut r, node).expect("scan"),
            replay.energy_of(node),
            "energy {node}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn monitor_fed_from_a_capture_scan_matches_the_inline_monitor() {
    let dir = scratch("health");
    let path = dir.join("e1.wcap");
    let sink = CaptureSink::create(&path, CaptureConfig { segment_frames: 64 }).expect("create");
    drop(traced_e1(23, 2, Box::new(sink)));

    let mut inline = HealthMonitor::with_config(HealthConfig::default());
    for (_, _, ev) in &reference_frames(23) {
        inline.observe(ev);
    }
    inline.finalize();

    let mut streamed = HealthMonitor::with_config(HealthConfig::default());
    let mut r = CaptureReader::open(&path).expect("open capture");
    r.scan(&ScanFilter::all(), |ev, _, _| streamed.observe(ev))
        .expect("scan");
    streamed.finalize();

    assert_eq!(streamed.alerts_jsonl(), inline.alerts_jsonl());
    assert_eq!(streamed.net().events, inline.net().events);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sharded_capture_files_merge_to_the_reference_trace_bytes() {
    let (field, gw) = e1_field(11);
    let inline = traced_e1(11, 1, Box::new(BufferSink::new()));
    let want = &inline
        .as_any()
        .downcast_ref::<BufferSink>()
        .expect("BufferSink")
        .out;
    assert!(!want.is_empty());

    let dir = scratch("sharded");
    let scen = build_spr(&field, &gw, TrafficParams::default());
    let mut positions = scen.sensor_positions.clone();
    positions.extend_from_slice(&scen.gateway_positions);
    let assignment = strip_shards(&positions, scen.range_m, 4);
    let sharded: SprScenario<ShardedWorld> =
        scen.map_world(|w| ShardedWorld::from_world(w, assignment, test_threads()));
    let mut d = SprDriver::new(sharded);
    let paths = d
        .scenario
        .world
        .install_capture_sinks(
            RingConfig {
                chunk_frames: 7,
                capacity_chunks: 3,
                policy: BackpressurePolicy::Block,
            },
            CaptureConfig { segment_frames: 32 },
            &dir,
        )
        .expect("create shard captures");
    assert_eq!(paths.len(), 4);
    d.run_round();
    let (stats, cap) = d
        .scenario
        .world
        .finish_capture_sinks()
        .expect("capture sinks installed");
    assert_eq!(stats.frames_dropped, 0);
    assert_eq!(cap.frames, stats.frames_written);
    assert_eq!(cap.frames_dropped, 0);
    assert!(cap.segments > 0 && cap.bytes > 0);

    let mut cursors: Vec<_> = paths
        .iter()
        .map(|p| CaptureCursor::open(p).expect("open shard capture"))
        .collect();
    let mut got = String::new();
    let merged = merge_captures_with(&mut cursors, |ev| {
        got.push_str(&ev.to_json().to_string());
        got.push('\n');
    })
    .expect("merge shard captures");
    assert_eq!(merged, cap.frames);
    assert_eq!(
        &got, want,
        "k-way merged shard captures must render to the reference JSONL"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// An E9 n=3000 three-tier sharded scenario (seed 17, 4 shards).
fn sharded_e9() -> (
    SprScenario<ShardedWorld>,
    wmsn::util::NodeId,
    usize, // source count
) {
    let (scen, base) = e9_large_scenario(3000, 17);
    let mut positions = scen.sensor_positions.clone();
    positions.extend_from_slice(&scen.gateway_positions);
    positions.push(scen.world.node(base).pos);
    let assignment = strip_shards(&positions, scen.range_m, 4);
    let sharded = scen.map_world(|w| ShardedWorld::from_world(w, assignment, test_threads()));
    (sharded, base, 3)
}

#[test]
fn capture_merge_heals_same_at_key_inversions_at_scale() {
    // A shard's event wheel executes same-microsecond events in
    // insertion order, not key order, so at E9 scale the per-shard
    // streams carry (at, key) inversions inside equal-`at` runs. The
    // in-memory merge handles them with a sort fallback; the capture
    // cursors must produce the *same* healed total order from disk.
    // (The E1 tests above never trip this — their shard streams happen
    // to arrive fully sorted — so this scenario is the regression pin.)
    let (mut scen, base, sources) = sharded_e9();
    scen.world.install_ring_sinks(RingConfig::default());
    e9_large_round(&mut scen, base, sources);
    let (frames, _) = scen
        .world
        .finish_ring_frames()
        .expect("ring sinks installed");
    let inverted = frames
        .iter()
        .any(|s| s.windows(2).any(|w| (w[1].0, w[1].1) < (w[0].0, w[0].1)));
    assert!(
        inverted,
        "scenario must exercise the key-inversion healing path"
    );
    let want = merge_keyed_events(frames);

    let dir = scratch("inversions");
    let (mut scen, base, sources) = sharded_e9();
    let paths = scen
        .world
        .install_capture_sinks(RingConfig::default(), CaptureConfig::default(), &dir)
        .expect("create shard captures");
    e9_large_round(&mut scen, base, sources);
    let (stats, cap) = scen
        .world
        .finish_capture_sinks()
        .expect("capture sinks installed");
    assert_eq!(cap.frames, stats.frames_written);

    let mut cursors: Vec<_> = paths
        .iter()
        .map(|p| CaptureCursor::open(p).expect("open shard capture"))
        .collect();
    let mut got = Vec::with_capacity(want.len());
    let merged = merge_captures_with(&mut cursors, |ev| got.push(*ev)).expect("merge");
    assert_eq!(merged, cap.frames);
    assert_eq!(got.len(), want.len());
    assert!(
        got == want,
        "disk merge must equal the in-memory merged event order"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Property: the segment node-bloom never produces a false negative —
/// a node-filtered scan over randomized events returns *exactly* the
/// frames an exhaustive check finds, for ids both present and absent.
/// Sparse random ids force bloom-bit collisions, so false positives do
/// occur (and are filtered per frame); a skipped segment that held a
/// match would show up as a missing frame here.
#[test]
fn node_index_pruning_never_skips_a_matching_segment() {
    use std::io::Cursor;
    use wmsn::trace::{CaptureWriter, TraceKind, TraceTier};
    use wmsn::util::{NodeId, SplitMix64};

    // Mirror of the capture layer's node-mention rule for the variants
    // generated below.
    fn mentions(ev: &TraceEvent, id: NodeId) -> bool {
        match *ev {
            TraceEvent::TxStart { src, dst, .. } => src == id || dst == Some(id),
            TraceEvent::Rx { node, .. } => node == id,
            TraceEvent::Forward {
                node, origin, next, ..
            } => node == id || origin == id || next == Some(id),
            TraceEvent::Deliver { node, origin, .. } => node == id || origin == id,
            TraceEvent::Energy { node, .. } => node == id,
            _ => unreachable!("not generated"),
        }
    }

    for seed in [1u64, 7, 42] {
        let mut rng = SplitMix64::new(seed);
        // Sparse ids stress the two-bit bloom with cross-id collisions.
        let mut id = {
            let mut r = SplitMix64::new(seed ^ 0xABCD);
            move || NodeId((r.next_u64_raw() % 50_000) as u32)
        };
        let mut events: Vec<TraceEvent> = Vec::new();
        for i in 0..4000u64 {
            let t = i * 13;
            let ev = match rng.next_u64_raw() % 5 {
                0 => TraceEvent::TxStart {
                    t,
                    seq: i,
                    src: id(),
                    dst: rng.next_u64_raw().is_multiple_of(2).then(&mut id),
                    tier: TraceTier::Sensor,
                    kind: TraceKind::Data,
                    bytes: 32,
                },
                1 => TraceEvent::Rx {
                    t,
                    seq: i,
                    node: id(),
                },
                2 => TraceEvent::Forward {
                    t,
                    node: id(),
                    origin: id(),
                    msg_id: i,
                    next: rng.next_u64_raw().is_multiple_of(2).then(&mut id),
                    hops: 2,
                },
                3 => TraceEvent::Deliver {
                    t,
                    node: id(),
                    origin: id(),
                    msg_id: i,
                    hops: 3,
                    latency_us: 50,
                },
                _ => TraceEvent::Energy {
                    t,
                    node: id(),
                    consumed_j: 0.25,
                },
            };
            events.push(ev);
        }

        let mut w = CaptureWriter::new(
            Cursor::new(Vec::new()),
            CaptureConfig { segment_frames: 64 },
        )
        .expect("header");
        for ev in &events {
            w.push(ev, ev.t(), 0).expect("push");
        }
        let (cur, stats) = w.finish().expect("finish");
        assert_eq!(stats.frames, events.len() as u64);
        let mut r = CaptureReader::new(Cursor::new(cur.into_inner())).expect("open");

        // Probes: ids that occur (drawn from the stream) and fresh
        // random ids that almost surely do not.
        let mut probes: Vec<NodeId> = events
            .iter()
            .step_by(97)
            .map(|ev| {
                let mut first = None;
                if let TraceEvent::Rx { node, .. }
                | TraceEvent::Forward { node, .. }
                | TraceEvent::Deliver { node, .. }
                | TraceEvent::Energy { node, .. } = *ev
                {
                    first = Some(node);
                }
                if let TraceEvent::TxStart { src, .. } = *ev {
                    first = Some(src);
                }
                first.expect("every generated variant names a node")
            })
            .collect();
        let mut absent = SplitMix64::new(seed ^ 0x5EED);
        probes.extend((0..20).map(|_| NodeId(60_000 + (absent.next_u64_raw() % 50_000) as u32)));

        let mut skipped_any = false;
        for probe in probes {
            let expected: Vec<TraceEvent> = events
                .iter()
                .filter(|ev| mentions(ev, probe))
                .copied()
                .collect();
            // No re-filtering in the callback: the scan must hand back
            // exactly the matching frames (bloom false positives are
            // resolved by the per-frame check inside the scan layer).
            let mut got = Vec::new();
            let stats = r
                .scan(&ScanFilter::all().with_node(probe), |ev, _, _| {
                    got.push(*ev);
                })
                .expect("scan");
            skipped_any |= stats.segments_skipped > 0;
            assert_eq!(
                got, expected,
                "seed {seed}, node {probe:?}: index pruning lost frames"
            );
        }
        assert!(
            skipped_any,
            "seed {seed}: the index never pruned — the property was not exercised"
        );
    }
}
