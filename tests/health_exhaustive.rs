//! Exhaustiveness pins between the trace layer, the metrics ledger, and
//! the health monitor.
//!
//! Three layers account for the same physical facts: `DropCause` on the
//! trace wire, the `Metrics` counters in the sim, and the monitor's
//! per-cause tallies. These tests are designed to FAIL TO COMPILE or
//! fail loudly when a new drop cause or a new `Metrics` field is added
//! without teaching the monitor about it — drift is an error, not a
//! silent gap.

use wmsn::health::{drop_cause_at, drop_cause_index, HealthMonitor, DROP_CAUSE_COUNT};
use wmsn::sim::Metrics;
use wmsn::trace::{DropCause, TraceEvent};
use wmsn::util::NodeId;

/// Every `DropCause` variant. The match in `drop_cause_index` is
/// exhaustive, so adding a variant breaks the health crate's build; this
/// array pins the count and the dense-index round trip at test level.
const ALL_CAUSES: [DropCause; DROP_CAUSE_COUNT] = [
    DropCause::Collision,
    DropCause::Loss,
    DropCause::Dead,
    DropCause::OutOfRange,
    DropCause::Energy,
];

#[test]
fn drop_cause_indexing_is_dense_total_and_invertible() {
    for (i, &cause) in ALL_CAUSES.iter().enumerate() {
        assert_eq!(drop_cause_index(cause), i);
        assert_eq!(drop_cause_at(i), Some(cause));
        // Names round-trip through the wire form too.
        assert_eq!(DropCause::from_name(cause.as_str()), Some(cause));
    }
    assert_eq!(drop_cause_at(DROP_CAUSE_COUNT), None);
}

#[test]
fn monitor_tallies_every_drop_cause() {
    let mut m = HealthMonitor::new();
    for (i, &cause) in ALL_CAUSES.iter().enumerate() {
        for _ in 0..=i {
            m.observe(&TraceEvent::Drop {
                t: 1,
                seq: 1,
                node: NodeId(2),
                cause,
            });
        }
    }
    for (i, &cause) in ALL_CAUSES.iter().enumerate() {
        assert_eq!(m.drops_of_cause(cause), (i + 1) as u64, "{cause:?}");
    }
    let expected: u64 = (1..=DROP_CAUSE_COUNT as u64).sum();
    assert_eq!(m.drops_total(), expected);
    assert_eq!(m.node(2).unwrap().drops_total(), expected);
}

/// Pin the `Metrics` shape against the monitor's coverage. The full
/// destructuring is deliberate: adding a `Metrics` field fails this
/// test's compilation until someone decides (and documents below)
/// whether the monitor needs a mapping for it.
#[test]
fn every_metrics_field_has_a_declared_monitor_mapping() {
    let Metrics {
        // Mirrored online: per-node/net tx counters by kind (TxStart).
        sent_control: _,
        sent_data: _,
        sent_security: _,
        // Byte totals are E7 accounting; the monitor tracks frame
        // counts, rates come from windows. No per-byte detector.
        sent_bytes_control: _,
        sent_bytes_data: _,
        sent_bytes_security: _,
        // Mirrored online: NodeStats::rx / NetStats::rx_total (Rx).
        received: _,
        // Mirrored per cause: drops[drop_cause_index(Loss)] (Drop).
        lost: _,
        // drops[drop_cause_index(Collision)].
        collided: _,
        // drops[drop_cause_index(Dead)].
        dead_receiver: _,
        // CSMA lifecycle (TxDefer/TxGiveUp) is congestion accounting;
        // deliberately not a detector input — attacks do not manifest
        // as backoff under the current medium models.
        csma_deferrals: _,
        csma_drops: _,
        // Originations appear as Forward events with hops == 1.
        originated: _,
        // Mirrored online: GatewayStats::delivers + dedup (Deliver).
        deliveries: _,
        // Kernel bookkeeping for the sharded merge (delivery order),
        // invisible on the trace wire; not a monitor input.
        delivery_keys: _,
        // Forecast, not observation: the monitor's energy_depletion
        // detector predicts this before it happens (Energy slope).
        first_death: _,
        first_death_node: _,
        // Mirrored online: NodeStats::consumed_j (Energy, cumulative).
        energy_consumed: _,
        // Distributions are offline analysis (wmsn-trace summary);
        // the monitor keeps EWMA rates instead of histograms.
        latency_hist: _,
        hops_hist: _,
        // Per-node tx mirrored as NodeStats::tx_total().
        node_tx: _,
        // Round snapshots are driver-side bookkeeping, invisible on the
        // trace wire by design.
        snapshots: _,
    } = Metrics::default();
}

#[test]
fn monitor_drop_tallies_agree_with_metrics_on_a_live_run() {
    use wmsn::core::builder::build_spr;
    use wmsn::core::drivers::SprDriver;
    use wmsn::core::params::{FieldParams, GatewayParams, TrafficParams};
    use wmsn::health::HealthConfig;

    let field = FieldParams::default_uniform(30, 9);
    let scen = build_spr(
        &field,
        &GatewayParams::default_three(),
        TrafficParams::default(),
    );
    let mut d = SprDriver::new(scen);
    d.scenario
        .world
        .set_trace_sink(HealthMonitor::boxed(HealthConfig::default()));
    d.run_round();
    let sink = d.scenario.world.take_trace_sink().expect("sink installed");
    let mon = sink
        .as_any()
        .downcast_ref::<HealthMonitor>()
        .expect("HealthMonitor");
    let m = d.scenario.world.metrics();
    assert_eq!(mon.drops_of_cause(DropCause::Loss), m.lost);
    assert_eq!(mon.drops_of_cause(DropCause::Collision), m.collided);
    assert_eq!(mon.drops_of_cause(DropCause::Dead), m.dead_receiver);
    assert_eq!(mon.net().rx_total, m.received);
    assert_eq!(
        mon.net().tx_total,
        m.sent_control + m.sent_data + m.sent_security
    );
}
