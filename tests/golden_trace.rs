//! Golden-trace determinism and trace-accounting integration tests.
//!
//! Extends the PR-1 golden suite to the observability layer:
//!
//! * the JSONL trace of the E1 kernel is **byte-identical** across two
//!   runs with the same seed (the trace is part of the deterministic
//!   output surface, like the metrics the golden values pin);
//! * the trace is rich enough to reconstruct the full hop-by-hop path
//!   of a delivered message (the `wmsn-trace` CLI acceptance
//!   criterion);
//! * drop events with causes `dead`/`collision`/`loss` sum exactly to
//!   the `Metrics` counters they mirror.

use wmsn::core::builder::build_spr;
use wmsn::core::drivers::SprDriver;
use wmsn::core::params::{FieldParams, GatewayParams, TrafficParams};
use wmsn::routing::flooding::{FloodMode, FloodSensor, FloodSink};
use wmsn::sim::{CollisionModel, NodeConfig, World, WorldConfig};
use wmsn::trace::{BufferSink, CountingSink, Replay};
use wmsn::util::Point;

/// Run the E1 kernel (SPR, 40 sensors, 3 gateways) for one round with a
/// [`BufferSink`] installed and return the captured JSONL bytes.
fn traced_e1_run(seed: u64) -> String {
    let field = FieldParams::default_uniform(40, seed);
    let scen = build_spr(
        &field,
        &GatewayParams::default_three(),
        TrafficParams::default(),
    );
    let mut d = SprDriver::new(scen);
    d.scenario.world.set_trace_sink(Box::new(BufferSink::new()));
    d.run_round();
    let sink = d.scenario.world.take_trace_sink().expect("sink installed");
    sink.as_any()
        .downcast_ref::<BufferSink>()
        .expect("BufferSink")
        .out
        .clone()
}

#[test]
fn e1_trace_is_byte_identical_for_a_fixed_seed() {
    for seed in [11, 23] {
        let a = traced_e1_run(seed);
        let b = traced_e1_run(seed);
        assert!(!a.is_empty(), "seed {seed}: trace must not be empty");
        assert_eq!(a, b, "seed {seed}: trace must be byte-identical");
    }
}

#[test]
fn e1_trace_reconstructs_a_delivered_message_path() {
    let out = traced_e1_run(11);
    let replay = Replay::from_jsonl(&out).expect("every trace line must parse");
    assert!(!replay.is_empty());
    let delivered = replay.delivered_messages();
    assert!(
        !delivered.is_empty(),
        "E1 must deliver at least one message"
    );
    let (origin, msg_id) = delivered[0];
    let path = replay.path_of(origin, msg_id).expect("path must exist");
    assert!(
        !path.hops.is_empty(),
        "a delivered message must have forward hops"
    );
    // The origination hop is hop 1, from the origin itself.
    assert_eq!(path.hops[0].node, origin);
    assert_eq!(path.hops[0].hops, 1);
    // Hop counts grow monotonically along the path.
    for w in path.hops.windows(2) {
        assert!(w[1].hops > w[0].hops, "hop counts must increase: {path:?}");
    }
    // The deliver event agrees with the last forward's hop count.
    let (_, _, hops, _) = path.delivered.expect("message was delivered");
    assert_eq!(hops, path.hops.last().unwrap().hops);
}

#[test]
fn trace_drop_causes_sum_to_the_metrics_counters() {
    // A dense flooding field over a lossy, collision-prone medium —
    // plenty of loss and collision drops, deterministically seeded.
    let mut cfg = WorldConfig::ideal(99);
    cfg.sensor_phy.range_m = 12.0;
    cfg.medium.loss_prob = 0.2;
    cfg.medium.collisions = CollisionModel::ReceiverOverlap;
    let mut w = World::new(cfg);
    let mut sensors = Vec::new();
    for y in 0..4 {
        for x in 0..4 {
            sensors.push(w.add_node(
                NodeConfig::sensor(Point::new(x as f64 * 9.0, y as f64 * 9.0), 100.0),
                FloodSensor::boxed(FloodMode::Flood, 16),
            ));
        }
    }
    w.add_node(
        NodeConfig::gateway(Point::new(36.0, 27.0)),
        FloodSink::boxed(),
    );
    // One dead receiver in range of the first sender.
    let dead = w.add_node(
        NodeConfig::sensor(Point::new(4.0, 4.0), 100.0),
        FloodSensor::boxed(FloodMode::Flood, 16),
    );
    w.set_trace_sink(Box::new(CountingSink::new()));
    w.start();
    w.kill(dead);
    for &s in &sensors[..4] {
        w.with_behavior::<FloodSensor, _>(s, |b, ctx| b.originate(ctx));
    }
    w.run_until(5_000_000);
    let sink = w.take_trace_sink().expect("sink installed");
    let c = sink
        .as_any()
        .downcast_ref::<CountingSink>()
        .expect("CountingSink");
    let m = w.metrics();
    assert!(m.lost > 0, "lossy medium must lose something");
    assert_eq!(c.drops_of("loss"), m.lost);
    assert_eq!(c.drops_of("collision"), m.collided);
    assert_eq!(c.drops_of("dead"), m.dead_receiver);
    assert_eq!(
        c.drops_of("loss") + c.drops_of("collision") + c.drops_of("dead"),
        m.dropped_total()
    );
    // Every reception the metrics counted is an `rx` trace event.
    assert_eq!(c.count_of("rx"), m.received);
}
