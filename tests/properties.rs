//! Randomized property tests on cross-crate invariants: wire formats
//! never panic and round-trip, crypto seals are tamper-evident for
//! arbitrary payloads, topology/flow invariants hold on random geometry.
//!
//! Cases are generated from fixed-seed [`SplitMix64`] streams (the
//! workspace builds offline, without proptest), so every run exercises
//! exactly the same inputs and failures reproduce immediately.

use wmsn::crypto::hash::hash as wh;
use wmsn::crypto::{open, seal, Key128, TeslaBroadcaster, TeslaReceiver};
use wmsn::routing::optimal_lifetime_rounds;
use wmsn::routing::table::{Route, RoutingTable};
use wmsn::routing::wire::{peek, PeekHeader, RoutingMsg, RoutingMsgView, MAX_PATH, NO_PLACE};
use wmsn::secure::wire::SecMsg;
use wmsn::topology::connectivity::{is_connected, HopField};
use wmsn::topology::control::{critical_range, gaf_sleep_schedule};
use wmsn::topology::places::FeasiblePlaces;
use wmsn::topology::{MovementPolicy, MovementSchedule, Topology};
use wmsn::util::codec::{DecodeError, Writer};
use wmsn::util::geom::unit_disk_adjacency;
use wmsn::util::{NodeId, Point, Rect, SplitMix64};

/// Number of generated cases per property (mirrors the old proptest
/// configuration).
const CASES: usize = 128;
const CASES_SLOW: usize = 64;

fn rng_for(label: u64) -> SplitMix64 {
    SplitMix64::new(0x5EED_CA5E).split(label)
}

fn arb_point(r: &mut SplitMix64) -> Point {
    Point::new(r.range_f64(0.0, 100.0), r.range_f64(0.0, 100.0))
}

fn arb_points(r: &mut SplitMix64, lo: usize, hi: usize) -> Vec<Point> {
    let n = lo + r.next_index(hi - lo);
    (0..n).map(|_| arb_point(r)).collect()
}

fn arb_bytes(r: &mut SplitMix64, lo: usize, hi: usize) -> Vec<u8> {
    let n = lo + r.next_index(hi - lo);
    let mut v = vec![0u8; n];
    r.fill_bytes(&mut v);
    v
}

#[test]
fn routing_wire_decode_never_panics() {
    let mut r = rng_for(1);
    for _ in 0..CASES {
        let bytes = arb_bytes(&mut r, 0, 256);
        let _ = RoutingMsg::decode(&bytes);
        let _ = RoutingMsgView::decode(&bytes);
        let _ = peek(&bytes);
        let _ = SecMsg::decode(&bytes);
    }
}

/// A random valid routing message covering every variant.
fn arb_routing_msg(r: &mut SplitMix64) -> RoutingMsg {
    match r.next_index(5) {
        0 => RoutingMsg::Rreq {
            origin: NodeId(r.next_below(1000) as u32),
            req_id: r.next_u64_raw(),
            path: (0..r.next_index(20))
                .map(|_| NodeId(r.next_below(1000) as u32))
                .collect(),
            wanted: (0..r.next_index(8))
                .map(|_| r.next_u64_raw() as u16)
                .collect(),
        },
        1 => RoutingMsg::Rrep {
            origin: NodeId(r.next_below(1000) as u32),
            req_id: r.next_u64_raw(),
            gateway: NodeId(r.next_below(1000) as u32),
            place: r.next_u64_raw() as u16,
            energy_pm: r.next_u64_raw() as u16,
            path: (0..r.next_index(20))
                .map(|_| NodeId(r.next_below(1000) as u32))
                .collect(),
        },
        2 => RoutingMsg::Data {
            origin: NodeId(r.next_u64_raw() as u32),
            msg_id: r.next_u64_raw(),
            sent_at: r.next_u64_raw(),
            gateway: NodeId(r.next_u64_raw() as u32),
            place: r.next_u64_raw() as u16,
            hops: r.next_u64_raw() as u32,
            payload_len: r.next_below(128) as u16,
        },
        3 => RoutingMsg::Announce {
            gateway: NodeId(r.next_u64_raw() as u32),
            place: r.next_u64_raw() as u16,
            round: r.next_u64_raw() as u32,
        },
        _ => RoutingMsg::Load {
            gateway: NodeId(r.next_u64_raw() as u32),
            load: r.next_u64_raw() as u32,
            seq: r.next_u64_raw() as u32,
        },
    }
}

#[test]
fn borrowed_views_and_peek_match_owned_decode_on_random_frames() {
    let mut r = rng_for(16);
    for _ in 0..CASES {
        let msg = arb_routing_msg(&mut r);
        let bytes = msg.encode();
        let view = RoutingMsgView::decode(&bytes).expect("valid frame must decode as a view");
        assert_eq!(view.to_owned(), msg, "view decode must equal owned decode");
        let header = peek(&bytes).expect("peek must accept what decode accepts");
        match (&msg, header) {
            (
                RoutingMsg::Rreq { origin, req_id, .. },
                PeekHeader::Rreq {
                    origin: o,
                    req_id: q,
                },
            ) => {
                assert_eq!((*origin, *req_id), (o, q));
            }
            (
                RoutingMsg::Rrep {
                    origin,
                    req_id,
                    gateway,
                    ..
                },
                PeekHeader::Rrep {
                    origin: o,
                    req_id: q,
                    gateway: g,
                },
            ) => {
                assert_eq!((*origin, *req_id, *gateway), (o, q, g));
            }
            (
                RoutingMsg::Data {
                    origin,
                    msg_id,
                    gateway,
                    ..
                },
                PeekHeader::Data {
                    origin: o,
                    msg_id: m,
                    gateway: g,
                },
            ) => {
                assert_eq!((*origin, *msg_id, *gateway), (o, m, g));
            }
            (
                RoutingMsg::Announce {
                    gateway,
                    place,
                    round,
                },
                PeekHeader::Announce {
                    gateway: g,
                    place: p,
                    round: rd,
                },
            ) => {
                assert_eq!((*gateway, *place, *round), (g, p, rd));
            }
            (
                RoutingMsg::Load { gateway, load, seq },
                PeekHeader::Load {
                    gateway: g,
                    load: l,
                    seq: s,
                },
            ) => {
                assert_eq!((*gateway, *load, *seq), (g, l, s));
            }
            (m, h) => panic!("peek kind mismatch: {m:?} vs {h:?}"),
        }
    }
}

#[test]
fn borrowed_decoder_rejects_every_truncation_without_panicking() {
    let mut r = rng_for(17);
    for _ in 0..CASES_SLOW {
        let msg = arb_routing_msg(&mut r);
        let bytes = msg.encode();
        for cut in 0..bytes.len() {
            assert!(
                RoutingMsgView::decode(&bytes[..cut]).is_err(),
                "truncation to {cut} bytes must not decode"
            );
            assert!(peek(&bytes[..cut]).is_err());
        }
        let mut long = bytes.clone();
        long.push(r.next_u64_raw() as u8);
        assert!(RoutingMsgView::decode(&long).is_err(), "trailing byte");
        assert!(peek(&long).is_err());
    }
}

#[test]
fn oversized_path_counts_are_rejected_before_any_allocation() {
    for claimed in [MAX_PATH + 1, u16::MAX as usize] {
        // RREQ: | tag | origin | req_id | wanted(0) | path_count | … |
        let mut w = Writer::new();
        w.u8(1).u32(7).u64(9).u16(0).u16(claimed as u16);
        for _ in 0..4 * claimed {
            w.u8(0);
        }
        let bytes = w.into_bytes();
        for result in [
            RoutingMsgView::decode(&bytes).map(|_| ()),
            peek(&bytes).map(|_| ()),
            RoutingMsg::decode(&bytes).map(|_| ()),
        ] {
            assert!(
                matches!(result, Err(DecodeError::LengthOutOfRange(n)) if n == claimed),
                "claimed path count {claimed} must be rejected as out of range"
            );
        }
        // RREP: | tag | origin | req_id | gateway | place | energy | path_count | … |
        let mut w = Writer::new();
        w.u8(2)
            .u32(7)
            .u64(9)
            .u32(3)
            .u16(0)
            .u16(500)
            .u16(claimed as u16);
        let bytes = w.into_bytes();
        for result in [
            RoutingMsgView::decode(&bytes).map(|_| ()),
            peek(&bytes).map(|_| ()),
        ] {
            assert!(matches!(result, Err(DecodeError::LengthOutOfRange(n)) if n == claimed));
        }
    }
}

#[test]
fn routing_wire_roundtrips() {
    let mut r = rng_for(2);
    for _ in 0..CASES {
        let path_len = r.next_index(20);
        let wanted_len = r.next_index(8);
        let msg = RoutingMsg::Rreq {
            origin: NodeId(r.next_below(1000) as u32),
            req_id: r.next_u64_raw(),
            path: (0..path_len)
                .map(|_| NodeId(r.next_below(1000) as u32))
                .collect(),
            wanted: (0..wanted_len).map(|_| r.next_u64_raw() as u16).collect(),
        };
        assert_eq!(RoutingMsg::decode(&msg.encode()).unwrap(), msg);
    }
}

#[test]
fn data_wire_roundtrips() {
    let mut r = rng_for(3);
    for _ in 0..CASES {
        let msg = RoutingMsg::Data {
            origin: NodeId(r.next_u64_raw() as u32),
            msg_id: r.next_u64_raw(),
            sent_at: r.next_u64_raw(),
            gateway: NodeId(r.next_u64_raw() as u32),
            place: r.next_u64_raw() as u16,
            hops: r.next_u64_raw() as u32,
            payload_len: r.next_below(512) as u16,
        };
        assert_eq!(RoutingMsg::decode(&msg.encode()).unwrap(), msg);
    }
}

#[test]
fn sealed_messages_roundtrip_and_reject_any_single_bitflip() {
    let mut r = rng_for(4);
    for _ in 0..CASES {
        let mut kb = [0u8; 16];
        r.fill_bytes(&mut kb);
        let key = Key128(kb);
        let counter = r.next_u64_raw();
        let payload = arb_bytes(&mut r, 0, 64);
        let sealed = seal(&key, counter, &payload);
        assert_eq!(open(&key, &sealed).unwrap(), payload);
        // Flip one bit somewhere in the ciphertext or tag.
        let mut tampered = sealed.clone();
        let ct_len = tampered.ciphertext.len();
        let pos = r.next_index(ct_len + 8);
        let bit = 1u8 << r.next_index(8);
        if pos < ct_len {
            tampered.ciphertext[pos] ^= bit;
        } else {
            tampered.tag.0[pos - ct_len] ^= bit;
        }
        assert!(open(&key, &tampered).is_none(), "bitflip must be detected");
    }
}

#[test]
fn sealed_messages_bind_the_counter() {
    let mut r = rng_for(5);
    for _ in 0..CASES {
        let mut kb = [0u8; 16];
        r.fill_bytes(&mut kb);
        let key = Key128(kb);
        let payload = arb_bytes(&mut r, 1, 32);
        let mut sealed = seal(&key, r.next_below(u64::MAX), &payload);
        sealed.counter = sealed.counter.wrapping_add(1);
        assert!(open(&key, &sealed).is_none());
    }
}

#[test]
fn hop_field_triangle_inequality() {
    let mut r = rng_for(6);
    for _ in 0..CASES {
        // Every sensor's hop count is at most its neighbour's + 1.
        let points = arb_points(&mut r, 2, 40);
        let gateways = vec![points[0]];
        let sensors = points[1..].to_vec();
        let n = sensors.len();
        let topo = Topology::new(sensors, gateways, Rect::field(100.0, 100.0), 20.0);
        let adj = topo.adjacency();
        let hf = HopField::compute(&topo);
        #[allow(clippy::needless_range_loop)]
        for v in 0..n {
            for &u in &adj[v] {
                if hf.hops[u] != u32::MAX && hf.hops[v] != u32::MAX {
                    assert!(hf.hops[v] <= hf.hops[u] + 1);
                }
            }
            // Covered ⇔ some gateway is graph-reachable.
            if hf.hops[v] != u32::MAX {
                assert!(hf.nearest[v] == 0);
            }
        }
    }
}

#[test]
fn critical_range_is_tight() {
    let mut r = rng_for(7);
    for _ in 0..CASES {
        let points = arb_points(&mut r, 2, 30);
        if let Some(cr) = critical_range(&points) {
            assert!(is_connected(&unit_disk_adjacency(
                &points,
                cr * (1.0 + 1e-12)
            )));
            // Lower tightness: shrinking below r must disconnect — unless
            // another pairwise distance ties with r within the shrink
            // factor, in which case that edge legitimately survives.
            let shrunk = cr * 0.999_999;
            let tie = (0..points.len()).any(|i| {
                (i + 1..points.len()).any(|j| {
                    let d = points[i].dist(points[j]);
                    d < cr && d >= shrunk
                })
            });
            if cr > 1e-6 && !tie {
                assert!(!is_connected(&unit_disk_adjacency(&points, shrunk)));
            }
        }
    }
}

#[test]
fn optimal_bound_is_monotone_in_battery() {
    let mut r = rng_for(8);
    for _ in 0..CASES {
        let points = arb_points(&mut r, 3, 25);
        let battery = r.range_f64(0.01, 2.0);
        let topo = Topology::new(
            points[1..].to_vec(),
            vec![points[0]],
            Rect::field(100.0, 100.0),
            30.0,
        );
        let small = optimal_lifetime_rounds(&topo, battery, 1e-3, 1e-3, 1.0);
        let large = optimal_lifetime_rounds(&topo, battery * 2.0, 1e-3, 1e-3, 1.0);
        // Doubling every battery doubles the fractional lifetime.
        assert!((large - 2.0 * small).abs() <= 0.01 * large.max(1.0));
    }
}

#[test]
fn routing_table_best_is_min_hops_of_inserted() {
    let mut r = rng_for(9);
    for _ in 0..CASES {
        let n_entries = 1 + r.next_index(19);
        let mut table = RoutingTable::new();
        for _ in 0..n_entries {
            let relays = r.next_index(6);
            table.upsert(
                Route {
                    gateway: NodeId(r.next_below(50) as u32),
                    place: r.next_below(8) as u16,
                    relays: (0..relays).map(|i| NodeId(1000 + i as u32)).collect(),
                    energy_pm: 1000,
                },
                false,
            );
        }
        let best = table.best().unwrap();
        for route in table.iter() {
            assert!(best.hops() <= route.hops());
        }
        // Keyed dedup: at most one entry per place.
        let mut places: Vec<u16> = table.iter().map(|route| route.place).collect();
        places.sort_unstable();
        let len_before = places.len();
        places.dedup();
        assert_eq!(places.len(), len_before);
    }
}

#[test]
fn spr_route_entries_are_well_formed() {
    let mut r = rng_for(10);
    for _ in 0..CASES {
        let gw = r.next_below(100) as u32;
        let n_relays = r.next_index(10);
        let relays: Vec<u32> = (0..n_relays)
            .map(|_| 100 + r.next_below(100) as u32)
            .collect();
        let route = Route {
            gateway: NodeId(gw),
            place: NO_PLACE,
            relays: relays.iter().copied().map(NodeId).collect(),
            energy_pm: 1000,
        };
        assert_eq!(route.hops() as usize, relays.len() + 1);
        if relays.is_empty() {
            assert_eq!(route.next_hop(), NodeId(gw));
        } else {
            assert_eq!(route.next_hop(), NodeId(relays[0]));
        }
    }
}

#[test]
fn tesla_honest_messages_always_authenticate() {
    let mut r = rng_for(11);
    let mut tried = 0usize;
    while tried < CASES_SLOW {
        let seed = r.next_u64_raw();
        let interval = 50 + r.next_below(950);
        let delay = 1 + r.next_below(3);
        let send_offset = r.next_below(2000);
        let msg = arb_bytes(&mut r, 1, 64);
        let b = TeslaBroadcaster::new(&wh(&seed.to_le_bytes()), 32, 0, interval, delay);
        let mut rx = TeslaReceiver::new(b.anchor(), 0, interval, delay, b.max_interval());
        let t_send = send_offset;
        let (i, tag) = b.authenticate(t_send, &msg);
        // Arrive promptly (well before the interval's disclosure time).
        let arrive = t_send + 1;
        let disclosure_time = (i + delay) * interval;
        if arrive >= disclosure_time {
            // Equivalent of prop_assume!: skip cases violating the premise.
            continue;
        }
        tried += 1;
        assert_eq!(
            rx.on_message(arrive, i, &msg, tag),
            wmsn::crypto::tesla::ReceiveOutcome::Buffered
        );
        // Walk broadcaster time forward until the key is disclosable.
        let t_disclose = disclosure_time + interval;
        let (idx, key) = b.disclosable(t_disclose).unwrap();
        // Keys for earlier intervals may come first; disclose all up to i.
        let mut released = Vec::new();
        for j in 1..=idx {
            let (_, kj) = b.disclosable(j * interval + delay * interval).unwrap();
            released.extend(rx.on_disclosure(j, kj));
        }
        released.extend(rx.on_disclosure(idx, key));
        assert!(released.contains(&msg), "honest message must release");
    }
}

#[test]
fn tesla_tampered_tags_never_release() {
    let mut r = rng_for(12);
    for _ in 0..CASES_SLOW {
        let seed = r.next_u64_raw();
        let msg = arb_bytes(&mut r, 1, 32);
        let flip = r.next_index(8);
        let b = TeslaBroadcaster::new(&wh(&seed.to_le_bytes()), 16, 0, 100, 2);
        let mut rx = TeslaReceiver::new(b.anchor(), 0, 100, 2, b.max_interval());
        let (i, mut tag) = b.authenticate(150, &msg);
        tag.0[flip] ^= 0x01;
        let _ = rx.on_message(160, i, &msg, tag);
        let (idx, _key) = b.disclosable((i + 3) * 100).unwrap();
        assert!(idx >= i);
        let mut released = Vec::new();
        for j in 1..=idx {
            let (_, kj) = b.disclosable(j * 100 + 200).unwrap();
            released.extend(rx.on_disclosure(j, kj));
        }
        assert!(released.is_empty(), "tampered tag must never release");
    }
}

#[test]
fn optimal_bound_matches_the_chain_formula() {
    let mut r = rng_for(13);
    for _ in 0..CASES_SLOW {
        // A chain S_{L-1} … S_0 — G: the relay adjacent to the gateway
        // forwards everyone's packets. Per round it transmits L·T and
        // receives (L−1)·T, so the bound is E / (T·(L·e_t + (L−1)·e_r)).
        let len = 1 + r.next_index(7);
        let battery = r.range_f64(0.1, 4.0);
        let t_rate = r.range_f64(1.0, 4.0);
        let e_t = 1e-3;
        let e_r = 1e-3;
        let sensors: Vec<Point> = (0..len)
            .map(|i| Point::new((i + 1) as f64 * 10.0, 0.0))
            .collect();
        let topo = Topology::new(
            sensors,
            vec![Point::new(0.0, 0.0)],
            Rect::field(200.0, 10.0),
            10.0,
        );
        let bound = optimal_lifetime_rounds(&topo, battery, e_t, e_r, t_rate);
        let l = len as f64;
        let expected = battery / (t_rate * (l * e_t + (l - 1.0) * e_r));
        assert!(
            (bound - expected).abs() < expected * 1e-4,
            "chain L={len}: bound {bound}, formula {expected}"
        );
    }
}

#[test]
fn movement_schedules_always_occupy_distinct_valid_places() {
    let mut r = rng_for(14);
    let mut tried = 0usize;
    while tried < CASES_SLOW {
        let n_places = 2 + r.next_index(8);
        let m = 1 + r.next_index(4);
        let seed = r.next_u64_raw();
        let rounds = 1 + r.next_index(14);
        let policy = match r.next_index(3) {
            0 => MovementPolicy::Static,
            1 => MovementPolicy::RoundRobin,
            _ => MovementPolicy::RandomWalk { move_prob: 0.5 },
        };
        if m > n_places {
            continue;
        }
        tried += 1;
        let places = FeasiblePlaces::grid(Rect::field(100.0, 100.0), n_places, 1);
        let initial: Vec<usize> = (0..m).collect();
        let mut s = MovementSchedule::new(policy, &places, initial, seed);
        let mut prev: Option<Vec<usize>> = None;
        for _ in 0..rounds {
            let round = s.next_round();
            assert_eq!(round.occupied.len(), m);
            let set: std::collections::HashSet<_> = round.occupied.iter().collect();
            assert_eq!(set.len(), m, "places must stay distinct");
            assert!(round.occupied.iter().all(|&p| p < n_places));
            // `moved` is exactly the diff against the previous round.
            if let Some(prev) = &prev {
                let diff: Vec<usize> = (0..m).filter(|&g| prev[g] != round.occupied[g]).collect();
                assert_eq!(&round.moved, &diff);
            }
            prev = Some(round.occupied.clone());
        }
    }
}

#[test]
fn gaf_every_node_can_hear_an_awake_leader() {
    let mut r = rng_for(15);
    for _ in 0..CASES_SLOW {
        let points = arb_points(&mut r, 1, 60);
        let range = r.range_f64(10.0, 40.0);
        let energies = vec![1.0; points.len()];
        let awake = gaf_sleep_schedule(&points, &energies, range);
        assert!(awake.iter().any(|&a| a), "someone must stay awake");
        // GAF's cell geometry: a node's own cell leader is within the
        // cell diagonal = r·√(2/5) < r.
        for (i, p) in points.iter().enumerate() {
            let covered = points
                .iter()
                .zip(&awake)
                .any(|(q, &up)| up && p.within(*q, range));
            assert!(covered, "node {i} cannot hear any awake node");
        }
    }
}
