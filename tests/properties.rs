//! Property-based tests (proptest) on cross-crate invariants: wire
//! formats never panic and round-trip, crypto seals are tamper-evident
//! for arbitrary payloads, topology/flow invariants hold on random
//! geometry.

use proptest::prelude::*;
use wmsn::crypto::{open, seal, Key128};
use wmsn::routing::optimal_lifetime_rounds;
use wmsn::routing::table::{Route, RoutingTable};
use wmsn::routing::wire::{RoutingMsg, NO_PLACE};
use wmsn::secure::wire::SecMsg;
use wmsn::topology::connectivity::{is_connected, HopField};
use wmsn::topology::control::critical_range;
use wmsn::topology::Topology;
use wmsn::util::geom::unit_disk_adjacency;
use wmsn::util::{NodeId, Point, Rect};

fn arb_point() -> impl Strategy<Value = Point> {
    (0.0..100.0f64, 0.0..100.0f64).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn routing_wire_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = RoutingMsg::decode(&bytes);
        let _ = SecMsg::decode(&bytes);
    }

    #[test]
    fn routing_wire_roundtrips(
        origin in 0u32..1000,
        req_id in any::<u64>(),
        path in proptest::collection::vec(0u32..1000, 0..20),
        wanted in proptest::collection::vec(any::<u16>(), 0..8),
    ) {
        let msg = RoutingMsg::Rreq {
            origin: NodeId(origin),
            req_id,
            path: path.into_iter().map(NodeId).collect(),
            wanted,
        };
        prop_assert_eq!(RoutingMsg::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn data_wire_roundtrips(
        origin in any::<u32>(),
        msg_id in any::<u64>(),
        sent_at in any::<u64>(),
        gateway in any::<u32>(),
        place in any::<u16>(),
        hops in any::<u32>(),
        payload_len in 0u16..512,
    ) {
        let msg = RoutingMsg::Data {
            origin: NodeId(origin),
            msg_id,
            sent_at,
            gateway: NodeId(gateway),
            place,
            hops,
            payload_len,
        };
        prop_assert_eq!(RoutingMsg::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn sealed_messages_roundtrip_and_reject_any_single_bitflip(
        key in any::<[u8; 16]>(),
        counter in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        flip_byte in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        let key = Key128(key);
        let sealed = seal(&key, counter, &payload);
        prop_assert_eq!(open(&key, &sealed).unwrap(), payload.clone());
        // Flip one bit somewhere in the ciphertext or tag.
        let mut tampered = sealed.clone();
        let ct_len = tampered.ciphertext.len();
        if ct_len + 8 > 0 {
            let pos = flip_byte % (ct_len + 8);
            if pos < ct_len {
                tampered.ciphertext[pos] ^= 1 << flip_bit;
            } else {
                tampered.tag.0[pos - ct_len] ^= 1 << flip_bit;
            }
            prop_assert!(open(&key, &tampered).is_none(), "bitflip must be detected");
        }
    }

    #[test]
    fn sealed_messages_bind_the_counter(
        key in any::<[u8; 16]>(),
        counter in 0u64..u64::MAX,
        payload in proptest::collection::vec(any::<u8>(), 1..32),
    ) {
        let key = Key128(key);
        let mut sealed = seal(&key, counter, &payload);
        sealed.counter = sealed.counter.wrapping_add(1);
        prop_assert!(open(&key, &sealed).is_none());
    }

    #[test]
    fn hop_field_triangle_inequality(points in proptest::collection::vec(arb_point(), 2..40)) {
        // Every sensor's hop count is at most its neighbour's + 1.
        let gateways = vec![points[0]];
        let sensors = points[1..].to_vec();
        let n = sensors.len();
        let topo = Topology::new(sensors, gateways, Rect::field(100.0, 100.0), 20.0);
        let adj = topo.adjacency();
        let hf = HopField::compute(&topo);
        #[allow(clippy::needless_range_loop)]
        for v in 0..n {
            for &u in &adj[v] {
                if hf.hops[u] != u32::MAX && hf.hops[v] != u32::MAX {
                    prop_assert!(hf.hops[v] <= hf.hops[u] + 1);
                }
            }
            // Covered ⇔ some gateway is graph-reachable.
            if hf.hops[v] != u32::MAX {
                prop_assert!(hf.nearest[v] == 0);
            }
        }
    }

    #[test]
    fn critical_range_is_tight(points in proptest::collection::vec(arb_point(), 2..30)) {
        if let Some(r) = critical_range(&points) {
            prop_assert!(is_connected(&unit_disk_adjacency(&points, r * (1.0 + 1e-12))));
            // Lower tightness: shrinking below r must disconnect — unless
            // another pairwise distance ties with r within the shrink
            // factor, in which case that edge legitimately survives.
            let shrunk = r * 0.999_999;
            let tie = (0..points.len()).any(|i| {
                (i + 1..points.len()).any(|j| {
                    let d = points[i].dist(points[j]);
                    d < r && d >= shrunk
                })
            });
            if r > 1e-6 && !tie {
                prop_assert!(!is_connected(&unit_disk_adjacency(&points, shrunk)));
            }
        }
    }

    #[test]
    fn optimal_bound_is_monotone_in_battery(
        points in proptest::collection::vec(arb_point(), 3..25),
        battery in 0.01f64..2.0,
    ) {
        let topo = Topology::new(
            points[1..].to_vec(),
            vec![points[0]],
            Rect::field(100.0, 100.0),
            30.0,
        );
        let small = optimal_lifetime_rounds(&topo, battery, 1e-3, 1e-3, 1.0);
        let large = optimal_lifetime_rounds(&topo, battery * 2.0, 1e-3, 1e-3, 1.0);
        // Doubling every battery doubles the fractional lifetime.
        prop_assert!((large - 2.0 * small).abs() <= 0.01 * large.max(1.0));
    }

    #[test]
    fn routing_table_best_is_min_hops_of_inserted(
        entries in proptest::collection::vec((0u32..50, 0u16..8, 0usize..6), 1..20)
    ) {
        let mut table = RoutingTable::new();
        for &(gw, place, relays) in &entries {
            table.upsert(
                Route {
                    gateway: NodeId(gw),
                    place,
                    relays: (0..relays).map(|i| NodeId(1000 + i as u32)).collect(),
                    energy_pm: 1000,
                },
                false,
            );
        }
        let best = table.best().unwrap();
        for r in table.iter() {
            prop_assert!(best.hops() <= r.hops());
        }
        // Keyed dedup: at most one entry per place.
        let mut places: Vec<u16> = table.iter().map(|r| r.place).collect();
        places.sort_unstable();
        let len_before = places.len();
        places.dedup();
        prop_assert_eq!(places.len(), len_before);
    }

    #[test]
    fn spr_route_entries_are_well_formed(
        gw in 0u32..100,
        relays in proptest::collection::vec(100u32..200, 0..10),
    ) {
        let route = Route {
            gateway: NodeId(gw),
            place: NO_PLACE,
            relays: relays.iter().copied().map(NodeId).collect(),
            energy_pm: 1000,
        };
        prop_assert_eq!(route.hops() as usize, relays.len() + 1);
        if relays.is_empty() {
            prop_assert_eq!(route.next_hop(), NodeId(gw));
        } else {
            prop_assert_eq!(route.next_hop(), NodeId(relays[0]));
        }
    }
}

use wmsn::crypto::hash::hash as wh;
use wmsn::crypto::{TeslaBroadcaster, TeslaReceiver};
use wmsn::topology::control::gaf_sleep_schedule;
use wmsn::topology::places::FeasiblePlaces;
use wmsn::topology::{MovementPolicy, MovementSchedule};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tesla_honest_messages_always_authenticate(
        seed in any::<u64>(),
        interval in 50u64..1000,
        delay in 1u64..4,
        send_offset in 0u64..2000,
        msg in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let b = TeslaBroadcaster::new(&wh(&seed.to_le_bytes()), 32, 0, interval, delay);
        let mut r = TeslaReceiver::new(b.anchor(), 0, interval, delay, b.max_interval());
        let t_send = send_offset;
        let (i, tag) = b.authenticate(t_send, &msg);
        // Arrive promptly (well before the interval's disclosure time).
        let arrive = t_send + 1;
        let disclosure_time = (i + delay) * interval;
        prop_assume!(arrive < disclosure_time);
        prop_assert_eq!(
            r.on_message(arrive, i, &msg, tag),
            wmsn::crypto::tesla::ReceiveOutcome::Buffered
        );
        // Walk broadcaster time forward until the key is disclosable.
        let t_disclose = disclosure_time + interval;
        let (idx, key) = b.disclosable(t_disclose).unwrap();
        // Keys for earlier intervals may come first; disclose all up to i.
        let mut released = Vec::new();
        for j in 1..=idx {
            let (_, kj) = b.disclosable(j * interval + delay * interval).unwrap();
            released.extend(r.on_disclosure(j, kj));
        }
        released.extend(r.on_disclosure(idx, key));
        prop_assert!(released.contains(&msg), "honest message must release");
    }

    #[test]
    fn tesla_tampered_tags_never_release(
        seed in any::<u64>(),
        msg in proptest::collection::vec(any::<u8>(), 1..32),
        flip in 0usize..8,
    ) {
        let b = TeslaBroadcaster::new(&wh(&seed.to_le_bytes()), 16, 0, 100, 2);
        let mut r = TeslaReceiver::new(b.anchor(), 0, 100, 2, b.max_interval());
        let (i, mut tag) = b.authenticate(150, &msg);
        tag.0[flip] ^= 0x01;
        let _ = r.on_message(160, i, &msg, tag);
        let (idx, _key) = b.disclosable((i + 3) * 100).unwrap();
        prop_assert!(idx >= i);
        let mut released = Vec::new();
        for j in 1..=idx {
            let (_, kj) = b.disclosable(j * 100 + 200).unwrap();
            released.extend(r.on_disclosure(j, kj));
        }
        prop_assert!(released.is_empty(), "tampered tag must never release");
    }

    #[test]
    fn optimal_bound_matches_the_chain_formula(
        len in 1usize..8,
        battery in 0.1f64..4.0,
        t_rate in 1.0f64..4.0,
    ) {
        // A chain S_{L-1} … S_0 — G: the relay adjacent to the gateway
        // forwards everyone's packets. Per round it transmits L·T and
        // receives (L−1)·T, so the bound is E / (T·(L·e_t + (L−1)·e_r)).
        let e_t = 1e-3;
        let e_r = 1e-3;
        let sensors: Vec<Point> =
            (0..len).map(|i| Point::new((i + 1) as f64 * 10.0, 0.0)).collect();
        let topo = Topology::new(
            sensors,
            vec![Point::new(0.0, 0.0)],
            Rect::field(200.0, 10.0),
            10.0,
        );
        let bound = optimal_lifetime_rounds(&topo, battery, e_t, e_r, t_rate);
        let l = len as f64;
        let expected = battery / (t_rate * (l * e_t + (l - 1.0) * e_r));
        prop_assert!(
            (bound - expected).abs() < expected * 1e-4,
            "chain L={len}: bound {bound}, formula {expected}"
        );
    }

    #[test]
    fn movement_schedules_always_occupy_distinct_valid_places(
        n_places in 2usize..10,
        m in 1usize..5,
        seed in any::<u64>(),
        rounds in 1usize..15,
        policy_pick in 0u8..3,
    ) {
        prop_assume!(m <= n_places);
        let places = FeasiblePlaces::grid(Rect::field(100.0, 100.0), n_places, 1);
        let policy = match policy_pick {
            0 => MovementPolicy::Static,
            1 => MovementPolicy::RoundRobin,
            _ => MovementPolicy::RandomWalk { move_prob: 0.5 },
        };
        let initial: Vec<usize> = (0..m).collect();
        let mut s = MovementSchedule::new(policy, &places, initial, seed);
        let mut prev: Option<Vec<usize>> = None;
        for _ in 0..rounds {
            let r = s.next_round();
            prop_assert_eq!(r.occupied.len(), m);
            let set: std::collections::HashSet<_> = r.occupied.iter().collect();
            prop_assert_eq!(set.len(), m, "places must stay distinct");
            prop_assert!(r.occupied.iter().all(|&p| p < n_places));
            // `moved` is exactly the diff against the previous round.
            if let Some(prev) = &prev {
                let diff: Vec<usize> = (0..m).filter(|&g| prev[g] != r.occupied[g]).collect();
                prop_assert_eq!(&r.moved, &diff);
            }
            prev = Some(r.occupied.clone());
        }
    }

    #[test]
    fn gaf_every_node_can_hear_an_awake_leader(
        points in proptest::collection::vec(arb_point(), 1..60),
        range in 10.0f64..40.0,
    ) {
        let energies = vec![1.0; points.len()];
        let awake = gaf_sleep_schedule(&points, &energies, range);
        prop_assert!(awake.iter().any(|&a| a), "someone must stay awake");
        // GAF's cell geometry: a node's own cell leader is within the
        // cell diagonal = r·√(2/5) < r.
        for (i, p) in points.iter().enumerate() {
            let covered = points
                .iter()
                .zip(&awake)
                .any(|(q, &up)| up && p.within(*q, range));
            prop_assert!(covered, "node {i} cannot hear any awake node");
        }
    }
}
