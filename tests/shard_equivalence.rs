//! Shard equivalence: the parallel kernel is observationally identical
//! to the single-threaded reference.
//!
//! The sharded kernel (`wmsn::sim::ShardedWorld`) cuts the world into
//! spatial strips and runs one event loop per strip under conservative
//! windowed synchronisation. Its correctness argument (causal event
//! keys + lookahead ≥ the minimum propagation delay) promises *bit*
//! equality of every routing-visible outcome, not statistical
//! similarity — so these tests compare bit patterns:
//!
//! * E1-style SPR rounds across 4 seeds × {2, 4, 8} shards: the full
//!   metric fingerprint (ratios, counters, per-node energy, and the
//!   per-delivery ledger) must equal the reference run's exactly;
//! * the merged per-shard trace must be byte-identical to the
//!   reference `BufferSink` JSONL;
//! * an E6-style attack rig (sinkhole / blackhole / replayer on the
//!   MLR line world) must fingerprint identically — adversarial
//!   behaviours ride the same envelope. The wormhole arms are excluded
//!   by design: the endpoint pair shares state through an `Rc`, which
//!   the shard cells' disjointness rule forbids;
//! * the large-scale E9 round (`e9_large`) must report identical
//!   routing outcomes for every shard count;
//! * the unicast fast path must be observationally inert (same
//!   fingerprint with the optimisation forced off).
//!
//! Thread count defaults to 2 (the CI setting) and can be raised with
//! `SHARD_TEST_THREADS=n` to exercise real parallelism locally.

use wmsn::attacks::sinkhole::TargetProtocol;
use wmsn::attacks::{Replayer, SelectiveForwarder, Sinkhole};
use wmsn::core::builder::{build_spr, SprScenario};
use wmsn::core::drivers::SprDriver;
use wmsn::core::experiments::e9_large;
use wmsn::core::params::{FieldParams, GatewayParams, ParallelConfig, TrafficParams};
use wmsn::routing::mlr::{MlrConfig, MlrGateway, MlrSensor};
use wmsn::sim::{Behavior, NodeConfig, PacketKind, ShardedWorld, SimHost, World, WorldConfig};
use wmsn::topology::strip_shards;
use wmsn::trace::BufferSink;
use wmsn::util::{NodeId, Point};

fn test_threads() -> usize {
    std::env::var("SHARD_TEST_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2)
}

/// FNV-1a 64 over a stream of words — used to fold the per-delivery
/// ledger into one comparable value.
fn fnv_words(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Full observational fingerprint of a finished run: aggregate metrics
/// bit-cast, per-node tx/energy vectors, and the delivery ledger in
/// recorded order.
fn fingerprint<H: SimHost>(world: &mut H, sensors: &[NodeId]) -> Vec<u64> {
    let m = world.metrics();
    let mut fp = vec![
        m.delivery_ratio().to_bits(),
        m.mean_hops().to_bits(),
        m.mean_latency_us().to_bits(),
        m.originated,
        m.unique_deliveries(),
        m.sent_data,
        m.sent_control,
        m.sent_bytes_data,
        m.sent_bytes_control,
        m.received,
        m.lost,
        m.collided,
        m.csma_deferrals,
        m.total_energy(sensors).to_bits(),
        m.energy_d2(sensors).to_bits(),
    ];
    fp.push(fnv_words(m.node_tx.iter().copied()));
    fp.push(fnv_words(m.energy_consumed.iter().map(|e| e.to_bits())));
    fp.push(fnv_words(m.deliveries.iter().flat_map(|d| {
        [
            d.source.0 as u64,
            d.destination.0 as u64,
            d.msg_id,
            d.sent_at,
            d.delivered_at,
            d.hops as u64,
        ]
    })));
    fp
}

// ------------------------------------------------------------ E1 arm --

/// E1-style field: 40 sensors, 3 gateways. Batteries are raised to
/// 10 J — finite, so the energy ledger is exercised, but comfortably
/// death-free (the sharded kernel's envelope requires that no node dies
/// mid-run).
fn e1_field(seed: u64) -> (FieldParams, GatewayParams) {
    let field = FieldParams {
        battery_j: 10.0,
        ..FieldParams::default_uniform(40, seed)
    };
    (field, GatewayParams::default_three())
}

fn shard_scenario(scen: SprScenario, shards: usize, threads: usize) -> SprScenario<ShardedWorld> {
    let mut positions = scen.sensor_positions.clone();
    positions.extend_from_slice(&scen.gateway_positions);
    let assignment = strip_shards(&positions, scen.range_m, shards);
    scen.map_world(|w| ShardedWorld::from_world(w, assignment, threads))
}

#[test]
fn e1_rounds_match_reference_bit_for_bit_across_seeds_and_shard_counts() {
    let threads = test_threads();
    for seed in [11, 23, 37, 53] {
        let (field, gw) = e1_field(seed);
        let mut reference = SprDriver::new(build_spr(&field, &gw, TrafficParams::default()));
        reference.run_round();
        let sensors = reference.scenario.sensors.clone();
        let want = fingerprint(&mut reference.scenario.world, &sensors);
        for shards in [2, 4, 8] {
            let scen = build_spr(&field, &gw, TrafficParams::default());
            let mut d = SprDriver::new(shard_scenario(scen, shards, threads));
            d.run_round();
            let got = fingerprint(&mut d.scenario.world, &sensors);
            assert_eq!(
                got, want,
                "seed {seed}, {shards} shards: fingerprint diverged from reference"
            );
        }
    }
}

#[test]
fn merged_shard_trace_is_byte_identical_to_the_reference_trace() {
    let (field, gw) = e1_field(11);
    let mut reference = SprDriver::new(build_spr(&field, &gw, TrafficParams::default()));
    reference
        .scenario
        .world
        .set_trace_sink(Box::new(BufferSink::new()));
    reference.run_round();
    let want = reference
        .scenario
        .world
        .take_trace_sink()
        .expect("sink installed")
        .as_any()
        .downcast_ref::<BufferSink>()
        .expect("BufferSink")
        .out
        .clone();

    let scen = build_spr(&field, &gw, TrafficParams::default());
    let mut d = SprDriver::new(shard_scenario(scen, 4, test_threads()));
    d.scenario.world.install_trace_sinks();
    d.run_round();
    let got = d
        .scenario
        .world
        .take_merged_trace()
        .expect("sinks installed");
    assert!(!want.is_empty(), "reference trace must not be empty");
    assert_eq!(got, want, "merged shard trace != reference trace bytes");
}

// ------------------------------------------------------------ E6 arm --

/// The E6 rig minus the wormhole arms: 10 MLR sensors on a line, a
/// gateway at the end, and one adversary. Returns the un-started world
/// plus everything needed to shard and drive it.
fn attack_line_world(attack: &str) -> (World, Vec<NodeId>, NodeId, Vec<Point>) {
    let n = 10usize;
    let mut cfg = WorldConfig::ideal(7);
    cfg.sensor_phy.range_m = 10.0;
    let mut world = World::new(cfg);
    let mut positions = Vec::new();
    let mut sensors = Vec::new();
    for i in 0..n {
        let pos = Point::new(i as f64 * 10.0, 0.0);
        let honest: Box<dyn Behavior> = MlrSensor::boxed(MlrConfig::default());
        let behavior = if attack == "blackhole" && i == 1 {
            SelectiveForwarder::boxed(honest, 1.0)
        } else {
            honest
        };
        positions.push(pos);
        sensors.push(world.add_node(NodeConfig::sensor(pos, 100.0), behavior));
    }
    let gw_pos = Point::new(n as f64 * 10.0, 0.0);
    let gw = world.add_node(NodeConfig::gateway(gw_pos), MlrGateway::boxed(0));
    positions.push(gw_pos);
    match attack {
        "sinkhole" => {
            let pos = Point::new(0.0, 8.0);
            let a = world.add_node(
                NodeConfig::sensor(pos, 100.0),
                Sinkhole::boxed(TargetProtocol::Mlr, gw, 0),
            );
            positions.push(pos);
            world.set_promiscuous(a, true);
        }
        "replay" => {
            let pos = Point::new(15.0, 6.0);
            let a = world.add_node(
                NodeConfig::sensor(pos, 100.0),
                Replayer::boxed(400_000, Some(PacketKind::Data), 200),
            );
            positions.push(pos);
            world.set_promiscuous(a, true);
        }
        _ => {}
    }
    (world, sensors, gw, positions)
}

/// Drive the attack world one announce + traffic cycle (the E6
/// sequence) on either kernel.
fn drive_attack<H: SimHost>(world: &mut H, sensors: &[NodeId], gw: NodeId) -> Vec<u64> {
    world.start();
    world.with_behavior::<MlrGateway, _>(gw, |g, ctx| g.set_place(ctx, 0, 0));
    world.run_for(500_000);
    for &s in sensors {
        world.with_behavior::<MlrSensor, _>(s, |b, ctx| b.originate(ctx));
        world.run_for(10_000);
    }
    world.run_for(500_000);
    fingerprint(world, sensors)
}

#[test]
fn e6_attack_worlds_match_reference_bit_for_bit() {
    let threads = test_threads();
    for attack in ["none", "sinkhole", "blackhole", "replay"] {
        let (mut reference, sensors, gw, _) = attack_line_world(attack);
        let want = drive_attack(&mut reference, &sensors, gw);
        for shards in [2, 4] {
            let (world, sensors, gw, positions) = attack_line_world(attack);
            let assignment = strip_shards(&positions, 10.0, shards);
            let mut sharded = ShardedWorld::from_world(world, assignment, threads);
            let got = drive_attack(&mut sharded, &sensors, gw);
            assert_eq!(
                got, want,
                "attack {attack:?}, {shards} shards: fingerprint diverged"
            );
        }
    }
}

// ------------------------------------------------------------ E9 arm --

#[test]
fn e9_large_round_matches_reference_across_shard_counts() {
    let reference = e9_large(1200, 17, 12, true, None);
    assert!(reference.originated > 0, "workload must originate traffic");
    assert!(
        reference.unique_deliveries > 0,
        "workload must deliver traffic"
    );
    for shards in [2, 4, 8] {
        let got = e9_large(
            1200,
            17,
            12,
            true,
            Some(ParallelConfig {
                shards,
                threads: test_threads(),
            }),
        );
        assert_eq!(got.originated, reference.originated, "{shards} shards");
        assert_eq!(
            got.unique_deliveries, reference.unique_deliveries,
            "{shards} shards"
        );
        assert_eq!(
            got.delivery_ratio.to_bits(),
            reference.delivery_ratio.to_bits(),
            "{shards} shards"
        );
        assert_eq!(
            got.mean_latency_us.to_bits(),
            reference.mean_latency_us.to_bits(),
            "{shards} shards"
        );
    }
}

// ------------------------------------------------------ fast-path arm --

#[test]
fn unicast_fast_path_is_observationally_inert() {
    let (field, gw) = e1_field(11);
    let mut on = SprDriver::new(build_spr(&field, &gw, TrafficParams::default()));
    on.run_round();
    let sensors = on.scenario.sensors.clone();
    let want = fingerprint(&mut on.scenario.world, &sensors);

    let mut scen = build_spr(&field, &gw, TrafficParams::default());
    scen.world.set_unicast_fast_path(false);
    let mut off = SprDriver::new(scen);
    off.run_round();
    let got = fingerprint(&mut off.scenario.world, &sensors);
    assert_eq!(got, want, "fast path must not change observable outcomes");
}
