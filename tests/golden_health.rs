//! Detector-determinism golden suite for the health plane.
//!
//! Same discipline as `golden_trace.rs`: the monitor's alert stream is
//! part of the deterministic output surface. Two runs of the same
//! seeded scenario must produce **byte-identical** alert JSONL, the
//! fingerprint classes must be stable across seeds, and healthy runs
//! must raise zero alerts (the false-positive property the E18
//! baseline row pins).

use wmsn::core::builder::build_spr;
use wmsn::core::drivers::SprDriver;
use wmsn::core::experiments::{run_attack_cell_monitored, Attack};
use wmsn::core::params::{FieldParams, GatewayParams, TrafficParams};
use wmsn::health::{AlertKind, HealthConfig, HealthMonitor};
use wmsn::trace::TraceEvent;
use wmsn_attacks::sinkhole::TargetProtocol;

fn attack_alert_jsonl(attack: Attack, seed: u64) -> String {
    let (_, monitor) =
        run_attack_cell_monitored(TargetProtocol::Mlr, attack, seed, HealthConfig::default());
    monitor.alerts_jsonl()
}

#[test]
fn e18_alert_stream_is_byte_identical_across_runs() {
    for attack in [Attack::Replay, Attack::Sinkhole, Attack::HelloFlood] {
        let a = attack_alert_jsonl(attack, 1);
        let b = attack_alert_jsonl(attack, 1);
        assert!(!a.is_empty(), "{attack:?} must raise alerts");
        assert_eq!(a, b, "{attack:?}: alert stream must be byte-identical");
    }
}

#[test]
fn fingerprint_classes_are_stable_across_seeds() {
    // The *set of classes* raised for an attack is the fingerprint; it
    // must not depend on the seed even where exact counts may.
    for attack in [Attack::Blackhole, Attack::Replay, Attack::FalseAnnounce] {
        let classes = |seed: u64| -> std::collections::BTreeSet<AlertKind> {
            let (_, m) = run_attack_cell_monitored(
                TargetProtocol::Mlr,
                attack,
                seed,
                HealthConfig::default(),
            );
            m.alerts().iter().map(|a| a.kind).collect()
        };
        let first = classes(1);
        assert!(!first.is_empty());
        for seed in [2, 3] {
            assert_eq!(classes(seed), first, "{attack:?} seed {seed}");
        }
    }
}

#[test]
fn healthy_runs_raise_zero_alerts() {
    // Property: across seeds and two healthy scenario shapes, the bank
    // stays silent — no detector threshold is crossed by normal
    // operation (discovery floods, retries, idle gaps, rotation).
    for seed in [1, 7, 23] {
        let (_, monitor) = run_attack_cell_monitored(
            TargetProtocol::Mlr,
            Attack::None,
            seed,
            HealthConfig::default(),
        );
        assert_eq!(
            monitor.alerts().len(),
            0,
            "seed {seed}: attack-cell baseline raised {}",
            monitor.alerts_jsonl()
        );
        // A bigger rotating-gateway SPR field, one full round.
        let field = FieldParams::default_uniform(40, seed);
        let scen = build_spr(
            &field,
            &GatewayParams::default_three(),
            TrafficParams::default(),
        );
        let mut d = SprDriver::new(scen);
        d.scenario
            .world
            .set_trace_sink(HealthMonitor::boxed(HealthConfig::default()));
        d.run_round();
        let sink = d.scenario.world.take_trace_sink().expect("sink installed");
        let monitor = sink
            .as_any()
            .downcast_ref::<HealthMonitor>()
            .expect("HealthMonitor");
        assert_eq!(
            monitor.alerts().len(),
            0,
            "seed {seed}: healthy SPR round raised {}",
            monitor.alerts_jsonl()
        );
        assert!(monitor.net().delivers > 0, "the round must have traffic");
    }
}

#[test]
fn offline_replay_reproduces_the_online_fingerprint() {
    // Feeding the monitor decoded JSONL must give the same alerts as
    // watching live — the `wmsn-trace health` CLI contract.
    let (_, live) = run_attack_cell_monitored(
        TargetProtocol::Mlr,
        Attack::Replay,
        1,
        HealthConfig::default(),
    );
    let field = FieldParams::default_uniform(30, 5);
    let scen = build_spr(
        &field,
        &GatewayParams::default_three(),
        TrafficParams::default(),
    );
    let mut d = SprDriver::new(scen);
    d.scenario
        .world
        .set_trace_sink(Box::new(wmsn::trace::BufferSink::new()));
    d.run_round();
    let sink = d.scenario.world.take_trace_sink().expect("sink installed");
    let jsonl = &sink
        .as_any()
        .downcast_ref::<wmsn::trace::BufferSink>()
        .expect("BufferSink")
        .out;
    let mut offline = HealthMonitor::new();
    for line in jsonl.lines() {
        let ev = TraceEvent::from_json_line(line).expect("recorded lines decode");
        offline.observe(&ev);
    }
    offline.finalize();
    assert_eq!(offline.alerts_jsonl(), "", "healthy SPR replay stays clean");
    assert!(offline.net().events > 0);
    assert!(!live.alerts_jsonl().is_empty());
}
