//! Golden determinism: simulation metrics are bit-identical run to run
//! and release to release.
//!
//! Determinism is a hard invariant of the simulator (same seed → same
//! metrics, bit for bit), and the hot-path work (allocation-free
//! fan-out, incremental adjacency, dense medium state) must not shift a
//! single reception. This test runs the E1, E3 and E6 kernels for four
//! fixed seeds and compares every reported metric against committed
//! golden values **as raw `f64` bit patterns** — an epsilon-free
//! comparison, so even a last-ulp drift fails.
//!
//! To regenerate after an *intentional* semantic change:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --release --test golden_determinism -- --nocapture
//! ```
//!
//! and paste the printed table over `GOLDEN` below. Never regenerate to
//! paper over an unexplained diff.

use wmsn::core::builder::build_spr;
use wmsn::core::drivers::SprDriver;
use wmsn::core::experiments::{e3_lifetime, e6_attacks};
use wmsn::core::params::{FieldParams, GatewayParams, TrafficParams};

const SEEDS: [u64; 4] = [11, 23, 37, 53];

/// E1 kernel: one SPR round over a 40-sensor / 3-gateway field; the
/// densest coverage of the transmit/deliver/CSMA/energy paths.
fn e1_kernel(seed: u64) -> Vec<(&'static str, f64)> {
    let field = FieldParams::default_uniform(40, seed);
    let scen = build_spr(
        &field,
        &GatewayParams::default_three(),
        TrafficParams::default(),
    );
    let mut d = SprDriver::new(scen);
    let report = d.run_round();
    let sensors = d.scenario.sensors.clone();
    let m = d.scenario.world.metrics();
    vec![
        ("e1.delivery_ratio", report.delivery_ratio()),
        ("e1.mean_hops", m.mean_hops()),
        ("e1.mean_latency_us", m.mean_latency_us()),
        ("e1.sent_data", m.sent_data as f64),
        ("e1.sent_control", m.sent_control as f64),
        ("e1.received", m.received as f64),
        ("e1.collided", m.collided as f64),
        ("e1.csma_deferrals", m.csma_deferrals as f64),
        ("e1.total_energy", m.total_energy(&sensors)),
        ("e1.energy_d2", m.energy_d2(&sensors)),
    ]
}

/// E3 kernel: lifetime-to-first-death for SPR (m=1, m=3) and MLR on a
/// 20-sensor field — covers node death, battery accounting and the
/// analytic optimum.
fn e3_kernel(seed: u64) -> Vec<(&'static str, f64)> {
    e3_lifetime(&[20], seed)
        .into_iter()
        .map(|r| {
            let name: &'static str =
                Box::leak(format!("e3.{} {}", r.config, r.metric).into_boxed_str());
            (name, r.value)
        })
        .collect()
}

/// E6 kernel: the attack suite (sinkhole/replay/wormhole vs MLR and
/// SecMLR) — covers the security paths and adversarial forwarding.
fn e6_kernel(seed: u64) -> Vec<(&'static str, f64)> {
    e6_attacks(seed)
        .into_iter()
        .map(|r| {
            let name: &'static str =
                Box::leak(format!("e6.{} {}", r.config, r.metric).into_boxed_str());
            (name, r.value)
        })
        .collect()
}

fn fingerprint(seed: u64) -> Vec<(&'static str, f64)> {
    let mut fp = e1_kernel(seed);
    fp.extend(e3_kernel(seed));
    fp.extend(e6_kernel(seed));
    fp
}

/// Committed golden values: `GOLDEN[i]` is the bit pattern of every
/// metric for `SEEDS[i]`, in fingerprint order.
const GOLDEN: [&[u64]; 4] = [
    GOLDEN_SEED_11,
    GOLDEN_SEED_23,
    GOLDEN_SEED_37,
    GOLDEN_SEED_53,
];

include!("golden/values.rs");

#[test]
fn metrics_are_bit_identical_for_fixed_seeds() {
    let regen = std::env::var("GOLDEN_REGEN").is_ok();
    for (i, &seed) in SEEDS.iter().enumerate() {
        let fp = fingerprint(seed);
        if regen {
            println!("const GOLDEN_SEED_{seed}: &[u64] = &[");
            for (name, v) in &fp {
                println!("    {:#018x}, // {} = {}", v.to_bits(), name, v);
            }
            println!("];");
            continue;
        }
        assert_eq!(
            fp.len(),
            GOLDEN[i].len(),
            "seed {seed}: fingerprint has {} metrics, golden has {}",
            fp.len(),
            GOLDEN[i].len()
        );
        for ((name, v), &gold) in fp.iter().zip(GOLDEN[i]) {
            assert_eq!(
                v.to_bits(),
                gold,
                "seed {seed} metric {name}: got {v} ({:#018x}), golden {} ({gold:#018x})",
                v.to_bits(),
                f64::from_bits(gold),
            );
        }
    }
    assert!(
        !regen,
        "GOLDEN_REGEN run: paste the printed tables into tests/golden/values.rs"
    );
}

#[test]
fn fingerprint_is_stable_within_a_process() {
    // Two in-process runs of the cheapest kernel must agree exactly —
    // catches accidental global state before it can confuse the golden
    // comparison above.
    let a = e1_kernel(SEEDS[0]);
    let b = e1_kernel(SEEDS[0]);
    for ((name, x), (_, y)) in a.iter().zip(&b) {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "metric {name} drifted within a process"
        );
    }
}
