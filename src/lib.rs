//! `wmsn` — facade crate for the Wireless Mesh Sensor Network reproduction
//! (Tang, Guo, Li, Wang & Dong, 2007).
//!
//! Re-exports every workspace crate under one roof so examples, integration
//! tests, and downstream users can depend on a single crate:
//!
//! ```
//! use wmsn::prelude::*;
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record.

#![forbid(unsafe_code)]

pub use wmsn_attacks as attacks;
pub use wmsn_core as core;
pub use wmsn_crypto as crypto;
pub use wmsn_health as health;
pub use wmsn_routing as routing;
pub use wmsn_secure as secure;
pub use wmsn_sim as sim;
pub use wmsn_topology as topology;
pub use wmsn_trace as trace;
pub use wmsn_util as util;

/// Common imports for examples and quick experiments.
pub mod prelude {
    pub use wmsn_core::prelude::*;
    pub use wmsn_util::{NodeId, NodeRole, Point, Rect, SplitMix64};
}
