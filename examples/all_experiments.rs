//! Regenerate every experiment table in one go (E1–E12). This is the
//! text-mode equivalent of running all the criterion benches' reporting
//! phases; EXPERIMENTS.md records this output against the paper.
//!
//! ```sh
//! cargo run --release --example all_experiments
//! ```

use wmsn::core::experiments::*;
use wmsn::core::report::print_rows;

fn main() {
    print_rows("E1 — Fig. 2 hop counts (paper vs measured)", &e1_fig2());
    print_rows(
        "E1 — random fields, m = 1 vs 3",
        &e1_random_fields(&[150, 300], 7),
    );
    print_rows("E2 — Table 1 walkthrough (simulated)", &e2_table1());
    print_rows(
        "E3 — lifetime: SPR/MLR vs optimal bound",
        &e3_lifetime(&[40, 80], 31),
    );
    print_rows(
        "E4 — K_max sweep + placement ablation",
        &e4_kmax(&[1, 2, 3, 4, 6, 8, 12, 16], 11),
    );
    print_rows(
        "E5 — incremental tables vs reset ablation",
        &e5_overhead(8, 5),
    );
    print_rows("E6 — attack-resistance matrix", &e6_attacks(1));
    print_rows("E7 — the price of SecMLR", &e7_secmlr_cost(19));
    print_rows("E8 — robustness: LEACH vs WMSN", &e8_robustness(13));
    print_rows(
        "E9 — scalability at constant density (analytic)",
        &e9_scalability(&[50, 100, 200, 400, 800], 17, false),
    );
    print_rows(
        "E9 — scalability (simulated latency/delivery)",
        &e9_scalability(&[50, 100], 17, true),
    );
    print_rows("E10 — hot-spot load balance", &e10_load_balance(3));
    print_rows(
        "E12 — three-tier architecture end-to-end",
        &e12_three_tier(23),
    );
    print_rows(
        "E13 — GAF sleep scheduling (§4.4)",
        &e13_sleep_scheduling(7),
    );
    print_rows(
        "E14 — loss sweep + collision/CSMA ablation",
        &e14_loss_and_collisions(7),
    );
    print_rows(
        "E15 — baseline comparison (§2.2 quantified)",
        &e15_baselines(7),
    );
    print_rows(
        "E16 — energy-aware selection ablation (D²)",
        &e16_energy_aware(31),
    );
    print_rows(
        "E17 — seed-robustness sweep (rayon-parallel)",
        &e17_seed_sweep(&(1..=8).collect::<Vec<u64>>()),
    );
}
