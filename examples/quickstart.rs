//! Quickstart: build a wireless mesh sensor network, run the paper's SPR
//! protocol for a round of traffic, and read the metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use wmsn::core::builder::build_spr;
use wmsn::core::drivers::SprDriver;
use wmsn::core::params::{FieldParams, GatewayParams, TrafficParams};

fn main() {
    // A 100-sensor uniform field, 100 m × 100 m, three gateways placed by
    // k-means over a 3×3 feasible-place grid.
    let mut field = FieldParams::default_uniform(100, 42);
    // Route discovery floods are the expensive phase (one network-wide
    // flood per source); budget enough battery for them.
    field.battery_j = 20.0;
    let gateways = GatewayParams::default_three();
    let scenario = build_spr(&field, &gateways, TrafficParams::default());

    println!(
        "field: {} sensors, {} gateways, range {} m",
        scenario.sensors.len(),
        scenario.gateways.len(),
        scenario.range_m
    );

    // Drive two rounds: every sensor reports once per round. SPR resets
    // routing tables between rounds (§5.2), so round 1 re-discovers.
    let mut driver = SprDriver::new(scenario);
    for _ in 0..2 {
        let round = driver.run_round();
        println!(
            "round {}: {}/{} delivered ({:.0}%), {} control frames, {} data frames",
            round.round,
            round.delivered,
            round.originated,
            round.delivery_ratio() * 100.0,
            round.control_frames,
            round.data_frames,
        );
    }

    let metrics = driver.scenario.world.metrics();
    let sensors = driver.scenario.sensors.clone();
    println!("mean hops      : {:.2}", metrics.mean_hops());
    println!("mean latency   : {:.1} ms", metrics.mean_latency_us() / 1e3);
    println!(
        "sensor energy  : {:.4} J total",
        metrics.total_energy(&sensors)
    );
    println!(
        "energy variance: {:.6} (the paper's D²)",
        metrics.energy_d2(&sensors)
    );

    assert!(
        metrics.delivery_ratio() > 0.95,
        "quickstart should deliver nearly everything"
    );
    println!("ok: delivery ratio {:.3}", metrics.delivery_ratio());
}
