//! Battlefield deployment under attack — the paper's motivating setting
//! for SecMLR (§6: "applications of wireless sensor networks often
//! include sensitive information such as enemy movement on the
//! battlefield").
//!
//! Runs the E6 attack matrix: each network-layer attack from the §2.3
//! taxonomy against both plain MLR and SecMLR, printing the delivery
//! ratios side by side.
//!
//! ```sh
//! cargo run --release --example battlefield_secure
//! ```

use wmsn::attacks::sinkhole::TargetProtocol;
use wmsn::core::experiments::{run_attack_cell, Attack};

fn main() {
    println!("{:<16} {:>14} {:>14}", "attack", "MLR", "SecMLR");
    println!("{}", "-".repeat(46));
    let mut mlr_hurt = 0;
    let mut sec_hurt = 0;
    let baseline_mlr = run_attack_cell(TargetProtocol::Mlr, Attack::None, 1).delivery_ratio;
    let baseline_sec = run_attack_cell(TargetProtocol::SecMlr, Attack::None, 1).delivery_ratio;
    for attack in Attack::all() {
        let mlr = run_attack_cell(TargetProtocol::Mlr, attack, 1);
        let sec = run_attack_cell(TargetProtocol::SecMlr, attack, 1);
        println!(
            "{:<16} {:>13.0}% {:>13.0}%",
            format!("{attack:?}"),
            mlr.delivery_ratio * 100.0,
            sec.delivery_ratio * 100.0
        );
        if mlr.delivery_ratio < baseline_mlr - 0.15 {
            mlr_hurt += 1;
        }
        if sec.delivery_ratio < baseline_sec - 0.15 {
            sec_hurt += 1;
        }
        if attack == Attack::Replay {
            println!(
                "{:<16} {:>13} {:>13}",
                "  (duplicates)", mlr.duplicate_deliveries, sec.duplicate_deliveries
            );
        }
    }
    println!("\nattacks that materially hurt delivery: MLR {mlr_hurt}, SecMLR {sec_hurt}");
    assert!(
        sec_hurt < mlr_hurt,
        "SecMLR must resist attacks that break plain MLR"
    );
    println!("ok: SecMLR resists the routing attacks that degrade plain MLR (§6).");
}
