//! Reproduce the paper's worked examples exactly:
//!
//! * **Fig. 2** — S1..S4 need 2, 7, 6, 9 hops to a single sink but only
//!   1, 1, 1, 2 hops with three gateways.
//! * **Table 1** — node `S_i`'s routing table accumulating across three
//!   rounds of gateway movement ({A,B,C} → {A,D,C} → {E,D,C}), selecting
//!   B (6 hops), then D (5), then D (5).
//!
//! ```sh
//! cargo run --release --example paper_walkthrough
//! ```

use wmsn::core::experiments::{e1_fig2, e2_table1};
use wmsn::core::report::{find_value, print_rows};
use wmsn::topology::paper::{TABLE1_HOPS, TABLE1_SELECTED};
use wmsn::topology::places::FeasiblePlaces;

fn main() {
    let fig2 = e1_fig2();
    print_rows("Fig. 2 — hop counts, single sink vs three gateways", &fig2);
    for k in 1..=4 {
        for cfg in ["fig2a", "fig2b"] {
            let paper = find_value(&fig2, &format!("{cfg} S{k}"), "hops_paper").unwrap();
            let measured = find_value(&fig2, &format!("{cfg} S{k}"), "hops_measured").unwrap();
            assert_eq!(paper, measured, "{cfg} S{k}");
        }
    }
    println!("\nFig. 2 reproduced exactly: (2,7,6,9) -> (1,1,1,2) hops.");

    let table1 = e2_table1();
    print_rows("Table 1 — MLR incremental routing table, 3 rounds", &table1);
    println!("\nPaper's Table 1 says:");
    for round in 1..=3usize {
        let place = TABLE1_SELECTED[round - 1];
        println!(
            "  round {}: select place {} with {} hops",
            round,
            FeasiblePlaces::label(place),
            TABLE1_HOPS[place]
        );
        let sel = find_value(&table1, &format!("round {round}"), "selected_place_id").unwrap();
        let hops = find_value(&table1, &format!("round {round}"), "selected_hops").unwrap();
        assert_eq!(sel as usize, place, "round {round} selection");
        assert_eq!(hops as u32, TABLE1_HOPS[place], "round {round} hops");
    }
    let entries = find_value(&table1, "round 3", "table_entries").unwrap();
    assert_eq!(
        entries, 5.0,
        "after round 3 the table holds all |P| = 5 entries"
    );
    println!("\nTable 1 reproduced exactly, including the 3 → 4 → 5 entry growth.");
}
