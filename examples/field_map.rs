//! Render a WMSN deployment as an SVG map: sensors coloured by their
//! hop count to the nearest gateway, gateways, feasible places, and the
//! discovered routes of a few sample sensors.
//!
//! ```sh
//! cargo run --release --example field_map        # writes wmsn_field.svg
//! ```

use std::fmt::Write as _;
use wmsn::core::builder::build_mlr;
use wmsn::core::drivers::MlrDriver;
use wmsn::core::params::{FieldParams, GatewayParams, TrafficParams};
use wmsn::prelude::*;
use wmsn::routing::mlr::MlrSensor;
use wmsn::topology::connectivity::HopField;
use wmsn::topology::Topology;

const SCALE: f64 = 6.0;
const MARGIN: f64 = 20.0;

fn pt(p: Point) -> (f64, f64) {
    (MARGIN + p.x * SCALE, MARGIN + p.y * SCALE)
}

fn hop_color(h: u32) -> &'static str {
    match h {
        0..=1 => "#2a9d8f",
        2 => "#8ab17d",
        3 => "#e9c46a",
        4 => "#f4a261",
        _ => "#e76f51",
    }
}

fn main() {
    let field = FieldParams {
        battery_j: 10.0,
        ..FieldParams::default_uniform(80, 12)
    };
    let scenario = build_mlr(
        &field,
        &GatewayParams::default_three(),
        TrafficParams::default(),
        0.0,
    );
    let sensor_positions = scenario.sensor_positions.clone();
    let places = scenario.places.clone();
    let occupied: Vec<usize> = scenario.schedule.current().to_vec();
    let gateway_positions: Vec<Point> = occupied.iter().map(|&p| places.position(p)).collect();
    let topo = Topology::new(
        sensor_positions.clone(),
        gateway_positions.clone(),
        field.field,
        field.range_m,
    );
    let hops = HopField::compute(&topo);

    // Run one round so sample sensors hold real discovered routes.
    let sensors = scenario.sensors.clone();
    let mut driver = MlrDriver::new(scenario);
    let report = driver.run_round();
    println!(
        "round 0: {}/{} delivered",
        report.delivered, report.originated
    );

    let w = field.field.width() * SCALE + 2.0 * MARGIN;
    let h = field.field.height() * SCALE + 2.0 * MARGIN;
    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{w:.0}" height="{h:.0}" viewBox="0 0 {w:.0} {h:.0}">"##
    );
    let _ = writeln!(
        svg,
        r##"<rect width="100%" height="100%" fill="#fbf7f0"/>"##
    );
    // Field border.
    let (fx, fy) = pt(field.field.min);
    let _ = writeln!(
        svg,
        r##"<rect x="{fx:.1}" y="{fy:.1}" width="{:.1}" height="{:.1}" fill="none" stroke="#999" stroke-dasharray="4 3"/>"##,
        field.field.width() * SCALE,
        field.field.height() * SCALE
    );
    // Feasible places (small hollow squares; occupied get a ring).
    for (id, &p) in places.places.iter().enumerate() {
        let (x, y) = pt(p);
        let occupied_here = occupied.contains(&id);
        let stroke = if occupied_here { "#264653" } else { "#bbb" };
        let _ = writeln!(
            svg,
            r##"<rect x="{:.1}" y="{:.1}" width="10" height="10" fill="none" stroke="{stroke}" stroke-width="1.5"/>"##,
            x - 5.0,
            y - 5.0
        );
    }
    // Sample routes: the 6 sensors with the longest hop counts.
    let mut by_hops: Vec<usize> = (0..sensor_positions.len()).collect();
    by_hops.sort_by_key(|&i| std::cmp::Reverse(hops.sensor_hops(i)));
    for &i in by_hops.iter().take(6) {
        let sensor_node = sensors[i];
        let Some(b) = driver.scenario.world.behavior_as::<MlrSensor>(sensor_node) else {
            continue;
        };
        let Some(route) = b
            .table
            .best_among_places(&occupied.iter().map(|&p| p as u16).collect::<Vec<_>>())
        else {
            continue;
        };
        // Polyline: sensor → relays → gateway (place position).
        let mut pts = vec![sensor_positions[i]];
        for relay in &route.relays {
            pts.push(sensor_positions[relay.index()]);
        }
        pts.push(places.position(route.place as usize));
        let path: Vec<String> = pts
            .iter()
            .map(|&p| {
                let (x, y) = pt(p);
                format!("{x:.1},{y:.1}")
            })
            .collect();
        let _ = writeln!(
            svg,
            r##"<polyline points="{}" fill="none" stroke="#5c4d7d" stroke-width="1.5" opacity="0.75"/>"##,
            path.join(" ")
        );
    }
    // Sensors coloured by hop count.
    for (i, &p) in sensor_positions.iter().enumerate() {
        let (x, y) = pt(p);
        let _ = writeln!(
            svg,
            r##"<circle cx="{x:.1}" cy="{y:.1}" r="4" fill="{}" stroke="#333" stroke-width="0.5"/>"##,
            hop_color(hops.sensor_hops(i))
        );
    }
    // Gateways.
    for &g in &gateway_positions {
        let (x, y) = pt(g);
        let _ = writeln!(
            svg,
            r##"<path d="M {x:.1} {:.1} L {:.1} {:.1} L {:.1} {:.1} Z" fill="#264653"/>"##,
            y - 9.0,
            x - 8.0,
            y + 7.0,
            x + 8.0,
            y + 7.0
        );
    }
    let _ = writeln!(
        svg,
        r##"<text x="{MARGIN}" y="{:.0}" font-family="monospace" font-size="12" fill="#333">{} sensors · {} gateways · colour = hops to nearest gateway · lines = discovered MLR routes</text>"##,
        h - 6.0,
        sensor_positions.len(),
        gateway_positions.len()
    );
    let _ = writeln!(svg, "</svg>");

    std::fs::write("wmsn_field.svg", &svg).expect("write svg");
    println!("wrote wmsn_field.svg ({} bytes)", svg.len());
    assert!(svg.contains("<circle"));
    assert!(svg.contains("<polyline"), "sample routes must render");
}
