//! Building HVAC monitoring — Sereiko's original WMSN motivation (the
//! paper's reference [14]: "wireless mesh sensor networks enable building
//! owners … to easily monitor HVAC performance"), exercising the full
//! three-layer architecture of Fig. 1 end to end:
//!
//!   sensors (802.15.4) → WMGs → mesh backbone (802.11, WMRs) → base
//!   station → "Internet".
//!
//! A 200 m building wing with 80 temperature sensors, 3 dual-radio WMGs,
//! a 2×2 grid of WMRs, and one base station on the roof. Every reading a
//! WMG absorbs is forwarded across the link-state backbone; we verify the
//! base station sees them all.
//!
//! ```sh
//! cargo run --release --example building_hvac
//! ```

use wmsn::core::builder::{build_three_tier, MlrScenario};
use wmsn::core::drivers::MlrDriver;
use wmsn::core::params::{FieldParams, GatewayParams, TrafficParams};
use wmsn::core::wmg::WmgBehavior;
use wmsn::prelude::*;
use wmsn::routing::mesh::MeshNode;
use wmsn::topology::places::FeasiblePlaces;
use wmsn::topology::{Deployment, MovementPolicy, MovementSchedule};

fn main() {
    let field = FieldParams {
        field: Rect::field(200.0, 200.0),
        range_m: 30.0,
        deployment: Deployment::JitteredGrid { n: 80, jitter: 6.0 },
        battery_j: 10.0,
        ..FieldParams::default_uniform(80, 7)
    };
    let gateways = GatewayParams {
        m: 3,
        place_grid: (3, 3),
        ..GatewayParams::default_three()
    };
    let scen = build_three_tier(
        &field,
        &gateways,
        TrafficParams::default(),
        (2, 2),                   // WMR grid
        Point::new(100.0, 270.0), // base station on the roof
        160.0,                    // backbone radio range
    );
    println!(
        "architecture: {} sensors, {} WMGs, {} WMRs, 1 base station",
        scen.sensors.len(),
        scen.wmgs.len(),
        scen.wmrs.len()
    );

    let base = scen.base;
    let wmgs = scen.wmgs.clone();
    let places = FeasiblePlaces::grid(field.field, 3, 3);
    let initial = scen.initial_places.clone();
    let mut driver = MlrDriver::new(MlrScenario {
        world: scen.world,
        sensors: scen.sensors,
        gateways: wmgs.clone(),
        places: places.clone(),
        schedule: MovementSchedule::new(MovementPolicy::Static, &places, initial, 7),
        traffic: TrafficParams::default(),
        sensor_positions: Vec::new(),
        range_m: field.range_m,
    });

    // Let hellos + LSAs converge on the backbone before sensor traffic.
    driver.scenario.world.run_until(2_000_000);

    for _ in 0..2 {
        let round = driver.run_round();
        println!(
            "round {}: {}/{} sensor readings reached a WMG ({:.0}%)",
            round.round,
            round.delivered,
            round.originated,
            round.delivery_ratio() * 100.0
        );
    }
    driver.scenario.world.run_for(2_000_000);

    let world = &driver.scenario.world;
    let absorbed: u64 = wmgs
        .iter()
        .map(|&g| {
            world
                .behavior_as::<WmgBehavior>(g)
                .unwrap()
                .gateway
                .absorbed
        })
        .sum();
    let uplinked: u64 = wmgs
        .iter()
        .map(|&g| world.behavior_as::<WmgBehavior>(g).unwrap().uplinked)
        .sum();
    let at_base = world.behavior_as::<MeshNode>(base).unwrap().delivered.len() as u64;

    println!("\nWMGs absorbed  : {absorbed} readings");
    println!("uplinked       : {uplinked} onto the 802.11 backbone");
    println!("base station   : {at_base} readings received end-to-end");
    assert_eq!(
        absorbed, uplinked,
        "every absorbed reading must be uplinked"
    );
    assert_eq!(uplinked, at_base, "the backbone must lose nothing");
    assert!(
        absorbed as f64 >= 0.95 * 160.0,
        "coverage too low: {absorbed}"
    );
    println!("ok: Fig. 1's three layers carried every reading to the Internet side.");
}
