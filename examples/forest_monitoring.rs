//! Forest monitoring — the paper's running motivation for load balance
//! (§4.3: "when data transmission from partial monitoring area is too
//! heavy (e.g., a forest fire occurs) … some gateways in that area
//! possibly become over loading").
//!
//! A 300 m × 300 m forest with 150 sensors and two mobile gateways runs
//! MLR. Midway, a "fire" breaks out near gateway 0: the sensors around it
//! start reporting at 6× rate. We run the scenario twice — with plain
//! shortest-path selection (α = 0) and with the §4.3 load-aware selection
//! (α = 4) — and compare how the gateways share the surge.
//!
//! ```sh
//! cargo run --release --example forest_monitoring
//! ```

use wmsn::core::builder::build_mlr;
use wmsn::core::drivers::MlrDriver;
use wmsn::core::params::{FieldParams, GatewayParams, TrafficParams};
use wmsn::prelude::*;
use wmsn::routing::mlr::{MlrGateway, MlrSensor};
use wmsn::topology::{Deployment, MovementPolicy, PlacementAlgorithm};

fn run(alpha: f64) -> (u64, u64, f64) {
    let field = FieldParams {
        field: Rect::field(300.0, 300.0),
        range_m: 45.0,
        deployment: Deployment::Uniform { n: 150 },
        battery_j: 20.0,
        ..FieldParams::default_uniform(150, 2026)
    };
    let gateways = GatewayParams {
        m: 2,
        place_grid: (2, 1),
        placement: PlacementAlgorithm::ExhaustiveHops,
        movement: MovementPolicy::Static,
    };
    let scenario = build_mlr(&field, &gateways, TrafficParams::default(), alpha);
    let gw0_pos = scenario.places.position(scenario.schedule.current()[0]);
    let mut driver = MlrDriver::new(scenario);

    // A quiet round: routes get discovered, everyone reports once.
    driver.run_round();
    // Gateways advertise their loads so α > 0 has something to act on.
    let gws = driver.scenario.gateways.clone();
    for &g in &gws {
        driver
            .scenario
            .world
            .with_behavior::<MlrGateway, _>(g, |b, ctx| b.announce_load(ctx));
    }
    driver.scenario.world.run_for(500_000);

    // The fire: sensors within 70 m of gateway 0 report 6× for 3 rounds.
    let hot: Vec<_> = driver
        .scenario
        .sensors
        .iter()
        .copied()
        .filter(|&s| driver.scenario.world.node(s).pos.dist(gw0_pos) < 70.0)
        .collect();
    println!("  fire zone: {} sensors near gateway 0", hot.len());
    for _ in 0..3 {
        for _ in 0..6 {
            for &s in &hot {
                driver
                    .scenario
                    .world
                    .with_behavior::<MlrSensor, _>(s, |b, ctx| b.originate(ctx));
            }
            driver.scenario.world.run_for(700_000);
        }
        // Fresh load advertisements between fire waves.
        for &g in &gws {
            driver
                .scenario
                .world
                .with_behavior::<MlrGateway, _>(g, |b, ctx| b.announce_load(ctx));
        }
        driver.scenario.world.run_for(500_000);
    }
    driver.scenario.world.run_for(2_000_000);
    let loads: Vec<u64> = gws
        .iter()
        .map(|&g| {
            driver
                .scenario
                .world
                .behavior_as::<MlrGateway>(g)
                .unwrap()
                .absorbed
        })
        .collect();
    let ratio = driver.scenario.world.metrics().delivery_ratio();
    (loads[0], loads[1], ratio)
}

fn main() {
    println!("-- plain shortest-path selection (alpha = 0) --");
    let (a0, b0, r0) = run(0.0);
    println!("  gateway loads: {a0} vs {b0}, delivery {:.1}%", r0 * 100.0);

    println!("-- load-aware selection (alpha = 4) --");
    let (a1, b1, r1) = run(4.0);
    println!("  gateway loads: {a1} vs {b1}, delivery {:.1}%", r1 * 100.0);

    let imb = |a: u64, b: u64| (a as f64 - b as f64).abs() / (a + b).max(1) as f64;
    println!(
        "\nload imbalance: {:.2} (alpha=0) -> {:.2} (alpha=4)",
        imb(a0, b0),
        imb(a1, b1)
    );
    assert!(
        imb(a1, b1) < imb(a0, b0),
        "load-aware selection must spread the fire surge"
    );
    assert!(r1 > 0.9, "delivery must stay high under load balancing");
    println!("ok: the starved gateway absorbed part of the surge (§4.3).");
}
