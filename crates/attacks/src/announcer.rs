//! Forged gateway announcements and the HELLO flood (§2.3).
//!
//! In plain MLR, a gateway-move `Announce` is a bare flooded packet:
//! anyone can claim "gateway G moved to place P". An adversary exploits
//! it two ways:
//!
//! * **Spoofed routing information**: announce the real gateway at a
//!   place only the adversary serves — traffic routed there vanishes.
//! * **HELLO flood**: transmit the forged announcement with a
//!   high-power radio ([`wmsn_sim::Ctx::send_ranged`]) so the entire
//!   field hears it in one hop, poisoning every sensor at once.
//!
//! SecMLR's μTESLA-authenticated announcements defeat both: the forged
//! frame carries no valid chain MAC and is never applied.

use std::any::Any;
use wmsn_crypto::mac::Tag;
use wmsn_routing::wire::RoutingMsg;
use wmsn_secure::wire::SecMsg;
use wmsn_sim::{Behavior, Ctx, Packet, PacketKind, SimTime, Tier};
use wmsn_util::NodeId;

const TIMER_ANNOUNCE: u64 = 0xBAD0_0002;

/// Which wire format to forge.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AnnounceTarget {
    /// Plain MLR `Announce` frames.
    Mlr,
    /// SecMLR μTESLA announce frames (with garbage tags).
    SecMlr,
}

/// Periodically floods forged gateway-move announcements.
pub struct FalseAnnouncer {
    target: AnnounceTarget,
    /// Gateway id to impersonate.
    pub victim_gateway: NodeId,
    /// Place to lure traffic to.
    pub lure_place: u16,
    /// Announcement period (µs).
    period_us: SimTime,
    /// Boost range in metres (`None` = normal radio — plain spoofing;
    /// `Some(r)` = HELLO flood at radius `r`).
    boost_range: Option<f64>,
    next_round: u32,
    /// Forged announcements sent.
    pub sent: u64,
}

impl FalseAnnouncer {
    /// New announcer impersonating `victim_gateway` at `lure_place`.
    pub fn new(
        target: AnnounceTarget,
        victim_gateway: NodeId,
        lure_place: u16,
        period_us: SimTime,
        boost_range: Option<f64>,
    ) -> Self {
        FalseAnnouncer {
            target,
            victim_gateway,
            lure_place,
            period_us,
            boost_range,
            // Claim absurdly-new rounds so round-stamped occupancy maps
            // always prefer the forgery.
            next_round: 1_000_000,
            sent: 0,
        }
    }

    /// Boxed, for `World::add_node`.
    pub fn boxed(
        target: AnnounceTarget,
        victim_gateway: NodeId,
        lure_place: u16,
        period_us: SimTime,
        boost_range: Option<f64>,
    ) -> Box<dyn Behavior> {
        Box::new(Self::new(
            target,
            victim_gateway,
            lure_place,
            period_us,
            boost_range,
        ))
    }

    fn announce(&mut self, ctx: &mut Ctx<'_>) {
        let round = self.next_round;
        self.next_round += 1;
        let bytes = match self.target {
            AnnounceTarget::Mlr => RoutingMsg::Announce {
                gateway: self.victim_gateway,
                place: self.lure_place,
                round,
            }
            .encode(),
            AnnounceTarget::SecMlr => SecMsg::Announce {
                gateway: self.victim_gateway,
                place: self.lure_place,
                round,
                interval: 1,
                tesla_tag: Tag([0x66; 8]),
            }
            .encode(),
        };
        self.sent += 1;
        match self.boost_range {
            Some(r) => {
                ctx.send_ranged(None, Tier::Sensor, PacketKind::Control, bytes, r);
            }
            None => {
                ctx.send(None, Tier::Sensor, PacketKind::Control, bytes);
            }
        }
    }
}

impl Behavior for FalseAnnouncer {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.period_us, TIMER_ANNOUNCE);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        if tag == TIMER_ANNOUNCE {
            self.announce(ctx);
            ctx.set_timer(self.period_us, TIMER_ANNOUNCE);
        }
    }

    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: &Packet) {}

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmsn_crypto::tesla::TeslaReceiver;
    use wmsn_crypto::{Key128, KeyStore};
    use wmsn_routing::mlr::{MlrConfig, MlrGateway, MlrSensor};
    use wmsn_secure::{SecGatewayConfig, SecMlrGateway, SecMlrSensor, SecSensorConfig};
    use wmsn_sim::{NodeConfig, World, WorldConfig};
    use wmsn_util::Point;

    fn short_range(seed: u64) -> WorldConfig {
        let mut c = WorldConfig::ideal(seed);
        c.sensor_phy.range_m = 10.0;
        c
    }

    #[test]
    fn forged_announce_poisons_mlr_occupancy() {
        let mut w = World::new(short_range(1));
        let s0 = w.add_node(
            NodeConfig::sensor(Point::new(0.0, 0.0), 100.0),
            MlrSensor::boxed(MlrConfig::default()),
        );
        let gw = w.add_node(
            NodeConfig::gateway(Point::new(10.0, 0.0)),
            MlrGateway::boxed(0),
        );
        let _attacker = w.add_node(
            NodeConfig::sensor(Point::new(0.0, 9.0), 100.0),
            FalseAnnouncer::boxed(AnnounceTarget::Mlr, gw, 9, 200_000, None),
        );
        w.start();
        w.with_behavior::<MlrGateway, _>(gw, |g, ctx| g.set_place(ctx, 0, 0));
        w.run_for(1_000_000);
        let s = w.behavior_as::<MlrSensor>(s0).unwrap();
        // The forged "gateway moved to place 9" (with an ever-newer
        // round) displaced the truth.
        assert_eq!(s.occupied_places(), vec![9], "occupancy must be poisoned");
        // Traffic to place 9 has no real discovery answer from there —
        // the gateway responds with its REAL place, and data still flows,
        // but the poisoning is the measured integrity failure.
    }

    #[test]
    fn hello_flood_poisons_the_whole_field_in_one_shot() {
        let mut w = World::new(short_range(2));
        let mut sensors = Vec::new();
        for i in 0..8 {
            sensors.push(w.add_node(
                NodeConfig::sensor(Point::new(i as f64 * 10.0, 0.0), 100.0),
                MlrSensor::boxed(MlrConfig::default()),
            ));
        }
        let gw = w.add_node(
            NodeConfig::gateway(Point::new(80.0, 0.0)),
            MlrGateway::boxed(0),
        );
        // The attacker sits far from most sensors but shouts at 500 m.
        let attacker = w.add_node(
            NodeConfig::sensor(Point::new(0.0, 9.0), 100.0),
            FalseAnnouncer::boxed(AnnounceTarget::Mlr, gw, 9, 200_000, Some(500.0)),
        );
        w.start();
        w.with_behavior::<MlrGateway, _>(gw, |g, ctx| g.set_place(ctx, 0, 0));
        w.run_for(300_000); // one forged announcement, field-wide
        let poisoned = sensors
            .iter()
            .filter(|&&s| {
                w.behavior_as::<MlrSensor>(s)
                    .unwrap()
                    .occupied_places()
                    .contains(&9)
            })
            .count();
        assert_eq!(poisoned, 8, "every sensor heard the one-hop HELLO flood");
        assert!(w.behavior_as::<FalseAnnouncer>(attacker).unwrap().sent >= 1);
    }

    #[test]
    fn secmlr_never_applies_the_forged_announce() {
        const MASTER: Key128 = Key128([0x42; 16]);
        let mut w = World::new(short_range(3));
        let gw_id = NodeId(2);
        let mut sensors = Vec::new();
        for i in 0..2 {
            let keys = KeyStore::for_sensor(&MASTER, i, &[gw_id.0]);
            sensors.push(w.add_node(
                NodeConfig::sensor(Point::new(i as f64 * 10.0, 0.0), 100.0),
                SecMlrSensor::boxed(SecSensorConfig::default(), keys),
            ));
        }
        let gw = w.add_node(
            NodeConfig::gateway(Point::new(20.0, 0.0)),
            SecMlrGateway::boxed(SecGatewayConfig::default(), &MASTER, gw_id, 0),
        );
        let _attacker = w.add_node(
            NodeConfig::sensor(Point::new(0.0, 9.0), 100.0),
            FalseAnnouncer::boxed(AnnounceTarget::SecMlr, gw, 9, 200_000, Some(500.0)),
        );
        let params = w.behavior_as::<SecMlrGateway>(gw).unwrap().tesla_params();
        for &s in &sensors {
            w.with_behavior::<SecMlrSensor, _>(s, |b, _| {
                b.install_tesla(
                    gw_id,
                    TeslaReceiver::new(params.0, params.1, params.2, params.3, params.4),
                );
                b.set_initial_occupancy(&[(gw_id, 0)]);
            });
        }
        w.start();
        w.run_for(3_000_000); // many forged announcements + disclosures
        for &s in &sensors {
            let b = w.behavior_as::<SecMlrSensor>(s).unwrap();
            assert_eq!(
                b.occupied_gateways(),
                vec![(gw, 0)],
                "sensor {s}: forged announce must never apply"
            );
        }
    }
}
