//! `wmsn-attacks` — adversary node behaviours implementing the paper's
//! attack taxonomy (§2.3, after Karlof & Wagner and Wang et al.):
//!
//! | Attack | Module | Against MLR | Against SecMLR |
//! |---|---|---|---|
//! | Selective forwarding / blackhole | [`forwarder`] | drops relayed data | drops relayed data (mitigated by multipath failover) |
//! | Sinkhole (forged routing replies) | [`sinkhole`] | draws traffic, then drops | reply fails MAC verification at the source |
//! | Spoofed/altered routing info | [`sinkhole`] (forged RREP), [`announcer`] (forged move) | accepted | rejected (MAC / μTESLA) |
//! | Replayed routing information | [`replayer`] | duplicate data accepted | counters reject |
//! | HELLO flood (high-power beacon) | [`announcer`] with boosted range | field-wide false occupancy | μTESLA safety test rejects |
//! | Sybil (many identities) | [`sinkhole::Sybil`] | multiplies forged replies | each identity still lacks keys |
//! | Wormhole (out-of-band tunnel) | [`wormhole`] | artificially short paths through the tunnel | tunnel can shorten paths but cannot forge data or replies; detection via hop-count anomaly is measured |
//! | Acknowledgment spoofing | — | not applicable: neither MLR nor SecMLR uses link-layer ACKs (documented substitution in DESIGN.md) | — |
//!
//! Every adversary is a [`wmsn_sim::Behavior`] that can be dropped into a
//! world alongside honest nodes; experiment E6 measures delivery ratios
//! with each attack on and off, for both protocols.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod announcer;
pub mod forwarder;
pub mod replayer;
pub mod sinkhole;
pub mod wormhole;

pub use announcer::FalseAnnouncer;
pub use forwarder::SelectiveForwarder;
pub use replayer::Replayer;
pub use sinkhole::{Sinkhole, Sybil};
pub use wormhole::{wormhole_pair, WormholeEnd};
