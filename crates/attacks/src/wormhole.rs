//! The wormhole attack (§2.3).
//!
//! Two colluding nodes share an out-of-band channel (in reality a wired
//! or directional link invisible to the sensor radio). Frames overheard
//! at one end are tunnelled and re-broadcast at the other, making parts
//! of the network appear adjacent. Route discovery then prefers paths
//! "through" the wormhole, putting the adversary on-path — at which point
//! it can eavesdrop, drop, or delay.
//!
//! Cryptography alone does not stop a wormhole (tunnelled frames are
//! genuine); SecMLR limits the *damage* — tunnelled replies/data still
//! verify only if untampered, and the gateway's minimum-hop collection
//! plus hop-count anomalies make detection possible. Experiment E6
//! measures path distortion with the tunnel on/off.
//!
//! The out-of-band channel is modelled by a shared queue between the two
//! endpoint behaviours (single-threaded simulation ⇒ `Rc<RefCell<…>>`),
//! drained on a fast timer — the tunnel is faster than multi-hop radio,
//! as real wormholes are.

use std::any::Any;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use wmsn_sim::{Behavior, Ctx, Packet, PacketKind, SimTime, Tier};

const TIMER_PUMP: u64 = 0xBAD0_0003;

type Tunnel = Rc<RefCell<VecDeque<(Rc<[u8]>, PacketKind)>>>;

/// One end of a wormhole.
pub struct WormholeEnd {
    /// Frames arriving here are pushed into `to_peer`.
    to_peer: Tunnel,
    /// Frames found in `from_peer` are re-broadcast here.
    from_peer: Tunnel,
    pump_period_us: SimTime,
    /// Frames tunnelled out of this end.
    pub tunnelled_out: u64,
    /// Frames re-broadcast at this end.
    pub rebroadcast: u64,
    /// If true, DATA frames are tunnelled but *not* re-broadcast — the
    /// wormhole collapses into a distributed blackhole.
    pub drop_data: bool,
}

/// Construct both ends of a wormhole. Add each to the world at its
/// position; everything either end overhears reappears at the other.
pub fn wormhole_pair(pump_period_us: SimTime, drop_data: bool) -> (WormholeEnd, WormholeEnd) {
    let ab: Tunnel = Rc::new(RefCell::new(VecDeque::new()));
    let ba: Tunnel = Rc::new(RefCell::new(VecDeque::new()));
    let a = WormholeEnd {
        to_peer: Rc::clone(&ab),
        from_peer: Rc::clone(&ba),
        pump_period_us,
        tunnelled_out: 0,
        rebroadcast: 0,
        drop_data,
    };
    let b = WormholeEnd {
        to_peer: ba,
        from_peer: ab,
        pump_period_us,
        tunnelled_out: 0,
        rebroadcast: 0,
        drop_data,
    };
    (a, b)
}

impl Behavior for WormholeEnd {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.pump_period_us, TIMER_PUMP);
    }

    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, pkt: &Packet) {
        self.tunnelled_out += 1;
        self.to_peer
            .borrow_mut()
            .push_back((pkt.payload.clone(), pkt.kind));
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        if tag != TIMER_PUMP {
            return;
        }
        // Drain everything the peer captured since the last pump.
        loop {
            let item = self.from_peer.borrow_mut().pop_front();
            let Some((bytes, kind)) = item else { break };
            if self.drop_data && kind == PacketKind::Data {
                continue;
            }
            self.rebroadcast += 1;
            ctx.send(None, Tier::Sensor, kind, bytes);
        }
        ctx.set_timer(self.pump_period_us, TIMER_PUMP);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmsn_routing::mlr::{MlrConfig, MlrGateway, MlrSensor};
    use wmsn_sim::{NodeConfig, World, WorldConfig};
    use wmsn_util::{NodeId, Point};

    fn short_range(seed: u64) -> WorldConfig {
        let mut c = WorldConfig::ideal(seed);
        c.sensor_phy.range_m = 10.0;
        c
    }

    /// A 9-hop chain with wormhole ends near both ends of the chain.
    fn wormholed_chain(drop_data: bool) -> (World, Vec<NodeId>, NodeId, NodeId, NodeId) {
        let mut w = World::new(short_range(1));
        let mut sensors = Vec::new();
        for i in 0..9 {
            sensors.push(w.add_node(
                NodeConfig::sensor(Point::new(i as f64 * 10.0, 0.0), 100.0),
                MlrSensor::boxed(MlrConfig::default()),
            ));
        }
        let gw = w.add_node(
            NodeConfig::gateway(Point::new(90.0, 0.0)),
            MlrGateway::boxed(0),
        );
        let (a, b) = wormhole_pair(5_000, drop_data);
        let end_a = w.add_node(
            NodeConfig::sensor(Point::new(0.0, 7.0), 100.0), // near S0
            Box::new(a),
        );
        let end_b = w.add_node(
            NodeConfig::sensor(Point::new(90.0, 7.0), 100.0), // near the gateway
            Box::new(b),
        );
        w.set_promiscuous(end_a, true);
        w.set_promiscuous(end_b, true);
        (w, sensors, gw, end_a, end_b)
    }

    #[test]
    fn wormhole_shortens_discovered_paths() {
        // Without the wormhole, S0 is 9 hops out. With it, S0's RREQ
        // teleports next to the gateway and the response teleports back:
        // the discovered path is dramatically shorter than 9.
        let (mut w, sensors, gw, end_a, end_b) = wormholed_chain(false);
        w.start();
        w.with_behavior::<MlrGateway, _>(gw, |g, ctx| g.set_place(ctx, 0, 0));
        w.run_for(1_000_000);
        w.with_behavior::<MlrSensor, _>(sensors[0], |s, ctx| s.originate(ctx));
        w.run_for(3_000_000);
        let m = w.metrics();
        assert!(!m.deliveries.is_empty());
        let hops = w
            .behavior_as::<MlrSensor>(sensors[0])
            .unwrap()
            .table
            .by_place(0)
            .unwrap()
            .hops();
        assert!(
            hops <= 3,
            "wormhole should fake a short path, table says {hops} hops"
        );
        assert!(w.behavior_as::<WormholeEnd>(end_a).unwrap().tunnelled_out > 0);
        assert!(w.behavior_as::<WormholeEnd>(end_b).unwrap().rebroadcast > 0);
    }

    #[test]
    fn data_dropping_wormhole_starves_the_route_it_created() {
        let (mut w, sensors, gw, _a, _b) = wormholed_chain(true);
        w.start();
        w.with_behavior::<MlrGateway, _>(gw, |g, ctx| g.set_place(ctx, 0, 0));
        w.run_for(1_000_000);
        for _ in 0..5 {
            w.with_behavior::<MlrSensor, _>(sensors[0], |s, ctx| s.originate(ctx));
            w.run_for(1_000_000);
        }
        let m = w.metrics();
        assert!(
            m.delivery_ratio() < 0.5,
            "the lured traffic should vanish in the tunnel: {}",
            m.delivery_ratio()
        );
    }

    #[test]
    fn without_wormhole_the_chain_is_honest_nine_hops() {
        let mut w = World::new(short_range(1));
        let mut sensors = Vec::new();
        for i in 0..9 {
            sensors.push(w.add_node(
                NodeConfig::sensor(Point::new(i as f64 * 10.0, 0.0), 100.0),
                MlrSensor::boxed(MlrConfig::default()),
            ));
        }
        let gw = w.add_node(
            NodeConfig::gateway(Point::new(90.0, 0.0)),
            MlrGateway::boxed(0),
        );
        w.start();
        w.with_behavior::<MlrGateway, _>(gw, |g, ctx| g.set_place(ctx, 0, 0));
        w.run_for(1_000_000);
        w.with_behavior::<MlrSensor, _>(sensors[0], |s, ctx| s.originate(ctx));
        w.run_for(3_000_000);
        let hops = w
            .behavior_as::<MlrSensor>(sensors[0])
            .unwrap()
            .table
            .by_place(0)
            .unwrap()
            .hops();
        assert_eq!(hops, 9);
    }
}
