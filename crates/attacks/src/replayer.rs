//! Replayed routing information / replayed data (§2.3).
//!
//! The adversary records every frame it overhears and re-broadcasts the
//! recordings verbatim after a delay. Against plain MLR, replayed DATA
//! frames are re-forwarded and re-delivered (duplicate readings with
//! stale timestamps — an integrity failure the metrics expose as
//! duplicate deliveries). Against SecMLR, every replayed frame carries an
//! already-consumed counter `C` and dies at the gateway's replay guard.

use std::any::Any;
use std::collections::VecDeque;
use std::rc::Rc;
use wmsn_sim::{Behavior, Ctx, Packet, PacketKind, Tier};

const TIMER_REPLAY: u64 = 0xBAD0_0001;

/// Records overheard frames and replays them after `delay_us`.
pub struct Replayer {
    delay_us: u64,
    /// Only replay frames of this kind (`None` = everything).
    only: Option<PacketKind>,
    queue: VecDeque<Rc<[u8]>>,
    /// Frames replayed so far.
    pub replayed: u64,
    /// Cap on total replays (keeps experiments bounded).
    pub budget: u64,
}

impl Replayer {
    /// New replayer with a replay `budget`.
    pub fn new(delay_us: u64, only: Option<PacketKind>, budget: u64) -> Self {
        Replayer {
            delay_us,
            only,
            queue: VecDeque::new(),
            replayed: 0,
            budget,
        }
    }

    /// Boxed, for `World::add_node`.
    pub fn boxed(delay_us: u64, only: Option<PacketKind>, budget: u64) -> Box<dyn Behavior> {
        Box::new(Self::new(delay_us, only, budget))
    }
}

impl Behavior for Replayer {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: &Packet) {
        if self.replayed + self.queue.len() as u64 >= self.budget {
            return;
        }
        if let Some(kind) = self.only {
            if pkt.kind != kind {
                return;
            }
        }
        self.queue.push_back(pkt.payload.clone());
        ctx.set_timer(self.delay_us, TIMER_REPLAY);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        if tag != TIMER_REPLAY {
            return;
        }
        if let Some(bytes) = self.queue.pop_front() {
            self.replayed += 1;
            // Re-broadcast verbatim; the link-layer source will be us,
            // but honest protocols only look at the payload.
            ctx.send(None, Tier::Sensor, PacketKind::Data, bytes);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmsn_crypto::{Key128, KeyStore};
    use wmsn_routing::mlr::{MlrConfig, MlrGateway, MlrSensor};
    use wmsn_secure::{SecGatewayConfig, SecMlrGateway, SecMlrSensor, SecSensorConfig};
    use wmsn_sim::{NodeConfig, World, WorldConfig};
    use wmsn_util::{NodeId, Point};

    fn short_range(seed: u64) -> WorldConfig {
        let mut c = WorldConfig::ideal(seed);
        c.sensor_phy.range_m = 10.0;
        c
    }

    #[test]
    fn mlr_accepts_replayed_data_as_duplicates() {
        let mut w = World::new(short_range(1));
        let s0 = w.add_node(
            NodeConfig::sensor(Point::new(0.0, 0.0), 100.0),
            MlrSensor::boxed(MlrConfig::default()),
        );
        let gw = w.add_node(
            NodeConfig::gateway(Point::new(10.0, 0.0)),
            MlrGateway::boxed(0),
        );
        let _attacker = w.add_node(
            NodeConfig::sensor(Point::new(5.0, 5.0), 100.0),
            Replayer::boxed(300_000, Some(PacketKind::Data), 10),
        );
        w.set_promiscuous(_attacker, true);
        w.start();
        w.with_behavior::<MlrGateway, _>(gw, |g, ctx| g.set_place(ctx, 0, 0));
        w.run_for(500_000);
        w.with_behavior::<MlrSensor, _>(s0, |s, ctx| s.originate(ctx));
        w.run_for(3_000_000);
        let m = w.metrics();
        // One originated message, delivered more than once: the replay
        // was accepted as fresh data.
        assert_eq!(m.originated, 1);
        assert!(
            m.deliveries.len() >= 2,
            "replay must produce a duplicate delivery, got {}",
            m.deliveries.len()
        );
    }

    #[test]
    fn secmlr_counter_kills_replayed_data() {
        const MASTER: Key128 = Key128([0x42; 16]);
        let mut w = World::new(short_range(2));
        let gw_id = NodeId(1);
        let keys = KeyStore::for_sensor(&MASTER, 0, &[gw_id.0]);
        let s0 = w.add_node(
            NodeConfig::sensor(Point::new(0.0, 0.0), 100.0),
            SecMlrSensor::boxed(SecSensorConfig::default(), keys),
        );
        let gw = w.add_node(
            NodeConfig::gateway(Point::new(10.0, 0.0)),
            SecMlrGateway::boxed(SecGatewayConfig::default(), &MASTER, gw_id, 0),
        );
        let attacker = w.add_node(
            NodeConfig::sensor(Point::new(5.0, 5.0), 100.0),
            Replayer::boxed(300_000, Some(PacketKind::Data), 10),
        );
        w.set_promiscuous(attacker, true);
        w.with_behavior::<SecMlrSensor, _>(s0, |b, _| b.set_initial_occupancy(&[(gw_id, 0)]));
        w.start();
        w.with_behavior::<SecMlrSensor, _>(s0, |s, ctx| s.originate(ctx));
        w.run_for(3_000_000);
        let m = w.metrics();
        assert_eq!(m.originated, 1);
        assert_eq!(m.deliveries.len(), 1, "exactly one genuine delivery");
        let g = w.behavior_as::<SecMlrGateway>(gw).unwrap();
        assert!(
            g.stats.data_rejected >= 1,
            "the replayed frame must be rejected by the counter"
        );
        assert!(w.behavior_as::<Replayer>(attacker).unwrap().replayed >= 1);
    }

    #[test]
    fn budget_bounds_the_replay_volume() {
        let mut w = World::new(short_range(3));
        let chatty = w.add_node(
            NodeConfig::sensor(Point::new(0.0, 0.0), 100.0),
            MlrSensor::boxed(MlrConfig::default()),
        );
        let gw = w.add_node(
            NodeConfig::gateway(Point::new(10.0, 0.0)),
            MlrGateway::boxed(0),
        );
        let attacker = w.add_node(
            NodeConfig::sensor(Point::new(5.0, 5.0), 100.0),
            Replayer::boxed(50_000, None, 3),
        );
        w.set_promiscuous(attacker, true);
        w.start();
        w.with_behavior::<MlrGateway, _>(gw, |g, ctx| g.set_place(ctx, 0, 0));
        w.run_for(500_000);
        for _ in 0..10 {
            w.with_behavior::<MlrSensor, _>(chatty, |s, ctx| s.originate(ctx));
            w.run_for(500_000);
        }
        assert!(w.behavior_as::<Replayer>(attacker).unwrap().replayed <= 3);
    }
}
