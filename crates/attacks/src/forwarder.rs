//! Selective forwarding / blackhole (§2.3).
//!
//! The adversary behaves as a perfectly honest router during route
//! discovery — so paths are installed *through* it — and then silently
//! drops a fraction (or all) of the data frames it should relay. Because
//! it wraps the real protocol behaviour, it works identically against
//! MLR and SecMLR; the difference shows up in recovery (SecMLR sources
//! hold multiple verified routes and can fail over).

use std::any::Any;
use wmsn_sim::{Behavior, Ctx, Packet, PacketKind};

/// Wraps an honest behaviour and drops relayed data frames with
/// probability `drop_prob`.
pub struct SelectiveForwarder {
    inner: Box<dyn Behavior>,
    drop_prob: f64,
    /// Data frames swallowed so far.
    pub dropped: u64,
}

impl SelectiveForwarder {
    /// Wrap `inner`; `drop_prob = 1.0` is a full blackhole.
    pub fn new(inner: Box<dyn Behavior>, drop_prob: f64) -> Self {
        SelectiveForwarder {
            inner,
            drop_prob,
            dropped: 0,
        }
    }

    /// Boxed, for `World::add_node`.
    pub fn boxed(inner: Box<dyn Behavior>, drop_prob: f64) -> Box<dyn Behavior> {
        Box::new(Self::new(inner, drop_prob))
    }
}

impl Behavior for SelectiveForwarder {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.inner.on_start(ctx);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: &Packet) {
        if pkt.kind == PacketKind::Data && ctx.rng().chance(self.drop_prob) {
            self.dropped += 1;
            return; // swallowed: the honest protocol never sees it
        }
        self.inner.on_packet(ctx, pkt);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        self.inner.on_timer(ctx, tag);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmsn_routing::mlr::{MlrConfig, MlrGateway, MlrSensor};
    use wmsn_sim::{NodeConfig, World, WorldConfig};
    use wmsn_util::{NodeId, Point};

    fn short_range(seed: u64) -> WorldConfig {
        let mut c = WorldConfig::ideal(seed);
        c.sensor_phy.range_m = 10.0;
        c
    }

    /// Chain S0 — S1(adversary?) — S2 — GW.
    fn chain(blackhole: bool) -> (World, Vec<NodeId>, NodeId) {
        let mut w = World::new(short_range(1));
        let mut sensors = Vec::new();
        for i in 0..3 {
            let honest = MlrSensor::boxed(MlrConfig::default());
            let behavior = if i == 1 && blackhole {
                SelectiveForwarder::boxed(honest, 1.0)
            } else {
                honest
            };
            sensors.push(w.add_node(
                NodeConfig::sensor(Point::new(i as f64 * 10.0, 0.0), 100.0),
                behavior,
            ));
        }
        let gw = w.add_node(
            NodeConfig::gateway(Point::new(30.0, 0.0)),
            MlrGateway::boxed(0),
        );
        (w, sensors, gw)
    }

    fn run(w: &mut World, sensors: &[NodeId], gw: NodeId) -> f64 {
        w.start();
        w.with_behavior::<MlrGateway, _>(gw, |g, ctx| g.set_place(ctx, 0, 0));
        w.run_for(500_000);
        for _ in 0..5 {
            // Only S0 sends; its path necessarily crosses S1.
            w.with_behavior::<MlrSensor, _>(sensors[0], |s, ctx| s.originate(ctx));
            w.run_for(1_000_000);
        }
        w.metrics().delivery_ratio()
    }

    #[test]
    fn honest_chain_delivers_everything() {
        let (mut w, sensors, gw) = chain(false);
        assert!((run(&mut w, &sensors, gw) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn blackhole_relay_kills_the_chain() {
        let (mut w, sensors, gw) = chain(true);
        let ratio = run(&mut w, &sensors, gw);
        assert_eq!(ratio, 0.0, "all of S0's data crosses the blackhole");
        // The adversary really did participate in discovery: S0 has a
        // route (through it) — the route just eats packets.
        let adversary = sensors[1];
        let dropped = w
            .behavior_as::<SelectiveForwarder>(adversary)
            .unwrap()
            .dropped;
        assert!(dropped >= 5);
    }

    #[test]
    fn partial_dropper_degrades_but_does_not_kill() {
        let mut w = World::new(short_range(2));
        let mut sensors = Vec::new();
        for i in 0..3 {
            let honest = MlrSensor::boxed(MlrConfig::default());
            let behavior = if i == 1 {
                SelectiveForwarder::boxed(honest, 0.5)
            } else {
                honest
            };
            sensors.push(w.add_node(
                NodeConfig::sensor(Point::new(i as f64 * 10.0, 0.0), 100.0),
                behavior,
            ));
        }
        let gw = w.add_node(
            NodeConfig::gateway(Point::new(30.0, 0.0)),
            MlrGateway::boxed(0),
        );
        w.start();
        w.with_behavior::<MlrGateway, _>(gw, |g, ctx| g.set_place(ctx, 0, 0));
        w.run_for(500_000);
        for _ in 0..20 {
            w.with_behavior::<MlrSensor, _>(sensors[0], |s, ctx| s.originate(ctx));
            w.run_for(500_000);
        }
        let ratio = w.metrics().delivery_ratio();
        assert!(ratio > 0.1 && ratio < 0.9, "ratio {ratio}");
    }

    #[test]
    fn control_traffic_is_untouched() {
        // The selective forwarder must keep relaying RREQ/RREP (that is
        // what makes it insidious) — discovery still succeeds through it.
        let (mut w, sensors, gw) = chain(true);
        w.start();
        w.with_behavior::<MlrGateway, _>(gw, |g, ctx| g.set_place(ctx, 0, 0));
        w.run_for(500_000);
        w.with_behavior::<MlrSensor, _>(sensors[0], |s, ctx| s.originate(ctx));
        w.run_for(1_000_000);
        let s0 = w.behavior_as::<MlrSensor>(sensors[0]).unwrap();
        assert!(
            s0.table.by_place(0).is_some(),
            "discovery must succeed through the adversary"
        );
    }
}
