//! Sinkhole and sybil attacks (§2.3).
//!
//! A **sinkhole** makes itself look like the best route to a sink —
//! here by answering every routing query with a forged reply claiming a
//! 1-hop path to the (real) gateway through itself — and then swallows
//! the attracted traffic. Against plain MLR the forged RREP is
//! indistinguishable from a genuine cache reply (§5.2 step 3.1 allows
//! intermediate replies), so the attack works. Against SecMLR the reply
//! must carry `MAC(K_ij, …)` from the *gateway*, which the adversary
//! cannot produce; the source rejects it.
//!
//! A **sybil** sinkhole mounts the same attack under many fabricated
//! link-layer identities, defeating naive per-node blacklisting.

use std::any::Any;
use wmsn_crypto::mac::Tag;
use wmsn_crypto::SealedMessage;
use wmsn_routing::wire::{RoutingMsg, RoutingMsgView};
use wmsn_secure::wire::{sdata_peek, SecMsg, SrreqView};
use wmsn_sim::{Behavior, Ctx, Packet, PacketKind, Tier};
use wmsn_util::NodeId;

/// Which protocol family's queries the adversary answers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TargetProtocol {
    /// Plain MLR/SPR wire format.
    Mlr,
    /// SecMLR wire format (forged seals — should be rejected).
    SecMlr,
}

/// The sinkhole adversary.
pub struct Sinkhole {
    target: TargetProtocol,
    /// The gateway id the forged replies claim to speak for.
    pub claimed_gateway: NodeId,
    /// The place the forged replies claim.
    pub claimed_place: u16,
    /// Forged replies sent.
    pub forged_replies: u64,
    /// Attracted data frames swallowed.
    pub swallowed: u64,
}

impl Sinkhole {
    /// New sinkhole claiming to front for `claimed_gateway`.
    pub fn new(target: TargetProtocol, claimed_gateway: NodeId, claimed_place: u16) -> Self {
        Sinkhole {
            target,
            claimed_gateway,
            claimed_place,
            forged_replies: 0,
            swallowed: 0,
        }
    }

    /// Boxed, for `World::add_node`.
    pub fn boxed(
        target: TargetProtocol,
        claimed_gateway: NodeId,
        claimed_place: u16,
    ) -> Box<dyn Behavior> {
        Box::new(Self::new(target, claimed_gateway, claimed_place))
    }

    fn forge_mlr_reply(
        &mut self,
        ctx: &mut Ctx<'_>,
        origin: NodeId,
        req_id: u64,
        path: Vec<NodeId>,
    ) {
        let Some(&prev) = path.last() else { return };
        // Claim: gateway is right behind me (path + me, then the
        // gateway) — one fabricated ultra-short route.
        let mut forged_path = path;
        forged_path.push(ctx.id());
        let rrep = RoutingMsg::Rrep {
            origin,
            req_id,
            gateway: self.claimed_gateway,
            place: self.claimed_place,
            energy_pm: 1000, // forgers advertise irresistible freshness
            path: forged_path,
        };
        self.forged_replies += 1;
        ctx.send(Some(prev), Tier::Sensor, PacketKind::Control, rrep.encode());
    }

    fn forge_secmlr_reply(&mut self, ctx: &mut Ctx<'_>, origin: NodeId, path: Vec<NodeId>) {
        let Some(&prev) = path.last() else { return };
        let mut forged_path = path;
        forged_path.push(ctx.id());
        forged_path.push(self.claimed_gateway);
        let rres = SecMsg::Rres {
            origin,
            gateway: self.claimed_gateway,
            place: self.claimed_place,
            path: forged_path,
            // The adversary holds no pair key: the best it can do is a
            // random seal, which the source's MAC check will kill.
            sealed: SealedMessage {
                counter: u64::MAX,
                ciphertext: vec![0xDE, 0xAD, 0xBE, 0xEF],
                tag: Tag([0xEE; 8]),
            },
        };
        self.forged_replies += 1;
        ctx.send(Some(prev), Tier::Sensor, PacketKind::Control, rres.encode());
    }
}

impl Behavior for Sinkhole {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: &Packet) {
        // Classify via borrowed views: swallowed data is counted without
        // ever materialising a frame, and only answerable queries pay
        // for an owned path (the forged reply needs one).
        match self.target {
            TargetProtocol::Mlr => match RoutingMsgView::decode(&pkt.payload) {
                Ok(RoutingMsgView::Rreq {
                    origin,
                    req_id,
                    path,
                    ..
                }) => {
                    let path = path.iter().map(NodeId).collect();
                    self.forge_mlr_reply(ctx, origin, req_id, path);
                }
                Ok(RoutingMsgView::Data { .. }) => self.swallowed += 1,
                _ => {}
            },
            TargetProtocol::SecMlr => {
                if let Ok(view) = SrreqView::decode(&pkt.payload) {
                    let path = view.path.iter().map(NodeId).collect();
                    self.forge_secmlr_reply(ctx, view.origin, path);
                } else if sdata_peek(&pkt.payload).is_some() {
                    self.swallowed += 1;
                }
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A sybil sinkhole: mounts the sinkhole under `identities` fabricated
/// origin ids appended to forged paths, so each reply appears to come
/// from a different node.
pub struct Sybil {
    inner: Sinkhole,
    identities: Vec<NodeId>,
    next: usize,
}

impl Sybil {
    /// New sybil sinkhole cycling through `identities`.
    pub fn new(target: TargetProtocol, claimed_gateway: NodeId, identities: Vec<NodeId>) -> Self {
        assert!(!identities.is_empty());
        Sybil {
            inner: Sinkhole::new(target, claimed_gateway, 0),
            identities,
            next: 0,
        }
    }

    /// Boxed, for `World::add_node`.
    pub fn boxed(
        target: TargetProtocol,
        claimed_gateway: NodeId,
        identities: Vec<NodeId>,
    ) -> Box<dyn Behavior> {
        Box::new(Self::new(target, claimed_gateway, identities))
    }

    /// Forged replies sent across all identities.
    pub fn forged_replies(&self) -> u64 {
        self.inner.forged_replies
    }

    /// Data frames swallowed.
    pub fn swallowed(&self) -> u64 {
        self.inner.swallowed
    }
}

impl Behavior for Sybil {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: &Packet) {
        // Rotate the fabricated identity used in the forged path: replies
        // appear to originate from ever-new nodes.
        if self.inner.target == TargetProtocol::Mlr {
            if let Ok(RoutingMsgView::Rreq {
                origin,
                req_id,
                path,
                ..
            }) = RoutingMsgView::decode(&pkt.payload)
            {
                let fake_id = self.identities[self.next % self.identities.len()];
                self.next += 1;
                let Some(prev) = path.last().map(NodeId) else {
                    return;
                };
                let mut forged_path: Vec<NodeId> = path.iter().map(NodeId).collect();
                forged_path.push(fake_id);
                let rrep = RoutingMsg::Rrep {
                    origin,
                    req_id,
                    gateway: self.inner.claimed_gateway,
                    place: self.inner.claimed_place,
                    energy_pm: 1000,
                    path: forged_path,
                };
                self.inner.forged_replies += 1;
                ctx.send(Some(prev), Tier::Sensor, PacketKind::Control, rrep.encode());
                return;
            }
        }
        self.inner.on_packet(ctx, pkt);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmsn_crypto::{Key128, KeyStore};
    use wmsn_routing::mlr::{MlrConfig, MlrGateway, MlrSensor};
    use wmsn_secure::{SecGatewayConfig, SecMlrGateway, SecMlrSensor, SecSensorConfig};
    use wmsn_sim::{NodeConfig, World, WorldConfig};
    use wmsn_util::Point;

    fn short_range(seed: u64) -> WorldConfig {
        let mut c = WorldConfig::ideal(seed);
        c.sensor_phy.range_m = 10.0;
        c
    }

    /// Field where S0 is 3 honest hops from the gateway but 1 hop from
    /// the adversary: S0 — S1 — S2 — GW, adversary beside S0.
    #[test]
    fn sinkhole_captures_mlr_traffic() {
        let mut w = World::new(short_range(1));
        let mut sensors = Vec::new();
        for i in 0..3 {
            sensors.push(w.add_node(
                NodeConfig::sensor(Point::new(i as f64 * 10.0, 0.0), 100.0),
                MlrSensor::boxed(MlrConfig::default()),
            ));
        }
        let gw = w.add_node(
            NodeConfig::gateway(Point::new(30.0, 0.0)),
            MlrGateway::boxed(0),
        );
        let attacker = w.add_node(
            NodeConfig::sensor(Point::new(0.0, 9.0), 100.0),
            Sinkhole::boxed(TargetProtocol::Mlr, gw, 0),
        );
        w.start();
        w.with_behavior::<MlrGateway, _>(gw, |g, ctx| g.set_place(ctx, 0, 0));
        w.run_for(500_000);
        for _ in 0..5 {
            w.with_behavior::<MlrSensor, _>(sensors[0], |s, ctx| s.originate(ctx));
            w.run_for(1_000_000);
        }
        let m = w.metrics();
        assert!(
            m.delivery_ratio() < 0.5,
            "sinkhole should capture most of S0's traffic: {}",
            m.delivery_ratio()
        );
        let a = w.behavior_as::<Sinkhole>(attacker).unwrap();
        assert!(a.forged_replies >= 1);
        assert!(a.swallowed >= 1, "captured traffic must flow to the hole");
    }

    #[test]
    fn secmlr_rejects_the_forged_reply() {
        const MASTER: Key128 = Key128([0x42; 16]);
        let mut w = World::new(short_range(2));
        let gw_id = NodeId(3);
        let mut sensors = Vec::new();
        for i in 0..3 {
            let keys = KeyStore::for_sensor(&MASTER, i, &[gw_id.0]);
            sensors.push(w.add_node(
                NodeConfig::sensor(Point::new(i as f64 * 10.0, 0.0), 100.0),
                SecMlrSensor::boxed(SecSensorConfig::default(), keys),
            ));
        }
        let gw = w.add_node(
            NodeConfig::gateway(Point::new(30.0, 0.0)),
            SecMlrGateway::boxed(SecGatewayConfig::default(), &MASTER, gw_id, 0),
        );
        let _attacker = w.add_node(
            NodeConfig::sensor(Point::new(0.0, 9.0), 100.0),
            Sinkhole::boxed(TargetProtocol::SecMlr, gw, 0),
        );
        for &s in &sensors {
            w.with_behavior::<SecMlrSensor, _>(s, |b, _| b.set_initial_occupancy(&[(gw_id, 0)]));
        }
        w.start();
        for _ in 0..5 {
            w.with_behavior::<SecMlrSensor, _>(sensors[0], |s, ctx| s.originate(ctx));
            w.run_for(1_000_000);
        }
        let m = w.metrics();
        assert!(
            (m.delivery_ratio() - 1.0).abs() < 1e-9,
            "SecMLR must shrug the sinkhole off: {}",
            m.delivery_ratio()
        );
        let s0 = w.behavior_as::<SecMlrSensor>(sensors[0]).unwrap();
        assert!(
            s0.stats.rres_rejected >= 1,
            "the forged reply must have been seen and rejected"
        );
        // The real route (3 hops) was installed despite the attack.
        assert_eq!(s0.routes[&gw].hops(), 3);
    }

    #[test]
    fn sybil_floods_many_identities() {
        let mut w = World::new(short_range(3));
        let s0 = w.add_node(
            NodeConfig::sensor(Point::new(0.0, 0.0), 100.0),
            MlrSensor::boxed(MlrConfig::default()),
        );
        let gw = w.add_node(
            NodeConfig::gateway(Point::new(10.0, 0.0)),
            MlrGateway::boxed(0),
        );
        let fakes: Vec<NodeId> = (100..103).map(NodeId).collect();
        let attacker = w.add_node(
            NodeConfig::sensor(Point::new(0.0, 9.0), 100.0),
            Sybil::boxed(TargetProtocol::Mlr, gw, fakes),
        );
        w.start();
        w.with_behavior::<MlrGateway, _>(gw, |g, ctx| g.set_place(ctx, 0, 0));
        w.run_for(500_000);
        for _ in 0..3 {
            // Force rediscovery each time so the sybil keeps answering.
            w.with_behavior::<MlrSensor, _>(s0, |s, ctx| {
                s.table.clear();
                s.originate(ctx);
            });
            w.run_for(1_000_000);
        }
        let a = w.behavior_as::<Sybil>(attacker).unwrap();
        assert!(a.forged_replies() >= 3);
    }
}
