//! The SecMLR message envelope: `{M}<K_ij,C> , MAC(K_ij, C | {M}<K_ij,C>)`.
//!
//! Every protected SecMLR field follows the same shape (Figs. 4–6):
//! encrypt-then-MAC under the pairwise key with the incremental counter
//! `C` bound into both the keystream and the MAC. [`seal`] produces the
//! pair; [`open`] verifies freshness is *not* checked here (the caller owns
//! the [`crate::keys::ReplayGuard`]) but authenticity and integrity are.

use crate::ctr;
use crate::keys::Key128;
use crate::mac::{mac_with_counter, Tag};

/// A sealed (encrypted + authenticated) message plus its counter.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SealedMessage {
    /// The counter `C` the message was sealed under (travels in clear; it
    /// is authenticated by the tag).
    pub counter: u64,
    /// CTR ciphertext of the plaintext.
    pub ciphertext: Vec<u8>,
    /// `MAC(K, C | ciphertext)`.
    pub tag: Tag,
}

impl SealedMessage {
    /// Wire size in bytes (counter + length prefix + ciphertext + tag),
    /// used by the energy model to charge for security overhead.
    pub fn wire_len(&self) -> usize {
        8 + 2 + self.ciphertext.len() + 8
    }
}

/// Seal `plaintext` under `key` with counter `counter`.
pub fn seal(key: &Key128, counter: u64, plaintext: &[u8]) -> SealedMessage {
    let ciphertext = ctr::encrypt(key, counter, plaintext);
    let tag = mac_with_counter(key, counter, &ciphertext);
    SealedMessage {
        counter,
        ciphertext,
        tag,
    }
}

/// Verify and decrypt. Returns `None` if the tag does not match (forgery
/// or tampering); freshness must be checked by the caller against its
/// replay guard.
pub fn open(key: &Key128, sealed: &SealedMessage) -> Option<Vec<u8>> {
    let expected = mac_with_counter(key, sealed.counter, &sealed.ciphertext);
    if !expected.verify(&sealed.tag) {
        return None;
    }
    Some(ctr::decrypt(key, sealed.counter, &sealed.ciphertext))
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: Key128 = Key128([0x77; 16]);

    #[test]
    fn seal_open_roundtrip() {
        let sealed = seal(&KEY, 42, b"req: S3 -> G1");
        assert_eq!(open(&KEY, &sealed).unwrap(), b"req: S3 -> G1");
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let mut sealed = seal(&KEY, 42, b"req: S3 -> G1");
        sealed.ciphertext[3] ^= 0x40;
        assert!(open(&KEY, &sealed).is_none());
    }

    #[test]
    fn tampered_counter_rejected() {
        let mut sealed = seal(&KEY, 42, b"req");
        sealed.counter = 43;
        assert!(open(&KEY, &sealed).is_none(), "counter is authenticated");
    }

    #[test]
    fn tampered_tag_rejected() {
        let mut sealed = seal(&KEY, 42, b"req");
        sealed.tag.0[0] ^= 1;
        assert!(open(&KEY, &sealed).is_none());
    }

    #[test]
    fn wrong_key_rejected() {
        let sealed = seal(&KEY, 42, b"req");
        assert!(open(&Key128([0x78; 16]), &sealed).is_none());
    }

    #[test]
    fn empty_plaintext_works() {
        let sealed = seal(&KEY, 1, b"");
        assert_eq!(open(&KEY, &sealed).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn same_plaintext_different_counters_differ_on_the_wire() {
        let a = seal(&KEY, 1, b"DATA temperature=21");
        let b = seal(&KEY, 2, b"DATA temperature=21");
        assert_ne!(a.ciphertext, b.ciphertext);
        assert_ne!(a.tag, b.tag);
    }

    #[test]
    fn wire_len_accounts_for_all_fields() {
        let sealed = seal(&KEY, 1, b"12345");
        assert_eq!(sealed.wire_len(), 8 + 2 + 5 + 8);
    }
}
