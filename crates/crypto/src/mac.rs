//! CMAC (OMAC1, NIST SP 800-38B) over Speck64/128.
//!
//! SecMLR authenticates every routing packet with
//! `MAC(K_ij, C | {msg}<K_ij,C>)` (§6.2.1–6.2.4). We use CMAC because,
//! unlike raw CBC-MAC, it is secure for variable-length messages — routing
//! packets carry variable-length `path_ij(k)` fields. The 64-bit tag is in
//! line with sensor-network practice (TinySec shipped 32-bit tags).

use crate::keys::Key128;
use crate::speck::Speck64;

/// A 64-bit authentication tag.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Tag(pub [u8; 8]);

impl Tag {
    /// Constant-shape comparison (bitwise OR of differences). The
    /// simulator has no timing side channels, but we keep the idiom.
    pub fn verify(&self, other: &Tag) -> bool {
        let mut diff = 0u8;
        for (a, b) in self.0.iter().zip(other.0.iter()) {
            diff |= a ^ b;
        }
        diff == 0
    }
}

/// The CMAC subkey doubling: multiply by x in GF(2^64) with the
/// polynomial x^64 + x^4 + x^3 + x + 1 (Rb = 0x1B).
fn dbl(block: u64) -> u64 {
    let carry = block >> 63;
    (block << 1) ^ (carry * 0x1B)
}

fn block_to_u64(b: &[u8; 8]) -> u64 {
    u64::from_be_bytes(*b)
}

fn u64_to_block(v: u64) -> [u8; 8] {
    v.to_be_bytes()
}

/// Compute `CMAC(key, msg)`.
pub fn cmac(key: &Key128, msg: &[u8]) -> Tag {
    let cipher = key.cipher();
    cmac_with(&cipher, msg)
}

/// CMAC with an already-expanded cipher (hot paths reuse the schedule).
pub fn cmac_with(cipher: &Speck64, msg: &[u8]) -> Tag {
    // Subkeys K1, K2 from L = E_K(0).
    let mut l = [0u8; 8];
    cipher.encrypt_block(&mut l);
    let k1 = dbl(block_to_u64(&l));
    let k2 = dbl(k1);

    let n_blocks = msg.len().div_ceil(8).max(1);
    let complete_last = !msg.is_empty() && msg.len().is_multiple_of(8);

    let mut state = [0u8; 8];
    // All blocks but the last: plain CBC.
    for i in 0..n_blocks - 1 {
        for (s, m) in state.iter_mut().zip(&msg[i * 8..i * 8 + 8]) {
            *s ^= m;
        }
        cipher.encrypt_block(&mut state);
    }
    // Last block: XOR with K1 (complete) or pad + XOR with K2.
    let mut last = [0u8; 8];
    let tail = &msg[(n_blocks - 1) * 8..];
    last[..tail.len()].copy_from_slice(tail);
    let subkey = if complete_last {
        k1
    } else {
        last[tail.len()] = 0x80;
        k2
    };
    let masked = u64_to_block(block_to_u64(&last) ^ subkey);
    for (s, m) in state.iter_mut().zip(&masked) {
        *s ^= m;
    }
    cipher.encrypt_block(&mut state);
    Tag(state)
}

/// MAC over a counter and a message: the paper's
/// `MAC(K_ij, C | {msg}<K_ij,C>)` shape used by every SecMLR packet.
pub fn mac_with_counter(key: &Key128, counter: u64, msg: &[u8]) -> Tag {
    let mut buf = Vec::with_capacity(8 + msg.len());
    buf.extend_from_slice(&counter.to_le_bytes());
    buf.extend_from_slice(msg);
    cmac(key, &buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: Key128 = Key128([0x42; 16]);

    #[test]
    fn deterministic_for_same_inputs() {
        assert_eq!(cmac(&KEY, b"hello"), cmac(&KEY, b"hello"));
    }

    #[test]
    fn distinct_messages_distinct_tags() {
        assert_ne!(cmac(&KEY, b"hello"), cmac(&KEY, b"hellp"));
        assert_ne!(cmac(&KEY, b""), cmac(&KEY, b"\0"));
    }

    #[test]
    fn distinct_keys_distinct_tags() {
        assert_ne!(cmac(&KEY, b"msg"), cmac(&Key128([0x43; 16]), b"msg"));
    }

    #[test]
    fn length_extension_shapes_differ() {
        // CBC-MAC's classic failure: MAC(m) == prefix state of MAC(m||m').
        // CMAC's subkey masking must break the padding relation: a message
        // equal to another plus its 10* padding gets a different tag.
        let m = b"abc";
        let mut padded = m.to_vec();
        padded.push(0x80);
        while !padded.len().is_multiple_of(8) {
            padded.push(0);
        }
        assert_ne!(cmac(&KEY, m), cmac(&KEY, &padded));
    }

    #[test]
    fn boundary_lengths() {
        // Empty, one byte, exactly one block, one over, several blocks.
        for len in [0usize, 1, 7, 8, 9, 16, 17, 64, 65] {
            let msg = vec![0xA5u8; len];
            let t = cmac(&KEY, &msg);
            assert_eq!(t, cmac(&KEY, &msg), "len {len} not deterministic");
            if len > 0 {
                let mut flipped = msg.clone();
                flipped[len / 2] ^= 0x01;
                assert_ne!(t, cmac(&KEY, &flipped), "len {len} tamper undetected");
            }
        }
    }

    #[test]
    fn verify_matches_equality() {
        let a = cmac(&KEY, b"x");
        let b = cmac(&KEY, b"x");
        let c = cmac(&KEY, b"y");
        assert!(a.verify(&b));
        assert!(!a.verify(&c));
    }

    #[test]
    fn counter_binding_changes_tag() {
        let t1 = mac_with_counter(&KEY, 1, b"payload");
        let t2 = mac_with_counter(&KEY, 2, b"payload");
        assert_ne!(t1, t2, "counter must be authenticated");
    }

    #[test]
    fn counter_and_message_boundary_is_unambiguous() {
        // (C=0x01, msg="") must differ from (C=0, msg="\x01\0\0\0\0\0\0\0")
        // ... they actually produce the same concatenation; CMAC over the
        // same bytes is equal. What matters is that the *decoder* parses C
        // from a fixed-width field — assert the fixed width here.
        let t1 = mac_with_counter(&KEY, 0x01, b"");
        let t2 = cmac(&KEY, &[1, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!(t1, t2, "counter is a fixed 8-byte LE field");
    }

    #[test]
    fn dbl_implements_gf2_64() {
        // MSB clear: plain shift. MSB set: shift then XOR 0x1B.
        assert_eq!(dbl(0x0000_0000_0000_0001), 2);
        assert_eq!(dbl(0x8000_0000_0000_0000), 0x1B);
        assert_eq!(dbl(0xC000_0000_0000_0000), 0x8000_0000_0000_001B);
    }

    #[test]
    fn tag_bits_look_balanced() {
        // Sanity: over many tags, each output bit is sometimes 0, sometimes 1.
        let mut ones = [0u32; 64];
        let n = 256u32;
        for i in 0..n {
            let t = cmac(&KEY, &i.to_le_bytes());
            let v = u64::from_le_bytes(t.0);
            for (b, cnt) in ones.iter_mut().enumerate() {
                *cnt += ((v >> b) & 1) as u32;
            }
        }
        for (b, &c) in ones.iter().enumerate() {
            assert!(c > 64 && c < 192, "bit {b} biased: {c}/{n}");
        }
    }
}
