//! The Speck lightweight block cipher (Beaulieu et al., *The SIMON and
//! SPECK Families of Lightweight Block Ciphers*, 2013).
//!
//! Speck was designed by the NSA for constrained devices — exactly the
//! mote-class hardware the paper's sensor nodes represent — and is simple
//! enough to implement from the specification with confidence. We provide:
//!
//! * **Speck64/128** — 64-bit block, 128-bit key, 27 rounds. Used for CTR
//!   encryption and CMAC, where the small block matches the small packets
//!   of a sensor network.
//! * **Speck128/128** — 128-bit block, 128-bit key, 32 rounds. Used as the
//!   compression primitive of the [`crate::hash`] function, where a 64-bit
//!   digest would be too narrow for one-way chains.
//!
//! Both are validated against the test vectors from the design paper.

/// Rounds for Speck64/128 per the specification.
const ROUNDS_64_128: usize = 27;
/// Rounds for Speck128/128 per the specification.
const ROUNDS_128_128: usize = 32;

/// Speck64/128: expanded round keys.
#[derive(Clone)]
pub struct Speck64 {
    round_keys: [u32; ROUNDS_64_128],
}

#[inline]
fn round64(x: &mut u32, y: &mut u32, k: u32) {
    *x = x.rotate_right(8).wrapping_add(*y) ^ k;
    *y = y.rotate_left(3) ^ *x;
}

#[inline]
fn unround64(x: &mut u32, y: &mut u32, k: u32) {
    *y = (*y ^ *x).rotate_right(3);
    *x = (*x ^ k).wrapping_sub(*y).rotate_left(8);
}

impl Speck64 {
    /// Expand a 128-bit key (four little-endian `u32` words `k[0..4]`,
    /// where `k[0]` is the first key word per the reference convention).
    pub fn new(key: [u32; 4]) -> Self {
        let mut round_keys = [0u32; ROUNDS_64_128];
        let mut a = key[0];
        // ℓ registers, consumed round-robin.
        let mut l = [key[1], key[2], key[3]];
        for (i, rk) in round_keys.iter_mut().enumerate() {
            *rk = a;
            let mut li = l[i % 3];
            round64(&mut li, &mut a, i as u32);
            l[i % 3] = li;
        }
        Speck64 { round_keys }
    }

    /// Expand from 16 key bytes (little-endian words).
    pub fn from_bytes(key: &[u8; 16]) -> Self {
        let w = |i: usize| {
            u32::from_le_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]])
        };
        Speck64::new([w(0), w(1), w(2), w(3)])
    }

    /// Encrypt one block given as `(x, y)` words (x = high word in the
    /// paper's vector notation).
    pub fn encrypt_words(&self, mut x: u32, mut y: u32) -> (u32, u32) {
        for &k in &self.round_keys {
            round64(&mut x, &mut y, k);
        }
        (x, y)
    }

    /// Decrypt one block.
    pub fn decrypt_words(&self, mut x: u32, mut y: u32) -> (u32, u32) {
        for &k in self.round_keys.iter().rev() {
            unround64(&mut x, &mut y, k);
        }
        (x, y)
    }

    /// Encrypt an 8-byte block in place. Byte layout: `block[0..4]` is the
    /// `y` word, `block[4..8]` the `x` word, little-endian — matching the
    /// reference implementation's word order.
    pub fn encrypt_block(&self, block: &mut [u8; 8]) {
        let y = u32::from_le_bytes([block[0], block[1], block[2], block[3]]);
        let x = u32::from_le_bytes([block[4], block[5], block[6], block[7]]);
        let (x, y) = self.encrypt_words(x, y);
        block[..4].copy_from_slice(&y.to_le_bytes());
        block[4..].copy_from_slice(&x.to_le_bytes());
    }

    /// Decrypt an 8-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; 8]) {
        let y = u32::from_le_bytes([block[0], block[1], block[2], block[3]]);
        let x = u32::from_le_bytes([block[4], block[5], block[6], block[7]]);
        let (x, y) = self.decrypt_words(x, y);
        block[..4].copy_from_slice(&y.to_le_bytes());
        block[4..].copy_from_slice(&x.to_le_bytes());
    }
}

/// Speck128/128: expanded round keys.
#[derive(Clone)]
pub struct Speck128 {
    round_keys: [u64; ROUNDS_128_128],
}

#[inline]
fn round128(x: &mut u64, y: &mut u64, k: u64) {
    *x = x.rotate_right(8).wrapping_add(*y) ^ k;
    *y = y.rotate_left(3) ^ *x;
}

impl Speck128 {
    /// Expand a 128-bit key given as two `u64` words `(k1, k0)` where `k0`
    /// is the first key word.
    pub fn new(k1: u64, k0: u64) -> Self {
        let mut round_keys = [0u64; ROUNDS_128_128];
        let mut a = k0;
        let mut l = k1;
        for (i, rk) in round_keys.iter_mut().enumerate() {
            *rk = a;
            round128(&mut l, &mut a, i as u64);
        }
        Speck128 { round_keys }
    }

    /// Encrypt one 128-bit block given as `(x, y)` words.
    pub fn encrypt_words(&self, mut x: u64, mut y: u64) -> (u64, u64) {
        for &k in &self.round_keys {
            round128(&mut x, &mut y, k);
        }
        (x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Official test vector for Speck64/128 from the 2013 design paper:
    //   Key: 1b1a1918 13121110 0b0a0908 03020100
    //   Plaintext:  3b726574 7475432d   ("uhet retT...")
    //   Ciphertext: 8c6fa548 454e028b
    // The paper lists key words high→low; our `new` takes k[0] = first
    // (lowest) word, so the order below is reversed from the listing.
    #[test]
    fn speck64_128_official_vector() {
        let cipher = Speck64::new([0x03020100, 0x0b0a0908, 0x13121110, 0x1b1a1918]);
        let (x, y) = cipher.encrypt_words(0x3b726574, 0x7475432d);
        assert_eq!((x, y), (0x8c6fa548, 0x454e028b));
    }

    // Official test vector for Speck128/128:
    //   Key: 0f0e0d0c0b0a0908 0706050403020100
    //   Plaintext:  6c61766975716520 7469206564616d20
    //   Ciphertext: a65d985179783265 7860fedf5c570d18
    #[test]
    fn speck128_128_official_vector() {
        let cipher = Speck128::new(0x0f0e0d0c0b0a0908, 0x0706050403020100);
        let (x, y) = cipher.encrypt_words(0x6c61766975716520, 0x7469206564616d20);
        assert_eq!((x, y), (0xa65d985179783265, 0x7860fedf5c570d18));
    }

    #[test]
    fn speck64_decrypt_inverts_encrypt() {
        let cipher = Speck64::new([1, 2, 3, 4]);
        for i in 0..200u32 {
            let (x, y) = (i.wrapping_mul(0x9E3779B9), !i);
            let (cx, cy) = cipher.encrypt_words(x, y);
            assert_eq!(cipher.decrypt_words(cx, cy), (x, y));
        }
    }

    #[test]
    fn block_api_matches_word_api() {
        let key = [7u8; 16];
        let cipher = Speck64::from_bytes(&key);
        let mut block = *b"\x2d\x43\x75\x74\x74\x65\x72\x3b";
        let orig = block;
        cipher.encrypt_block(&mut block);
        assert_ne!(block, orig);
        cipher.decrypt_block(&mut block);
        assert_eq!(block, orig);
    }

    #[test]
    fn block_api_agrees_with_official_vector() {
        // Same vector as above, via the byte API. Plaintext bytes per the
        // reference C implementation: Pt = {0x2d,0x43,0x75,0x74, 0x74,...}
        let key: [u8; 16] = [
            0x00, 0x01, 0x02, 0x03, 0x08, 0x09, 0x0a, 0x0b, 0x10, 0x11, 0x12, 0x13, 0x18, 0x19,
            0x1a, 0x1b,
        ];
        let cipher = Speck64::from_bytes(&key);
        let mut block: [u8; 8] = [0x2d, 0x43, 0x75, 0x74, 0x74, 0x65, 0x72, 0x3b];
        cipher.encrypt_block(&mut block);
        assert_eq!(block, [0x8b, 0x02, 0x4e, 0x45, 0x48, 0xa5, 0x6f, 0x8c]);
    }

    #[test]
    fn different_keys_give_different_ciphertexts() {
        let a = Speck64::new([1, 2, 3, 4]);
        let b = Speck64::new([1, 2, 3, 5]);
        assert_ne!(a.encrypt_words(10, 20), b.encrypt_words(10, 20));
    }

    #[test]
    fn avalanche_on_single_bit_flip() {
        let cipher = Speck64::new([11, 22, 33, 44]);
        let (cx0, cy0) = cipher.encrypt_words(0, 0);
        let (cx1, cy1) = cipher.encrypt_words(1, 0);
        let flipped = (cx0 ^ cx1).count_ones() + (cy0 ^ cy1).count_ones();
        // Expect roughly half of 64 bits to flip; demand at least a quarter.
        assert!(flipped >= 16, "weak diffusion: {flipped} bits");
    }
}
