//! Symmetric-key cryptography substrate for SecMLR (§6 of the paper).
//!
//! The paper's secure routing protocol needs exactly the toolbox that
//! TinySec/SPINS-era sensor networks assumed:
//!
//! * a lightweight block cipher — we implement **Speck** (NSA, 2013) in the
//!   Speck64/128 and Speck128/128 variants ([`speck`]);
//! * stream encryption keyed per (sensor, gateway) pair with an incremental
//!   counter `C` — CTR mode ([`ctr`]);
//! * message authentication — CMAC over Speck64/128 ([`mac`]);
//! * a one-way function for μTESLA key chains — Davies–Meyer/
//!   Merkle–Damgård over Speck128/128 ([`hash`]);
//! * μTESLA authenticated broadcast with delayed key disclosure
//!   ([`tesla`]), used for gateway move announcements (§6.2.3);
//! * pre-distributed pairwise keys `K_ij` and replay counters ([`keys`]);
//! * an encrypt-then-MAC envelope `{M}<K,C>, MAC(K, C | {M}<K,C>)`
//!   matching Figs. 4–6 ([`envelope`]).
//!
//! No cryptography crates exist in the offline dependency set, so all
//! primitives are implemented here from their published specifications and
//! validated against official test vectors in the unit tests.
//!
//! **Scope note:** this code is written for protocol-level fidelity inside
//! a simulator (correct algorithms, real byte-level authentication), not as
//! a hardened production crypto library (no constant-time guarantees).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ctr;
pub mod envelope;
pub mod hash;
pub mod keys;
pub mod mac;
pub mod speck;
pub mod tesla;

pub use envelope::{open, seal, SealedMessage};
pub use hash::Digest;
pub use keys::{Key128, KeyStore, ReplayGuard};
pub use mac::Tag;
pub use tesla::{TeslaBroadcaster, TeslaReceiver};
