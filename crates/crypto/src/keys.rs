//! Pairwise key predistribution and replay protection.
//!
//! SecMLR assumes (§6.2): *"let each sensor node be pre-distributed secret
//! keys, each shared with a gateway"* — i.e. every (sensor `S_i`, gateway
//! `G_j`) pair shares a symmetric key `K_ij`. We derive all pairwise keys
//! from a deployment master key with a PRF (CMAC), which models the usual
//! pre-deployment loading step: nodes never exchange keys over the air.
//!
//! Replay protection follows SPINS: each pair maintains an incremental
//! counter `C`; the receiver accepts a message only if its counter is
//! strictly greater than the last accepted one ([`ReplayGuard`]).

use crate::mac::cmac;
use crate::speck::Speck64;

/// A 128-bit symmetric key.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Key128(pub [u8; 16]);

impl Key128 {
    /// Key of all zero bytes (for tests/defaults; never used on the air).
    pub const ZERO: Key128 = Key128([0u8; 16]);

    /// Expand into a Speck64/128 cipher instance.
    pub fn cipher(&self) -> Speck64 {
        Speck64::from_bytes(&self.0)
    }
}

impl std::fmt::Debug for Key128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material in traces.
        write!(f, "Key128(…)")
    }
}

/// Derive a subkey from `master` bound to a `label` and two party ids.
///
/// PRF construction: `K = CMAC(master, label || a || b) || CMAC(master,
/// label+1 || a || b)` — two 64-bit tags concatenated into 128 bits.
pub fn derive_key(master: &Key128, label: u8, a: u32, b: u32) -> Key128 {
    let mut msg = [0u8; 9];
    msg[0] = label;
    msg[1..5].copy_from_slice(&a.to_le_bytes());
    msg[5..9].copy_from_slice(&b.to_le_bytes());
    let t1 = cmac(master, &msg);
    msg[0] = label.wrapping_add(1);
    let t2 = cmac(master, &msg);
    let mut out = [0u8; 16];
    out[..8].copy_from_slice(&t1.0);
    out[8..].copy_from_slice(&t2.0);
    Key128(out)
}

/// Key-derivation labels, one per key purpose (LEAP-style separation:
/// pairwise, cluster, group keys each live in their own derivation domain).
pub mod labels {
    /// Pairwise sensor↔gateway key `K_ij`.
    pub const PAIRWISE: u8 = 0x01;
    /// μTESLA chain seed for a gateway.
    pub const TESLA_SEED: u8 = 0x10;
    /// Network-wide group key (broadcast confidentiality).
    pub const GROUP: u8 = 0x20;
}

/// The deployment-time key store held by one node.
///
/// A sensor `S_i` holds `m` pairwise keys (one per gateway); a gateway
/// `G_j` can re-derive `K_ij` for any sensor on demand because gateways
/// are trusted and resource-rich (§6.2).
#[derive(Clone, Debug)]
pub struct KeyStore {
    master: Option<Key128>,
    own_id: u32,
    pairwise: std::collections::HashMap<u32, Key128>,
}

impl KeyStore {
    /// Store for a *sensor*: pre-loads `K_ij` for each gateway id, then
    /// forgets the master key (a captured sensor must not reveal other
    /// nodes' keys — the LEAP threat model).
    pub fn for_sensor(master: &Key128, sensor_id: u32, gateway_ids: &[u32]) -> Self {
        let mut pairwise = std::collections::HashMap::new();
        for &g in gateway_ids {
            pairwise.insert(g, derive_key(master, labels::PAIRWISE, sensor_id, g));
        }
        KeyStore {
            master: None,
            own_id: sensor_id,
            pairwise,
        }
    }

    /// Store for a *gateway*: keeps the master key and derives pairwise
    /// keys lazily for any sensor.
    pub fn for_gateway(master: &Key128, gateway_id: u32) -> Self {
        KeyStore {
            master: Some(*master),
            own_id: gateway_id,
            pairwise: std::collections::HashMap::new(),
        }
    }

    /// Id of the owning node.
    pub fn own_id(&self) -> u32 {
        self.own_id
    }

    /// The key shared with `peer`, if this store can produce it.
    ///
    /// Sensors only know their pre-loaded gateways; gateways can derive the
    /// key for any sensor. The (sensor, gateway) argument order in the
    /// derivation is normalised so both sides compute the same `K_ij`.
    pub fn key_for(&mut self, peer: u32) -> Option<Key128> {
        if let Some(k) = self.pairwise.get(&peer) {
            return Some(*k);
        }
        let master = self.master?;
        // Gateway side: peer is the sensor, self is the gateway.
        let k = derive_key(&master, labels::PAIRWISE, peer, self.own_id);
        self.pairwise.insert(peer, k);
        Some(k)
    }

    /// Whether a key for `peer` is available without derivation.
    pub fn has_key(&self, peer: u32) -> bool {
        self.pairwise.contains_key(&peer) || self.master.is_some()
    }

    /// Number of gateways this (sensor) store was pre-loaded with.
    pub fn preloaded(&self) -> usize {
        self.pairwise.len()
    }
}

/// Per-peer monotone counter window for replay rejection.
///
/// `accept(c)` returns `true` and advances the window iff `c` is strictly
/// newer than everything accepted so far from that peer.
#[derive(Clone, Debug, Default)]
pub struct ReplayGuard {
    last_seen: std::collections::HashMap<u32, u64>,
}

impl ReplayGuard {
    /// Fresh guard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Validate-and-advance the counter for `peer`.
    pub fn accept(&mut self, peer: u32, counter: u64) -> bool {
        match self.last_seen.get_mut(&peer) {
            Some(last) if counter <= *last => false,
            Some(last) => {
                *last = counter;
                true
            }
            None => {
                self.last_seen.insert(peer, counter);
                true
            }
        }
    }

    /// Peek the last accepted counter for `peer`.
    pub fn last(&self, peer: u32) -> Option<u64> {
        self.last_seen.get(&peer).copied()
    }
}

/// Monotone outbound counter per peer (the sender side of `C`).
#[derive(Clone, Debug, Default)]
pub struct CounterSet {
    next: std::collections::HashMap<u32, u64>,
}

impl CounterSet {
    /// Fresh counter set; counters start at 1 so that 0 is never a valid
    /// value (and a zeroed forged packet always fails freshness).
    pub fn new() -> Self {
        Self::default()
    }

    /// Take the next counter value for `peer`.
    pub fn next_for(&mut self, peer: u32) -> u64 {
        let c = self.next.entry(peer).or_insert(1);
        let v = *c;
        *c += 1;
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MASTER: Key128 = Key128([0x5A; 16]);

    #[test]
    fn derivation_is_deterministic_and_binds_all_inputs() {
        let k = derive_key(&MASTER, labels::PAIRWISE, 3, 9);
        assert_eq!(k, derive_key(&MASTER, labels::PAIRWISE, 3, 9));
        assert_ne!(k, derive_key(&MASTER, labels::PAIRWISE, 3, 10));
        assert_ne!(k, derive_key(&MASTER, labels::PAIRWISE, 4, 9));
        assert_ne!(k, derive_key(&MASTER, labels::TESLA_SEED, 3, 9));
        assert_ne!(k, derive_key(&Key128([1; 16]), labels::PAIRWISE, 3, 9));
    }

    #[test]
    fn sensor_and_gateway_agree_on_pairwise_key() {
        let mut sensor = KeyStore::for_sensor(&MASTER, 7, &[100, 101]);
        let mut gw = KeyStore::for_gateway(&MASTER, 100);
        assert_eq!(sensor.key_for(100), gw.key_for(7));
    }

    #[test]
    fn sensor_cannot_derive_unloaded_keys() {
        let mut sensor = KeyStore::for_sensor(&MASTER, 7, &[100]);
        assert!(sensor.key_for(100).is_some());
        assert!(sensor.key_for(101).is_none(), "sensor must not hold master");
        assert_eq!(sensor.preloaded(), 1);
    }

    #[test]
    fn gateway_derives_lazily_and_caches() {
        let mut gw = KeyStore::for_gateway(&MASTER, 100);
        assert!(gw.has_key(42));
        let k1 = gw.key_for(42).unwrap();
        let k2 = gw.key_for(42).unwrap();
        assert_eq!(k1, k2);
    }

    #[test]
    fn distinct_pairs_get_distinct_keys() {
        let mut gw = KeyStore::for_gateway(&MASTER, 100);
        let keys: Vec<Key128> = (0..50).map(|s| gw.key_for(s).unwrap()).collect();
        let set: std::collections::HashSet<[u8; 16]> = keys.iter().map(|k| k.0).collect();
        assert_eq!(set.len(), 50);
    }

    #[test]
    fn replay_guard_rejects_old_and_equal_counters() {
        let mut g = ReplayGuard::new();
        assert!(g.accept(1, 5));
        assert!(!g.accept(1, 5), "equal counter is a replay");
        assert!(!g.accept(1, 4), "older counter is a replay");
        assert!(g.accept(1, 6));
        assert_eq!(g.last(1), Some(6));
    }

    #[test]
    fn replay_guard_tracks_peers_independently() {
        let mut g = ReplayGuard::new();
        assert!(g.accept(1, 10));
        assert!(g.accept(2, 1), "peer 2 has its own window");
        assert!(!g.accept(2, 1));
    }

    #[test]
    fn counters_start_at_one_and_increment() {
        let mut c = CounterSet::new();
        assert_eq!(c.next_for(9), 1);
        assert_eq!(c.next_for(9), 2);
        assert_eq!(c.next_for(8), 1);
    }

    #[test]
    fn counter_stream_is_always_accepted_in_order() {
        let mut c = CounterSet::new();
        let mut g = ReplayGuard::new();
        for _ in 0..100 {
            assert!(g.accept(3, c.next_for(3)));
        }
    }

    #[test]
    fn key_debug_does_not_leak_material() {
        let k = Key128([0xAB; 16]);
        let dbg = format!("{k:?}");
        assert!(!dbg.contains("AB") && !dbg.contains("ab") && !dbg.contains("171"));
    }
}
