//! CTR-mode encryption over Speck64/128.
//!
//! SPINS/SNEP encrypt with a block cipher in counter mode, deriving
//! semantic security from the shared counter `C` instead of sending an IV
//! — saving per-packet bytes, which the paper's energy argument depends
//! on. We follow that design: the keystream for message counter `C` is
//! `E_K(C || 0), E_K(C || 1), …` and `C` itself rides in the packet header
//! authenticated by the MAC.

use crate::keys::Key128;
use crate::speck::Speck64;

/// Encrypt or decrypt (CTR is an involution) `data` in place under
/// `key` with message counter `counter`.
pub fn xcrypt_in_place(key: &Key128, counter: u64, data: &mut [u8]) {
    let cipher = key.cipher();
    xcrypt_with(&cipher, counter, data);
}

/// As [`xcrypt_in_place`] but with a pre-expanded cipher.
pub fn xcrypt_with(cipher: &Speck64, counter: u64, data: &mut [u8]) {
    for (block_idx, chunk) in data.chunks_mut(8).enumerate() {
        // Counter block: message counter in the x word-pair domain, block
        // index in the y domain. (C, i) pairs never repeat for a key as
        // long as C never repeats, which ReplayGuard/CounterSet enforce.
        let mut block = [0u8; 8];
        block[..4].copy_from_slice(&(counter as u32).to_le_bytes());
        block[4..].copy_from_slice(&(((counter >> 32) as u32) ^ (block_idx as u32)).to_le_bytes());
        cipher.encrypt_block(&mut block);
        for (d, k) in chunk.iter_mut().zip(block.iter()) {
            *d ^= k;
        }
    }
}

/// Convenience: encrypting copy.
pub fn encrypt(key: &Key128, counter: u64, plaintext: &[u8]) -> Vec<u8> {
    let mut out = plaintext.to_vec();
    xcrypt_in_place(key, counter, &mut out);
    out
}

/// Convenience: decrypting copy (identical to [`encrypt`]; named for
/// call-site clarity).
pub fn decrypt(key: &Key128, counter: u64, ciphertext: &[u8]) -> Vec<u8> {
    encrypt(key, counter, ciphertext)
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: Key128 = Key128([0x11; 16]);

    #[test]
    fn roundtrip_various_lengths() {
        for len in [0usize, 1, 7, 8, 9, 15, 16, 100] {
            let msg: Vec<u8> = (0..len as u8).collect();
            let ct = encrypt(&KEY, 5, &msg);
            assert_eq!(decrypt(&KEY, 5, &ct), msg, "len {len}");
            if len > 0 {
                assert_ne!(ct, msg, "len {len} ciphertext equals plaintext");
            }
        }
    }

    #[test]
    fn wrong_counter_fails_to_decrypt() {
        let msg = b"routing query req";
        let ct = encrypt(&KEY, 7, msg);
        assert_ne!(decrypt(&KEY, 8, &ct), msg.to_vec());
    }

    #[test]
    fn wrong_key_fails_to_decrypt() {
        let msg = b"routing query req";
        let ct = encrypt(&KEY, 7, msg);
        assert_ne!(decrypt(&Key128([0x12; 16]), 7, &ct), msg.to_vec());
    }

    #[test]
    fn counter_gives_semantic_security() {
        // Same plaintext under different counters → different ciphertexts.
        let msg = b"identical plaintext";
        assert_ne!(encrypt(&KEY, 1, msg), encrypt(&KEY, 2, msg));
    }

    #[test]
    fn keystream_blocks_differ_within_a_message() {
        // A long run of zeros must not encrypt to a repeating pattern.
        let msg = vec![0u8; 64];
        let ct = encrypt(&KEY, 3, &msg);
        let first = &ct[..8];
        assert!(ct.chunks(8).skip(1).any(|c| c != first));
    }

    #[test]
    fn in_place_matches_copying_api() {
        let msg = b"some payload bytes!".to_vec();
        let copied = encrypt(&KEY, 9, &msg);
        let mut in_place = msg.clone();
        xcrypt_in_place(&KEY, 9, &mut in_place);
        assert_eq!(copied, in_place);
    }

    #[test]
    fn high_counter_bits_matter() {
        let msg = b"hi";
        let a = encrypt(&KEY, 1, msg);
        let b = encrypt(&KEY, 1 | (1 << 40), msg);
        assert_ne!(a, b, "upper 32 counter bits ignored");
    }
}
