//! A 128-bit one-way hash built from Speck128/128.
//!
//! μTESLA needs a public one-way function `F` for key chains
//! (`K_i = F(K_{i+1})`) and a second function `F'` to derive MAC keys from
//! chain keys. We build a Merkle–Damgård hash whose compression function is
//! the classic Davies–Meyer construction `H' = E_m(H) ⊕ H` over
//! Speck128/128 — provably one-way in the ideal-cipher model, and entirely
//! implementable from the block cipher we already have (a real constraint
//! on motes, where code space is precious).

use crate::speck::Speck128;

/// A 128-bit digest.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Digest(pub [u8; 16]);

impl Digest {
    /// All-zero digest (initial chaining value).
    pub const ZERO: Digest = Digest([0u8; 16]);

    /// Hex rendering for traces.
    pub fn to_hex(&self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl std::fmt::Debug for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Digest({}…)", &self.to_hex()[..8])
    }
}

fn words(bytes: &[u8; 16]) -> (u64, u64) {
    let mut a = [0u8; 8];
    let mut b = [0u8; 8];
    a.copy_from_slice(&bytes[..8]);
    b.copy_from_slice(&bytes[8..]);
    (u64::from_le_bytes(a), u64::from_le_bytes(b))
}

fn unwords(x: u64, y: u64) -> [u8; 16] {
    let mut out = [0u8; 16];
    out[..8].copy_from_slice(&x.to_le_bytes());
    out[8..].copy_from_slice(&y.to_le_bytes());
    out
}

/// Davies–Meyer compression: `H' = E_msg(H) ⊕ H`.
fn compress(state: &Digest, block: &[u8; 16]) -> Digest {
    let (k1, k0) = words(block);
    let cipher = Speck128::new(k1, k0);
    let (hx, hy) = words(&state.0);
    let (cx, cy) = cipher.encrypt_words(hx, hy);
    Digest(unwords(cx ^ hx, cy ^ hy))
}

/// Hash arbitrary bytes with Merkle–Damgård strengthening (10* padding plus
/// a 64-bit length block).
pub fn hash(msg: &[u8]) -> Digest {
    let mut state = Digest::ZERO;
    let mut chunks = msg.chunks_exact(16);
    for chunk in &mut chunks {
        let mut block = [0u8; 16];
        block.copy_from_slice(chunk);
        state = compress(&state, &block);
    }
    // Final padded block(s): tail || 0x80 || zeros, then a length block.
    let tail = chunks.remainder();
    let mut block = [0u8; 16];
    block[..tail.len()].copy_from_slice(tail);
    block[tail.len()] = 0x80;
    state = compress(&state, &block);
    let mut len_block = [0u8; 16];
    len_block[..8].copy_from_slice(&(msg.len() as u64).to_le_bytes());
    compress(&state, &len_block)
}

/// One step of a μTESLA key chain: `K_i = F(K_{i+1})`. Domain-separated
/// from [`derive_mac_key`] by a prefix byte.
pub fn chain_step(key: &Digest) -> Digest {
    let mut buf = [0u8; 17];
    buf[0] = 0x01;
    buf[1..].copy_from_slice(&key.0);
    hash(&buf)
}

/// Derive the per-interval MAC key from a chain key: `K'_i = F'(K_i)`.
pub fn derive_mac_key(key: &Digest) -> Digest {
    let mut buf = [0u8; 17];
    buf[0] = 0x02;
    buf[1..].copy_from_slice(&key.0);
    hash(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(hash(b"abc"), hash(b"abc"));
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(hash(b"abc"), hash(b"abd"));
        assert_ne!(hash(b""), hash(b"\0"));
    }

    #[test]
    fn length_strengthening_blocks_trivial_padding_collisions() {
        // "x" and "x\x80" followed by zeros would collide without the
        // length block.
        let a = hash(b"x");
        let mut padded = b"x".to_vec();
        padded.push(0x80);
        while padded.len() < 16 {
            padded.push(0);
        }
        assert_ne!(a, hash(&padded));
    }

    #[test]
    fn block_boundary_lengths() {
        let mut seen = std::collections::HashSet::new();
        for len in [0usize, 1, 15, 16, 17, 31, 32, 33, 100] {
            let d = hash(&vec![0x33u8; len]);
            assert!(seen.insert(d.0), "collision at len {len}");
        }
    }

    #[test]
    fn chain_step_and_mac_derivation_are_domain_separated() {
        let k = hash(b"seed");
        assert_ne!(chain_step(&k), derive_mac_key(&k));
        assert_ne!(chain_step(&k).0, k.0);
    }

    #[test]
    fn chain_is_one_way_in_shape() {
        // Walking the chain forward never revisits a value over a long run
        // (a cycle this short would break μTESLA).
        let mut k = hash(b"anchor");
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            assert!(seen.insert(k.0), "chain cycled");
            k = chain_step(&k);
        }
    }

    #[test]
    fn avalanche() {
        let a = hash(b"\x00");
        let b = hash(b"\x01");
        let flipped: u32 =
            a.0.iter()
                .zip(b.0.iter())
                .map(|(x, y)| (x ^ y).count_ones())
                .sum();
        assert!(flipped >= 32, "weak diffusion: {flipped} of 128 bits");
    }

    #[test]
    fn hex_rendering() {
        let d = Digest([0xAB; 16]);
        assert_eq!(d.to_hex(), "ab".repeat(16));
        assert!(format!("{d:?}").starts_with("Digest(abababab"));
    }
}
