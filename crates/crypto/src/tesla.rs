//! μTESLA authenticated broadcast (Perrig et al., *SPINS: Security
//! Protocols for Sensor Networks*, 2002).
//!
//! SecMLR uses μTESLA for exactly one thing: *"gateways that move broadcast
//! their new places, using TESLA protocol to achieve authenticated
//! broadcast"* (§6.2.3). Asymmetry comes from time, not public keys:
//!
//! 1. The broadcaster generates a one-way key chain `K_n → … → K_0`
//!    with `K_i = F(K_{i+1})`; the anchor `K_0` is pre-loaded on every
//!    receiver at deployment.
//! 2. Time is split into intervals. A message sent in interval `i` is
//!    MACed with `K'_i = F'(K_i)`.
//! 3. `K_i` itself is **disclosed** `d` intervals later. Receivers buffer
//!    messages that arrive while the key is provably undisclosed (the
//!    *safety test*) and authenticate them once the key arrives, verifying
//!    the key against the anchor by walking the chain.
//!
//! A forged or replayed announcement fails either the safety test (too
//! late — key already public) or the MAC — this is what defeats the
//! "attacker replays an old gateway-move broadcast" attack in experiment
//! E6's μTESLA ablation.

use crate::hash::{chain_step, derive_mac_key, hash, Digest};
use crate::mac::Tag;

/// MAC a broadcast payload with a chain-derived key (hash-based; 8-byte
/// tag, consistent with packet MACs elsewhere).
pub fn tesla_mac(interval_key: &Digest, msg: &[u8]) -> Tag {
    let mac_key = derive_mac_key(interval_key);
    // Envelope MAC: H(K' || msg || K') — the sandwich blocks extension.
    let mut buf = Vec::with_capacity(32 + msg.len());
    buf.extend_from_slice(&mac_key.0);
    buf.extend_from_slice(msg);
    buf.extend_from_slice(&mac_key.0);
    let d = hash(&buf);
    let mut tag = [0u8; 8];
    tag.copy_from_slice(&d.0[..8]);
    Tag(tag)
}

/// Broadcaster state: the full pre-computed chain plus the time schedule.
#[derive(Clone, Debug)]
pub struct TeslaBroadcaster {
    /// `chain[i]` is `K_i`; `chain[0]` is the anchor.
    chain: Vec<Digest>,
    t0: u64,
    interval: u64,
    delay: u64,
}

impl TeslaBroadcaster {
    /// Build a chain of `n_intervals` keys from `seed`, anchored at time
    /// `t0`, with interval length `interval` ticks and disclosure delay
    /// `delay` intervals (`delay ≥ 1`).
    pub fn new(seed: &Digest, n_intervals: usize, t0: u64, interval: u64, delay: u64) -> Self {
        assert!(n_intervals >= 1, "need at least one interval");
        assert!(interval > 0, "interval must be positive");
        assert!(delay >= 1, "disclosure delay must be at least 1 interval");
        // Generate K_n..K_0 then reverse so chain[i] = K_i.
        let mut chain = Vec::with_capacity(n_intervals + 1);
        let mut k = *seed;
        chain.push(k);
        for _ in 0..n_intervals {
            k = chain_step(&k);
            chain.push(k);
        }
        chain.reverse();
        TeslaBroadcaster {
            chain,
            t0,
            interval,
            delay,
        }
    }

    /// The anchor `K_0`, to pre-load on receivers.
    pub fn anchor(&self) -> Digest {
        self.chain[0]
    }

    /// Which interval the time `t` falls into (clamped to the chain).
    pub fn interval_at(&self, t: u64) -> u64 {
        if t < self.t0 {
            return 0;
        }
        ((t - self.t0) / self.interval).min((self.chain.len() - 1) as u64)
    }

    /// Last usable interval index.
    pub fn max_interval(&self) -> u64 {
        (self.chain.len() - 1) as u64
    }

    /// Authenticate `msg` for broadcast at time `t`. Returns the interval
    /// index (to ride in the packet) and the MAC tag.
    ///
    /// Interval 0 is never used: its key is the public anchor, so a
    /// message MACed with it could be forged by anyone. Messages sent
    /// during interval 0 are stamped with interval 1 (whose key is still
    /// secret — disclosure only moves later).
    pub fn authenticate(&self, t: u64, msg: &[u8]) -> (u64, Tag) {
        let i = self.interval_at(t).max(1).min(self.max_interval());
        let key = &self.chain[i as usize];
        (i, tesla_mac(key, msg))
    }

    /// The key that may be disclosed at time `t`, if any: the key of the
    /// newest interval whose disclosure time (`start + delay` intervals)
    /// has passed. Returns `(interval_index, key)`.
    pub fn disclosable(&self, t: u64) -> Option<(u64, Digest)> {
        let current = self.interval_at(t);
        // Interval i is disclosable when current >= i + delay.
        if current < self.delay {
            return None;
        }
        let i = current - self.delay;
        Some((i, self.chain[i as usize]))
    }
}

/// Outcome of presenting a broadcast message to a receiver.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReceiveOutcome {
    /// Buffered pending key disclosure.
    Buffered,
    /// Rejected: arrived at/after the disclosure time of its claimed
    /// interval, so anyone could have forged it.
    UnsafeArrival,
    /// Rejected: claims an interval beyond the chain.
    BadInterval,
}

/// Receiver state: anchor key, the schedule, and the pending buffer.
#[derive(Clone, Debug)]
pub struct TeslaReceiver {
    /// Most recent authenticated chain key and its index.
    verified_key: Digest,
    verified_index: u64,
    t0: u64,
    interval: u64,
    delay: u64,
    max_interval: u64,
    pending: Vec<(u64, Vec<u8>, Tag)>,
}

impl TeslaReceiver {
    /// Create a receiver pre-loaded with the broadcaster's anchor and
    /// schedule parameters.
    pub fn new(anchor: Digest, t0: u64, interval: u64, delay: u64, max_interval: u64) -> Self {
        TeslaReceiver {
            verified_key: anchor,
            verified_index: 0,
            t0,
            interval,
            delay,
            max_interval,
            pending: Vec::new(),
        }
    }

    /// Present a broadcast `(interval_index, msg, tag)` arriving at `now`.
    pub fn on_message(
        &mut self,
        now: u64,
        interval_index: u64,
        msg: &[u8],
        tag: Tag,
    ) -> ReceiveOutcome {
        if interval_index > self.max_interval {
            return ReceiveOutcome::BadInterval;
        }
        // Safety test: key K_i is disclosed at t0 + (i + delay)·interval.
        let disclosure_time = self
            .t0
            .saturating_add((interval_index + self.delay).saturating_mul(self.interval));
        if now >= disclosure_time {
            return ReceiveOutcome::UnsafeArrival;
        }
        self.pending.push((interval_index, msg.to_vec(), tag));
        ReceiveOutcome::Buffered
    }

    /// Present a disclosed key. If it authenticates against the chain,
    /// returns all buffered messages for that interval that verify; forged
    /// keys and messages are dropped.
    pub fn on_disclosure(&mut self, interval_index: u64, key: Digest) -> Vec<Vec<u8>> {
        if interval_index <= self.verified_index || interval_index > self.max_interval {
            return Vec::new();
        }
        // Walk the claimed key back to the last verified key.
        let steps = interval_index - self.verified_index;
        let mut probe = key;
        for _ in 0..steps {
            probe = chain_step(&probe);
        }
        if probe != self.verified_key {
            return Vec::new(); // forged key
        }
        self.verified_key = key;
        self.verified_index = interval_index;
        // Release matching buffered messages whose MAC verifies.
        let mut released = Vec::new();
        self.pending.retain(|(i, msg, tag)| {
            if *i == interval_index {
                if tesla_mac(&key, msg).verify(tag) {
                    released.push(msg.clone());
                }
                false
            } else if *i < interval_index {
                false // key for an older interval was skipped; drop
            } else {
                true
            }
        });
        released
    }

    /// Number of buffered, not-yet-authenticated messages.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(delay: u64) -> (TeslaBroadcaster, TeslaReceiver) {
        let seed = hash(b"gateway-17-chain-seed");
        let b = TeslaBroadcaster::new(&seed, 16, 1_000, 100, delay);
        let r = TeslaReceiver::new(b.anchor(), 1_000, 100, delay, b.max_interval());
        (b, r)
    }

    #[test]
    fn honest_broadcast_authenticates_after_disclosure() {
        let (b, mut r) = setup(2);
        let t_send = 1_150; // interval 1
        let (i, tag) = b.authenticate(t_send, b"gateway moved to place D");
        assert_eq!(i, 1);
        assert_eq!(
            r.on_message(t_send + 5, i, b"gateway moved to place D", tag),
            ReceiveOutcome::Buffered
        );
        // Key for interval 1 disclosable from interval 3, t = 1300.
        assert!(b.disclosable(1_250).is_none_or(|(idx, _)| idx < 1));
        let (idx, key) = b.disclosable(1_320).unwrap();
        assert_eq!(idx, 1);
        let released = r.on_disclosure(idx, key);
        assert_eq!(released, vec![b"gateway moved to place D".to_vec()]);
        assert_eq!(r.pending_len(), 0);
    }

    #[test]
    fn late_arrival_fails_safety_test() {
        let (b, mut r) = setup(1);
        let (i, tag) = b.authenticate(1_150, b"move"); // interval 1
        assert_eq!(i, 1);
        // Key for interval 1 is disclosed at t0 + 2·interval = 1200; a
        // message claiming interval 1 that arrives at 1200+ is unsafe.
        assert_eq!(
            r.on_message(1_200, i, b"move", tag),
            ReceiveOutcome::UnsafeArrival
        );
    }

    #[test]
    fn interval_zero_is_never_used_for_authentication() {
        let (b, _r) = setup(1);
        let (i, _) = b.authenticate(1_000, b"early"); // inside interval 0
        assert_eq!(i, 1, "interval 0's key is the public anchor");
    }

    #[test]
    fn replayed_announcement_is_rejected_by_safety_test() {
        // The E6 attack: adversary records a legitimate (msg, tag) pair and
        // replays it after the key went public. The safety test kills it.
        let (b, mut r) = setup(2);
        let (i, tag) = b.authenticate(1_010, b"old place A");
        assert_eq!(
            r.on_message(1_020, i, b"old place A", tag),
            ReceiveOutcome::Buffered
        );
        let (idx, key) = b.disclosable(1_250).unwrap();
        r.on_disclosure(idx, key);
        // Replay much later.
        assert_eq!(
            r.on_message(5_000, i, b"old place A", tag),
            ReceiveOutcome::UnsafeArrival
        );
    }

    #[test]
    fn forged_key_is_rejected() {
        let (b, mut r) = setup(2);
        let (i, tag) = b.authenticate(1_150, b"msg");
        r.on_message(1_160, i, b"msg", tag);
        let forged = hash(b"not the chain");
        assert!(r.on_disclosure(1, forged).is_empty());
        assert_eq!(r.pending_len(), 1, "message stays pending after bad key");
        // The genuine key still works afterwards.
        let (idx, key) = b.disclosable(1_320).unwrap();
        assert_eq!(r.on_disclosure(idx, key), vec![b"msg".to_vec()]);
    }

    #[test]
    fn tampered_message_fails_mac_on_release() {
        let (b, mut r) = setup(2);
        let (i, tag) = b.authenticate(1_150, b"place D");
        // Adversary alters the payload in flight but keeps the tag.
        r.on_message(1_160, i, b"place E", tag);
        let (idx, key) = b.disclosable(1_320).unwrap();
        assert!(r.on_disclosure(idx, key).is_empty());
    }

    #[test]
    fn chain_verification_can_skip_intervals() {
        let (b, mut r) = setup(1);
        // Nothing sent for intervals 1..4; disclose interval 5 directly.
        let key5 = {
            let (i, tag) = b.authenticate(1_550, b"late news"); // interval 5
            assert_eq!(i, 5);
            r.on_message(1_560, i, b"late news", tag);
            b.disclosable(1_000 + 6 * 100 + 10).unwrap()
        };
        assert_eq!(key5.0, 5);
        assert_eq!(r.on_disclosure(key5.0, key5.1), vec![b"late news".to_vec()]);
    }

    #[test]
    fn old_or_out_of_range_disclosures_are_ignored() {
        let (b, mut r) = setup(1);
        let (idx, key) = b.disclosable(1_210).unwrap();
        assert!(r.on_disclosure(idx, key).is_empty()); // nothing buffered, but advances
        assert!(r.on_disclosure(idx, key).is_empty()); // same again: ignored
        assert!(r.on_disclosure(999, key).is_empty()); // out of range
    }

    #[test]
    fn bad_interval_index_rejected_on_receive() {
        let (_b, mut r) = setup(1);
        assert_eq!(
            r.on_message(1_010, 10_000, b"x", Tag([0; 8])),
            ReceiveOutcome::BadInterval
        );
    }

    #[test]
    fn disclosure_before_delay_elapses_is_unavailable() {
        let (b, _r) = setup(3);
        assert!(b.disclosable(1_000).is_none());
        assert!(b.disclosable(1_299).is_none());
        assert_eq!(b.disclosable(1_300).unwrap().0, 0);
    }

    #[test]
    fn interval_clamps_at_chain_end() {
        let (b, _r) = setup(1);
        assert_eq!(b.interval_at(u64::MAX), b.max_interval());
        assert_eq!(b.interval_at(0), 0); // before t0
    }

    #[test]
    fn distinct_seeds_give_distinct_anchors() {
        let b1 = TeslaBroadcaster::new(&hash(b"s1"), 8, 0, 10, 1);
        let b2 = TeslaBroadcaster::new(&hash(b"s2"), 8, 0, 10, 1);
        assert_ne!(b1.anchor().0, b2.anchor().0);
    }
}
