//! Gateway movement schedules.
//!
//! §5.1: sensors are static while "gateway(s) Gⱼ discretely move(s) within
//! the range of its sensor network"; a *round* is the period during which
//! all gateways are static. §4.2 motivates the movement: "to balance
//! energy consumption of all sensor nodes, gateways should keep mobile
//! because sensor nodes around gateways consume more energy".
//!
//! A [`MovementSchedule`] produces, per round, the `m` occupied place ids
//! out of the feasible set `P`, plus the list of gateways that moved —
//! exactly what MLR's incremental table maintenance consumes (moved
//! gateways announce; unmoved ones stay silent, §5.3 step 2).

use crate::places::FeasiblePlaces;
use wmsn_util::SplitMix64;

/// Per-round movement policy.
#[derive(Clone, Debug)]
pub enum MovementPolicy {
    /// Gateways never move (the traditional static-sink model).
    Static,
    /// Each round, one gateway (cycling through them) advances to the
    /// next free place — the paper's Table 1 pattern, where exactly one
    /// gateway relocates per round.
    RoundRobin,
    /// Each round, each gateway moves to a random free place with
    /// probability `move_prob`.
    RandomWalk {
        /// Per-gateway per-round probability of moving.
        move_prob: f64,
    },
    /// Scripted: explicit place ids per round (used to reproduce Table 1
    /// verbatim). Rounds beyond the script repeat the last entry.
    Scripted {
        /// `rounds[r]` = occupied place ids during round `r`.
        rounds: Vec<Vec<usize>>,
    },
}

/// One round's outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoundPlacement {
    /// Occupied place ids, index = gateway index (gateway `g` sits at
    /// `places[occupied[g]]`).
    pub occupied: Vec<usize>,
    /// Gateway indices that changed place since the previous round
    /// (everyone, in round 0 — initial deployment is announced).
    pub moved: Vec<usize>,
}

/// Round-by-round placement generator.
#[derive(Clone, Debug)]
pub struct MovementSchedule {
    policy: MovementPolicy,
    n_places: usize,
    current: Vec<usize>,
    round: usize,
    rr_next_gateway: usize,
    rng: SplitMix64,
}

impl MovementSchedule {
    /// Create a schedule starting from `initial` occupied places.
    pub fn new(
        policy: MovementPolicy,
        places: &FeasiblePlaces,
        initial: Vec<usize>,
        seed: u64,
    ) -> Self {
        assert!(
            initial.iter().all(|&p| p < places.len()),
            "initial placement outside P"
        );
        MovementSchedule {
            policy,
            n_places: places.len(),
            current: initial,
            round: 0,
            rr_next_gateway: 0,
            rng: SplitMix64::new(seed).split(0x4D4F_5645), // "MOVE"
        }
    }

    /// Occupied places as of the last produced round.
    pub fn current(&self) -> &[usize] {
        &self.current
    }

    /// Rounds produced so far.
    pub fn round(&self) -> usize {
        self.round
    }

    /// A random place not currently occupied; `None` if all are taken.
    fn random_free_place(&mut self) -> Option<usize> {
        let free: Vec<usize> = (0..self.n_places)
            .filter(|p| !self.current.contains(p))
            .collect();
        if free.is_empty() {
            None
        } else {
            Some(free[self.rng.next_index(free.len())])
        }
    }

    /// Produce the next round's placement.
    pub fn next_round(&mut self) -> RoundPlacement {
        let previous = self.current.clone();
        if self.round > 0 {
            let policy = self.policy.clone();
            match policy {
                MovementPolicy::Static => {}
                MovementPolicy::RoundRobin => {
                    if !self.current.is_empty() && self.n_places > self.current.len() {
                        let g = self.rr_next_gateway % self.current.len();
                        self.rr_next_gateway += 1;
                        let mut candidate = (self.current[g] + 1) % self.n_places;
                        while self.current.contains(&candidate) {
                            candidate = (candidate + 1) % self.n_places;
                        }
                        self.current[g] = candidate;
                    }
                }
                MovementPolicy::RandomWalk { move_prob } => {
                    for g in 0..self.current.len() {
                        if self.rng.chance(move_prob) {
                            if let Some(p) = self.random_free_place() {
                                self.current[g] = p;
                            }
                        }
                    }
                }
                MovementPolicy::Scripted { ref rounds } => {
                    if let Some(spec) = rounds.get(self.round).or_else(|| rounds.last()) {
                        assert!(
                            spec.iter().all(|&p| p < self.n_places),
                            "scripted placement outside P"
                        );
                        self.current = spec.clone();
                    }
                }
            }
        } else if let MovementPolicy::Scripted { ref rounds } = self.policy {
            if let Some(spec) = rounds.first() {
                self.current = spec.clone();
            }
        }
        self.round += 1;
        let moved = if self.round == 1 {
            (0..self.current.len()).collect()
        } else {
            (0..self.current.len())
                .filter(|&g| self.current[g] != previous[g])
                .collect()
        };
        RoundPlacement {
            occupied: self.current.clone(),
            moved,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmsn_util::Rect;

    fn places(n: usize) -> FeasiblePlaces {
        FeasiblePlaces::grid(Rect::field(100.0, 100.0), n, 1)
    }

    #[test]
    fn first_round_reports_everyone_moved() {
        let p = places(5);
        let mut s = MovementSchedule::new(MovementPolicy::Static, &p, vec![0, 1, 2], 7);
        let r = s.next_round();
        assert_eq!(r.occupied, vec![0, 1, 2]);
        assert_eq!(r.moved, vec![0, 1, 2]);
    }

    #[test]
    fn static_policy_never_moves_after_round_one() {
        let p = places(5);
        let mut s = MovementSchedule::new(MovementPolicy::Static, &p, vec![0, 1], 7);
        s.next_round();
        for _ in 0..5 {
            let r = s.next_round();
            assert_eq!(r.occupied, vec![0, 1]);
            assert!(r.moved.is_empty());
        }
    }

    #[test]
    fn round_robin_moves_exactly_one_gateway_per_round() {
        let p = places(5);
        let mut s = MovementSchedule::new(MovementPolicy::RoundRobin, &p, vec![0, 1, 2], 7);
        s.next_round();
        for _ in 0..8 {
            let r = s.next_round();
            assert_eq!(r.moved.len(), 1, "exactly one mover: {:?}", r);
            // Occupied places stay distinct.
            let set: std::collections::HashSet<_> = r.occupied.iter().collect();
            assert_eq!(set.len(), 3);
        }
    }

    #[test]
    fn round_robin_visits_every_place_eventually() {
        let p = places(6);
        let mut s = MovementSchedule::new(MovementPolicy::RoundRobin, &p, vec![0, 1], 7);
        let mut visited: std::collections::HashSet<usize> = std::collections::HashSet::new();
        for _ in 0..30 {
            let r = s.next_round();
            visited.extend(r.occupied.iter().copied());
        }
        assert_eq!(visited.len(), 6, "all of P visited: {visited:?}");
    }

    #[test]
    fn round_robin_with_m_equals_p_stays_put() {
        let p = places(2);
        let mut s = MovementSchedule::new(MovementPolicy::RoundRobin, &p, vec![0, 1], 7);
        s.next_round();
        let r = s.next_round();
        assert!(r.moved.is_empty(), "no free place to move to");
    }

    #[test]
    fn random_walk_keeps_places_distinct_and_in_range() {
        let p = places(6);
        let mut s = MovementSchedule::new(
            MovementPolicy::RandomWalk { move_prob: 0.8 },
            &p,
            vec![0, 1, 2],
            42,
        );
        for _ in 0..20 {
            let r = s.next_round();
            assert!(r.occupied.iter().all(|&x| x < 6));
            let set: std::collections::HashSet<_> = r.occupied.iter().collect();
            assert_eq!(set.len(), 3, "distinct places: {:?}", r.occupied);
        }
    }

    #[test]
    fn random_walk_zero_probability_is_static() {
        let p = places(6);
        let mut s = MovementSchedule::new(
            MovementPolicy::RandomWalk { move_prob: 0.0 },
            &p,
            vec![3, 4],
            42,
        );
        s.next_round();
        for _ in 0..5 {
            assert!(s.next_round().moved.is_empty());
        }
    }

    #[test]
    fn scripted_reproduces_the_papers_table1_rounds() {
        // Table 1: round 1 = {A,B,C}, round 2 = {A,C,D} (B moved to D),
        // round 3 = {E,C,D} (A moved to E). Place ids: A=0 B=1 C=2 D=3 E=4.
        let p = places(5);
        let script = vec![vec![0, 1, 2], vec![0, 3, 2], vec![4, 3, 2]];
        let mut s = MovementSchedule::new(
            MovementPolicy::Scripted { rounds: script },
            &p,
            vec![0, 1, 2],
            7,
        );
        let r1 = s.next_round();
        assert_eq!(r1.occupied, vec![0, 1, 2]);
        let r2 = s.next_round();
        assert_eq!(r2.occupied, vec![0, 3, 2]);
        assert_eq!(r2.moved, vec![1], "only gateway 1 (B→D) moved");
        let r3 = s.next_round();
        assert_eq!(r3.occupied, vec![4, 3, 2]);
        assert_eq!(r3.moved, vec![0], "only gateway 0 (A→E) moved");
        // Past the script: repeats the last round.
        let r4 = s.next_round();
        assert_eq!(r4.occupied, vec![4, 3, 2]);
        assert!(r4.moved.is_empty());
    }

    #[test]
    #[should_panic(expected = "initial placement outside P")]
    fn initial_out_of_range_panics() {
        let p = places(3);
        let _ = MovementSchedule::new(MovementPolicy::Static, &p, vec![5], 7);
    }

    #[test]
    fn determinism_by_seed() {
        let p = places(8);
        let run = |seed| {
            let mut s = MovementSchedule::new(
                MovementPolicy::RandomWalk { move_prob: 0.5 },
                &p,
                vec![0, 1, 2],
                seed,
            );
            (0..10).map(|_| s.next_round().occupied).collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }
}
