//! Topology control (§4.4): power control and sleep scheduling.
//!
//! The paper names the two standard families: *"power control adjusts
//! sensors' transmission power … to save energy"* and *"sleep scheduling
//! controls sensors between work and sleep states"*. We implement one
//! canonical representative of each:
//!
//! * [`critical_range`] — the minimal common transmission range that keeps
//!   the field connected (binary search over the sorted pairwise-distance
//!   candidates; the answer is always one of them). Running the network at
//!   this range minimises per-hop amplifier energy under a common-power
//!   regime.
//! * [`gaf_sleep_schedule`] — GAF-style (Xu, Heidemann & Estrin 2001,
//!   cited as \[26\]) virtual-grid scheduling: cells of side `r/√5` ensure
//!   any node in a cell can talk to any node in a 4-adjacent cell, so one
//!   awake node per cell preserves routing fidelity while the rest sleep.

use wmsn_util::geom::unit_disk_adjacency;
use wmsn_util::Point;

use crate::connectivity::is_connected;

/// The minimal common radio range (a pairwise distance) at which the
/// point set is connected. Returns `None` for fields that cannot connect
/// (fewer than 2 points are trivially connected → `Some(0.0)`).
pub fn critical_range(points: &[Point]) -> Option<f64> {
    if points.len() < 2 {
        return Some(0.0);
    }
    // Candidate ranges: all pairwise distances, sorted.
    let mut dists = Vec::with_capacity(points.len() * (points.len() - 1) / 2);
    for i in 0..points.len() {
        for j in i + 1..points.len() {
            dists.push(points[i].dist(points[j]));
        }
    }
    dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
    // Binary search the smallest candidate that connects. The nudge
    // compensates for sqrt/square rounding: a candidate IS one of the
    // pairwise distances, so its own edge must count as in range.
    let connected_at = |r: f64| is_connected(&unit_disk_adjacency(points, r * (1.0 + 1e-12)));
    if !connected_at(*dists.last().unwrap()) {
        return None; // cannot happen for finite points, kept for safety
    }
    let mut lo = 0usize;
    let mut hi = dists.len() - 1;
    while lo < hi {
        let mid = (lo + hi) / 2;
        if connected_at(dists[mid]) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(dists[lo])
}

/// GAF virtual-grid sleep schedule: partition nodes into cells of side
/// `range / √5` and keep awake, per cell, the node with the highest
/// residual energy (ties → lowest index). Returns `awake[i]` flags.
///
/// `energies[i]` is node `i`'s residual energy; pass uniform values to get
/// plain leader-per-cell behaviour.
pub fn gaf_sleep_schedule(points: &[Point], energies: &[f64], range: f64) -> Vec<bool> {
    assert_eq!(points.len(), energies.len());
    if points.is_empty() {
        return Vec::new();
    }
    assert!(range > 0.0, "range must be positive");
    let cell = range / 5f64.sqrt();
    let mut leaders: std::collections::HashMap<(i64, i64), usize> =
        std::collections::HashMap::new();
    for (i, p) in points.iter().enumerate() {
        let key = ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64);
        match leaders.get_mut(&key) {
            Some(best) => {
                if energies[i] > energies[*best] {
                    *best = i;
                }
            }
            None => {
                leaders.insert(key, i);
            }
        }
    }
    let mut awake = vec![false; points.len()];
    for (_, &i) in leaders.iter() {
        awake[i] = true;
    }
    awake
}

/// Fraction of nodes kept awake by a schedule.
pub fn awake_fraction(awake: &[bool]) -> f64 {
    if awake.is_empty() {
        return 0.0;
    }
    awake.iter().filter(|&&a| a).count() as f64 / awake.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmsn_util::{Rect, SplitMix64};

    #[test]
    fn critical_range_of_a_chain_is_the_longest_gap() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(25.0, 0.0), // 15 m gap — the critical link
            Point::new(30.0, 0.0),
        ];
        let r = critical_range(&pts).unwrap();
        assert!((r - 15.0).abs() < 1e-9);
        // Just below disconnects; at r connects.
        assert!(!is_connected(&unit_disk_adjacency(&pts, r - 1e-6)));
        assert!(is_connected(&unit_disk_adjacency(&pts, r)));
    }

    #[test]
    fn critical_range_trivial_cases() {
        assert_eq!(critical_range(&[]), Some(0.0));
        assert_eq!(critical_range(&[Point::new(3.0, 4.0)]), Some(0.0));
        let two = [Point::new(0.0, 0.0), Point::new(7.0, 0.0)];
        assert!((critical_range(&two).unwrap() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn critical_range_on_random_fields_matches_linear_scan() {
        let mut rng = SplitMix64::new(5);
        let field = Rect::field(50.0, 50.0);
        let pts: Vec<Point> = (0..40)
            .map(|_| {
                Point::new(
                    rng.range_f64(field.min.x, field.max.x),
                    rng.range_f64(field.min.y, field.max.y),
                )
            })
            .collect();
        let fast = critical_range(&pts).unwrap();
        // Linear scan over the same candidates.
        let mut dists: Vec<f64> = Vec::new();
        for i in 0..pts.len() {
            for j in i + 1..pts.len() {
                dists.push(pts[i].dist(pts[j]));
            }
        }
        dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let slow = dists
            .iter()
            .copied()
            .find(|&r| is_connected(&unit_disk_adjacency(&pts, r)))
            .unwrap();
        assert!((fast - slow).abs() < 1e-12);
    }

    #[test]
    fn gaf_keeps_one_leader_per_cell() {
        // Two tight clumps far apart: exactly two awake nodes.
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(0.1, 0.1),
            Point::new(0.2, 0.0),
            Point::new(50.0, 50.0),
            Point::new(50.1, 50.1),
        ];
        let awake = gaf_sleep_schedule(&pts, &[1.0; 5], 10.0);
        assert_eq!(awake.iter().filter(|&&a| a).count(), 2);
    }

    #[test]
    fn gaf_prefers_the_highest_energy_node() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(0.1, 0.0)];
        let awake = gaf_sleep_schedule(&pts, &[0.2, 0.9], 10.0);
        assert_eq!(awake, vec![false, true]);
    }

    #[test]
    fn gaf_saves_energy_on_dense_fields() {
        let mut rng = SplitMix64::new(6);
        let pts: Vec<Point> = (0..400)
            .map(|_| Point::new(rng.range_f64(0.0, 100.0), rng.range_f64(0.0, 100.0)))
            .collect();
        let awake = gaf_sleep_schedule(&pts, &vec![1.0; 400], 30.0);
        let frac = awake_fraction(&awake);
        assert!(frac < 0.5, "dense field should sleep >50%: {frac}");
        assert!(frac > 0.0);
    }

    #[test]
    fn gaf_awake_set_preserves_connectivity_of_dense_fields() {
        // Grid-dense field: the awake subgraph at the full range must stay
        // connected (GAF's design guarantee given ≥1 node per cell).
        let mut pts = Vec::new();
        for x in 0..20 {
            for y in 0..20 {
                pts.push(Point::new(x as f64 * 2.0, y as f64 * 2.0));
            }
        }
        let range = 10.0;
        let awake = gaf_sleep_schedule(&pts, &vec![1.0; pts.len()], range);
        let awake_pts: Vec<Point> = pts
            .iter()
            .zip(&awake)
            .filter(|(_, &a)| a)
            .map(|(p, _)| *p)
            .collect();
        assert!(is_connected(&unit_disk_adjacency(&awake_pts, range)));
    }

    #[test]
    fn gaf_empty_input() {
        assert!(gaf_sleep_schedule(&[], &[], 10.0).is_empty());
        assert_eq!(awake_fraction(&[]), 0.0);
    }
}
