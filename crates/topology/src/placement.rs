//! Gateway placement: choosing which `m` feasible places to occupy.
//!
//! §4.1's "gateway deployment model" asks where to put gateways so that
//! total energy is minimised while per-node consumption stays balanced.
//! Hop count is the proxy for energy under the paper's identical-power
//! assumption, so every algorithm here is scored by the mean sensor→
//! nearest-gateway hop count ([`evaluate_mean_hops`]):
//!
//! * [`PlacementAlgorithm::Random`] — the baseline every heuristic must beat.
//! * [`PlacementAlgorithm::KMeans`] — Lloyd iterations on sensor
//!   positions, centroids snapped to distinct feasible places; minimises
//!   mean *distance*, a good surrogate for mean hops.
//! * [`PlacementAlgorithm::GreedyKCenter`] — farthest-point traversal;
//!   minimises the *maximum* distance, favouring worst-case hop bounds.
//! * [`PlacementAlgorithm::ExhaustiveHops`] — the exact optimum of the
//!   hop objective by enumerating all `C(|P|, m)` subsets; tractable for
//!   the small `|P|` the paper's MLR tables assume.

use crate::connectivity::HopField;
use crate::places::FeasiblePlaces;
use crate::Topology;
use wmsn_util::{Point, Rect, SplitMix64};

/// Placement algorithm selector.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PlacementAlgorithm {
    /// Uniformly random `m`-subset of `P`.
    Random,
    /// Lloyd's k-means on sensor positions, snapped to feasible places.
    KMeans {
        /// Lloyd iterations.
        iterations: usize,
    },
    /// Greedy k-center (farthest-point) over sensors, choosing places.
    GreedyKCenter,
    /// Exact minimiser of mean sensor hops over all subsets (small `|P|`).
    ExhaustiveHops,
}

/// Score a gateway subset: mean sensor hop count to the nearest gateway
/// (unreachable sensors count as `penalty_hops`).
pub fn evaluate_mean_hops(
    sensors: &[Point],
    field: Rect,
    range: f64,
    gateways: &[Point],
    penalty_hops: f64,
) -> f64 {
    let topo = Topology::new(sensors.to_vec(), gateways.to_vec(), field, range);
    let hf = HopField::compute(&topo);
    let n = sensors.len();
    if n == 0 {
        return 0.0;
    }
    hf.hops[..n]
        .iter()
        .map(|&h| {
            if h == u32::MAX {
                penalty_hops
            } else {
                f64::from(h)
            }
        })
        .sum::<f64>()
        / n as f64
}

/// Choose `m` place ids from `places` for the given sensor field.
pub fn place_gateways(
    algorithm: PlacementAlgorithm,
    sensors: &[Point],
    field: Rect,
    range: f64,
    places: &FeasiblePlaces,
    m: usize,
    rng: &mut SplitMix64,
) -> Vec<usize> {
    assert!(
        m <= places.len(),
        "cannot occupy {m} of {} places",
        places.len()
    );
    if m == 0 {
        return Vec::new();
    }
    match algorithm {
        PlacementAlgorithm::Random => rng.sample_indices(places.len(), m),
        PlacementAlgorithm::KMeans { iterations } => {
            kmeans_placement(sensors, places, m, iterations, rng)
        }
        PlacementAlgorithm::GreedyKCenter => k_center_placement(sensors, places, m),
        PlacementAlgorithm::ExhaustiveHops => {
            exhaustive_placement(sensors, field, range, places, m)
        }
    }
}

fn nearest_place(p: Point, places: &FeasiblePlaces, taken: &[usize]) -> usize {
    let mut best = usize::MAX;
    let mut best_d = f64::INFINITY;
    for (id, q) in places.places.iter().enumerate() {
        if taken.contains(&id) {
            continue;
        }
        let d = p.dist_sq(*q);
        if d < best_d {
            best_d = d;
            best = id;
        }
    }
    best
}

fn kmeans_placement(
    sensors: &[Point],
    places: &FeasiblePlaces,
    m: usize,
    iterations: usize,
    rng: &mut SplitMix64,
) -> Vec<usize> {
    if sensors.is_empty() {
        return rng.sample_indices(places.len(), m);
    }
    // Initialise centroids at random sensors.
    let mut centroids: Vec<Point> = rng
        .sample_indices(sensors.len(), m.min(sensors.len()))
        .into_iter()
        .map(|i| sensors[i])
        .collect();
    while centroids.len() < m {
        // More clusters than sensors: fill with random places.
        let id = rng.next_index(places.len());
        centroids.push(places.position(id));
    }
    for _ in 0..iterations {
        // Assign.
        let mut sums = vec![(0.0f64, 0.0f64, 0usize); m];
        for s in sensors {
            let k = centroids
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| s.dist_sq(**a).partial_cmp(&s.dist_sq(**b)).unwrap())
                .map(|(k, _)| k)
                .unwrap_or(0);
            sums[k].0 += s.x;
            sums[k].1 += s.y;
            sums[k].2 += 1;
        }
        // Update (empty clusters keep their centroid).
        for (k, c) in centroids.iter_mut().enumerate() {
            if sums[k].2 > 0 {
                *c = Point::new(sums[k].0 / sums[k].2 as f64, sums[k].1 / sums[k].2 as f64);
            }
        }
    }
    // Snap to distinct places.
    let mut chosen = Vec::with_capacity(m);
    for c in centroids {
        let id = nearest_place(c, places, &chosen);
        if id != usize::MAX {
            chosen.push(id);
        }
    }
    // Top up if snapping collided more than places allowed.
    let mut id = 0;
    while chosen.len() < m {
        if !chosen.contains(&id) {
            chosen.push(id);
        }
        id += 1;
    }
    chosen
}

fn k_center_placement(sensors: &[Point], places: &FeasiblePlaces, m: usize) -> Vec<usize> {
    if sensors.is_empty() {
        return (0..m).collect();
    }
    // Start with the place nearest the field centroid of the sensors.
    let centroid = Point::new(
        sensors.iter().map(|p| p.x).sum::<f64>() / sensors.len() as f64,
        sensors.iter().map(|p| p.y).sum::<f64>() / sensors.len() as f64,
    );
    let mut chosen = vec![nearest_place(centroid, places, &[])];
    while chosen.len() < m {
        // Find the sensor farthest from all chosen places, then the free
        // place nearest to it.
        let farthest = sensors
            .iter()
            .max_by(|a, b| {
                let da = chosen
                    .iter()
                    .map(|&id| a.dist_sq(places.position(id)))
                    .fold(f64::INFINITY, f64::min);
                let db = chosen
                    .iter()
                    .map(|&id| b.dist_sq(places.position(id)))
                    .fold(f64::INFINITY, f64::min);
                da.partial_cmp(&db).unwrap()
            })
            .copied()
            .unwrap();
        let next = nearest_place(farthest, places, &chosen);
        if next == usize::MAX {
            break;
        }
        chosen.push(next);
    }
    let mut id = 0;
    while chosen.len() < m {
        if !chosen.contains(&id) {
            chosen.push(id);
        }
        id += 1;
    }
    chosen
}

fn exhaustive_placement(
    sensors: &[Point],
    field: Rect,
    range: f64,
    places: &FeasiblePlaces,
    m: usize,
) -> Vec<usize> {
    let p = places.len();
    assert!(
        binomial(p, m) <= 200_000,
        "C({p},{m}) too large for exhaustive placement"
    );
    let mut best: Option<(f64, Vec<usize>)> = None;
    let mut subset: Vec<usize> = (0..m).collect();
    loop {
        let gws: Vec<Point> = subset.iter().map(|&id| places.position(id)).collect();
        let score = evaluate_mean_hops(sensors, field, range, &gws, 1e6);
        if best.as_ref().is_none_or(|(s, _)| score < *s) {
            best = Some((score, subset.clone()));
        }
        // Next combination in lexicographic order.
        let mut i = m;
        loop {
            if i == 0 {
                return best.unwrap().1;
            }
            i -= 1;
            if subset[i] != i + p - m {
                break;
            }
        }
        subset[i] += 1;
        for j in i + 1..m {
            subset[j] = subset[j - 1] + 1;
        }
    }
}

fn binomial(n: usize, k: usize) -> usize {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: usize = 1;
    for i in 0..k {
        acc = acc.saturating_mul(n - i) / (i + 1);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::Deployment;

    fn setup() -> (Vec<Point>, Rect, FeasiblePlaces, SplitMix64) {
        let field = Rect::field(100.0, 100.0);
        let mut rng = SplitMix64::new(11);
        let sensors = Deployment::Uniform { n: 120 }.generate(field, &mut rng);
        let places = FeasiblePlaces::grid(field, 3, 3);
        (sensors, field, places, rng)
    }

    #[test]
    fn all_algorithms_return_m_distinct_places() {
        let (sensors, field, places, mut rng) = setup();
        for alg in [
            PlacementAlgorithm::Random,
            PlacementAlgorithm::KMeans { iterations: 8 },
            PlacementAlgorithm::GreedyKCenter,
            PlacementAlgorithm::ExhaustiveHops,
        ] {
            let chosen = place_gateways(alg, &sensors, field, 25.0, &places, 3, &mut rng);
            assert_eq!(chosen.len(), 3, "{alg:?}");
            let set: std::collections::HashSet<_> = chosen.iter().collect();
            assert_eq!(set.len(), 3, "{alg:?} returned duplicates");
            assert!(chosen.iter().all(|&id| id < places.len()));
        }
    }

    #[test]
    fn exhaustive_is_at_least_as_good_as_random() {
        let (sensors, field, places, mut rng) = setup();
        let range = 25.0;
        let score = |ids: &[usize]| {
            let gws: Vec<Point> = ids.iter().map(|&i| places.position(i)).collect();
            evaluate_mean_hops(&sensors, field, range, &gws, 1e6)
        };
        let best = place_gateways(
            PlacementAlgorithm::ExhaustiveHops,
            &sensors,
            field,
            range,
            &places,
            2,
            &mut rng,
        );
        for _ in 0..5 {
            let rand = place_gateways(
                PlacementAlgorithm::Random,
                &sensors,
                field,
                range,
                &places,
                2,
                &mut rng,
            );
            assert!(score(&best) <= score(&rand) + 1e-9);
        }
    }

    #[test]
    fn kmeans_beats_random_on_clustered_fields() {
        let field = Rect::field(100.0, 100.0);
        let mut rng = SplitMix64::new(21);
        let sensors = Deployment::Clustered {
            n: 150,
            clusters: 3,
            sigma: 5.0,
        }
        .generate(field, &mut rng);
        let places = FeasiblePlaces::grid(field, 4, 4);
        let range = 20.0;
        let score = |ids: &[usize]| {
            let gws: Vec<Point> = ids.iter().map(|&i| places.position(i)).collect();
            evaluate_mean_hops(&sensors, field, range, &gws, 50.0)
        };
        let km = place_gateways(
            PlacementAlgorithm::KMeans { iterations: 12 },
            &sensors,
            field,
            range,
            &places,
            3,
            &mut rng,
        );
        // Average several random draws to avoid a lucky one.
        let mut rand_total = 0.0;
        let trials = 10;
        for _ in 0..trials {
            let r = place_gateways(
                PlacementAlgorithm::Random,
                &sensors,
                field,
                range,
                &places,
                3,
                &mut rng,
            );
            rand_total += score(&r);
        }
        assert!(
            score(&km) <= rand_total / trials as f64,
            "k-means {} vs random avg {}",
            score(&km),
            rand_total / trials as f64
        );
    }

    #[test]
    fn m_zero_and_m_equals_p() {
        let (sensors, field, places, mut rng) = setup();
        let none = place_gateways(
            PlacementAlgorithm::Random,
            &sensors,
            field,
            25.0,
            &places,
            0,
            &mut rng,
        );
        assert!(none.is_empty());
        let all = place_gateways(
            PlacementAlgorithm::GreedyKCenter,
            &sensors,
            field,
            25.0,
            &places,
            places.len(),
            &mut rng,
        );
        assert_eq!(all.len(), places.len());
    }

    #[test]
    #[should_panic(expected = "cannot occupy")]
    fn m_greater_than_p_panics() {
        let (sensors, field, places, mut rng) = setup();
        let _ = place_gateways(
            PlacementAlgorithm::Random,
            &sensors,
            field,
            25.0,
            &places,
            places.len() + 1,
            &mut rng,
        );
    }

    #[test]
    fn evaluate_penalises_uncovered_sensors() {
        let field = Rect::field(100.0, 100.0);
        let sensors = vec![Point::new(0.0, 0.0), Point::new(99.0, 99.0)];
        // One gateway near the first sensor only; range too short for the
        // second.
        let score = evaluate_mean_hops(&sensors, field, 10.0, &[Point::new(5.0, 0.0)], 100.0);
        assert!((score - (1.0 + 100.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn binomial_sanity() {
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(8, 0), 1);
        assert_eq!(binomial(3, 5), 0);
        assert_eq!(binomial(20, 10), 184_756);
    }
}
