//! Sensor deployment generators.
//!
//! The paper's fields are "hundreds or even thousands of sensors
//! (randomly) distributed in a monitoring area" (§2.1). Three generators
//! cover the evaluation:
//!
//! * [`Deployment::Uniform`] — i.i.d. uniform over the field (the default
//!   workload; SPR "has good performance for sensor networks with nodes
//!   distributed evenly", §5.2).
//! * [`Deployment::JitteredGrid`] — engineered deployments (building /
//!   HVAC monitoring) with bounded placement error.
//! * [`Deployment::Clustered`] — uneven fields (the case MLR exists for:
//!   "if sensor nodes are unevenly distributed, some nodes … take charge
//!   of too heavy forwarding tasks and die before others", §5.3).

use wmsn_util::{Point, Rect, SplitMix64};

/// A deployment recipe.
#[derive(Clone, Debug)]
pub enum Deployment {
    /// `n` points uniform over the field.
    Uniform {
        /// Number of sensors.
        n: usize,
    },
    /// Points on a √n × √n grid, each jittered by up to `jitter` metres
    /// per axis.
    JitteredGrid {
        /// Number of sensors (rounded up to a full grid).
        n: usize,
        /// Maximum per-axis jitter in metres.
        jitter: f64,
    },
    /// `clusters` Gaussian blobs with standard deviation `sigma`, centres
    /// uniform over the field, points clipped to the field.
    Clustered {
        /// Total number of sensors.
        n: usize,
        /// Number of cluster centres.
        clusters: usize,
        /// Cluster standard deviation in metres.
        sigma: f64,
    },
}

impl Deployment {
    /// Generate sensor positions inside `field` using `rng`.
    pub fn generate(&self, field: Rect, rng: &mut SplitMix64) -> Vec<Point> {
        match *self {
            Deployment::Uniform { n } => (0..n)
                .map(|_| {
                    Point::new(
                        rng.range_f64(field.min.x, field.max.x),
                        rng.range_f64(field.min.y, field.max.y),
                    )
                })
                .collect(),
            Deployment::JitteredGrid { n, jitter } => {
                if n == 0 {
                    return Vec::new();
                }
                let cols = (n as f64).sqrt().ceil() as usize;
                let rows = n.div_ceil(cols);
                let dx = field.width() / cols as f64;
                let dy = field.height() / rows as f64;
                let mut pts = Vec::with_capacity(n);
                'outer: for r in 0..rows {
                    for c in 0..cols {
                        if pts.len() == n {
                            break 'outer;
                        }
                        let base = Point::new(
                            field.min.x + (c as f64 + 0.5) * dx,
                            field.min.y + (r as f64 + 0.5) * dy,
                        );
                        let jittered = Point::new(
                            base.x + rng.range_f64(-jitter, jitter),
                            base.y + rng.range_f64(-jitter, jitter),
                        );
                        pts.push(field.clamp(jittered));
                    }
                }
                pts
            }
            Deployment::Clustered { n, clusters, sigma } => {
                let k = clusters.max(1);
                let centres: Vec<Point> = (0..k)
                    .map(|_| {
                        Point::new(
                            rng.range_f64(field.min.x, field.max.x),
                            rng.range_f64(field.min.y, field.max.y),
                        )
                    })
                    .collect();
                (0..n)
                    .map(|i| {
                        let c = centres[i % k];
                        let p = Point::new(
                            c.x + rng.next_gaussian() * sigma,
                            c.y + rng.next_gaussian() * sigma,
                        );
                        field.clamp(p)
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field() -> Rect {
        Rect::field(100.0, 100.0)
    }

    #[test]
    fn uniform_generates_n_points_in_field() {
        let mut rng = SplitMix64::new(1);
        let pts = Deployment::Uniform { n: 250 }.generate(field(), &mut rng);
        assert_eq!(pts.len(), 250);
        assert!(pts.iter().all(|p| field().contains(*p)));
    }

    #[test]
    fn uniform_is_seed_deterministic() {
        let gen = |seed| {
            let mut rng = SplitMix64::new(seed);
            Deployment::Uniform { n: 10 }.generate(field(), &mut rng)
        };
        assert_eq!(gen(5), gen(5));
        assert_ne!(gen(5), gen(6));
    }

    #[test]
    fn grid_covers_field_roughly_evenly() {
        let mut rng = SplitMix64::new(2);
        let pts = Deployment::JitteredGrid {
            n: 100,
            jitter: 0.0,
        }
        .generate(field(), &mut rng);
        assert_eq!(pts.len(), 100);
        // Zero jitter 10×10 grid: first point at cell centre (5,5).
        assert_eq!(pts[0], Point::new(5.0, 5.0));
        assert_eq!(pts[99], Point::new(95.0, 95.0));
    }

    #[test]
    fn grid_handles_non_square_counts() {
        let mut rng = SplitMix64::new(3);
        for n in [1usize, 2, 7, 12, 50] {
            let pts = Deployment::JitteredGrid { n, jitter: 1.0 }.generate(field(), &mut rng);
            assert_eq!(pts.len(), n, "n={n}");
            assert!(pts.iter().all(|p| field().contains(*p)));
        }
        let none = Deployment::JitteredGrid { n: 0, jitter: 1.0 }.generate(field(), &mut rng);
        assert!(none.is_empty());
    }

    #[test]
    fn clustered_points_hug_their_centres() {
        let mut rng = SplitMix64::new(4);
        let pts = Deployment::Clustered {
            n: 300,
            clusters: 3,
            sigma: 3.0,
        }
        .generate(field(), &mut rng);
        assert_eq!(pts.len(), 300);
        assert!(pts.iter().all(|p| field().contains(*p)));
        // Mean nearest-neighbour distance should be far below uniform's.
        let mut rng2 = SplitMix64::new(4);
        let uni = Deployment::Uniform { n: 300 }.generate(field(), &mut rng2);
        let mean_nn = |pts: &[Point]| {
            pts.iter()
                .enumerate()
                .map(|(i, p)| {
                    pts.iter()
                        .enumerate()
                        .filter(|(j, _)| *j != i)
                        .map(|(_, q)| p.dist(*q))
                        .fold(f64::INFINITY, f64::min)
                })
                .sum::<f64>()
                / pts.len() as f64
        };
        assert!(mean_nn(&pts) < mean_nn(&uni));
    }

    #[test]
    fn clustered_with_one_cluster_is_one_blob() {
        let mut rng = SplitMix64::new(5);
        let pts = Deployment::Clustered {
            n: 50,
            clusters: 1,
            sigma: 2.0,
        }
        .generate(field(), &mut rng);
        // Spread (max pairwise distance) bounded by a few sigma.
        let spread = pts
            .iter()
            .flat_map(|p| pts.iter().map(move |q| p.dist(*q)))
            .fold(0.0, f64::max);
        assert!(spread < 30.0, "spread {spread}");
    }
}
