//! Concrete topologies realising the paper's worked examples.
//!
//! The paper's Fig. 2 and Table 1 are stated in hop counts, not
//! coordinates; these builders lay out geometric fields whose unit-disk
//! graphs reproduce those hop counts *exactly*, so experiments E1 and E2
//! can assert the paper's numbers verbatim.
//!
//! * [`fig2_single_sink`] / [`fig2_three_gateways`] — Fig. 2's example:
//!   with one sink, S1..S4 reach it in 2, 7, 6, 9 hops; with three
//!   gateways the same sensors reach their best gateways in 1, 1, 1, 2
//!   hops.
//! * [`table1_topology`] — the MLR walkthrough: a node `S_i` whose hop
//!   counts to feasible places A..E are 8, 6, 7, 5, 6 (Table 1), with the
//!   scripted round sequence {A,B,C} → {A,D,C} → {E,D,C}.

use crate::Topology;
use wmsn_util::{Point, Rect};

/// Radio range used by all paper example fields (m).
pub const PAPER_RANGE: f64 = 10.0;

/// Index of S1..S4 within the sensor list of the Fig. 2 topologies.
pub const FIG2_NAMED: [usize; 4] = [0, 1, 2, 3];

/// Hop counts Fig. 2(a) reports for S1..S4 with a single sink.
pub const FIG2_SINGLE_SINK_HOPS: [u32; 4] = [2, 7, 6, 9];

/// Hop counts Fig. 2(b) reports for S1..S4 with three gateways.
pub const FIG2_THREE_GATEWAY_HOPS: [u32; 4] = [1, 1, 1, 2];

fn fig2_sensors() -> Vec<Point> {
    let mut sensors = vec![
        Point::new(20.0, 0.0),  // S1 — 2 hops east of the sink
        Point::new(0.0, 70.0),  // S2 — 7 hops north
        Point::new(-60.0, 0.0), // S3 — 6 hops west
        Point::new(0.0, 90.0),  // S4 — 9 hops north (past S2)
    ];
    // Relay chains (plain sensors) realising the hop counts.
    sensors.push(Point::new(10.0, 0.0)); // east chain
    for k in 1..=6 {
        sensors.push(Point::new(0.0, 10.0 * k as f64)); // north chain
    }
    for k in 1..=5 {
        sensors.push(Point::new(-10.0 * k as f64, 0.0)); // west chain
    }
    sensors.push(Point::new(0.0, 80.0)); // between S2 and S4
    sensors
}

fn fig2_field() -> Rect {
    Rect::from_corners(Point::new(-70.0, -15.0), Point::new(30.0, 100.0))
}

/// Fig. 2(a): the flat architecture — one sink at the origin.
pub fn fig2_single_sink() -> Topology {
    Topology::new(
        fig2_sensors(),
        vec![Point::new(0.0, 0.0)],
        fig2_field(),
        PAPER_RANGE,
    )
}

/// Fig. 2(b): the same field with three gateways G1, G2, G3.
pub fn fig2_three_gateways() -> Topology {
    Topology::new(
        fig2_sensors(),
        vec![
            Point::new(20.0, 10.0),  // G1 — adjacent to S1
            Point::new(5.0, 72.0),   // G2 — adjacent to S2 and the S4 relay
            Point::new(-60.0, 10.0), // G3 — adjacent to S3
        ],
        fig2_field(),
        PAPER_RANGE,
    )
}

/// Number of feasible places in the Table 1 walkthrough (A..E).
pub const TABLE1_PLACES: usize = 5;

/// The hop counts Table 1 lists for node `S_i` to places A..E.
pub const TABLE1_HOPS: [u32; 5] = [8, 6, 7, 5, 6];

/// The scripted occupied-place sets for the three rounds of Table 1:
/// {A,B,C}, then B→D, then A→E. Place ids: A=0, B=1, C=2, D=3, E=4.
pub const TABLE1_ROUNDS: [[usize; 3]; 3] = [[0, 1, 2], [0, 3, 2], [4, 3, 2]];

/// The best (fewest-hops) place Table 1 selects each round: B, D, D.
pub const TABLE1_SELECTED: [usize; 3] = [1, 3, 3];

/// The Table 1 field: a 21-sensor chain with `S_i` at its head, and five
/// feasible places whose hop counts from `S_i` are exactly
/// [`TABLE1_HOPS`]. Returns `(sensor positions, place positions)`; the
/// subject node `S_i` is sensor 0.
pub fn table1_topology() -> (Vec<Point>, Vec<Point>) {
    let sensors: Vec<Point> = (0..21).map(|k| Point::new(10.0 * k as f64, 0.0)).collect();
    // A place hovering 8 m above sensor k is adjacent to that sensor only
    // (next sensors are √164 ≈ 12.8 m away), so S_0 reaches it in k+1
    // hops. B and E both need 6 hops; E hangs below the chain instead.
    let places = vec![
        Point::new(70.0, 8.0),  // A: 8 hops
        Point::new(50.0, 8.0),  // B: 6 hops
        Point::new(60.0, 8.0),  // C: 7 hops
        Point::new(40.0, 8.0),  // D: 5 hops
        Point::new(50.0, -8.0), // E: 6 hops
    ];
    (sensors, places)
}

/// Field rectangle for the Table 1 chain.
pub fn table1_field() -> Rect {
    Rect::from_corners(Point::new(-5.0, -15.0), Point::new(205.0, 15.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::HopField;

    #[test]
    fn fig2a_hop_counts_match_the_paper() {
        let topo = fig2_single_sink();
        let hf = HopField::compute(&topo);
        for (s, &expected) in FIG2_NAMED.iter().zip(&FIG2_SINGLE_SINK_HOPS) {
            assert_eq!(hf.sensor_hops(*s), expected, "S{}", s + 1);
        }
    }

    #[test]
    fn fig2b_hop_counts_match_the_paper() {
        let topo = fig2_three_gateways();
        let hf = HopField::compute(&topo);
        for (s, &expected) in FIG2_NAMED.iter().zip(&FIG2_THREE_GATEWAY_HOPS) {
            assert_eq!(hf.sensor_hops(*s), expected, "S{}", s + 1);
        }
    }

    #[test]
    fn fig2b_assigns_each_named_sensor_its_own_gateway() {
        let topo = fig2_three_gateways();
        let hf = HopField::compute(&topo);
        assert_eq!(hf.nearest[0], 0, "S1 → G1");
        assert_eq!(hf.nearest[1], 1, "S2 → G2");
        assert_eq!(hf.nearest[2], 2, "S3 → G3");
        assert_eq!(hf.nearest[3], 1, "S4 → G2");
    }

    #[test]
    fn fig2_total_hops_drop_as_the_paper_argues() {
        let a = HopField::compute(&fig2_single_sink());
        let b = HopField::compute(&fig2_three_gateways());
        let named_total = |hf: &HopField| -> u32 { FIG2_NAMED.iter().map(|&s| hf.hops[s]).sum() };
        assert_eq!(named_total(&a), 2 + 7 + 6 + 9);
        assert_eq!(named_total(&b), 1 + 1 + 1 + 2);
    }

    #[test]
    fn table1_place_hops_match_the_paper() {
        let (sensors, places) = table1_topology();
        for (place_id, (&p, &expected)) in places.iter().zip(&TABLE1_HOPS).enumerate() {
            let topo = Topology::new(sensors.clone(), vec![p], table1_field(), PAPER_RANGE);
            let hf = HopField::compute(&topo);
            assert_eq!(
                hf.sensor_hops(0),
                expected,
                "place {}",
                crate::places::FeasiblePlaces::label(place_id)
            );
        }
    }

    #[test]
    fn table1_rounds_select_b_then_d_then_d() {
        for (round, occupied) in TABLE1_ROUNDS.iter().enumerate() {
            let best = occupied
                .iter()
                .min_by_key(|&&p| TABLE1_HOPS[p])
                .copied()
                .unwrap();
            assert_eq!(best, TABLE1_SELECTED[round], "round {}", round + 1);
        }
    }

    #[test]
    fn fig2_fields_contain_all_nodes() {
        for topo in [fig2_single_sink(), fig2_three_gateways()] {
            for p in topo.positions() {
                assert!(topo.field.contains(p), "{p} outside field");
            }
        }
    }
}
