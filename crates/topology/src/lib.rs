//! `wmsn-topology` — deployment generation, gateway placement and
//! movement, connectivity analysis, and topology control.
//!
//! §4 of the paper raises four pre-routing issues this crate implements:
//!
//! * **Deployment** ([`deploy`]): uniform-random, jittered-grid and
//!   clustered sensor fields, the workloads of every experiment.
//! * **Multiple-gateway deployment** (§4.1, [`places`], [`placement`]):
//!   the set `P` of feasible gateway places and algorithms choosing which
//!   `m` of them to occupy — random, k-means, greedy k-center, and an
//!   exhaustive optimum for small `|P|` (the paper's "gateway deployment
//!   model").
//! * **Gateway mobility** (§5.1, [`movement`]): round-by-round schedules
//!   moving gateways among feasible places — the paper's mechanism for
//!   balancing the forwarding burden near sinks.
//! * **Topology control** (§4.4, [`control`]): power control (the minimal
//!   common radio range preserving connectivity) and GAF-style sleep
//!   scheduling (one awake node per virtual grid cell).
//!
//! The central type is [`Topology`]: sensor + gateway positions over a
//! field with a radio range, offering graph queries (hops, components,
//! nearest gateway) that both the analytic experiments and the simulator
//! builders consume.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod connectivity;
pub mod control;
pub mod deploy;
pub mod movement;
pub mod paper;
pub mod placement;
pub mod places;
pub mod sharding;

pub use connectivity::HopField;
pub use deploy::Deployment;
pub use movement::{MovementPolicy, MovementSchedule};
pub use placement::PlacementAlgorithm;
pub use places::FeasiblePlaces;
pub use sharding::strip_shards;

use wmsn_util::geom::unit_disk_adjacency;
use wmsn_util::{Point, Rect};

/// A static snapshot of a sensor field: sensors, gateways, field, range.
#[derive(Clone, Debug)]
pub struct Topology {
    /// Sensor positions.
    pub sensors: Vec<Point>,
    /// Gateway positions (the current round's occupied places).
    pub gateways: Vec<Point>,
    /// Field boundary.
    pub field: Rect,
    /// Sensor-tier radio range (m).
    pub range: f64,
}

impl Topology {
    /// Build from parts.
    pub fn new(sensors: Vec<Point>, gateways: Vec<Point>, field: Rect, range: f64) -> Self {
        Topology {
            sensors,
            gateways,
            field,
            range,
        }
    }

    /// Total node count (sensors then gateways — the index convention all
    /// graph queries use: sensor `i` is vertex `i`, gateway `j` is vertex
    /// `sensors.len() + j`).
    pub fn node_count(&self) -> usize {
        self.sensors.len() + self.gateways.len()
    }

    /// Vertex index of gateway `j`.
    pub fn gateway_vertex(&self, j: usize) -> usize {
        self.sensors.len() + j
    }

    /// All positions in vertex order.
    pub fn positions(&self) -> Vec<Point> {
        let mut v = Vec::with_capacity(self.node_count());
        v.extend_from_slice(&self.sensors);
        v.extend_from_slice(&self.gateways);
        v
    }

    /// Unit-disk adjacency over all vertices at the sensor range.
    pub fn adjacency(&self) -> Vec<Vec<usize>> {
        unit_disk_adjacency(&self.positions(), self.range)
    }

    /// Replace the gateway set (a new round).
    pub fn with_gateways(&self, gateways: Vec<Point>) -> Topology {
        Topology {
            sensors: self.sensors.clone(),
            gateways,
            field: self.field,
            range: self.range,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_indexing_convention() {
        let t = Topology::new(
            vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)],
            vec![Point::new(2.0, 0.0)],
            Rect::field(10.0, 10.0),
            1.5,
        );
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.gateway_vertex(0), 2);
        assert_eq!(t.positions()[2], Point::new(2.0, 0.0));
    }

    #[test]
    fn adjacency_spans_sensors_and_gateways() {
        let t = Topology::new(
            vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)],
            vec![Point::new(2.0, 0.0)],
            Rect::field(10.0, 10.0),
            1.5,
        );
        let adj = t.adjacency();
        assert_eq!(adj[0], vec![1]); // sensor 0 ↔ sensor 1
        assert_eq!(adj[1], vec![0, 2]); // sensor 1 ↔ gateway
        assert_eq!(adj[2], vec![1]);
    }

    #[test]
    fn with_gateways_preserves_sensors() {
        let t = Topology::new(
            vec![Point::new(0.0, 0.0)],
            vec![Point::new(2.0, 0.0)],
            Rect::field(10.0, 10.0),
            1.5,
        );
        let t2 = t.with_gateways(vec![Point::new(5.0, 5.0), Point::new(6.0, 6.0)]);
        assert_eq!(t2.sensors, t.sensors);
        assert_eq!(t2.gateways.len(), 2);
    }
}
