//! Graph queries over a [`crate::Topology`] — hop distances,
//! connectivity, and the analytic hop statistics behind experiments E1
//! (Fig. 2) and E9 (scalability).

use crate::Topology;
use std::collections::VecDeque;

/// Hop distances from every vertex to its nearest gateway, computed by a
/// multi-source BFS seeded at all gateways — the graph-theoretic ideal
/// that SPR converges to (§5.2, Property 1).
#[derive(Clone, Debug)]
pub struct HopField {
    /// `hops[v]` = hops from vertex `v` to the nearest gateway
    /// (`u32::MAX` if unreachable). Gateways have 0.
    pub hops: Vec<u32>,
    /// `nearest[v]` = index of the nearest gateway (by hop count,
    /// ties → lowest gateway index), or `usize::MAX` if unreachable.
    pub nearest: Vec<usize>,
}

impl HopField {
    /// Compute the hop field of `topo`.
    pub fn compute(topo: &Topology) -> Self {
        let adj = topo.adjacency();
        Self::compute_with_adj(topo, &adj)
    }

    /// As [`HopField::compute`], reusing a prebuilt adjacency.
    pub fn compute_with_adj(topo: &Topology, adj: &[Vec<usize>]) -> Self {
        let n = topo.node_count();
        let mut hops = vec![u32::MAX; n];
        let mut nearest = vec![usize::MAX; n];
        let mut queue = VecDeque::new();
        for j in 0..topo.gateways.len() {
            let v = topo.gateway_vertex(j);
            hops[v] = 0;
            nearest[v] = j;
            queue.push_back(v);
        }
        while let Some(v) = queue.pop_front() {
            for &u in &adj[v] {
                if hops[u] == u32::MAX {
                    hops[u] = hops[v] + 1;
                    nearest[u] = nearest[v];
                    queue.push_back(u);
                }
            }
        }
        HopField { hops, nearest }
    }

    /// Hop count of sensor `i` (vertex `i`).
    pub fn sensor_hops(&self, i: usize) -> u32 {
        self.hops[i]
    }

    /// Whether every sensor can reach some gateway.
    pub fn all_sensors_covered(&self, n_sensors: usize) -> bool {
        self.hops[..n_sensors].iter().all(|&h| h != u32::MAX)
    }

    /// Mean sensor hop count, ignoring unreachable sensors. `None` if no
    /// sensor is reachable.
    pub fn mean_sensor_hops(&self, n_sensors: usize) -> Option<f64> {
        let reachable: Vec<u32> = self.hops[..n_sensors]
            .iter()
            .copied()
            .filter(|&h| h != u32::MAX)
            .collect();
        if reachable.is_empty() {
            None
        } else {
            Some(reachable.iter().map(|&h| h as f64).sum::<f64>() / reachable.len() as f64)
        }
    }

    /// Maximum sensor hop count among reachable sensors (0 if none).
    pub fn max_sensor_hops(&self, n_sensors: usize) -> u32 {
        self.hops[..n_sensors]
            .iter()
            .copied()
            .filter(|&h| h != u32::MAX)
            .max()
            .unwrap_or(0)
    }
}

/// BFS hop distance between two vertices over `adj` (`None` if
/// disconnected).
pub fn bfs_hops(adj: &[Vec<usize>], from: usize, to: usize) -> Option<u32> {
    if from == to {
        return Some(0);
    }
    let mut dist = vec![u32::MAX; adj.len()];
    dist[from] = 0;
    let mut queue = VecDeque::from([from]);
    while let Some(v) = queue.pop_front() {
        for &u in &adj[v] {
            if dist[u] == u32::MAX {
                dist[u] = dist[v] + 1;
                if u == to {
                    return Some(dist[u]);
                }
                queue.push_back(u);
            }
        }
    }
    None
}

/// Connected components of `adj` as a label vector (labels are the
/// smallest vertex in each component).
pub fn components(adj: &[Vec<usize>]) -> Vec<usize> {
    let n = adj.len();
    let mut label = vec![usize::MAX; n];
    for start in 0..n {
        if label[start] != usize::MAX {
            continue;
        }
        label[start] = start;
        let mut queue = VecDeque::from([start]);
        while let Some(v) = queue.pop_front() {
            for &u in &adj[v] {
                if label[u] == usize::MAX {
                    label[u] = start;
                    queue.push_back(u);
                }
            }
        }
    }
    label
}

/// Whether the graph is a single connected component (vacuously true for
/// 0 or 1 vertices).
pub fn is_connected(adj: &[Vec<usize>]) -> bool {
    let labels = components(adj);
    labels.iter().all(|&l| l == 0) || labels.is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmsn_util::{Point, Rect};

    /// A 5-sensor chain with a gateway at the far end:
    /// S0—S1—S2—S3—S4—G.
    fn chain() -> Topology {
        let sensors = (0..5).map(|i| Point::new(i as f64 * 10.0, 0.0)).collect();
        let gateways = vec![Point::new(50.0, 0.0)];
        Topology::new(sensors, gateways, Rect::field(100.0, 10.0), 10.0)
    }

    #[test]
    fn chain_hops_decrease_toward_gateway() {
        let hf = HopField::compute(&chain());
        assert_eq!(
            &hf.hops[..5],
            &[5, 4, 3, 2, 1],
            "hop counts along the chain"
        );
        assert_eq!(hf.hops[5], 0, "gateway itself");
        assert!(hf.all_sensors_covered(5));
        assert_eq!(hf.mean_sensor_hops(5), Some(3.0));
        assert_eq!(hf.max_sensor_hops(5), 5);
    }

    #[test]
    fn nearest_gateway_assignment_with_two_gateways() {
        // G0 — S0 — S1 — S2 — G1: S0→G0, S2→G1, S1 ties → lowest index.
        let sensors = vec![
            Point::new(10.0, 0.0),
            Point::new(20.0, 0.0),
            Point::new(30.0, 0.0),
        ];
        let gateways = vec![Point::new(0.0, 0.0), Point::new(40.0, 0.0)];
        let t = Topology::new(sensors, gateways, Rect::field(50.0, 10.0), 10.0);
        let hf = HopField::compute(&t);
        assert_eq!(hf.nearest[0], 0);
        assert_eq!(hf.nearest[2], 1);
        assert_eq!(hf.hops[1], 2);
        assert_eq!(hf.nearest[1], 0, "ties break toward the lower index");
    }

    #[test]
    fn disconnected_sensor_is_unreachable() {
        let mut t = chain();
        t.sensors.push(Point::new(0.0, 90.0)); // isolated
        let hf = HopField::compute(&t);
        assert_eq!(hf.hops[5], u32::MAX);
        assert_eq!(hf.nearest[5], usize::MAX);
        assert!(!hf.all_sensors_covered(6));
        // Mean ignores the unreachable one.
        assert_eq!(hf.mean_sensor_hops(6), Some(3.0));
    }

    #[test]
    fn no_gateways_means_nobody_is_covered() {
        let t = Topology::new(
            vec![Point::new(0.0, 0.0)],
            vec![],
            Rect::field(10.0, 10.0),
            5.0,
        );
        let hf = HopField::compute(&t);
        assert_eq!(hf.hops[0], u32::MAX);
        assert_eq!(hf.mean_sensor_hops(1), None);
        assert_eq!(hf.max_sensor_hops(1), 0);
    }

    #[test]
    fn bfs_hops_and_components() {
        let t = chain();
        let adj = t.adjacency();
        assert_eq!(bfs_hops(&adj, 0, 5), Some(5));
        assert_eq!(bfs_hops(&adj, 3, 3), Some(0));
        assert!(is_connected(&adj));
        // Break the chain.
        let mut t2 = chain();
        t2.sensors[2] = Point::new(0.0, 90.0);
        let adj2 = t2.adjacency();
        assert_eq!(bfs_hops(&adj2, 0, 5), None);
        assert!(!is_connected(&adj2));
        let labels = components(&adj2);
        assert_eq!(labels[0], labels[1]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn empty_graph_is_connected() {
        assert!(is_connected(&[]));
        assert!(is_connected(&[vec![]]));
        assert!(!is_connected(&[vec![], vec![]]));
    }
}
