//! Feasible gateway places — the set `P` of §5.3.
//!
//! MLR restricts mobile gateways to "a set of feasible places such that
//! P = {Pᵢ: Pᵢ is a feasible place in the network area}, m of them are
//! deployed gateways during a round". Routing tables are indexed by place,
//! so `P` is small and fixed for a deployment. The default generator is a
//! regular grid over the field; arbitrary hand-picked sets (the paper's
//! A/B/C/D/E example) are supported directly.

use wmsn_util::{Point, Rect, SplitMix64};

/// The feasible-place set `P`.
#[derive(Clone, Debug)]
pub struct FeasiblePlaces {
    /// Place positions; index = place id (the paper's A, B, C… become
    /// 0, 1, 2…).
    pub places: Vec<Point>,
}

impl FeasiblePlaces {
    /// Wrap an explicit list.
    pub fn new(places: Vec<Point>) -> Self {
        FeasiblePlaces { places }
    }

    /// A `cols × rows` grid of places, inset half a cell from the border
    /// (gateways in the strict interior serve more sensors).
    pub fn grid(field: Rect, cols: usize, rows: usize) -> Self {
        assert!(cols > 0 && rows > 0, "grid must be non-empty");
        let dx = field.width() / cols as f64;
        let dy = field.height() / rows as f64;
        let mut places = Vec::with_capacity(cols * rows);
        for r in 0..rows {
            for c in 0..cols {
                places.push(Point::new(
                    field.min.x + (c as f64 + 0.5) * dx,
                    field.min.y + (r as f64 + 0.5) * dy,
                ));
            }
        }
        FeasiblePlaces { places }
    }

    /// `n` uniform-random places.
    pub fn random(field: Rect, n: usize, rng: &mut SplitMix64) -> Self {
        let places = (0..n)
            .map(|_| {
                Point::new(
                    rng.range_f64(field.min.x, field.max.x),
                    rng.range_f64(field.min.y, field.max.y),
                )
            })
            .collect();
        FeasiblePlaces { places }
    }

    /// Number of places `|P|`.
    pub fn len(&self) -> usize {
        self.places.len()
    }

    /// Whether `P` is empty.
    pub fn is_empty(&self) -> bool {
        self.places.is_empty()
    }

    /// Position of place `id`.
    pub fn position(&self, id: usize) -> Point {
        self.places[id]
    }

    /// Human label for a place id: 0→"A", 1→"B", …, 26→"AA" — matching
    /// the paper's Table 1 naming.
    pub fn label(id: usize) -> String {
        let mut id = id;
        let mut s = String::new();
        loop {
            s.insert(0, (b'A' + (id % 26) as u8) as char);
            id /= 26;
            if id == 0 {
                break;
            }
            id -= 1;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_places_are_inset_and_counted() {
        let p = FeasiblePlaces::grid(Rect::field(100.0, 100.0), 2, 2);
        assert_eq!(p.len(), 4);
        assert_eq!(p.position(0), Point::new(25.0, 25.0));
        assert_eq!(p.position(3), Point::new(75.0, 75.0));
    }

    #[test]
    fn random_places_stay_in_field() {
        let field = Rect::field(50.0, 20.0);
        let mut rng = SplitMix64::new(9);
        let p = FeasiblePlaces::random(field, 40, &mut rng);
        assert_eq!(p.len(), 40);
        assert!(p.places.iter().all(|q| field.contains(*q)));
    }

    #[test]
    fn labels_match_the_papers_naming() {
        assert_eq!(FeasiblePlaces::label(0), "A");
        assert_eq!(FeasiblePlaces::label(1), "B");
        assert_eq!(FeasiblePlaces::label(4), "E");
        assert_eq!(FeasiblePlaces::label(25), "Z");
        assert_eq!(FeasiblePlaces::label(26), "AA");
        assert_eq!(FeasiblePlaces::label(27), "AB");
    }

    #[test]
    fn empty_and_explicit_sets() {
        let p = FeasiblePlaces::new(vec![]);
        assert!(p.is_empty());
        let p2 = FeasiblePlaces::new(vec![Point::new(1.0, 2.0)]);
        assert_eq!(p2.position(0), Point::new(1.0, 2.0));
    }
}
