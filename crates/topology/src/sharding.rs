//! Spatial shard assignment for the parallel simulation kernel.
//!
//! The sharded kernel (`wmsn_sim::ShardedWorld`) is correct under *any*
//! node→shard assignment — the conservative lookahead window carries
//! the equivalence argument by itself. The assignment only decides how
//! much traffic crosses shard boundaries (every crossing pays a mailbox
//! round-trip through the coordinator), so a good assignment keeps
//! radio neighbourhoods together.
//!
//! [`strip_shards`] cuts the field into vertical strips whose edges
//! are aligned to the simulator's adjacency-grid cells (side = radio
//! range): a node's potential receivers all lie within one cell of it,
//! so only nodes in the single cell column beside a cut ever talk
//! across it. Cut positions are chosen by node count, not width, so
//! irregular deployments still balance.

use wmsn_util::Point;

/// Assign each position to one of `n_shards` vertical strips with
/// cut lines on multiples of `range_m` (relative to the leftmost
/// node), balanced by node count. Returns one shard id per position,
/// each `< n_shards`; shards are numbered left to right.
///
/// Degenerate inputs degrade gracefully: zero shards are treated as
/// one, and if there are fewer occupied grid columns than shards the
/// surplus shards are simply left empty.
pub fn strip_shards(positions: &[Point], range_m: f64, n_shards: usize) -> Vec<u16> {
    let n_shards = n_shards.clamp(1, u16::MAX as usize);
    if positions.is_empty() || n_shards == 1 {
        return vec![0; positions.len()];
    }
    let cell = if range_m > 0.0 { range_m } else { 1.0 };
    let min_x = positions.iter().map(|p| p.x).fold(f64::INFINITY, f64::min);
    let col = |p: &Point| ((p.x - min_x) / cell).floor().max(0.0) as usize;
    let n_cols = positions.iter().map(col).max().unwrap_or(0) + 1;

    let mut per_col = vec![0usize; n_cols];
    for p in positions {
        per_col[col(p)] += 1;
    }
    // Walk columns left to right, advancing to the next shard whenever
    // the running total passes the next equal-count cut. Whole columns
    // stay together so cuts land on grid-cell edges.
    let total = positions.len();
    let mut col_shard = vec![0u16; n_cols];
    let mut shard = 0usize;
    let mut seen = 0usize;
    for (c, &count) in per_col.iter().enumerate() {
        // Cut *before* this column if the previous ones already filled
        // the current shard's quota (and shards remain to fill).
        while shard + 1 < n_shards && seen * n_shards >= (shard + 1) * total {
            shard += 1;
        }
        col_shard[c] = shard as u16;
        seen += count;
    }
    positions.iter().map(|p| col_shard[col(p)]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize, spacing: f64) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new(i as f64 * spacing, 0.0))
            .collect()
    }

    #[test]
    fn strips_are_contiguous_and_balanced() {
        let pts = line(100, 10.0);
        let a = strip_shards(&pts, 25.0, 4);
        assert_eq!(a.len(), 100);
        // Non-decreasing left to right (contiguous strips).
        for w in a.windows(2) {
            assert!(w[0] <= w[1]);
        }
        // All four shards used, each within a column (≤3 nodes) of
        // perfect balance.
        for s in 0..4u16 {
            let count = a.iter().filter(|&&x| x == s).count();
            assert!((22..=28).contains(&count), "shard {s} holds {count} of 100");
        }
    }

    #[test]
    fn cuts_align_to_grid_cells() {
        let pts = line(60, 5.0);
        let a = strip_shards(&pts, 25.0, 3);
        // Nodes in the same 25 m column share a shard.
        for (i, p) in pts.iter().enumerate() {
            for (j, q) in pts.iter().enumerate() {
                if (p.x / 25.0).floor() == (q.x / 25.0).floor() {
                    assert_eq!(a[i], a[j]);
                }
            }
        }
    }

    #[test]
    fn degenerate_inputs() {
        assert!(strip_shards(&[], 25.0, 4).is_empty());
        assert_eq!(strip_shards(&line(5, 1.0), 25.0, 0), vec![0; 5]);
        // One occupied column, many shards: everyone lands on shard 0.
        let a = strip_shards(&line(10, 0.1), 25.0, 8);
        assert_eq!(a, vec![0; 10]);
        // More shards than columns: ids stay in range.
        let a = strip_shards(&line(4, 30.0), 25.0, 8);
        assert!(a.iter().all(|&s| s < 8));
        for w in a.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }
}
