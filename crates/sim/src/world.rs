//! The world: nodes, event loop, radio medium, metrics.
//!
//! [`World`] owns everything. Protocol behaviours are stored beside (not
//! inside) the core state so a behaviour can be temporarily taken out
//! while it runs against a [`Ctx`] borrowing the core — the standard
//! split-borrow pattern for callback-driven simulators.

use crate::energy::{Battery, EnergyModel};
use crate::event::{EventKind, EventQueue};
use crate::medium::{CollisionModel, CollisionTracker, MediumConfig};
use crate::metrics::Metrics;
use crate::node::{Behavior, Ctx, NodeConfig, NodeState};
use crate::packet::{Packet, PacketKind};
use crate::phy::{PhyProfile, Tier};
use crate::time::SimTime;
use std::collections::HashMap;
use std::rc::Rc;
use wmsn_trace::{DropCause, TraceEvent, TraceKind, TraceSink, TraceTier};
use wmsn_util::geom::unit_disk_adjacency;
use wmsn_util::{NodeId, NodeRole, Point, SplitMix64};

/// Trace-model tier for a PHY tier.
pub(crate) fn trace_tier(t: Tier) -> TraceTier {
    match t {
        Tier::Sensor => TraceTier::Sensor,
        Tier::Mesh => TraceTier::Mesh,
    }
}

/// Trace-model kind for a packet kind.
pub(crate) fn trace_kind(k: PacketKind) -> TraceKind {
    match k {
        PacketKind::Control => TraceKind::Control,
        PacketKind::Data => TraceKind::Data,
        PacketKind::Security => TraceKind::Security,
    }
}

/// World construction parameters.
#[derive(Clone, Debug)]
pub struct WorldConfig {
    /// Seed for all randomness in the run.
    pub seed: u64,
    /// Sensor-tier PHY.
    pub sensor_phy: PhyProfile,
    /// Mesh-tier PHY.
    pub mesh_phy: PhyProfile,
    /// Medium imperfections.
    pub medium: MediumConfig,
    /// Energy model.
    pub energy: EnergyModel,
}

impl WorldConfig {
    /// Ideal medium, per-packet energy, default PHYs — the configuration
    /// the paper's analytical arguments assume.
    pub fn ideal(seed: u64) -> Self {
        WorldConfig {
            seed,
            sensor_phy: PhyProfile::zigbee(),
            mesh_phy: PhyProfile::wifi(),
            medium: MediumConfig::default(),
            energy: EnergyModel::per_packet_default(),
        }
    }
}

/// Cross-shard routing state installed by the sharded kernel
/// ([`crate::sharded::ShardedWorld`]). When present, deliveries whose
/// receiver lives on another shard are diverted into `outbox` instead of
/// the local queue; the coordinator routes them between supersteps.
pub(crate) struct ShardState {
    /// Owning shard per node index.
    pub(crate) owner: Vec<u16>,
    /// This world's shard id.
    pub(crate) me: u16,
    /// Deliveries bound for nodes owned by other shards.
    pub(crate) outbox: Vec<RemoteEvent>,
}

/// A `Deliver` event crossing a shard boundary. Carries the packet by
/// fields (payload as `Arc`, not `Rc`) so the coordinator can move it
/// between shard threads; the receiving shard rebuilds the `Rc<Packet>`.
pub(crate) struct RemoteEvent {
    pub(crate) at: SimTime,
    pub(crate) key: u64,
    pub(crate) to: NodeId,
    pub(crate) seq: u64,
    pub(crate) src: NodeId,
    pub(crate) link_dst: Option<NodeId>,
    pub(crate) tier: Tier,
    pub(crate) kind: PacketKind,
    pub(crate) payload: std::sync::Arc<[u8]>,
}

/// Everything except the behaviours (so a behaviour can borrow this
/// mutably while it runs).
pub struct WorldCore {
    pub(crate) cfg: WorldConfig,
    pub(crate) nodes: Vec<NodeState>,
    pub(crate) queue: EventQueue,
    pub(crate) now: SimTime,
    pub(crate) metrics: Metrics,
    pub(crate) node_rngs: Vec<SplitMix64>,
    medium_rng: SplitMix64,
    /// Per-node packet sequence counters: a packet's `seq` is
    /// `(src << 32) | counter`, so the sequence stream a node emits
    /// depends only on that node's own transmissions — never on global
    /// interleaving — which is what lets shard-local transmits mint the
    /// same seqs the single-threaded reference would.
    packet_seqs: Vec<u32>,
    /// Per-node causal-key counters: an event scheduled by node `n`
    /// carries key `(n << 32) | counter` and same-time events fire in
    /// ascending key order (see [`crate::event`]). Tie-breaking is a
    /// property of *who scheduled what*, identical under any sharding.
    sched_counters: Vec<u32>,
    /// Counter for driver-phase keys (prefix `0xFFFF_FFFF`, sorting
    /// after every node-minted key at an equal timestamp).
    pub(crate) driver_counter: u64,
    /// Causal key of the currently executing event or driver entry —
    /// stamped onto trace lines and delivery records so per-shard
    /// streams merge back into reference emission order.
    pub(crate) exec_key: u64,
    /// Cross-shard routing state; `None` on the single-threaded
    /// reference path (see [`crate::sharded`]).
    pub(crate) shard: Option<ShardState>,
    /// In-flight transmissions for carrier sensing, bucketed per tier by
    /// grid cell so `channel_busy` scans only the 3×3 block around the
    /// sender instead of every transmission in the field.
    active_tx: [TxBuckets; 2],
    /// Cached adjacency per tier; built lazily in bulk, updated
    /// incrementally when a node moves.
    adjacency: [Option<AdjacencyCache>; 2],
    collisions: [CollisionTracker; 2],
    /// Reusable slot buffer for `transmit_ranged` receiver collection.
    ranged_scratch: Vec<usize>,
    /// Reusable frame-assembly buffer lent to behaviours via
    /// [`Ctx::take_scratch`](crate::node::Ctx::take_scratch) — in-place
    /// flood forwarding builds the outgoing frame here before freezing
    /// it to `Rc<[u8]>`. Behaviours run one at a time, so a single
    /// world-level buffer suffices.
    pub(crate) frame_scratch: Vec<u8>,
    /// Structured-trace sink; `None` (the default) disables tracing, and
    /// every hook below is a branch on this `Option` — the zero-cost-
    /// disabled contract the hot-path numbers depend on.
    pub(crate) trace: Option<Box<dyn TraceSink>>,
}

struct AdjacencyCache {
    /// Node ids participating in this tier (alive or dead — liveness is
    /// checked at use time).
    members: Vec<NodeId>,
    /// For each member (by position in `members`), indices into `members`,
    /// sorted ascending (delivery order is part of determinism).
    adj: Vec<Vec<usize>>,
    /// node id -> member slot.
    slot: Vec<Option<usize>>,
    /// Member slots bucketed by grid cell (side = radio range), anchored
    /// at `origin`. Everything within range of a point lies in the 3×3
    /// cell block around it; the buckets are kept current across moves.
    buckets: HashMap<(i64, i64), Vec<usize>>,
    /// Grid anchor (min corner of the positions at build time; moves may
    /// go outside — cell coordinates just go negative).
    origin: Point,
    /// Grid cell side, equal to the tier's radio range.
    cell: f64,
}

impl AdjacencyCache {
    fn cell_of(&self, p: Point) -> (i64, i64) {
        (
            ((p.x - self.origin.x) / self.cell).floor() as i64,
            ((p.y - self.origin.y) / self.cell).floor() as i64,
        )
    }
}

/// Carrier-sense index: in-flight transmissions bucketed by grid cell
/// (side = the tier's radio range, so audibility is confined to the 3×3
/// block). Expired entries are dropped lazily while scanning and swept
/// whenever the world's event queue drains.
struct TxBuckets {
    cell: f64,
    buckets: HashMap<(i64, i64), Vec<(Point, SimTime)>>,
}

impl TxBuckets {
    fn new(range_m: f64) -> Self {
        TxBuckets {
            cell: if range_m > 0.0 { range_m } else { 1.0 },
            buckets: HashMap::new(),
        }
    }

    fn key(&self, p: Point) -> (i64, i64) {
        (
            (p.x / self.cell).floor() as i64,
            (p.y / self.cell).floor() as i64,
        )
    }

    fn push(&mut self, pos: Point, end: SimTime) {
        self.buckets
            .entry(self.key(pos))
            .or_default()
            .push((pos, end));
    }

    /// Whether any transmission still on the air at `now` is audible
    /// within `range` of `pos`. Prunes expired entries in the scanned
    /// cells as a side effect.
    fn busy_near(&mut self, pos: Point, range: f64, now: SimTime) -> bool {
        let (cx, cy) = self.key(pos);
        let mut busy = false;
        for dx in -1..=1 {
            for dy in -1..=1 {
                if let Some(b) = self.buckets.get_mut(&(cx + dx, cy + dy)) {
                    b.retain(|&(_, end)| end > now);
                    busy = busy || b.iter().any(|&(p, _)| p.within(pos, range));
                }
            }
        }
        busy
    }

    /// Drop every entry that has left the air.
    fn prune(&mut self, now: SimTime) {
        self.buckets.retain(|_, b| {
            b.retain(|&(_, end)| end > now);
            !b.is_empty()
        });
    }
}

fn tier_index(t: Tier) -> usize {
    match t {
        Tier::Sensor => 0,
        Tier::Mesh => 1,
    }
}

impl WorldCore {
    /// Hand one event to the installed sink, if any. Callers on hot
    /// paths guard with `self.trace.is_some()` first so the event is
    /// never even constructed when tracing is off.
    #[inline]
    pub(crate) fn emit(&mut self, ev: TraceEvent) {
        if let Some(sink) = self.trace.as_deref_mut() {
            sink.record_keyed(&ev, self.now, self.exec_key);
        }
    }

    /// Mint the next causal key for an event scheduled by `node`.
    #[inline]
    pub(crate) fn next_key(&mut self, node: NodeId) -> u64 {
        let c = &mut self.sched_counters[node.index()];
        let key = ((node.0 as u64) << 32) | *c as u64;
        *c += 1;
        key
    }

    /// Mint the next packet sequence number for a frame sent by `src`.
    #[inline]
    fn next_seq(&mut self, src: NodeId) -> u64 {
        let c = &mut self.packet_seqs[src.index()];
        let seq = ((src.0 as u64) << 32) | *c as u64;
        *c += 1;
        seq
    }

    /// Stamp a fresh driver-phase key as the executing key. Called at
    /// every external entry point (node start, `with_behavior`, moves,
    /// kills, …) so trace lines emitted outside the event loop still
    /// carry a deterministic merge position. The `0xFFFF_FFFF` prefix
    /// sorts after every node-minted key at an equal timestamp, matching
    /// the fact that driver calls happen after `run_until` returns.
    #[inline]
    pub(crate) fn begin_driver_op(&mut self) {
        self.exec_key = (0xFFFF_FFFFu64 << 32) | self.driver_counter;
        self.driver_counter += 1;
    }

    fn phy(&self, tier: Tier) -> &PhyProfile {
        match tier {
            Tier::Sensor => &self.cfg.sensor_phy,
            Tier::Mesh => &self.cfg.mesh_phy,
        }
    }

    fn invalidate_adjacency(&mut self) {
        self.adjacency = [None, None];
    }

    fn ensure_adjacency(&mut self, tier: Tier) {
        let ti = tier_index(tier);
        if self.adjacency[ti].is_some() {
            return;
        }
        let members: Vec<NodeId> = self
            .nodes
            .iter()
            .filter(|n| match tier {
                Tier::Sensor => n.role.in_sensor_tier(),
                Tier::Mesh => n.role.in_mesh_tier(),
            })
            .map(|n| n.id)
            .collect();
        let positions: Vec<_> = members
            .iter()
            .map(|id| self.nodes[id.index()].pos)
            .collect();
        let range = self.phy(tier).range_m;
        let adj = unit_disk_adjacency(&positions, range);
        let mut slot = vec![None; self.nodes.len()];
        for (s, id) in members.iter().enumerate() {
            slot[id.index()] = Some(s);
        }
        let origin = Point::new(
            positions.iter().map(|p| p.x).fold(0.0, f64::min),
            positions.iter().map(|p| p.y).fold(0.0, f64::min),
        );
        let mut cache = AdjacencyCache {
            members,
            adj,
            slot,
            buckets: HashMap::new(),
            origin,
            cell: if range > 0.0 { range } else { 1.0 },
        };
        for (s, p) in positions.iter().enumerate() {
            let key = cache.cell_of(*p);
            cache.buckets.entry(key).or_default().push(s);
        }
        self.adjacency[ti] = Some(cache);
    }

    /// Incrementally repair a tier's adjacency cache after one node moved:
    /// only the moved node's row, the rows that referenced it, and its
    /// grid bucket change — everything else is untouched. Rebuilding from
    /// scratch costs O(members) allocations per move; gateway mobility
    /// moves one node per round.
    fn update_adjacency_for_move(&mut self, ti: usize, id: NodeId, old_pos: Point) {
        let Some(cache) = self.adjacency[ti].as_mut() else {
            return;
        };
        let Some(s) = cache.slot.get(id.index()).copied().flatten() else {
            return;
        };
        let new_pos = self.nodes[id.index()].pos;
        let old_cell = cache.cell_of(old_pos);
        let new_cell = cache.cell_of(new_pos);
        if old_cell != new_cell {
            if let Some(b) = cache.buckets.get_mut(&old_cell) {
                if let Some(i) = b.iter().position(|&x| x == s) {
                    b.swap_remove(i);
                }
                if b.is_empty() {
                    cache.buckets.remove(&old_cell);
                }
            }
            cache.buckets.entry(new_cell).or_default().push(s);
        }
        // Drop the old edges from both endpoints (rows stay sorted).
        let old_row = std::mem::take(&mut cache.adj[s]);
        for &t in &old_row {
            if let Ok(i) = cache.adj[t].binary_search(&s) {
                cache.adj[t].remove(i);
            }
        }
        // Recompute the moved node's row from its 3×3 cell block; the
        // predicate matches `unit_disk_adjacency` exactly, so the cache is
        // indistinguishable from a full rebuild.
        let range = cache.cell;
        let mut row = old_row;
        row.clear();
        for dx in -1..=1 {
            for dy in -1..=1 {
                if let Some(b) = cache.buckets.get(&(new_cell.0 + dx, new_cell.1 + dy)) {
                    for &t in b {
                        if t != s
                            && self.nodes[cache.members[t].index()]
                                .pos
                                .within(new_pos, range)
                        {
                            row.push(t);
                        }
                    }
                }
            }
        }
        row.sort_unstable();
        for &t in &row {
            if let Err(i) = cache.adj[t].binary_search(&s) {
                cache.adj[t].insert(i, s);
            }
        }
        cache.adj[s] = row;
    }

    pub(crate) fn neighbors_of(&mut self, node: NodeId, tier: Tier) -> Vec<NodeId> {
        self.ensure_adjacency(tier);
        let cache = self.adjacency[tier_index(tier)]
            .as_ref()
            .expect("just built");
        let Some(slot) = cache.slot.get(node.index()).copied().flatten() else {
            return Vec::new();
        };
        cache.adj[slot]
            .iter()
            .map(|&s| cache.members[s])
            .filter(|id| self.nodes[id.index()].alive)
            .collect()
    }

    /// Charge `joules` against `node`'s battery; handles death bookkeeping.
    /// Returns `false` if the node is (now) dead.
    fn charge(&mut self, node: NodeId, joules: f64) -> bool {
        let idx = node.index();
        let state = &mut self.nodes[idx];
        if !state.alive {
            return false;
        }
        let survived = state.battery.spend(joules);
        // Track consumption (finite batteries only; unlimited report 0).
        let consumed = state.battery.consumed_j();
        if let Some(slot) = self.metrics.energy_consumed.get_mut(idx) {
            *slot = consumed;
        }
        if !survived {
            state.alive = false;
            // A battery death would desynchronise the replicated
            // liveness flags the shards share — the parallel kernel is
            // gated to death-free workloads and must fail loudly, not
            // silently diverge, if that contract is broken.
            assert!(
                self.shard.is_none(),
                "node {node:?} died mid-run under sharded execution; \
                 the parallel kernel requires death-free workloads"
            );
            if state.role == NodeRole::Sensor && self.metrics.first_death.is_none() {
                self.metrics.first_death = Some(self.now);
                self.metrics.first_death_node = Some(node);
            }
        }
        if self.trace.is_some() {
            let t = self.now;
            self.emit(TraceEvent::Energy {
                t,
                node,
                consumed_j: consumed,
            });
            if !survived {
                self.emit(TraceEvent::NodeKill { t, node });
            }
        }
        survived
    }

    /// Crate-visible energy charge for non-radio work (see
    /// [`crate::node::Ctx::consume_energy`]).
    pub(crate) fn charge_public(&mut self, node: NodeId, joules: f64) -> bool {
        self.charge(node, joules)
    }

    pub(crate) fn transmit(
        &mut self,
        src: NodeId,
        link_dst: Option<NodeId>,
        tier: Tier,
        kind: PacketKind,
        payload: Rc<[u8]>,
    ) -> bool {
        self.transmit_attempt(src, link_dst, tier, kind, payload, 0)
    }

    /// Whether `src` can currently hear an ongoing transmission on `tier`
    /// (the carrier-sense predicate). Prunes expired windows in the cells
    /// it scans.
    fn channel_busy(&mut self, src: NodeId, tier: Tier) -> bool {
        let now = self.now;
        let pos = self.nodes[src.index()].pos;
        let range = self.phy(tier).range_m;
        self.active_tx[tier_index(tier)].busy_near(pos, range, now)
    }

    pub(crate) fn transmit_attempt(
        &mut self,
        src: NodeId,
        link_dst: Option<NodeId>,
        tier: Tier,
        kind: PacketKind,
        payload: Rc<[u8]>,
        attempt: u8,
    ) -> bool {
        {
            let s = &self.nodes[src.index()];
            if !s.alive {
                return false;
            }
            let has_tier = match tier {
                Tier::Sensor => s.role.in_sensor_tier(),
                Tier::Mesh => s.role.in_mesh_tier(),
            };
            if !has_tier {
                return false;
            }
        }
        // CSMA: defer while the channel is audibly busy, with binary
        // exponential backoff; give up after 6 attempts (counted).
        if self.cfg.medium.csma && self.channel_busy(src, tier) {
            if attempt >= 6 {
                self.metrics.csma_drops += 1;
                if self.trace.is_some() {
                    self.emit(TraceEvent::TxGiveUp {
                        t: self.now,
                        src,
                        tier: trace_tier(tier),
                    });
                }
                return false;
            }
            let slot = self.phy(tier).tx_time_us(32).max(100);
            let backoff = 1 + self.node_rngs[src.index()].next_below(slot << attempt.min(4));
            self.metrics.csma_deferrals += 1;
            if self.trace.is_some() {
                self.emit(TraceEvent::TxDefer {
                    t: self.now,
                    src,
                    tier: trace_tier(tier),
                    attempt,
                });
            }
            let at = self.now + backoff;
            let key = self.next_key(src);
            self.queue.schedule(
                at,
                key,
                EventKind::Retransmit {
                    src,
                    link_dst,
                    tier,
                    kind,
                    payload,
                    attempt: attempt + 1,
                },
            );
            return true; // queued, will go out after backoff
        }
        let seq = self.next_seq(src);
        let packet = Packet {
            seq,
            src,
            link_dst,
            tier,
            kind,
            payload,
        };
        let size = packet.size_bytes();
        let phy = *self.phy(tier);
        // Transmit power is set to cover the full unit-disk range, so the
        // energy charge uses the range as the distance term.
        let tx_cost = self.cfg.energy.tx_cost(size, phy.range_m);
        self.metrics.count_sent(kind, size);
        if let Some(n) = self.metrics.node_tx.get_mut(src.index()) {
            *n += 1;
        }
        if !self.charge(src, tx_cost) {
            // Battery died on this transmission; the frame still leaves
            // the antenna (the energy was spent).
        }
        if self.trace.is_some() {
            self.emit(TraceEvent::TxStart {
                t: self.now,
                seq,
                src,
                dst: link_dst,
                tier: trace_tier(tier),
                kind: trace_kind(kind),
                bytes: size as u32,
            });
        }

        let tx_end = self.now + phy.tx_time_us(size);
        let arrival = self.now + phy.hop_delay_us(size);
        let ti = tier_index(tier);
        if self.cfg.medium.csma {
            let pos = self.nodes[src.index()].pos;
            self.active_tx[ti].push(pos, tx_end);
        }
        // Fan out over the cached adjacency row directly. The cache is
        // taken out of its slot for the duration (a cheap move) so the
        // queue/collision state can be borrowed mutably alongside it — no
        // per-transmit neighbour Vec is ever allocated.
        self.ensure_adjacency(tier);
        let packet = Rc::new(packet);
        let use_collisions = self.cfg.medium.collisions == CollisionModel::ReceiverOverlap;
        // On an ideal medium a non-addressed, non-promiscuous receiver's
        // delivery is a pure no-op (the address filter precedes every
        // observable effect in `resolve_delivery`), so skip scheduling it.
        let fast_unicast = link_dst.is_some()
            && self.cfg.medium.unicast_fast_path
            && self.cfg.medium.loss_prob == 0.0
            && !use_collisions;
        let cache = self.adjacency[ti].take().expect("just built");
        if let Some(slot) = cache.slot.get(src.index()).copied().flatten() {
            let mut remote_payload: Option<std::sync::Arc<[u8]>> = None;
            for &s in &cache.adj[slot] {
                let rx = cache.members[s];
                if !self.nodes[rx.index()].alive {
                    continue;
                }
                if fast_unicast && link_dst != Some(rx) && !self.nodes[rx.index()].promiscuous {
                    continue;
                }
                if use_collisions {
                    // Register the airtime window at the receiver;
                    // collisions are resolved at delivery time.
                    self.collisions[ti].register(rx, self.now, tx_end);
                }
                let key = self.next_key(src);
                if let Some(sh) = self.shard.as_mut() {
                    if sh.owner[rx.index()] != sh.me {
                        let payload = remote_payload
                            .get_or_insert_with(|| std::sync::Arc::from(&packet.payload[..]))
                            .clone();
                        sh.outbox.push(RemoteEvent {
                            at: arrival,
                            key,
                            to: rx,
                            seq,
                            src,
                            link_dst,
                            tier,
                            kind,
                            payload,
                        });
                        continue;
                    }
                }
                self.queue.schedule(
                    arrival,
                    key,
                    EventKind::Deliver {
                        to: rx,
                        packet: Rc::clone(&packet),
                    },
                );
            }
        }
        // Trace-only diagnosis: a unicast whose link destination is not
        // in the sender's adjacency row will never arrive — record the
        // out-of-range drop so `wmsn-trace` can explain it. The cache
        // is still local here, so the membership test is O(log n).
        if self.trace.is_some() {
            if let Some(dst) = link_dst {
                let src_slot = cache.slot.get(src.index()).copied().flatten();
                let dst_slot = cache.slot.get(dst.index()).copied().flatten();
                let reachable = match (src_slot, dst_slot) {
                    (Some(s), Some(d)) => cache.adj[s].binary_search(&d).is_ok(),
                    _ => false,
                };
                if !reachable {
                    self.emit(TraceEvent::Drop {
                        t: self.now,
                        seq,
                        node: dst,
                        cause: DropCause::OutOfRange,
                    });
                }
            }
        }
        self.adjacency[ti] = Some(cache);
        true
    }

    /// Boosted-power transmission: like `transmit`, but reaching every
    /// tier member within `range_m` (ignoring the PHY's nominal range) and
    /// charging transmit energy for that distance. Models LEACH-style
    /// cluster heads talking directly to a far base station by raising
    /// their amplifier power. Receivers come from the adjacency cache's
    /// grid buckets — a `(2k+1)²`-cell block for `k = ⌈range/cell⌉` —
    /// instead of a scan over every node in the world.
    pub(crate) fn transmit_ranged(
        &mut self,
        src: NodeId,
        link_dst: Option<NodeId>,
        tier: Tier,
        kind: PacketKind,
        payload: Rc<[u8]>,
        range_m: f64,
    ) -> bool {
        {
            let s = &self.nodes[src.index()];
            if !s.alive {
                return false;
            }
            let has_tier = match tier {
                Tier::Sensor => s.role.in_sensor_tier(),
                Tier::Mesh => s.role.in_mesh_tier(),
            };
            if !has_tier {
                return false;
            }
        }
        let seq = self.next_seq(src);
        let packet = Packet {
            seq,
            src,
            link_dst,
            tier,
            kind,
            payload,
        };
        let size = packet.size_bytes();
        let phy = *self.phy(tier);
        let tx_cost = self.cfg.energy.tx_cost(size, range_m);
        self.metrics.count_sent(kind, size);
        if let Some(n) = self.metrics.node_tx.get_mut(src.index()) {
            *n += 1;
        }
        let _ = self.charge(src, tx_cost);
        if self.trace.is_some() {
            self.emit(TraceEvent::TxStart {
                t: self.now,
                seq,
                src,
                dst: link_dst,
                tier: trace_tier(tier),
                kind: trace_kind(kind),
                bytes: size as u32,
            });
        }
        let src_pos = self.nodes[src.index()].pos;
        let arrival = self.now + phy.hop_delay_us(size);
        // Tolerant comparison: callers commonly pass the exact geometric
        // distance, and sqrt(x)² can round below x.
        let tolerance = range_m * range_m * (1.0 + 1e-9);
        let ti = tier_index(tier);
        self.ensure_adjacency(tier);
        let cache = self.adjacency[ti].take().expect("just built");
        let mut slots = std::mem::take(&mut self.ranged_scratch);
        slots.clear();
        let (cx, cy) = cache.cell_of(src_pos);
        let k = (range_m / cache.cell).floor() as i64 + 1;
        for dx in -k..=k {
            for dy in -k..=k {
                if let Some(b) = cache.buckets.get(&(cx + dx, cy + dy)) {
                    for &t in b {
                        let id = cache.members[t];
                        if id != src && self.nodes[id.index()].pos.dist_sq(src_pos) <= tolerance {
                            slots.push(t);
                        }
                    }
                }
            }
        }
        // Member slots ascend with node id, so sorting restores the
        // deterministic id-order delivery schedule of a linear scan.
        slots.sort_unstable();
        let packet = Rc::new(packet);
        let fast_unicast = link_dst.is_some()
            && self.cfg.medium.unicast_fast_path
            && self.cfg.medium.loss_prob == 0.0
            && self.cfg.medium.collisions != CollisionModel::ReceiverOverlap;
        let mut remote_payload: Option<std::sync::Arc<[u8]>> = None;
        for &t in &slots {
            let rx = cache.members[t];
            if fast_unicast && link_dst != Some(rx) && !self.nodes[rx.index()].promiscuous {
                continue;
            }
            let key = self.next_key(src);
            if let Some(sh) = self.shard.as_mut() {
                if sh.owner[rx.index()] != sh.me {
                    let payload = remote_payload
                        .get_or_insert_with(|| std::sync::Arc::from(&packet.payload[..]))
                        .clone();
                    sh.outbox.push(RemoteEvent {
                        at: arrival,
                        key,
                        to: rx,
                        seq,
                        src,
                        link_dst,
                        tier,
                        kind,
                        payload,
                    });
                    continue;
                }
            }
            self.queue.schedule(
                arrival,
                key,
                EventKind::Deliver {
                    to: rx,
                    packet: Rc::clone(&packet),
                },
            );
        }
        self.ranged_scratch = slots;
        self.adjacency[ti] = Some(cache);
        true
    }

    /// Resolve a delivery event: loss, collision, liveness, addressing,
    /// receive energy. Returns `true` if the behaviour should see the
    /// packet.
    fn resolve_delivery(&mut self, to: NodeId, packet: &Packet) -> bool {
        if !self.nodes[to.index()].alive {
            self.metrics.dead_receiver += 1;
            if self.trace.is_some() {
                self.emit(TraceEvent::Drop {
                    t: self.now,
                    seq: packet.seq,
                    node: to,
                    cause: DropCause::Dead,
                });
            }
            return false;
        }
        if self.cfg.medium.collisions == CollisionModel::ReceiverOverlap {
            let tier = tier_index(packet.tier);
            let phy = self.phy(packet.tier);
            let start = self
                .now
                .saturating_sub(phy.hop_delay_us(packet.size_bytes()));
            if self.collisions[tier].corrupted(to, start) {
                self.metrics.collided += 1;
                if self.trace.is_some() {
                    self.emit(TraceEvent::Drop {
                        t: self.now,
                        seq: packet.seq,
                        node: to,
                        cause: DropCause::Collision,
                    });
                }
                return false;
            }
        }
        if self.cfg.medium.loss_prob > 0.0 {
            let p = self.cfg.medium.loss_prob;
            if self.medium_rng.chance(p) {
                self.metrics.lost += 1;
                if self.trace.is_some() {
                    self.emit(TraceEvent::Drop {
                        t: self.now,
                        seq: packet.seq,
                        node: to,
                        cause: DropCause::Loss,
                    });
                }
                return false;
            }
        }
        if !packet.addressed_to(to) && !self.nodes[to.index()].promiscuous {
            // Not ours; radios filter by address without waking the CPU.
            // Deliberately not a trace `drop`: address filtering is how
            // broadcast radios work, not a lost reception.
            return false;
        }
        let rx_cost = self.cfg.energy.rx_cost(packet.size_bytes());
        if !self.charge(to, rx_cost) {
            // Died receiving: the frame is not processed.
            if self.trace.is_some() {
                self.emit(TraceEvent::Drop {
                    t: self.now,
                    seq: packet.seq,
                    node: to,
                    cause: DropCause::Energy,
                });
            }
            return false;
        }
        self.metrics.received += 1;
        if self.trace.is_some() {
            self.emit(TraceEvent::Rx {
                t: self.now,
                seq: packet.seq,
                node: to,
            });
        }
        true
    }
}

/// The simulation world.
pub struct World {
    pub(crate) core: WorldCore,
    pub(crate) behaviors: Vec<Option<Box<dyn Behavior>>>,
    pub(crate) started: bool,
}

impl World {
    /// Create an empty world.
    pub fn new(cfg: WorldConfig) -> Self {
        let medium_rng = SplitMix64::new(cfg.seed).split(0x4D45_4449_554D); // "MEDIUM"
        let active_tx = [
            TxBuckets::new(cfg.sensor_phy.range_m),
            TxBuckets::new(cfg.mesh_phy.range_m),
        ];
        World {
            core: WorldCore {
                cfg,
                nodes: Vec::new(),
                queue: EventQueue::new(),
                now: 0,
                metrics: Metrics::default(),
                node_rngs: Vec::new(),
                medium_rng,
                packet_seqs: Vec::new(),
                sched_counters: Vec::new(),
                driver_counter: 0,
                exec_key: 0,
                shard: None,
                active_tx,
                adjacency: [None, None],
                collisions: [CollisionTracker::new(), CollisionTracker::new()],
                ranged_scratch: Vec::new(),
                frame_scratch: Vec::new(),
                trace: None,
            },
            behaviors: Vec::new(),
            started: false,
        }
    }

    /// Add a node with its protocol behaviour. Returns the new id.
    pub fn add_node(&mut self, cfg: NodeConfig, behavior: Box<dyn Behavior>) -> NodeId {
        let id = NodeId::from_index(self.core.nodes.len());
        self.core.nodes.push(NodeState {
            id,
            role: cfg.role,
            pos: cfg.pos,
            battery: Battery::new(cfg.battery_j),
            alive: true,
            promiscuous: false,
        });
        let rng = SplitMix64::new(self.core.cfg.seed).split(0x4E0D_E000 + id.0 as u64);
        self.core.node_rngs.push(rng);
        self.core.packet_seqs.push(0);
        self.core.sched_counters.push(0);
        self.core.metrics.energy_consumed.push(0.0);
        self.core.metrics.node_tx.push(0);
        self.behaviors.push(Some(behavior));
        self.core.invalidate_adjacency();
        id
    }

    /// Call every behaviour's `on_start`. Idempotent.
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.behaviors.len() {
            let id = NodeId::from_index(i);
            self.start_node(id);
        }
    }

    /// Dispatch one node's `on_start` under a fresh driver key. The
    /// sharded kernel calls this per node (in global id order, on the
    /// owning shard) instead of [`World::start`].
    pub(crate) fn start_node(&mut self, id: NodeId) {
        self.core.begin_driver_op();
        self.dispatch(id, |b, ctx| b.on_start(ctx));
    }

    /// Build an empty-queue replica of this world for one shard of the
    /// parallel kernel: same config, node table and per-node RNG /
    /// counter streams — but no behaviours, no pending events, fresh
    /// metrics (per-node vectors zeroed at full length so shard metrics
    /// sum element-wise) and no trace sink. Only valid before `start`.
    pub(crate) fn clone_shell(&self) -> World {
        let n = self.core.nodes.len();
        World {
            core: WorldCore {
                cfg: self.core.cfg.clone(),
                nodes: self.core.nodes.clone(),
                queue: EventQueue::new(),
                now: self.core.now,
                metrics: Metrics {
                    energy_consumed: vec![0.0; n],
                    node_tx: vec![0; n],
                    ..Metrics::default()
                },
                node_rngs: self.core.node_rngs.clone(),
                medium_rng: self.core.medium_rng.clone(),
                packet_seqs: self.core.packet_seqs.clone(),
                sched_counters: self.core.sched_counters.clone(),
                driver_counter: self.core.driver_counter,
                exec_key: 0,
                shard: None,
                active_tx: [
                    TxBuckets::new(self.core.cfg.sensor_phy.range_m),
                    TxBuckets::new(self.core.cfg.mesh_phy.range_m),
                ],
                adjacency: [None, None],
                collisions: [CollisionTracker::new(), CollisionTracker::new()],
                ranged_scratch: Vec::new(),
                frame_scratch: Vec::new(),
                trace: None,
            },
            behaviors: (0..n).map(|_| None).collect(),
            started: false,
        }
    }

    /// Install cross-shard routing state (see [`ShardState`]).
    pub(crate) fn install_shard_state(&mut self, owner: Vec<u16>, me: u16) {
        self.core.shard = Some(ShardState {
            owner,
            me,
            outbox: Vec::new(),
        });
    }

    /// Drain deliveries bound for other shards, accumulated during the
    /// last run window.
    pub(crate) fn drain_shard_outbox(&mut self, into: &mut Vec<RemoteEvent>) {
        if let Some(sh) = self.core.shard.as_mut() {
            into.append(&mut sh.outbox);
        }
    }

    /// Schedule a shard-crossing delivery received from another shard.
    /// The packet is rebuilt locally (`Arc` payload copied into a fresh
    /// `Rc`), carrying the exact `(at, key)` the sending shard minted —
    /// so it fires in the same global order the unsharded run would use.
    pub(crate) fn inject_remote(&mut self, e: RemoteEvent) {
        let packet = std::rc::Rc::new(Packet {
            seq: e.seq,
            src: e.src,
            link_dst: e.link_dst,
            tier: e.tier,
            kind: e.kind,
            payload: std::rc::Rc::from(&e.payload[..]),
        });
        self.core
            .queue
            .schedule(e.at, e.key, EventKind::Deliver { to: e.to, packet });
    }

    /// Earliest pending event time, if any (the sharded coordinator's
    /// window input).
    pub(crate) fn peek_event_time(&mut self) -> Option<SimTime> {
        self.core.queue.peek_time()
    }

    fn dispatch<R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut Box<dyn Behavior>, &mut Ctx<'_>) -> R,
    ) -> Option<R> {
        let mut behavior = self.behaviors[id.index()].take()?;
        let mut ctx = Ctx {
            core: &mut self.core,
            node: id,
        };
        let r = f(&mut behavior, &mut ctx);
        self.behaviors[id.index()] = Some(behavior);
        Some(r)
    }

    /// Process events until the queue is empty or `deadline` is passed.
    /// Time is left at `min(deadline, last event time)`… precisely: events
    /// with `at <= deadline` fire; afterwards `now == deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.start();
        while let Some(t) = self.core.queue.peek_time() {
            if t > deadline {
                break;
            }
            let ev = self.core.queue.pop().expect("peeked");
            self.core.now = ev.at;
            self.core.exec_key = ev.key;
            match ev.kind {
                EventKind::Deliver { to, packet } => {
                    if self.core.resolve_delivery(to, &packet) {
                        self.dispatch(to, |b, ctx| b.on_packet(ctx, &packet));
                    }
                }
                EventKind::Timer { node, tag } => {
                    if self.core.nodes[node.index()].alive {
                        self.dispatch(node, |b, ctx| b.on_timer(ctx, tag));
                    }
                }
                EventKind::Retransmit {
                    src,
                    link_dst,
                    tier,
                    kind,
                    payload,
                    attempt,
                } => {
                    self.core
                        .transmit_attempt(src, link_dst, tier, kind, payload, attempt);
                }
                EventKind::Breakpoint => {}
            }
        }
        self.core.now = self.core.now.max(deadline);
        // A drained queue means every scheduled delivery has resolved, so
        // expired medium state can never be read again — sweep it now to
        // keep the dense tables from accumulating over long runs.
        if self.core.queue.is_empty() {
            let now = self.core.now;
            for c in &mut self.core.collisions {
                c.prune(now);
            }
            for tx in &mut self.core.active_tx {
                tx.prune(now);
            }
        }
    }

    /// Run for `dt` more microseconds.
    pub fn run_for(&mut self, dt: SimTime) {
        let deadline = self.core.now + dt;
        self.run_until(deadline);
    }

    /// Run until no events remain (bounded by `max_events` as a runaway
    /// guard). Returns the number of events processed.
    pub fn run_to_idle(&mut self, max_events: u64) -> u64 {
        self.start();
        let mut n = 0;
        while n < max_events {
            let Some(t) = self.core.queue.peek_time() else {
                break;
            };
            self.run_until(t);
            n += 1;
        }
        n
    }

    /// Current time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.core.nodes.len()
    }

    /// Immutable node state.
    pub fn node(&self, id: NodeId) -> &NodeState {
        &self.core.nodes[id.index()]
    }

    /// Ids of all nodes with `role`.
    pub fn nodes_with_role(&self, role: NodeRole) -> Vec<NodeId> {
        self.nodes_with_role_iter(role).collect()
    }

    /// Iterator over the ids of all nodes with `role` — the
    /// allocation-free form of [`World::nodes_with_role`].
    pub fn nodes_with_role_iter(&self, role: NodeRole) -> impl Iterator<Item = NodeId> + '_ {
        self.core
            .nodes
            .iter()
            .filter(move |n| n.role == role)
            .map(|n| n.id)
    }

    /// Move a node (gateway mobility between rounds). Updates the
    /// adjacency caches incrementally: only the moved node's row, the
    /// rows referencing it and its grid bucket are touched.
    pub fn set_position(&mut self, id: NodeId, pos: wmsn_util::Point) {
        self.core.begin_driver_op();
        self.set_position_inner(id, pos, true);
    }

    /// [`World::set_position`] body; `emit = false` suppresses the trace
    /// line (the sharded kernel replicates moves to every shard but only
    /// the owner records them).
    pub(crate) fn set_position_inner(&mut self, id: NodeId, pos: wmsn_util::Point, emit: bool) {
        let old_pos = self.core.nodes[id.index()].pos;
        self.core.nodes[id.index()].pos = pos;
        for ti in 0..2 {
            self.core.update_adjacency_for_move(ti, id, old_pos);
        }
        if emit && self.core.trace.is_some() {
            self.core.emit(TraceEvent::NodeMove {
                t: self.core.now,
                node: id,
                x: pos.x,
                y: pos.y,
            });
        }
    }

    /// Put a node's radio in promiscuous mode (adversaries eavesdropping
    /// unicast traffic).
    pub fn set_promiscuous(&mut self, id: NodeId, on: bool) {
        self.core.begin_driver_op();
        self.core.nodes[id.index()].promiscuous = on;
    }

    /// Put a node to sleep (topology-control scheduling): its radio is
    /// off — it neither transmits nor receives — but unlike [`World::kill`]
    /// this records no death and is freely reversible with
    /// [`World::wake`].
    pub fn sleep(&mut self, id: NodeId) {
        self.core.begin_driver_op();
        self.sleep_inner(id, true);
    }

    /// [`World::sleep`] body with trace-emission control (see
    /// [`World::set_position_inner`]).
    pub(crate) fn sleep_inner(&mut self, id: NodeId, emit: bool) {
        self.core.nodes[id.index()].alive = false;
        if emit && self.core.trace.is_some() {
            self.core.emit(TraceEvent::NodeSleep {
                t: self.core.now,
                node: id,
            });
        }
    }

    /// Wake a sleeping node (no-op if its battery is spent).
    pub fn wake(&mut self, id: NodeId) {
        self.core.begin_driver_op();
        self.wake_inner(id, true);
    }

    /// [`World::wake`] / [`World::revive`] body with trace-emission
    /// control (see [`World::set_position_inner`]).
    pub(crate) fn wake_inner(&mut self, id: NodeId, emit: bool) {
        let state = &mut self.core.nodes[id.index()];
        if state.battery.alive() {
            state.alive = true;
            if emit && self.core.trace.is_some() {
                self.core.emit(TraceEvent::NodeWake {
                    t: self.core.now,
                    node: id,
                });
            }
        }
    }

    /// Kill a node (fault injection / captured-node experiments).
    pub fn kill(&mut self, id: NodeId) {
        self.core.begin_driver_op();
        self.kill_inner(id, true);
    }

    /// [`World::kill`] body with trace-emission control (see
    /// [`World::set_position_inner`]).
    pub(crate) fn kill_inner(&mut self, id: NodeId, emit: bool) {
        let state = &mut self.core.nodes[id.index()];
        if state.alive {
            state.alive = false;
            if state.role == NodeRole::Sensor && self.core.metrics.first_death.is_none() {
                self.core.metrics.first_death = Some(self.core.now);
                self.core.metrics.first_death_node = Some(id);
            }
            if emit && self.core.trace.is_some() {
                self.core.emit(TraceEvent::NodeKill {
                    t: self.core.now,
                    node: id,
                });
            }
        }
    }

    /// Revive a node (round-based protocols that model sleep).
    pub fn revive(&mut self, id: NodeId) {
        self.core.begin_driver_op();
        self.wake_inner(id, true);
    }

    /// Install a structured-trace sink. Every subsequent packet-
    /// lifecycle and protocol-decision event is recorded into it; pass
    /// the result of [`World::take_trace_sink`] back in to resume.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.core.trace = Some(sink);
    }

    /// Remove and return the trace sink (flushed), disabling tracing.
    /// Downcast it via [`TraceSink::as_any`] to read captured state.
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        let mut sink = self.core.trace.take()?;
        sink.flush();
        Some(sink)
    }

    /// Whether a trace sink is installed.
    pub fn trace_enabled(&self) -> bool {
        self.core.trace.is_some()
    }

    /// Flush the installed trace sink in place (no-op when tracing is
    /// disabled). For buffered sinks this drains buffers; for the ring
    /// pipeline (`wmsn_trace::RingSink`) it is the **flush barrier**:
    /// on return the drain thread has delivered every event emitted so
    /// far, so a subsequent [`World::trace_sink_as_mut`] /
    /// `RingSink::with_sink_mut` read observes exactly the inline-mode
    /// state. Drivers call this at `run_until` boundaries; the world
    /// never flushes mid-run on its own (some sinks treat a downstream
    /// flush as end-of-trace finalisation).
    pub fn flush_trace(&mut self) {
        if let Some(sink) = self.core.trace.as_deref_mut() {
            sink.flush();
        }
    }

    /// Borrow the installed trace sink downcast to a concrete type —
    /// `None` if no sink is installed or it is a different type. Lets
    /// online consumers (e.g. a health monitor) be interrogated
    /// mid-run without removing the sink.
    pub fn trace_sink_as<T: 'static>(&self) -> Option<&T> {
        self.core.trace.as_deref()?.as_any().downcast_ref::<T>()
    }

    /// Mutable variant of [`World::trace_sink_as`] — the hook a policy
    /// loop uses to drain alerts from an installed monitor.
    pub fn trace_sink_as_mut<T: 'static>(&mut self) -> Option<&mut T> {
        self.core
            .trace
            .as_deref_mut()?
            .as_any_mut()
            .downcast_mut::<T>()
    }

    /// Total events the event loop has processed (popped) so far.
    pub fn events_processed(&self) -> u64 {
        self.core.queue.total_popped()
    }

    /// High-water mark of the event queue over the run.
    pub fn peak_queue_depth(&self) -> usize {
        self.core.queue.peak_len()
    }

    /// Toggle the unicast fast-path delivery optimisation.
    ///
    /// Benchmark hook: lets the perf harness time the legacy
    /// full-medium delivery path against the fast path on the same
    /// build. Flip it before handing the world to the sharded kernel —
    /// shard shells clone the configuration at construction.
    pub fn set_unicast_fast_path(&mut self, on: bool) {
        self.core.cfg.medium.unicast_fast_path = on;
    }

    /// Read the metrics ledger.
    pub fn metrics(&self) -> &Metrics {
        &self.core.metrics
    }

    /// Mutable metrics (experiments reset counters between phases).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.core.metrics
    }

    /// Alive neighbours of `id` on `tier` (same view behaviours get).
    pub fn neighbors(&mut self, id: NodeId, tier: Tier) -> Vec<NodeId> {
        self.core.neighbors_of(id, tier)
    }

    /// Downcast a node's behaviour for inspection.
    pub fn behavior_as<T: 'static>(&self, id: NodeId) -> Option<&T> {
        self.behaviors[id.index()]
            .as_ref()
            .and_then(|b| b.as_any().downcast_ref::<T>())
    }

    /// Invoke protocol-specific entry points (round starts, traffic
    /// injection) on a node's behaviour with a live [`Ctx`].
    pub fn with_behavior<T: 'static, R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut T, &mut Ctx<'_>) -> R,
    ) -> Option<R> {
        self.start();
        self.core.begin_driver_op();
        let mut behavior = self.behaviors[id.index()].take()?;
        let result = behavior.as_any_mut().downcast_mut::<T>().map(|typed| {
            let mut ctx = Ctx {
                core: &mut self.core,
                node: id,
            };
            f(typed, &mut ctx)
        });
        self.behaviors[id.index()] = Some(behavior);
        result
    }

    /// Ids of sensors (the subset lifetime/energy metrics range over).
    pub fn sensor_ids(&self) -> Vec<NodeId> {
        self.nodes_with_role(NodeRole::Sensor)
    }

    /// Iterator over sensor ids — the allocation-free form of
    /// [`World::sensor_ids`].
    pub fn sensor_ids_iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes_with_role_iter(NodeRole::Sensor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;
    use wmsn_util::Point;

    /// Test behaviour: floods a counter once, counts receptions, echoes
    /// timers.
    #[derive(Default)]
    struct Probe {
        received: Vec<u64>,
        timers: Vec<u64>,
        send_on_start: bool,
    }

    impl Behavior for Probe {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            if self.send_on_start {
                ctx.send(None, Tier::Sensor, PacketKind::Data, vec![42]);
            }
        }
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, pkt: &Packet) {
            self.received.push(pkt.seq);
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_>, tag: u64) {
            self.timers.push(tag);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn probe(send: bool) -> Box<Probe> {
        Box::new(Probe {
            send_on_start: send,
            ..Default::default()
        })
    }

    fn two_node_world() -> (World, NodeId, NodeId) {
        let mut w = World::new(WorldConfig::ideal(1));
        let a = w.add_node(NodeConfig::sensor(Point::new(0.0, 0.0), 1.0), probe(true));
        let b = w.add_node(NodeConfig::sensor(Point::new(10.0, 0.0), 1.0), probe(false));
        (w, a, b)
    }

    #[test]
    fn broadcast_reaches_in_range_neighbor() {
        let (mut w, _a, b) = two_node_world();
        w.run_until(1_000_000);
        let p = w.behavior_as::<Probe>(b).unwrap();
        assert_eq!(p.received.len(), 1);
        assert_eq!(w.metrics().received, 1);
        assert_eq!(w.metrics().sent_data, 1);
    }

    #[test]
    fn trace_sink_records_the_packet_lifecycle() {
        use wmsn_trace::CountingSink;
        let (mut w, _a, _b) = two_node_world();
        w.set_trace_sink(Box::new(CountingSink::new()));
        assert!(w.trace_enabled());
        w.run_until(1_000_000);
        let sink = w.take_trace_sink().expect("installed");
        assert!(!w.trace_enabled());
        let c = sink.as_any().downcast_ref::<CountingSink>().unwrap();
        assert_eq!(c.count_of("tx_start"), 1);
        assert_eq!(c.count_of("rx"), 1);
        // One energy event per charge: the tx and the rx.
        assert_eq!(c.count_of("energy"), 2);
    }

    #[test]
    fn unreachable_unicast_traces_an_out_of_range_drop() {
        use wmsn_trace::CountingSink;
        let mut w = World::new(WorldConfig::ideal(1));
        let a = w.add_node(NodeConfig::sensor(Point::new(0.0, 0.0), 1.0), probe(false));
        let far = w.add_node(
            NodeConfig::sensor(Point::new(500.0, 0.0), 1.0),
            probe(false),
        );
        w.set_trace_sink(Box::new(CountingSink::new()));
        w.start();
        w.with_behavior::<Probe, _>(a, |_, ctx| {
            ctx.send(Some(far), Tier::Sensor, PacketKind::Data, vec![7]);
        });
        w.run_until(1_000_000);
        let sink = w.take_trace_sink().unwrap();
        let c = sink.as_any().downcast_ref::<CountingSink>().unwrap();
        assert_eq!(c.drops_of("out_of_range"), 1);
        assert_eq!(c.count_of("rx"), 0);
    }

    #[test]
    fn event_queue_counters_track_throughput_and_depth() {
        let (mut w, _a, _b) = two_node_world();
        assert_eq!(w.events_processed(), 0);
        w.run_until(1_000_000);
        // One broadcast delivery event scheduled and popped.
        assert_eq!(w.events_processed(), 1);
        assert!(w.peak_queue_depth() >= 1);
    }

    #[test]
    fn out_of_range_node_hears_nothing() {
        let mut w = World::new(WorldConfig::ideal(1));
        let _a = w.add_node(NodeConfig::sensor(Point::new(0.0, 0.0), 1.0), probe(true));
        let far = w.add_node(
            NodeConfig::sensor(Point::new(500.0, 0.0), 1.0),
            probe(false),
        );
        w.run_until(1_000_000);
        assert!(w.behavior_as::<Probe>(far).unwrap().received.is_empty());
    }

    #[test]
    fn unicast_is_filtered_by_address() {
        let mut w = World::new(WorldConfig::ideal(1));
        let a = w.add_node(NodeConfig::sensor(Point::new(0.0, 0.0), 1.0), probe(false));
        let b = w.add_node(NodeConfig::sensor(Point::new(10.0, 0.0), 1.0), probe(false));
        let c = w.add_node(NodeConfig::sensor(Point::new(0.0, 10.0), 1.0), probe(false));
        w.start();
        w.with_behavior::<Probe, _>(a, |_, ctx| {
            ctx.send(Some(b), Tier::Sensor, PacketKind::Data, vec![7]);
        });
        w.run_until(1_000_000);
        assert_eq!(w.behavior_as::<Probe>(b).unwrap().received.len(), 1);
        assert!(w.behavior_as::<Probe>(c).unwrap().received.is_empty());
        // c never paid receive energy for the filtered frame.
        assert_eq!(w.metrics().energy_consumed[c.index()], 0.0);
    }

    #[test]
    fn timers_fire_in_order_with_tags() {
        let mut w = World::new(WorldConfig::ideal(1));
        let a = w.add_node(NodeConfig::sensor(Point::new(0.0, 0.0), 1.0), probe(false));
        w.start();
        w.with_behavior::<Probe, _>(a, |_, ctx| {
            ctx.set_timer(300, 3);
            ctx.set_timer(100, 1);
            ctx.set_timer(200, 2);
        });
        w.run_until(1_000);
        assert_eq!(w.behavior_as::<Probe>(a).unwrap().timers, vec![1, 2, 3]);
    }

    #[test]
    fn energy_is_charged_for_tx_and_rx() {
        let (mut w, a, b) = two_node_world();
        w.run_until(1_000_000);
        // Per-packet default: 1 mJ per send, 1 mJ per receive.
        assert!((w.metrics().energy_consumed[a.index()] - 1e-3).abs() < 1e-9);
        assert!((w.metrics().energy_consumed[b.index()] - 1e-3).abs() < 1e-9);
    }

    #[test]
    fn battery_exhaustion_kills_and_records_first_death() {
        let mut w = World::new(WorldConfig::ideal(1));
        // Battery covers exactly 2 sends (per-packet 1 mJ).
        let a = w.add_node(NodeConfig::sensor(Point::new(0.0, 0.0), 2e-3), probe(false));
        w.start();
        for _ in 0..3 {
            w.with_behavior::<Probe, _>(a, |_, ctx| {
                ctx.send(None, Tier::Sensor, PacketKind::Data, vec![]);
            });
        }
        assert!(!w.node(a).alive);
        assert_eq!(w.metrics().first_death, Some(0));
        assert_eq!(w.metrics().first_death_node, Some(a));
    }

    #[test]
    fn dead_nodes_neither_send_nor_receive() {
        let (mut w, a, b) = two_node_world();
        w.start();
        w.kill(b);
        w.with_behavior::<Probe, _>(a, |_, ctx| {
            assert!(ctx.send(None, Tier::Sensor, PacketKind::Data, vec![]));
        });
        w.run_until(1_000_000);
        // b was dead at delivery: counted, not processed (1 from on_start
        // broadcast already delivered? No: b was killed before start? We
        // killed after start but before a's broadcast arrived…)
        let got = w.behavior_as::<Probe>(b).unwrap().received.len();
        assert_eq!(got, 0);
        assert!(w.metrics().dead_receiver >= 1);
        w.kill(a);
        let sent = w.with_behavior::<Probe, _>(a, |_, ctx| {
            ctx.send(None, Tier::Sensor, PacketKind::Data, vec![])
        });
        assert_eq!(sent, Some(false));
    }

    #[test]
    fn sensors_cannot_transmit_on_the_mesh_tier() {
        let mut w = World::new(WorldConfig::ideal(1));
        let a = w.add_node(NodeConfig::sensor(Point::new(0.0, 0.0), 1.0), probe(false));
        w.start();
        let ok = w.with_behavior::<Probe, _>(a, |_, ctx| {
            ctx.send(None, Tier::Mesh, PacketKind::Data, vec![])
        });
        assert_eq!(ok, Some(false));
    }

    #[test]
    fn gateway_bridges_both_tiers() {
        let mut w = World::new(WorldConfig::ideal(1));
        let g = w.add_node(NodeConfig::gateway(Point::new(0.0, 0.0)), probe(false));
        let s = w.add_node(NodeConfig::sensor(Point::new(5.0, 0.0), 1.0), probe(false));
        let r = w.add_node(
            NodeConfig::mesh_router(Point::new(100.0, 0.0)),
            probe(false),
        );
        w.start();
        w.with_behavior::<Probe, _>(g, |_, ctx| {
            ctx.send(None, Tier::Sensor, PacketKind::Data, vec![1]);
            ctx.send(None, Tier::Mesh, PacketKind::Data, vec![2]);
        });
        w.run_until(1_000_000);
        assert_eq!(w.behavior_as::<Probe>(s).unwrap().received.len(), 1);
        assert_eq!(w.behavior_as::<Probe>(r).unwrap().received.len(), 1);
    }

    #[test]
    fn mesh_router_does_not_hear_sensor_tier() {
        let mut w = World::new(WorldConfig::ideal(1));
        let g = w.add_node(NodeConfig::gateway(Point::new(0.0, 0.0)), probe(false));
        let r = w.add_node(NodeConfig::mesh_router(Point::new(5.0, 0.0)), probe(false));
        w.start();
        w.with_behavior::<Probe, _>(g, |_, ctx| {
            ctx.send(None, Tier::Sensor, PacketKind::Data, vec![1]);
        });
        w.run_until(1_000_000);
        assert!(w.behavior_as::<Probe>(r).unwrap().received.is_empty());
    }

    #[test]
    fn moving_a_node_updates_reachability() {
        let mut w = World::new(WorldConfig::ideal(1));
        let a = w.add_node(NodeConfig::sensor(Point::new(0.0, 0.0), 1.0), probe(false));
        let b = w.add_node(
            NodeConfig::sensor(Point::new(500.0, 0.0), 1.0),
            probe(false),
        );
        w.start();
        w.with_behavior::<Probe, _>(a, |_, ctx| {
            ctx.send(None, Tier::Sensor, PacketKind::Data, vec![]);
        });
        w.run_until(10_000);
        assert!(w.behavior_as::<Probe>(b).unwrap().received.is_empty());
        w.set_position(b, Point::new(10.0, 0.0));
        w.with_behavior::<Probe, _>(a, |_, ctx| {
            ctx.send(None, Tier::Sensor, PacketKind::Data, vec![]);
        });
        w.run_until(20_000);
        assert_eq!(w.behavior_as::<Probe>(b).unwrap().received.len(), 1);
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            let mut w = World::new(WorldConfig {
                medium: MediumConfig {
                    loss_prob: 0.3,
                    collisions: CollisionModel::None,
                    csma: false,
                    ..MediumConfig::default()
                },
                ..WorldConfig::ideal(99)
            });
            let mut ids = Vec::new();
            for i in 0..20 {
                ids.push(w.add_node(
                    NodeConfig::sensor(Point::new((i % 5) as f64 * 8.0, (i / 5) as f64 * 8.0), 1.0),
                    probe(true),
                ));
            }
            w.run_until(5_000_000);
            (
                w.metrics().received,
                w.metrics().lost,
                w.metrics().total_sent(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn loss_probability_drops_roughly_that_fraction() {
        let mut w = World::new(WorldConfig {
            medium: MediumConfig {
                loss_prob: 0.5,
                collisions: CollisionModel::None,
                csma: false,
                ..MediumConfig::default()
            },
            ..WorldConfig::ideal(7)
        });
        // A dense clique: every send has 24 potential receivers.
        for i in 0..25 {
            w.add_node(
                NodeConfig::sensor(Point::new((i % 5) as f64, (i / 5) as f64), 10.0),
                probe(true),
            );
        }
        w.run_until(1_000_000);
        let m = w.metrics();
        let total = m.received + m.lost;
        assert_eq!(total, 25 * 24);
        let ratio = m.lost as f64 / total as f64;
        assert!((0.4..0.6).contains(&ratio), "loss ratio {ratio}");
    }

    #[test]
    fn colliding_broadcasts_corrupt_receptions() {
        let mut w = World::new(WorldConfig {
            medium: MediumConfig {
                loss_prob: 0.0,
                collisions: CollisionModel::ReceiverOverlap,
                csma: false,
                ..MediumConfig::default()
            },
            ..WorldConfig::ideal(3)
        });
        // Two senders, one receiver in range of both; both transmit at t=0.
        let _s1 = w.add_node(NodeConfig::sensor(Point::new(0.0, 0.0), 1.0), probe(true));
        let _s2 = w.add_node(NodeConfig::sensor(Point::new(20.0, 0.0), 1.0), probe(true));
        let r = w.add_node(NodeConfig::sensor(Point::new(10.0, 0.0), 1.0), probe(false));
        w.run_until(1_000_000);
        assert!(w.behavior_as::<Probe>(r).unwrap().received.is_empty());
        assert!(w.metrics().collided >= 2);
    }

    #[test]
    fn csma_defers_instead_of_colliding() {
        // Two senders in mutual range transmit at the same instant at a
        // shared receiver. Without CSMA both frames collide; with CSMA
        // the second sender hears the first and defers, so the receiver
        // decodes both.
        let build = |csma: bool| {
            let mut w = World::new(WorldConfig {
                medium: MediumConfig {
                    loss_prob: 0.0,
                    collisions: CollisionModel::ReceiverOverlap,
                    csma,
                    ..MediumConfig::default()
                },
                ..WorldConfig::ideal(3)
            });
            let s1 = w.add_node(NodeConfig::sensor(Point::new(0.0, 0.0), 1.0), probe(false));
            let s2 = w.add_node(NodeConfig::sensor(Point::new(20.0, 0.0), 1.0), probe(false));
            let r = w.add_node(NodeConfig::sensor(Point::new(10.0, 0.0), 1.0), probe(false));
            w.start();
            // s1 transmits first (occupying the air), s2 a hair later.
            w.with_behavior::<Probe, _>(s1, |_, ctx| {
                ctx.send(None, Tier::Sensor, PacketKind::Data, vec![1; 40]);
            });
            w.run_for(10); // s1's frame is now on the air
            w.with_behavior::<Probe, _>(s2, |_, ctx| {
                ctx.send(None, Tier::Sensor, PacketKind::Data, vec![2; 40]);
            });
            w.run_until(1_000_000);
            (
                w.behavior_as::<Probe>(r).unwrap().received.len(),
                w.metrics().csma_deferrals,
            )
        };
        let (got_bare, _) = build(false);
        assert_eq!(got_bare, 0, "without CSMA both frames collide");
        let (got_csma, deferrals) = build(true);
        assert_eq!(got_csma, 2, "with CSMA both frames arrive");
        assert!(deferrals >= 1);
    }

    #[test]
    fn run_to_idle_processes_everything() {
        let (mut w, _a, _b) = two_node_world();
        let n = w.run_to_idle(10_000);
        assert!(n >= 1);
        assert_eq!(w.metrics().received, 1);
    }

    #[test]
    fn delivery_and_origination_bookkeeping() {
        let mut w = World::new(WorldConfig::ideal(1));
        let a = w.add_node(NodeConfig::sensor(Point::new(0.0, 0.0), 1.0), probe(false));
        w.start();
        w.with_behavior::<Probe, _>(a, |_, ctx| {
            ctx.record_origination();
            ctx.record_delivery(NodeId(0), 1, 0, 3);
        });
        assert_eq!(w.metrics().originated, 1);
        assert_eq!(w.metrics().deliveries.len(), 1);
        assert!((w.metrics().delivery_ratio() - 1.0).abs() < 1e-12);
    }
}
