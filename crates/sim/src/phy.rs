//! Radio tiers and PHY profiles.
//!
//! The architecture uses two radios (§3.2): *"sensor nodes only support
//! 802.15.4; WMRs only support 802.11; WMGs support both"*. The protocol
//! identity matters to routing only through range, bitrate, and energy
//! cost, so a PHY here is a small parameter block. Defaults follow
//! commonly-cited figures for CC2420-class motes and 802.11b mesh radios.

/// Which of the two logical radio networks a transmission happens on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Tier {
    /// The low-level sensor network (802.15.4-class).
    Sensor,
    /// The wireless-mesh backbone (802.11-class).
    Mesh,
}

/// Physical-layer parameters for one tier.
#[derive(Clone, Copy, Debug)]
pub struct PhyProfile {
    /// Radio range in metres (unit disk).
    pub range_m: f64,
    /// Bitrate in bits per second (determines transmission delay).
    pub bitrate_bps: f64,
    /// Fixed per-hop processing/propagation latency in microseconds.
    pub hop_latency_us: u64,
    /// Link-layer header+trailer overhead added to every frame, bytes.
    pub frame_overhead_bytes: usize,
}

impl PhyProfile {
    /// 802.15.4-class sensor radio: 30 m range, 250 kbit/s, 11-byte
    /// MAC header + FCS.
    pub fn zigbee() -> Self {
        PhyProfile {
            range_m: 30.0,
            bitrate_bps: 250_000.0,
            hop_latency_us: 192, // a-turnaround + CCA order of magnitude
            frame_overhead_bytes: 11,
        }
    }

    /// 802.11b-class mesh radio: 250 m range, 11 Mbit/s, 34-byte overhead.
    pub fn wifi() -> Self {
        PhyProfile {
            range_m: 250.0,
            bitrate_bps: 11_000_000.0,
            hop_latency_us: 50,
            frame_overhead_bytes: 34,
        }
    }

    /// Time to clock `payload_bytes` (plus frame overhead) onto the air,
    /// in microseconds (at least 1).
    pub fn tx_time_us(&self, payload_bytes: usize) -> u64 {
        let bits = ((payload_bytes + self.frame_overhead_bytes) * 8) as f64;
        ((bits / self.bitrate_bps) * 1e6).ceil().max(1.0) as u64
    }

    /// Total one-hop latency for a frame: transmission + fixed hop cost.
    pub fn hop_delay_us(&self, payload_bytes: usize) -> u64 {
        self.tx_time_us(payload_bytes) + self.hop_latency_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigbee_frame_timing_matches_hand_calculation() {
        let phy = PhyProfile::zigbee();
        // 30-byte payload + 11 overhead = 41 bytes = 328 bits at 250 kbit/s
        // = 1312 µs.
        assert_eq!(phy.tx_time_us(30), 1312);
        assert_eq!(phy.hop_delay_us(30), 1312 + 192);
    }

    #[test]
    fn wifi_is_much_faster_and_longer_range() {
        let z = PhyProfile::zigbee();
        let w = PhyProfile::wifi();
        assert!(w.range_m > 3.0 * z.range_m);
        assert!(w.tx_time_us(100) < z.tx_time_us(100) / 10);
    }

    #[test]
    fn tiny_frames_still_take_time() {
        assert!(PhyProfile::wifi().tx_time_us(0) >= 1);
    }
}
