//! The shared radio medium: loss and collisions.
//!
//! Propagation is unit-disk per tier. Two imperfections are modelled
//! because the paper's reliability claims are about surviving them:
//!
//! * **Independent per-reception loss** with probability `loss_prob`
//!   (fading, interference) — exercised by the robustness experiments.
//! * **Receiver-overlap collisions** ([`CollisionModel::ReceiverOverlap`]):
//!   if two frames' arrival windows overlap at a receiver, both are
//!   corrupted. This is a deliberately simple half of CSMA — enough to
//!   punish naive flooding (the implosion problem §2.2.1 cites) without
//!   simulating backoff state machines the paper never discusses.

use crate::time::SimTime;
use wmsn_util::NodeId;

/// Collision handling at receivers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CollisionModel {
    /// Ideal medium: simultaneous receptions all succeed.
    None,
    /// Overlapping reception windows at one receiver corrupt each other.
    ReceiverOverlap,
}

/// Medium configuration.
#[derive(Clone, Copy, Debug)]
pub struct MediumConfig {
    /// Independent probability that any single reception is lost.
    pub loss_prob: f64,
    /// Collision model.
    pub collisions: CollisionModel,
    /// CSMA carrier sensing: a sender that can hear an ongoing
    /// transmission defers with binary-exponential backoff instead of
    /// transmitting into it. This is the listen-before-talk half of the
    /// 802.15.4/802.11 MACs the paper assumes; meaningful only together
    /// with [`CollisionModel::ReceiverOverlap`].
    pub csma: bool,
    /// On an otherwise-ideal medium (`loss_prob == 0`, no collisions), a
    /// unicast frame can only ever be *processed* by its link destination
    /// and by promiscuous eavesdroppers — every other in-range radio
    /// address-filters it without observable effect (no energy charge, no
    /// counter, no trace line). With this flag the simulator skips
    /// scheduling those no-op deliveries entirely, which collapses the
    /// dominant cost of dense unicast workloads (a 40-neighbour fan-out
    /// becomes 1 event). Metrics and traces are bit-identical either way;
    /// only the event-queue throughput statistics differ. Ignored when
    /// loss or collisions are enabled, where non-addressed receptions
    /// consume medium randomness and collision windows.
    pub unicast_fast_path: bool,
}

impl Default for MediumConfig {
    fn default() -> Self {
        MediumConfig {
            loss_prob: 0.0,
            collisions: CollisionModel::None,
            csma: false,
            unicast_fast_path: true,
        }
    }
}

/// Tracks per-receiver busy windows for the collision model.
///
/// Stored as a dense table indexed by node index — `register` runs once
/// per (transmit × receiver), so it must not pay hashing. A default
/// (all-zero) entry behaves exactly like an absent one: its window is
/// empty (`end == 0`), so any registration replaces it and no delivery
/// reads it as corrupted.
#[derive(Debug, Default)]
pub struct CollisionTracker {
    /// Per node index: the most recent busy window.
    windows: Vec<Window>,
}

#[derive(Debug, Clone, Copy, Default)]
struct Window {
    start: SimTime,
    end: SimTime,
    corrupted: bool,
}

impl CollisionTracker {
    /// Fresh tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register that a frame occupies `rx`'s air from `start` to `end`.
    /// Returns `true` if this frame collides with a previous one (both are
    /// then corrupted; the earlier frame's corruption is recorded and
    /// queried at its delivery time via [`CollisionTracker::corrupted`]).
    pub fn register(&mut self, rx: NodeId, start: SimTime, end: SimTime) -> bool {
        let i = rx.index();
        if i >= self.windows.len() {
            self.windows.resize(i + 1, Window::default());
        }
        let w = &mut self.windows[i];
        if start < w.end {
            // Overlap: corrupt both; extend the busy window.
            w.corrupted = true;
            w.end = w.end.max(end);
            true
        } else {
            *w = Window {
                start,
                end,
                corrupted: false,
            };
            false
        }
    }

    /// At delivery time, was the window containing `start` corrupted by a
    /// later overlapping frame?
    pub fn corrupted(&self, rx: NodeId, start: SimTime) -> bool {
        self.windows
            .get(rx.index())
            .map(|w| w.corrupted && start >= w.start)
            .unwrap_or(false)
    }

    /// Clear every window that ended at or before `before`. Safe once all
    /// deliveries scheduled against those windows have resolved (the world
    /// calls this when its event queue drains): future registrations start
    /// at or after `before`, so an expired window can neither overlap them
    /// nor be queried again.
    pub fn prune(&mut self, before: SimTime) {
        for w in &mut self.windows {
            if w.end <= before {
                *w = Window::default();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_medium_is_ideal() {
        let m = MediumConfig::default();
        assert_eq!(m.loss_prob, 0.0);
        assert_eq!(m.collisions, CollisionModel::None);
        assert!(m.unicast_fast_path);
    }

    #[test]
    fn non_overlapping_frames_do_not_collide() {
        let mut t = CollisionTracker::new();
        assert!(!t.register(NodeId(1), 0, 10));
        assert!(!t.register(NodeId(1), 10, 20), "back-to-back is fine");
        assert!(!t.corrupted(NodeId(1), 10));
    }

    #[test]
    fn overlapping_frames_corrupt_each_other() {
        let mut t = CollisionTracker::new();
        assert!(!t.register(NodeId(1), 0, 10));
        assert!(t.register(NodeId(1), 5, 15), "second frame collides");
        assert!(t.corrupted(NodeId(1), 0), "first frame also corrupted");
    }

    #[test]
    fn collisions_are_per_receiver() {
        let mut t = CollisionTracker::new();
        assert!(!t.register(NodeId(1), 0, 10));
        assert!(!t.register(NodeId(2), 5, 15), "different receiver");
    }

    #[test]
    fn triple_overlap_extends_the_window() {
        let mut t = CollisionTracker::new();
        t.register(NodeId(1), 0, 10);
        assert!(t.register(NodeId(1), 8, 30));
        // A third frame inside the extended window still collides.
        assert!(t.register(NodeId(1), 25, 35));
    }

    #[test]
    fn pruning_clears_expired_windows_only() {
        let mut t = CollisionTracker::new();
        t.register(NodeId(1), 0, 10);
        t.register(NodeId(1), 5, 15); // corrupt, window now [0, 15]
        t.register(NodeId(2), 90, 110); // still in flight at t=20
        t.prune(20);
        assert!(!t.corrupted(NodeId(1), 0), "expired window is gone");
        // The live window survives and still collides.
        assert!(t.register(NodeId(2), 100, 120));
        // A fresh registration after pruning behaves like a first one.
        assert!(!t.register(NodeId(1), 30, 40));
        assert!(!t.corrupted(NodeId(1), 30));
    }

    #[test]
    fn new_window_after_quiet_period_is_clean() {
        let mut t = CollisionTracker::new();
        t.register(NodeId(1), 0, 10);
        t.register(NodeId(1), 5, 15); // corrupt
        assert!(!t.register(NodeId(1), 100, 110));
        assert!(!t.corrupted(NodeId(1), 100));
    }
}
