//! Simulation time.
//!
//! Time is a `u64` count of microseconds since the start of the run —
//! fine-grained enough for per-packet transmission delays at 250 kbit/s
//! (a 30-byte 802.15.4 frame is ≈960 µs on the air) while leaving room for
//! simulations spanning simulated months.

/// Microseconds per second.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// A simulation timestamp in microseconds.
pub type SimTime = u64;

/// Convert whole seconds to [`SimTime`].
#[inline]
pub const fn secs(s: u64) -> SimTime {
    s * MICROS_PER_SEC
}

/// Convert whole milliseconds to [`SimTime`].
#[inline]
pub const fn millis(ms: u64) -> SimTime {
    ms * 1_000
}

/// Render a timestamp as fractional seconds for reports.
pub fn as_secs_f64(t: SimTime) -> f64 {
    t as f64 / MICROS_PER_SEC as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(secs(2), 2_000_000);
        assert_eq!(millis(3), 3_000);
        assert_eq!(as_secs_f64(1_500_000), 1.5);
    }
}
