//! The metrics ledger.
//!
//! Everything the experiments report comes from here: per-kind packet
//! counters, per-node energy, end-to-end deliveries with hop counts and
//! latency, and the paper's headline figure — network lifetime, *"the time
//! when the first sensor node drains its energy"* (§5.3).

use crate::packet::PacketKind;
use crate::time::SimTime;
use wmsn_trace::Histogram;
use wmsn_util::stats::energy_variance;
use wmsn_util::NodeId;

/// A completed end-to-end application delivery, recorded by the
/// destination protocol via [`crate::node::Ctx::record_delivery`].
#[derive(Clone, Debug)]
pub struct Delivery {
    /// Originating node.
    pub source: NodeId,
    /// Final destination (gateway / base station).
    pub destination: NodeId,
    /// Application message id (protocol-chosen).
    pub msg_id: u64,
    /// Time the source handed the message to the network.
    pub sent_at: SimTime,
    /// Time the destination accepted it.
    pub delivered_at: SimTime,
    /// Number of radio hops traversed.
    pub hops: u32,
}

impl Delivery {
    /// End-to-end latency in microseconds.
    pub fn latency(&self) -> SimTime {
        self.delivered_at.saturating_sub(self.sent_at)
    }
}

/// Counters and records accumulated over one run.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// Frames transmitted, by kind.
    pub sent_control: u64,
    /// Data frames transmitted.
    pub sent_data: u64,
    /// Security frames transmitted.
    pub sent_security: u64,
    /// Total payload+header bytes clocked onto the air, by kind — the
    /// basis of the security-overhead experiment (E7).
    pub sent_bytes_control: u64,
    /// Data bytes transmitted.
    pub sent_bytes_data: u64,
    /// Security bytes transmitted.
    pub sent_bytes_security: u64,
    /// Frames successfully received (addressed to the receiver).
    pub received: u64,
    /// Receptions lost to the random-loss model.
    pub lost: u64,
    /// Receptions lost to collisions.
    pub collided: u64,
    /// Receptions discarded because the receiver was dead.
    pub dead_receiver: u64,
    /// Transmissions deferred by CSMA carrier sensing.
    pub csma_deferrals: u64,
    /// Transmissions abandoned after exhausting CSMA backoff attempts.
    pub csma_drops: u64,
    /// Application messages originated (denominator of delivery ratio).
    pub originated: u64,
    /// Completed deliveries.
    pub deliveries: Vec<Delivery>,
    /// Causal key of the event that produced each delivery (parallel to
    /// `deliveries`). The sharded kernel merges per-shard delivery
    /// ledgers by `(delivered_at, key)` to recover the exact order the
    /// single-threaded reference records them in; single-world callers
    /// can ignore this.
    pub delivery_keys: Vec<u64>,
    /// Time of first sensor death, if any — the paper's network lifetime.
    pub first_death: Option<SimTime>,
    /// Node that died first.
    pub first_death_node: Option<NodeId>,
    /// Per-node energy consumed (indexed by node id; gateways report 0
    /// under unlimited batteries).
    pub energy_consumed: Vec<f64>,
    /// End-to-end latency distribution (µs) over deliveries.
    pub latency_hist: Histogram,
    /// Hop-count distribution over deliveries.
    pub hops_hist: Histogram,
    /// Frames transmitted per node (indexed by node id).
    pub node_tx: Vec<u64>,
    /// Per-round snapshots appended by the experiment drivers, so E3/E8
    /// can plot trajectories instead of endpoints.
    pub snapshots: Vec<RoundSnapshot>,
}

/// Cumulative counters captured at one round boundary.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoundSnapshot {
    /// Round index (0-based).
    pub round: u32,
    /// Simulation time of the snapshot.
    pub at: SimTime,
    /// Messages originated so far.
    pub originated: u64,
    /// Unique messages delivered so far.
    pub delivered: u64,
    /// Control frames sent so far.
    pub sent_control: u64,
    /// Data frames sent so far.
    pub sent_data: u64,
    /// Security frames sent so far.
    pub sent_security: u64,
    /// Frames received so far.
    pub received: u64,
    /// Receptions dropped so far (loss + collision + dead receiver).
    pub dropped: u64,
    /// Total joules consumed across all nodes so far.
    pub total_energy_j: f64,
    /// Whether the first sensor death has happened yet.
    pub any_death: bool,
}

impl Metrics {
    /// Record a transmission of `kind` carrying `bytes` bytes.
    pub fn count_sent(&mut self, kind: PacketKind, bytes: usize) {
        match kind {
            PacketKind::Control => {
                self.sent_control += 1;
                self.sent_bytes_control += bytes as u64;
            }
            PacketKind::Data => {
                self.sent_data += 1;
                self.sent_bytes_data += bytes as u64;
            }
            PacketKind::Security => {
                self.sent_security += 1;
                self.sent_bytes_security += bytes as u64;
            }
        }
    }

    /// Total bytes transmitted across all kinds.
    pub fn total_bytes(&self) -> u64 {
        self.sent_bytes_control + self.sent_bytes_data + self.sent_bytes_security
    }

    /// Total frames transmitted.
    pub fn total_sent(&self) -> u64 {
        self.sent_control + self.sent_data + self.sent_security
    }

    /// Delivery ratio: unique delivered messages / originated messages
    /// (1.0 when nothing was originated). Duplicate arrivals of the same
    /// (source, msg_id) count once.
    pub fn delivery_ratio(&self) -> f64 {
        if self.originated == 0 {
            return 1.0;
        }
        self.unique_deliveries() as f64 / self.originated as f64
    }

    /// Number of unique (source, msg_id) messages delivered — duplicate
    /// arrivals (multi-path, replay, or the base station re-recording an
    /// end-to-end delivery) count once.
    pub fn unique_deliveries(&self) -> u64 {
        let unique: std::collections::HashSet<(NodeId, u64)> = self
            .deliveries
            .iter()
            .map(|d| (d.source, d.msg_id))
            .collect();
        unique.len() as u64
    }

    /// Mean hop count over deliveries (0 if none).
    pub fn mean_hops(&self) -> f64 {
        if self.deliveries.is_empty() {
            return 0.0;
        }
        self.deliveries.iter().map(|d| d.hops as f64).sum::<f64>() / self.deliveries.len() as f64
    }

    /// Mean end-to-end latency in microseconds (0 if none).
    pub fn mean_latency_us(&self) -> f64 {
        if self.deliveries.is_empty() {
            return 0.0;
        }
        self.deliveries
            .iter()
            .map(|d| d.latency() as f64)
            .sum::<f64>()
            / self.deliveries.len() as f64
    }

    /// The paper's energy-balance variance `D²` over the given node
    /// subset (normally: all sensors).
    pub fn energy_d2(&self, nodes: &[NodeId]) -> f64 {
        let es: Vec<f64> = nodes
            .iter()
            .map(|n| self.energy_consumed.get(n.index()).copied().unwrap_or(0.0))
            .collect();
        energy_variance(&es)
    }

    /// Total energy consumed by the given node subset.
    pub fn total_energy(&self, nodes: &[NodeId]) -> f64 {
        nodes
            .iter()
            .map(|n| self.energy_consumed.get(n.index()).copied().unwrap_or(0.0))
            .sum()
    }

    /// Record a completed delivery, feeding the latency and hop-count
    /// histograms alongside the delivery ledger.
    pub fn record_delivery(&mut self, d: Delivery) {
        self.record_delivery_keyed(d, 0);
    }

    /// [`Metrics::record_delivery`] with an explicit causal key — what
    /// [`crate::node::Ctx::record_delivery`] uses so sharded runs can
    /// merge delivery ledgers deterministically.
    pub fn record_delivery_keyed(&mut self, d: Delivery, key: u64) {
        self.latency_hist.record(d.latency());
        self.hops_hist.record(d.hops as u64);
        self.delivery_keys.push(key);
        self.deliveries.push(d);
    }

    /// Receptions that were scheduled but never reached a behaviour:
    /// `lost + collided + dead_receiver`. Trace `drop` events with
    /// causes `loss`/`collision`/`dead` sum to exactly this.
    pub fn dropped_total(&self) -> u64 {
        self.lost + self.collided + self.dead_receiver
    }

    /// Per-node transmit counts as a histogram (one sample per node).
    pub fn node_tx_histogram(&self) -> Histogram {
        let mut h = Histogram::new();
        for &n in &self.node_tx {
            h.record(n);
        }
        h
    }

    /// Append a cumulative per-round snapshot (called by the experiment
    /// drivers at each round boundary).
    pub fn snapshot_round(&mut self, round: u32, at: SimTime) {
        let snap = RoundSnapshot {
            round,
            at,
            originated: self.originated,
            delivered: self.unique_deliveries(),
            sent_control: self.sent_control,
            sent_data: self.sent_data,
            sent_security: self.sent_security,
            received: self.received,
            dropped: self.dropped_total(),
            total_energy_j: self.energy_consumed.iter().sum(),
            any_death: self.first_death.is_some(),
        };
        self.snapshots.push(snap);
    }

    /// Control overhead ratio: control frames / total frames (0 if idle).
    pub fn control_overhead(&self) -> f64 {
        let total = self.total_sent();
        if total == 0 {
            0.0
        } else {
            self.sent_control as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delivery(src: u32, msg: u64, hops: u32, sent: SimTime, got: SimTime) -> Delivery {
        Delivery {
            source: NodeId(src),
            destination: NodeId(99),
            msg_id: msg,
            sent_at: sent,
            delivered_at: got,
            hops,
        }
    }

    #[test]
    fn delivery_ratio_counts_unique_messages() {
        let mut m = Metrics {
            originated: 4,
            ..Default::default()
        };
        m.deliveries.push(delivery(1, 1, 2, 0, 10));
        m.deliveries.push(delivery(1, 1, 3, 0, 12)); // duplicate arrival
        m.deliveries.push(delivery(2, 1, 1, 0, 5));
        assert!((m.delivery_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_run_has_ratio_one() {
        assert_eq!(Metrics::default().delivery_ratio(), 1.0);
    }

    #[test]
    fn hop_and_latency_means() {
        let mut m = Metrics::default();
        m.deliveries.push(delivery(1, 1, 2, 100, 300));
        m.deliveries.push(delivery(2, 1, 4, 100, 500));
        assert!((m.mean_hops() - 3.0).abs() < 1e-12);
        assert!((m.mean_latency_us() - 300.0).abs() < 1e-12);
        assert_eq!(Metrics::default().mean_hops(), 0.0);
    }

    #[test]
    fn latency_saturates_instead_of_underflowing() {
        let d = delivery(1, 1, 1, 50, 40);
        assert_eq!(d.latency(), 0);
    }

    #[test]
    fn kind_counters() {
        let mut m = Metrics::default();
        m.count_sent(PacketKind::Control, 10);
        m.count_sent(PacketKind::Control, 20);
        m.count_sent(PacketKind::Data, 5);
        m.count_sent(PacketKind::Security, 1);
        assert_eq!(m.total_sent(), 4);
        assert!((m.control_overhead() - 0.5).abs() < 1e-12);
        assert_eq!(m.sent_bytes_control, 30);
        assert_eq!(m.sent_bytes_data, 5);
        assert_eq!(m.total_bytes(), 36);
    }

    #[test]
    fn energy_views_respect_the_subset() {
        let m = Metrics {
            energy_consumed: vec![1.0, 3.0, 100.0],
            ..Default::default()
        };
        let sensors = [NodeId(0), NodeId(1)];
        assert!((m.total_energy(&sensors) - 4.0).abs() < 1e-12);
        assert!((m.energy_d2(&sensors) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn missing_energy_entries_read_as_zero() {
        let m = Metrics::default();
        assert_eq!(m.total_energy(&[NodeId(7)]), 0.0);
    }

    #[test]
    fn record_delivery_feeds_the_histograms() {
        let mut m = Metrics::default();
        m.record_delivery(delivery(1, 1, 2, 100, 300));
        m.record_delivery(delivery(2, 1, 4, 100, 500));
        assert_eq!(m.deliveries.len(), 2);
        assert_eq!(m.hops_hist.count(), 2);
        assert_eq!(m.hops_hist.percentile(1.0), 4);
        assert_eq!(m.latency_hist.min(), 200);
        assert_eq!(m.latency_hist.max(), 400);
    }

    #[test]
    fn dropped_total_sums_the_three_causes() {
        let m = Metrics {
            lost: 3,
            collided: 5,
            dead_receiver: 2,
            ..Default::default()
        };
        assert_eq!(m.dropped_total(), 10);
    }

    #[test]
    fn snapshots_capture_cumulative_counters() {
        let mut m = Metrics {
            originated: 4,
            sent_data: 7,
            lost: 1,
            energy_consumed: vec![0.5, 0.25],
            ..Default::default()
        };
        m.record_delivery(delivery(1, 1, 2, 0, 10));
        m.snapshot_round(0, 1_000);
        m.originated += 2;
        m.snapshot_round(1, 2_000);
        assert_eq!(m.snapshots.len(), 2);
        assert_eq!(m.snapshots[0].round, 0);
        assert_eq!(m.snapshots[0].originated, 4);
        assert_eq!(m.snapshots[0].delivered, 1);
        assert_eq!(m.snapshots[0].dropped, 1);
        assert!((m.snapshots[0].total_energy_j - 0.75).abs() < 1e-12);
        assert_eq!(m.snapshots[1].originated, 6);
        assert_eq!(m.snapshots[1].at, 2_000);
    }

    #[test]
    fn node_tx_histogram_samples_every_node() {
        let m = Metrics {
            node_tx: vec![0, 3, 3, 10],
            ..Default::default()
        };
        let h = m.node_tx_histogram();
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), 10);
        assert_eq!(h.percentile(0.5), 3);
    }
}
