//! The metrics ledger.
//!
//! Everything the experiments report comes from here: per-kind packet
//! counters, per-node energy, end-to-end deliveries with hop counts and
//! latency, and the paper's headline figure — network lifetime, *"the time
//! when the first sensor node drains its energy"* (§5.3).

use crate::packet::PacketKind;
use crate::time::SimTime;
use wmsn_util::stats::energy_variance;
use wmsn_util::NodeId;

/// A completed end-to-end application delivery, recorded by the
/// destination protocol via [`crate::node::Ctx::record_delivery`].
#[derive(Clone, Debug)]
pub struct Delivery {
    /// Originating node.
    pub source: NodeId,
    /// Final destination (gateway / base station).
    pub destination: NodeId,
    /// Application message id (protocol-chosen).
    pub msg_id: u64,
    /// Time the source handed the message to the network.
    pub sent_at: SimTime,
    /// Time the destination accepted it.
    pub delivered_at: SimTime,
    /// Number of radio hops traversed.
    pub hops: u32,
}

impl Delivery {
    /// End-to-end latency in microseconds.
    pub fn latency(&self) -> SimTime {
        self.delivered_at.saturating_sub(self.sent_at)
    }
}

/// Counters and records accumulated over one run.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// Frames transmitted, by kind.
    pub sent_control: u64,
    /// Data frames transmitted.
    pub sent_data: u64,
    /// Security frames transmitted.
    pub sent_security: u64,
    /// Total payload+header bytes clocked onto the air, by kind — the
    /// basis of the security-overhead experiment (E7).
    pub sent_bytes_control: u64,
    /// Data bytes transmitted.
    pub sent_bytes_data: u64,
    /// Security bytes transmitted.
    pub sent_bytes_security: u64,
    /// Frames successfully received (addressed to the receiver).
    pub received: u64,
    /// Receptions lost to the random-loss model.
    pub lost: u64,
    /// Receptions lost to collisions.
    pub collided: u64,
    /// Receptions discarded because the receiver was dead.
    pub dead_receiver: u64,
    /// Transmissions deferred by CSMA carrier sensing.
    pub csma_deferrals: u64,
    /// Transmissions abandoned after exhausting CSMA backoff attempts.
    pub csma_drops: u64,
    /// Application messages originated (denominator of delivery ratio).
    pub originated: u64,
    /// Completed deliveries.
    pub deliveries: Vec<Delivery>,
    /// Time of first sensor death, if any — the paper's network lifetime.
    pub first_death: Option<SimTime>,
    /// Node that died first.
    pub first_death_node: Option<NodeId>,
    /// Per-node energy consumed (indexed by node id; gateways report 0
    /// under unlimited batteries).
    pub energy_consumed: Vec<f64>,
}

impl Metrics {
    /// Record a transmission of `kind` carrying `bytes` bytes.
    pub fn count_sent(&mut self, kind: PacketKind, bytes: usize) {
        match kind {
            PacketKind::Control => {
                self.sent_control += 1;
                self.sent_bytes_control += bytes as u64;
            }
            PacketKind::Data => {
                self.sent_data += 1;
                self.sent_bytes_data += bytes as u64;
            }
            PacketKind::Security => {
                self.sent_security += 1;
                self.sent_bytes_security += bytes as u64;
            }
        }
    }

    /// Total bytes transmitted across all kinds.
    pub fn total_bytes(&self) -> u64 {
        self.sent_bytes_control + self.sent_bytes_data + self.sent_bytes_security
    }

    /// Total frames transmitted.
    pub fn total_sent(&self) -> u64 {
        self.sent_control + self.sent_data + self.sent_security
    }

    /// Delivery ratio: unique delivered messages / originated messages
    /// (1.0 when nothing was originated). Duplicate arrivals of the same
    /// (source, msg_id) count once.
    pub fn delivery_ratio(&self) -> f64 {
        if self.originated == 0 {
            return 1.0;
        }
        self.unique_deliveries() as f64 / self.originated as f64
    }

    /// Number of unique (source, msg_id) messages delivered — duplicate
    /// arrivals (multi-path, replay, or the base station re-recording an
    /// end-to-end delivery) count once.
    pub fn unique_deliveries(&self) -> u64 {
        let unique: std::collections::HashSet<(NodeId, u64)> = self
            .deliveries
            .iter()
            .map(|d| (d.source, d.msg_id))
            .collect();
        unique.len() as u64
    }

    /// Mean hop count over deliveries (0 if none).
    pub fn mean_hops(&self) -> f64 {
        if self.deliveries.is_empty() {
            return 0.0;
        }
        self.deliveries.iter().map(|d| d.hops as f64).sum::<f64>() / self.deliveries.len() as f64
    }

    /// Mean end-to-end latency in microseconds (0 if none).
    pub fn mean_latency_us(&self) -> f64 {
        if self.deliveries.is_empty() {
            return 0.0;
        }
        self.deliveries
            .iter()
            .map(|d| d.latency() as f64)
            .sum::<f64>()
            / self.deliveries.len() as f64
    }

    /// The paper's energy-balance variance `D²` over the given node
    /// subset (normally: all sensors).
    pub fn energy_d2(&self, nodes: &[NodeId]) -> f64 {
        let es: Vec<f64> = nodes
            .iter()
            .map(|n| self.energy_consumed.get(n.index()).copied().unwrap_or(0.0))
            .collect();
        energy_variance(&es)
    }

    /// Total energy consumed by the given node subset.
    pub fn total_energy(&self, nodes: &[NodeId]) -> f64 {
        nodes
            .iter()
            .map(|n| self.energy_consumed.get(n.index()).copied().unwrap_or(0.0))
            .sum()
    }

    /// Control overhead ratio: control frames / total frames (0 if idle).
    pub fn control_overhead(&self) -> f64 {
        let total = self.total_sent();
        if total == 0 {
            0.0
        } else {
            self.sent_control as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delivery(src: u32, msg: u64, hops: u32, sent: SimTime, got: SimTime) -> Delivery {
        Delivery {
            source: NodeId(src),
            destination: NodeId(99),
            msg_id: msg,
            sent_at: sent,
            delivered_at: got,
            hops,
        }
    }

    #[test]
    fn delivery_ratio_counts_unique_messages() {
        let mut m = Metrics {
            originated: 4,
            ..Default::default()
        };
        m.deliveries.push(delivery(1, 1, 2, 0, 10));
        m.deliveries.push(delivery(1, 1, 3, 0, 12)); // duplicate arrival
        m.deliveries.push(delivery(2, 1, 1, 0, 5));
        assert!((m.delivery_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_run_has_ratio_one() {
        assert_eq!(Metrics::default().delivery_ratio(), 1.0);
    }

    #[test]
    fn hop_and_latency_means() {
        let mut m = Metrics::default();
        m.deliveries.push(delivery(1, 1, 2, 100, 300));
        m.deliveries.push(delivery(2, 1, 4, 100, 500));
        assert!((m.mean_hops() - 3.0).abs() < 1e-12);
        assert!((m.mean_latency_us() - 300.0).abs() < 1e-12);
        assert_eq!(Metrics::default().mean_hops(), 0.0);
    }

    #[test]
    fn latency_saturates_instead_of_underflowing() {
        let d = delivery(1, 1, 1, 50, 40);
        assert_eq!(d.latency(), 0);
    }

    #[test]
    fn kind_counters() {
        let mut m = Metrics::default();
        m.count_sent(PacketKind::Control, 10);
        m.count_sent(PacketKind::Control, 20);
        m.count_sent(PacketKind::Data, 5);
        m.count_sent(PacketKind::Security, 1);
        assert_eq!(m.total_sent(), 4);
        assert!((m.control_overhead() - 0.5).abs() < 1e-12);
        assert_eq!(m.sent_bytes_control, 30);
        assert_eq!(m.sent_bytes_data, 5);
        assert_eq!(m.total_bytes(), 36);
    }

    #[test]
    fn energy_views_respect_the_subset() {
        let m = Metrics {
            energy_consumed: vec![1.0, 3.0, 100.0],
            ..Default::default()
        };
        let sensors = [NodeId(0), NodeId(1)];
        assert!((m.total_energy(&sensors) - 4.0).abs() < 1e-12);
        assert!((m.energy_d2(&sensors) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn missing_energy_entries_read_as_zero() {
        let m = Metrics::default();
        assert_eq!(m.total_energy(&[NodeId(7)]), 0.0);
    }
}
