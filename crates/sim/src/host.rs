//! [`SimHost`] — the simulation-host abstraction experiment drivers run
//! against.
//!
//! Round drivers (traffic injection, gateway movement, per-round
//! snapshots) only need a narrow slice of the world API; expressing it
//! as a trait lets the same driver run a scenario on the
//! single-threaded reference [`World`] or on the sharded parallel
//! kernel ([`ShardedWorld`]) without duplication — and the
//! shard-equivalence tests exercise exactly that substitution.
//!
//! The trait is deliberately *not* object-safe ([`SimHost::with_behavior`]
//! is generic over the behaviour type, mirroring the inherent methods);
//! drivers take `H: SimHost` type parameters instead of `dyn` hosts.

use crate::metrics::Metrics;
use crate::node::{Ctx, NodeState};
use crate::sharded::ShardedWorld;
use crate::time::SimTime;
use crate::world::World;
use wmsn_util::{NodeId, NodeRole, Point};

/// A simulation host: something that owns nodes with behaviours, runs
/// the clock, and keeps the metrics ledger. Implemented by [`World`]
/// (the bit-exact reference) and [`ShardedWorld`] (the parallel
/// kernel).
pub trait SimHost {
    /// Call every behaviour's `on_start`. Idempotent.
    fn start(&mut self);

    /// Process events up to and including `deadline`; afterwards
    /// `now() == deadline`.
    fn run_until(&mut self, deadline: SimTime);

    /// Run for `dt` more microseconds.
    fn run_for(&mut self, dt: SimTime) {
        let deadline = self.now() + dt;
        self.run_until(deadline);
    }

    /// Current simulation time.
    fn now(&self) -> SimTime;

    /// Number of nodes.
    fn node_count(&self) -> usize;

    /// Immutable node state.
    fn node(&self, id: NodeId) -> &NodeState;

    /// Ids of all nodes with `role`.
    fn nodes_with_role(&self, role: NodeRole) -> Vec<NodeId>;

    /// Ids of sensors.
    fn sensor_ids(&self) -> Vec<NodeId> {
        self.nodes_with_role(NodeRole::Sensor)
    }

    /// The metrics ledger. Takes `&mut self` so hosts that aggregate
    /// lazily (the sharded kernel merges per-shard ledgers) can refresh
    /// a cache; the reference world just hands out its field.
    fn metrics(&mut self) -> &Metrics;

    /// Append a per-round snapshot to the metrics ledger.
    fn snapshot_round(&mut self, round: u32, at: SimTime);

    /// Move a node.
    fn set_position(&mut self, id: NodeId, pos: Point);

    /// Kill a node (fault injection).
    fn kill(&mut self, id: NodeId);

    /// Invoke a protocol entry point on a node's behaviour.
    fn with_behavior<T: 'static, R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut T, &mut Ctx<'_>) -> R,
    ) -> Option<R>;

    /// Downcast a node's behaviour for inspection.
    fn behavior_as<T: 'static>(&self, id: NodeId) -> Option<&T>;

    /// Total events processed so far.
    fn events_processed(&self) -> u64;

    /// Event-queue high-water mark.
    fn peak_queue_depth(&self) -> usize;
}

impl SimHost for World {
    fn start(&mut self) {
        World::start(self);
    }
    fn run_until(&mut self, deadline: SimTime) {
        World::run_until(self, deadline);
    }
    fn now(&self) -> SimTime {
        World::now(self)
    }
    fn node_count(&self) -> usize {
        World::node_count(self)
    }
    fn node(&self, id: NodeId) -> &NodeState {
        World::node(self, id)
    }
    fn nodes_with_role(&self, role: NodeRole) -> Vec<NodeId> {
        World::nodes_with_role(self, role)
    }
    fn metrics(&mut self) -> &Metrics {
        World::metrics(self)
    }
    fn snapshot_round(&mut self, round: u32, at: SimTime) {
        self.metrics_mut().snapshot_round(round, at);
    }
    fn set_position(&mut self, id: NodeId, pos: Point) {
        World::set_position(self, id, pos);
    }
    fn kill(&mut self, id: NodeId) {
        World::kill(self, id);
    }
    fn with_behavior<T: 'static, R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut T, &mut Ctx<'_>) -> R,
    ) -> Option<R> {
        World::with_behavior(self, id, f)
    }
    fn behavior_as<T: 'static>(&self, id: NodeId) -> Option<&T> {
        World::behavior_as(self, id)
    }
    fn events_processed(&self) -> u64 {
        World::events_processed(self)
    }
    fn peak_queue_depth(&self) -> usize {
        World::peak_queue_depth(self)
    }
}

impl SimHost for ShardedWorld {
    fn start(&mut self) {
        ShardedWorld::start(self);
    }
    fn run_until(&mut self, deadline: SimTime) {
        ShardedWorld::run_until(self, deadline);
    }
    fn now(&self) -> SimTime {
        ShardedWorld::now(self)
    }
    fn node_count(&self) -> usize {
        ShardedWorld::node_count(self)
    }
    fn node(&self, id: NodeId) -> &NodeState {
        ShardedWorld::node(self, id)
    }
    fn nodes_with_role(&self, role: NodeRole) -> Vec<NodeId> {
        ShardedWorld::nodes_with_role(self, role)
    }
    fn metrics(&mut self) -> &Metrics {
        ShardedWorld::metrics(self)
    }
    fn snapshot_round(&mut self, round: u32, at: SimTime) {
        ShardedWorld::snapshot_round(self, round, at);
    }
    fn set_position(&mut self, id: NodeId, pos: Point) {
        ShardedWorld::set_position(self, id, pos);
    }
    fn kill(&mut self, id: NodeId) {
        ShardedWorld::kill(self, id);
    }
    fn with_behavior<T: 'static, R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut T, &mut Ctx<'_>) -> R,
    ) -> Option<R> {
        ShardedWorld::with_behavior(self, id, f)
    }
    fn behavior_as<T: 'static>(&self, id: NodeId) -> Option<&T> {
        ShardedWorld::behavior_as(self, id)
    }
    fn events_processed(&self) -> u64 {
        ShardedWorld::events_processed(self)
    }
    fn peak_queue_depth(&self) -> usize {
        ShardedWorld::peak_queue_depth(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    fn hosted_now<H: SimHost>(h: &mut H) -> SimTime {
        h.run_for(1_000);
        h.now()
    }

    #[test]
    fn world_and_sharded_world_share_the_host_surface() {
        let mut w = World::new(WorldConfig::ideal(3));
        assert_eq!(hosted_now(&mut w), 1_000);
        let mut sw = ShardedWorld::from_world(World::new(WorldConfig::ideal(3)), Vec::new(), 1);
        assert_eq!(hosted_now(&mut sw), 1_000);
        assert_eq!(SimHost::node_count(&w), 0);
        assert_eq!(SimHost::node_count(&sw), 0);
    }
}
