//! Packets: what travels on the air.
//!
//! A packet is a link-layer frame: sender, optional link-layer destination
//! (`None` = local broadcast — the normal case for flooding and for the
//! paper's "broadcast a packet DATA" steps), the tier it is sent on, a
//! coarse kind used by the metrics ledger to separate control overhead
//! from data delivery, and an opaque payload that each protocol encodes
//! with `wmsn_util::codec`.

use crate::phy::Tier;
use std::rc::Rc;
use wmsn_util::NodeId;

/// Coarse classification for overhead accounting (E5, E7).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PacketKind {
    /// Routing-control traffic: RREQ/RRES floods, gateway announcements,
    /// cluster advertisements, hello beacons.
    Control,
    /// Application data en route to a gateway (or onward on the backbone).
    Data,
    /// Security-only traffic (μTESLA key disclosures).
    Security,
}

/// A frame in flight.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Globally unique transmission id (assigned by the world).
    pub seq: u64,
    /// Link-layer sender — the node whose radio emitted this frame. Under
    /// identity attacks this may differ from any id claimed *inside* the
    /// payload; honest protocols must parse the payload, not trust `src`.
    pub src: NodeId,
    /// Link-layer destination; `None` is a local broadcast.
    pub link_dst: Option<NodeId>,
    /// Radio tier the frame is sent on.
    pub tier: Tier,
    /// Metrics classification.
    pub kind: PacketKind,
    /// Protocol payload bytes. Reference-counted so broadcasts, CSMA
    /// retransmits and store-and-forward queues share one buffer instead
    /// of copying it.
    pub payload: Rc<[u8]>,
}

impl Packet {
    /// Network-layer size used for energy/latency: payload plus a fixed
    /// 8-byte network header (src, dst, kind tag). The PHY adds its own
    /// frame overhead on top.
    pub fn size_bytes(&self) -> usize {
        self.payload.len() + 8
    }

    /// Whether this frame is addressed to `node` (directly or broadcast).
    pub fn addressed_to(&self, node: NodeId) -> bool {
        match self.link_dst {
            None => true,
            Some(d) => d == node,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(link_dst: Option<NodeId>) -> Packet {
        Packet {
            seq: 1,
            src: NodeId(0),
            link_dst,
            tier: Tier::Sensor,
            kind: PacketKind::Data,
            payload: vec![1, 2, 3].into(),
        }
    }

    #[test]
    fn size_includes_header() {
        assert_eq!(pkt(None).size_bytes(), 11);
    }

    #[test]
    fn broadcast_addresses_everyone() {
        let p = pkt(None);
        assert!(p.addressed_to(NodeId(5)));
        assert!(p.addressed_to(NodeId(0)));
    }

    #[test]
    fn unicast_addresses_exactly_one() {
        let p = pkt(Some(NodeId(5)));
        assert!(p.addressed_to(NodeId(5)));
        assert!(!p.addressed_to(NodeId(6)));
    }
}
