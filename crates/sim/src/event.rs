//! The event queue.
//!
//! A timer wheel keyed by exact microsecond, with an overflow heap for
//! events beyond the wheel's horizon. Pop order is exactly `(time,
//! key)`: the caller supplies a 64-bit *causal key* with every event,
//! and the key breaks timestamp ties. The world derives keys from the
//! scheduling node's id and a per-node counter (`node << 32 | counter`),
//! which makes tie-breaking a property of *who scheduled what* rather
//! than of global insertion order — the same events get the same keys no
//! matter how the world is partitioned, so the sharded parallel kernel
//! reproduces the single-threaded schedule bit for bit.
//!
//! Why a wheel and not a binary heap: the simulator schedules ~1.4M
//! events per 800-node round, almost all within a few milliseconds of
//! `now`, and heap sift costs (log-depth cache misses per pop on a
//! ~40k-entry heap) dominated the whole run. The wheel pops in O(1) —
//! each slot covers one exact microsecond, so a slot's list holds one
//! timestamp and only needs key order within it. Bulk schedules (a
//! broadcast fan-out) carry ascending keys from one node, so the
//! tail-append fast path keeps slot insertion O(1) in the common case.

use crate::packet::Packet;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use wmsn_util::NodeId;

/// What happens when an event fires.
#[derive(Debug)]
pub enum EventKind {
    /// A packet finishes arriving at a node.
    Deliver {
        /// Receiving node.
        to: NodeId,
        /// The packet (shared across receivers of one broadcast).
        packet: std::rc::Rc<Packet>,
    },
    /// A node's timer expires.
    Timer {
        /// The node that set the timer.
        node: NodeId,
        /// Caller-chosen tag, returned verbatim.
        tag: u64,
    },
    /// A CSMA-deferred transmission retries.
    Retransmit {
        /// Sending node.
        src: NodeId,
        /// Link destination.
        link_dst: Option<NodeId>,
        /// Radio tier.
        tier: crate::phy::Tier,
        /// Metrics kind.
        kind: crate::packet::PacketKind,
        /// Payload bytes (shared with the original attempt — a deferral
        /// never copies the frame).
        payload: std::rc::Rc<[u8]>,
        /// Backoff attempt number.
        attempt: u8,
    },
    /// External control hook: run-loop should return to the caller.
    Breakpoint,
}

/// A scheduled event.
#[derive(Debug)]
pub struct Event {
    /// Firing time.
    pub at: SimTime,
    /// Causal key for tie-breaking at equal `at` (see module docs).
    pub key: u64,
    /// Action.
    pub kind: EventKind,
}

/// One µs of wheel coverage per slot; 2^16 slots ≈ 65 ms of horizon,
/// comfortably past the hop-delay + jitter window almost every event
/// lands in. Far timers (hello intervals, round periods) overflow to a
/// small heap and migrate in when the wheel drains.
const WHEEL_BITS: u32 = 16;
const WHEEL_SLOTS: usize = 1 << WHEEL_BITS;
const WHEEL_MASK: u64 = WHEEL_SLOTS as u64 - 1;
const WORDS: usize = WHEEL_SLOTS / 64;
const NIL: u32 = u32::MAX;

/// An event body parked in the slab, linked into its slot's key-ordered
/// list.
#[derive(Debug)]
struct SlabEntry {
    at: SimTime,
    key: u64,
    /// Next entry in the same wheel slot (same `at`), or `NIL`.
    next: u32,
    /// `None` = slot free.
    kind: Option<EventKind>,
}

/// Overflow-heap key: 24 bytes, body stays in the slab.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HeapEntry {
    at: SimTime,
    key: u64,
    slot: u32,
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.key.cmp(&self.key))
    }
}

/// Earliest-first event queue.
#[derive(Debug)]
pub struct EventQueue {
    /// Event bodies, indexed by wheel lists and overflow entries.
    slab: Vec<SlabEntry>,
    /// Recycled slab slots.
    free: Vec<u32>,
    /// Per-slot list heads into `slab` (`NIL` = empty).
    heads: Vec<u32>,
    /// Per-slot list tails.
    tails: Vec<u32>,
    /// One bit per slot: set iff the slot has entries.
    occupied: Vec<u64>,
    /// Window base: wheel entries have `at` in `[wheel_start, wheel_start
    /// + WHEEL_SLOTS)`; overflow entries lie at or past the horizon.
    wheel_start: SimTime,
    /// Earliest time any pending wheel entry can have; scans start here.
    cursor: SimTime,
    /// Entries currently linked into the wheel.
    wheel_len: usize,
    /// Events beyond the horizon, earliest-first.
    overflow: BinaryHeap<HeapEntry>,
    /// Total pending events (wheel + overflow).
    count: usize,
    /// High-water mark of `count` over the queue's lifetime.
    peak: usize,
    /// Total events ever popped (the event-loop throughput numerator).
    popped: u64,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl EventQueue {
    /// Empty queue.
    pub fn new() -> Self {
        EventQueue {
            slab: Vec::new(),
            free: Vec::new(),
            heads: vec![NIL; WHEEL_SLOTS],
            tails: vec![NIL; WHEEL_SLOTS],
            occupied: vec![0; WORDS],
            wheel_start: 0,
            cursor: 0,
            wheel_len: 0,
            overflow: BinaryHeap::new(),
            count: 0,
            peak: 0,
            popped: 0,
        }
    }

    /// Schedule `kind` at absolute time `at` with causal key `key`.
    /// Events at equal `at` fire in ascending key order.
    pub fn schedule(&mut self, at: SimTime, key: u64, kind: EventKind) {
        if self.count == 0 {
            // Every slot was drained on the way here, so the wheel is
            // clean and the window can be re-anchored for free.
            self.wheel_start = at;
            self.cursor = at;
        } else if at < self.wheel_start {
            self.rebase(at);
        }
        let idx = self.alloc(at, key, kind);
        if at - self.wheel_start < WHEEL_SLOTS as u64 {
            self.wheel_insert(at, idx);
            if at < self.cursor {
                self.cursor = at;
            }
        } else {
            self.overflow.push(HeapEntry { at, key, slot: idx });
        }
        self.count += 1;
        if self.count > self.peak {
            self.peak = self.count;
        }
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        if self.count == 0 {
            return None;
        }
        if self.wheel_len == 0 {
            self.refill_from_overflow();
        }
        let s = self.scan();
        let idx = self.heads[s] as usize;
        let at = self.slab[idx].at;
        let key = self.slab[idx].key;
        self.cursor = at;
        let next = self.slab[idx].next;
        self.heads[s] = next;
        if next == NIL {
            self.tails[s] = NIL;
            self.occupied[s >> 6] &= !(1u64 << (s & 63));
        }
        self.wheel_len -= 1;
        self.count -= 1;
        self.popped += 1;
        let kind = self.slab[idx].kind.take().expect("scheduled slot");
        self.free.push(idx as u32);
        Some(Event { at, key, kind })
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        if self.count == 0 {
            return None;
        }
        if self.wheel_len == 0 {
            self.refill_from_overflow();
        }
        let s = self.scan();
        let at = self.slab[self.heads[s] as usize].at;
        // Nothing earlier remains, so a following pop rescans in O(1).
        self.cursor = at;
        Some(at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.count
    }

    /// High-water mark of pending events over the queue's lifetime.
    pub fn peak_len(&self) -> usize {
        self.peak
    }

    /// Total events popped over the queue's lifetime.
    pub fn total_popped(&self) -> u64 {
        self.popped
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    fn alloc(&mut self, at: SimTime, key: u64, kind: EventKind) -> u32 {
        let entry = SlabEntry {
            at,
            key,
            next: NIL,
            kind: Some(kind),
        };
        match self.free.pop() {
            Some(i) => {
                self.slab[i as usize] = entry;
                i
            }
            None => {
                self.slab.push(entry);
                (self.slab.len() - 1) as u32
            }
        }
    }

    /// Link `idx` into its time slot's key-ordered list. Entries in one
    /// slot share one exact `at` (the window is one wheel revolution).
    /// Bulk schedules arrive with ascending keys, so the tail-append
    /// fast path covers the hot case; out-of-order keys (two nodes
    /// scheduling into the same microsecond) walk the short list.
    fn wheel_insert(&mut self, at: SimTime, idx: u32) {
        let s = (at & WHEEL_MASK) as usize;
        let key = self.slab[idx as usize].key;
        let tail = self.tails[s];
        self.wheel_len += 1;
        if tail == NIL {
            self.heads[s] = idx;
            self.tails[s] = idx;
            self.occupied[s >> 6] |= 1u64 << (s & 63);
            return;
        }
        if self.slab[tail as usize].key <= key {
            self.slab[tail as usize].next = idx;
            self.tails[s] = idx;
            return;
        }
        let head = self.heads[s];
        if key < self.slab[head as usize].key {
            self.slab[idx as usize].next = head;
            self.heads[s] = idx;
            return;
        }
        // Insert after the last entry whose key is <= ours (stable for
        // equal keys, though the world never issues duplicates).
        let mut cur = head;
        loop {
            let next = self.slab[cur as usize].next;
            if next == NIL || key < self.slab[next as usize].key {
                self.slab[idx as usize].next = next;
                self.slab[cur as usize].next = idx;
                return;
            }
            cur = next;
        }
    }

    /// Wheel drained but events remain: advance the window to the earliest
    /// overflow event and pull everything inside the new horizon in.
    /// Entries arrive in `(at, key)` heap order, so slot lists stay sorted
    /// via the append fast path.
    fn refill_from_overflow(&mut self) {
        let start = self.overflow.peek().expect("count > 0, wheel empty").at;
        self.wheel_start = start;
        self.cursor = start;
        while let Some(e) = self.overflow.peek() {
            if e.at - start >= WHEEL_SLOTS as u64 {
                break;
            }
            let e = self.overflow.pop().expect("peeked");
            self.wheel_insert(e.at, e.slot);
        }
    }

    /// Cold path: an event earlier than the window base was scheduled
    /// (never happens in forward simulation — `at = now + delay`). Rebuild
    /// the window around the new minimum via the overflow heap.
    fn rebase(&mut self, at: SimTime) {
        for s in 0..WHEEL_SLOTS {
            let mut idx = self.heads[s];
            while idx != NIL {
                let e = &mut self.slab[idx as usize];
                let next = e.next;
                e.next = NIL;
                self.overflow.push(HeapEntry {
                    at: e.at,
                    key: e.key,
                    slot: idx,
                });
                idx = next;
            }
            self.heads[s] = NIL;
            self.tails[s] = NIL;
        }
        self.occupied.fill(0);
        self.wheel_len = 0;
        self.wheel_start = at;
        self.cursor = at;
        while let Some(e) = self.overflow.peek() {
            if e.at - at >= WHEEL_SLOTS as u64 {
                break;
            }
            let e = self.overflow.pop().expect("peeked");
            self.wheel_insert(e.at, e.slot);
        }
    }

    /// Index of the first occupied slot at or (circularly) after the
    /// cursor. All wheel entries lie within one revolution ahead of the
    /// cursor, so circular slot order is time order.
    fn scan(&self) -> usize {
        debug_assert!(self.wheel_len > 0);
        let s0 = (self.cursor & WHEEL_MASK) as usize;
        let mut w = s0 >> 6;
        let mut word = self.occupied[w] & (!0u64 << (s0 & 63));
        loop {
            if word != 0 {
                return (w << 6) + word.trailing_zeros() as usize;
            }
            w = (w + 1) % WORDS;
            word = self.occupied[w];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(node: u32, tag: u64) -> EventKind {
        EventKind::Timer {
            node: NodeId(node),
            tag,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, 0, timer(0, 0));
        q.schedule(10, 1, timer(0, 1));
        q.schedule(20, 2, timer(0, 2));
        let order: Vec<SimTime> = std::iter::from_fn(|| q.pop()).map(|e| e.at).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_in_key_order_not_insertion_order() {
        // Schedule with descending keys; pops must come back ascending.
        let mut q = EventQueue::new();
        for tag in 0..50u64 {
            q.schedule(100, 49 - tag, timer(0, tag));
        }
        let tags: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { tag, .. } => tag,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tags, (0..50).rev().collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_keys_from_two_schedulers_sort_within_a_slot() {
        // Node 7 appends keys 700..705, then node 3 inserts 300..305
        // into the same microsecond: pop order is key order, and the
        // mid-list insertion path is exercised.
        let mut q = EventQueue::new();
        for i in 0..6u64 {
            q.schedule(42, 700 + i, timer(7, i));
        }
        for i in 0..6u64 {
            q.schedule(42, 300 + i, timer(3, i));
        }
        q.schedule(42, 500, timer(5, 0));
        let keys: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.key).collect();
        let mut want = keys.clone();
        want.sort_unstable();
        assert_eq!(keys, want);
        assert_eq!(keys[0], 300);
        assert_eq!(*keys.last().unwrap(), 705);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(7, 0, timer(1, 0));
        q.schedule(3, 1, timer(1, 1));
        assert_eq!(q.peek_time(), Some(3));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        q.pop();
        assert_eq!(q.peek_time(), Some(7));
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(5, 0, timer(0, 0));
        q.schedule(1, 1, timer(0, 1));
        assert_eq!(q.pop().unwrap().at, 1);
        q.schedule(2, 2, timer(0, 2));
        q.schedule(4, 3, timer(0, 3));
        assert_eq!(q.pop().unwrap().at, 2);
        assert_eq!(q.pop().unwrap().at, 4);
        assert_eq!(q.pop().unwrap().at, 5);
        assert!(q.pop().is_none());
    }

    #[test]
    fn far_future_events_overflow_and_return_in_order() {
        // Spread events far past one wheel revolution (2^16 µs) so the
        // overflow heap and its migration path are exercised.
        let mut q = EventQueue::new();
        let times: Vec<SimTime> = (0..10).map(|i| i * 100_000).rev().collect();
        for (tag, &t) in times.iter().enumerate() {
            q.schedule(t, tag as u64, timer(0, tag as u64));
        }
        let order: Vec<SimTime> = std::iter::from_fn(|| q.pop()).map(|e| e.at).collect();
        assert_eq!(order, (0..10).map(|i| i * 100_000).collect::<Vec<_>>());
    }

    #[test]
    fn ties_across_the_horizon_break_in_key_order() {
        // Two events at the same far-future instant, plus a near event;
        // the far pair must migrate and still fire in key order even
        // though the larger key was scheduled first.
        let mut q = EventQueue::new();
        q.schedule(1_000_000, 11, timer(0, 11));
        q.schedule(5, 0, timer(0, 0));
        q.schedule(1_000_000, 10, timer(0, 10));
        assert_eq!(q.pop().unwrap().at, 5);
        let tags: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { tag, .. } => tag,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tags, vec![10, 11]);
    }

    #[test]
    fn scheduling_before_the_window_base_rebases() {
        // First event anchors the window at t=50_000; a later event at
        // t=10 lands before the base and must still pop first.
        let mut q = EventQueue::new();
        q.schedule(50_000, 0, timer(0, 0));
        q.schedule(10, 1, timer(0, 1));
        q.schedule(200_000, 2, timer(0, 2));
        let order: Vec<SimTime> = std::iter::from_fn(|| q.pop()).map(|e| e.at).collect();
        assert_eq!(order, vec![10, 50_000, 200_000]);
    }

    #[test]
    fn draining_and_reusing_the_queue_reanchors_the_window() {
        let mut q = EventQueue::new();
        q.schedule(100, 0, timer(0, 0));
        assert_eq!(q.pop().unwrap().at, 100);
        assert!(q.pop().is_none());
        // Far later than the first window; must re-anchor, not overflow.
        q.schedule(10_000_000, 1, timer(0, 1));
        assert_eq!(q.peek_time(), Some(10_000_000));
        assert_eq!(q.pop().unwrap().at, 10_000_000);
    }
}
