//! The event queue.
//!
//! A binary heap keyed by `(time, sequence)`. The sequence number breaks
//! timestamp ties in schedule order, which makes runs bit-reproducible —
//! two events at the same instant always fire in the order they were
//! scheduled, independent of heap internals.

use crate::packet::Packet;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use wmsn_util::NodeId;

/// What happens when an event fires.
#[derive(Debug)]
pub enum EventKind {
    /// A packet finishes arriving at a node.
    Deliver {
        /// Receiving node.
        to: NodeId,
        /// The packet (shared across receivers of one broadcast).
        packet: std::rc::Rc<Packet>,
    },
    /// A node's timer expires.
    Timer {
        /// The node that set the timer.
        node: NodeId,
        /// Caller-chosen tag, returned verbatim.
        tag: u64,
    },
    /// A CSMA-deferred transmission retries.
    Retransmit {
        /// Sending node.
        src: NodeId,
        /// Link destination.
        link_dst: Option<NodeId>,
        /// Radio tier.
        tier: crate::phy::Tier,
        /// Metrics kind.
        kind: crate::packet::PacketKind,
        /// Payload bytes.
        payload: Vec<u8>,
        /// Backoff attempt number.
        attempt: u8,
    },
    /// External control hook: run-loop should return to the caller.
    Breakpoint,
}

/// A scheduled event.
#[derive(Debug)]
pub struct Event {
    /// Firing time.
    pub at: SimTime,
    /// Monotone schedule order for tie-breaking.
    pub seq: u64,
    /// Action.
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Earliest-first event queue.
#[derive(Default, Debug)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `kind` at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { at, seq, kind });
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(node: u32, tag: u64) -> EventKind {
        EventKind::Timer {
            node: NodeId(node),
            tag,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, timer(0, 0));
        q.schedule(10, timer(0, 1));
        q.schedule(20, timer(0, 2));
        let order: Vec<SimTime> = std::iter::from_fn(|| q.pop()).map(|e| e.at).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_in_schedule_order() {
        let mut q = EventQueue::new();
        for tag in 0..50 {
            q.schedule(100, timer(0, tag));
        }
        let tags: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { tag, .. } => tag,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tags, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(7, timer(1, 0));
        q.schedule(3, timer(1, 1));
        assert_eq!(q.peek_time(), Some(3));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        q.pop();
        assert_eq!(q.peek_time(), Some(7));
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(5, timer(0, 0));
        q.schedule(1, timer(0, 1));
        assert_eq!(q.pop().unwrap().at, 1);
        q.schedule(2, timer(0, 2));
        q.schedule(4, timer(0, 3));
        assert_eq!(q.pop().unwrap().at, 2);
        assert_eq!(q.pop().unwrap().at, 4);
        assert_eq!(q.pop().unwrap().at, 5);
        assert!(q.pop().is_none());
    }
}
