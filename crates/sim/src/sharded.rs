//! The sharded parallel simulation kernel.
//!
//! [`ShardedWorld`] partitions a [`World`]'s nodes across `S` shard
//! worlds and steps them on scoped worker threads, exchanging
//! shard-crossing deliveries through per-shard mailboxes between
//! *supersteps* (a conservative, window-synchronised parallel DES). The
//! single-threaded [`World`] stays the bit-exact golden reference; this
//! kernel exists to make very large fields (the `e9_n100k` workload —
//! 100 000 sensors) turn around at interactive speed on multicore
//! hardware.
//!
//! # Why the schedule is reproduced exactly
//!
//! Three design decisions carry the equivalence argument:
//!
//! 1. **Causal keys.** Every event carries a key `(scheduling node <<
//!    32) | per-node counter`, and same-time events fire in ascending
//!    key order (see [`crate::event`]). A node's counter advances only
//!    with that node's own actions, so the keys — and therefore the
//!    global tie-break order — are identical no matter how nodes are
//!    split across shards.
//! 2. **Conservative lookahead.** The only event kind that crosses a
//!    shard boundary is a packet delivery, and every delivery is
//!    scheduled at least `L = min_tier(hop_delay_us(0))` microseconds
//!    ahead of the transmit (transmission time is ≥ 1 µs and the fixed
//!    hop latency adds more; with default PHYs `L` = 75 µs from the
//!    mesh tier). Each superstep therefore executes the window
//!    `[t_min, t_min + L)`: no event inside the window can schedule a
//!    cross-shard delivery that lands inside the window.
//! 3. **Stamped emission order.** Trace lines and delivery records are
//!    stamped with the `(at, key)` of the event that produced them.
//!    Per-shard streams merge back into the exact reference order by
//!    sorting on `(at, key, capture index)` — a total order, because
//!    `(at, key)` pairs are unique per event and all of one event's
//!    emissions happen on one shard.
//!
//! # Gating: which workloads are equivalence-safe
//!
//! The kernel refuses (by assertion) or documents divergence outside
//! this envelope:
//!
//! * **Ideal medium only** (`loss_prob == 0`, no collision model, no
//!   CSMA — i.e. [`MediumConfig::default`]). Loss draws consume the
//!   medium RNG in delivery order and carrier sensing reads *other*
//!   nodes' in-flight transmissions, both of which are global state the
//!   shards do not share. [`ShardedWorld::from_world`] asserts this.
//! * **Death-free runs.** A battery death re-orders every later event
//!   involving that node; replicas on other shards would not observe
//!   it. [`crate::world::WorldCore`]'s charge path panics if a node
//!   dies while shard state is installed. Driver-initiated
//!   [`ShardedWorld::kill`] is fine — it is replicated to every shard
//!   between supersteps.
//! * **No cross-node shared behaviour state.** Behaviours that secretly
//!   share `Rc` state across nodes (the E6 wormhole tunnel pair) must
//!   be co-located or excluded — see the safety notes in [`cell`].
//!
//! Queue-occupancy statistics ([`ShardedWorld::peak_queue_depth`],
//! `events_processed`) are *not* bit-equivalent to the reference: the
//! reference holds all shards' events in one queue (its peak is ≥ the
//! max over shards), and the fast-unicast path plus windowing change
//! what is resident when. Metrics and traces are the equivalence
//! surface; the golden tests pin exactly that.
//!
//! [`MediumConfig::default`]: crate::medium::MediumConfig

use crate::metrics::Metrics;
use crate::node::{Ctx, NodeState};
use crate::time::SimTime;
use crate::world::{RemoteEvent, World};
use std::sync::Mutex;
use wmsn_trace::capture::{CaptureConfig, CaptureSink, CaptureStats};
use wmsn_trace::ring::{merge_keyed_events, FrameBufferSink, RingConfig, RingSink, RingStats};
use wmsn_trace::{KeyedBufferSink, TraceEvent};
use wmsn_util::pool::bsp_run;
use wmsn_util::{NodeId, NodeRole, Point};

/// The audited `Send` exception for the whole crate.
#[allow(unsafe_code)]
mod cell {
    use crate::world::World;

    /// A shard's world, movable across the worker-pool's scoped
    /// threads.
    ///
    /// `World` is not `Send` because it holds `Rc` (packet payloads,
    /// queued packets) and `Box<dyn Behavior>` without a `Send` bound.
    /// Wrapping it is sound under the invariants the sharded kernel
    /// maintains:
    ///
    /// * Each shard world is built by `World::clone_shell` from an
    ///   un-started donor with an **empty event queue** — so no `Rc`
    ///   allocation is ever shared between two shard worlds. Packets
    ///   crossing shards travel as `RemoteEvent` (payload in an `Arc`)
    ///   and are rebuilt into fresh `Rc`s on the receiving shard.
    /// * Behaviours are moved to exactly one (owning) shard, and a
    ///   behaviour only ever runs on the shard that owns it. A
    ///   behaviour that internally shares `Rc` state across *nodes*
    ///   is only sound if those nodes are co-located on one shard —
    ///   the kernel's public contract (module docs) excludes the one
    ///   such behaviour in the workspace (the E6 wormhole pair) from
    ///   sharded runs.
    /// * The BSP driver gives each worker exclusive `&mut` access to
    ///   its shard between barriers; the coordinator only touches
    ///   shard worlds outside `bsp_run`. No two threads ever hold a
    ///   reference into the same `World` at once.
    pub(super) struct ShardCell(pub(super) World);

    // SAFETY: see type-level docs — shard worlds are disjoint object
    // graphs, accessed by at most one thread at a time.
    unsafe impl Send for ShardCell {}
}

use cell::ShardCell;

/// Per-shard coordination mailbox: the only state the BSP coordinator
/// and a shard worker both touch (under its `Mutex`, on opposite sides
/// of a barrier).
#[derive(Default)]
struct Mail {
    /// Remote deliveries bound for this shard, routed by the
    /// coordinator; the worker schedules them before running.
    inbox: Vec<RemoteEvent>,
    /// Remote deliveries this shard produced in its last window; the
    /// coordinator routes them out.
    outbox: Vec<RemoteEvent>,
    /// Earliest pending local event after the last window (`None` =
    /// locally idle).
    next_at: Option<SimTime>,
    /// Exclusive end of the window the worker must run next.
    window_end: SimTime,
}

/// A spatially sharded, multi-threaded wrapper around `S` per-shard
/// [`World`]s. See the module docs for the synchronisation scheme and
/// the equivalence envelope.
pub struct ShardedWorld {
    shards: Vec<ShardCell>,
    /// Owning shard per node index.
    assignment: Vec<u16>,
    threads: usize,
    /// Conservative lookahead: minimum delay of any cross-shard event.
    lookahead: SimTime,
    now: SimTime,
    started: bool,
    /// Single global driver-phase counter, threaded through whichever
    /// shard a driver call is routed to (per-shard counters would mint
    /// colliding keys).
    driver_counter: u64,
    /// Round snapshots taken at this level (shard metrics hold none).
    snapshots: Vec<crate::metrics::RoundSnapshot>,
    /// Cache for [`ShardedWorld::metrics`]; rebuilt when stale.
    merged: Metrics,
    merged_stale: bool,
}

impl ShardedWorld {
    /// Split an un-started `world` into shards per `assignment`
    /// (`assignment[i]` = owning shard of node `i`) and run them on
    /// `threads` workers. `threads <= 1` executes the supersteps inline
    /// on the calling thread (same windowed schedule, no thread pool).
    ///
    /// Panics if the world was already started, has pending events, has
    /// a trace sink installed (install per-shard sinks afterwards via
    /// [`ShardedWorld::install_trace_sinks`]), or uses a non-ideal
    /// medium (see module docs for why loss/collisions/CSMA are outside
    /// the equivalence envelope).
    pub fn from_world(world: World, assignment: Vec<u16>, threads: usize) -> Self {
        assert!(
            !world.started,
            "shard a world before starting it (behaviours must begin life on their owning shard)"
        );
        assert!(
            world.core.queue.is_empty(),
            "shard a world before scheduling events into it"
        );
        assert!(
            world.core.trace.is_none(),
            "install per-shard sinks via ShardedWorld::install_trace_sinks, not on the donor world"
        );
        assert_eq!(
            assignment.len(),
            world.core.nodes.len(),
            "one shard assignment per node"
        );
        let m = &world.core.cfg.medium;
        assert!(
            m.loss_prob == 0.0 && m.collisions == crate::medium::CollisionModel::None && !m.csma,
            "the sharded kernel requires an ideal medium (loss, collisions and CSMA read global \
             state the shards do not share)"
        );
        let n_shards = assignment
            .iter()
            .map(|&s| s as usize + 1)
            .max()
            .unwrap_or(1);
        let lookahead = world
            .core
            .cfg
            .sensor_phy
            .hop_delay_us(0)
            .min(world.core.cfg.mesh_phy.hop_delay_us(0));
        debug_assert!(lookahead >= 1, "hop delay is at least 1 µs by construction");

        let mut shards: Vec<ShardCell> = (0..n_shards)
            .map(|s| {
                let mut w = world.clone_shell();
                w.install_shard_state(assignment.clone(), s as u16);
                ShardCell(w)
            })
            .collect();
        // Move each behaviour to its owning shard; the other replicas
        // keep `None` (dispatch on a non-owner is a no-op by design,
        // but remote deliveries are routed before dispatch anyway).
        let driver_counter = world.core.driver_counter;
        let now = world.core.now;
        let World { behaviors, .. } = world;
        for (i, b) in behaviors.into_iter().enumerate() {
            shards[assignment[i] as usize].0.behaviors[i] = b;
        }
        ShardedWorld {
            shards,
            assignment,
            threads: threads.max(1),
            lookahead,
            now,
            started: false,
            driver_counter,
            snapshots: Vec::new(),
            merged: Metrics::default(),
            merged_stale: true,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Worker threads used per superstep.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Route a driver call to the shard owning `id`, threading the
    /// global driver counter through it so driver-phase keys stay
    /// globally unique and ordered.
    fn on_owner<R>(&mut self, id: NodeId, f: impl FnOnce(&mut World) -> R) -> R {
        self.merged_stale = true;
        let s = self.assignment[id.index()] as usize;
        let w = &mut self.shards[s].0;
        w.core.driver_counter = self.driver_counter;
        let r = f(w);
        self.driver_counter = w.core.driver_counter;
        r
    }

    /// Call every behaviour's `on_start`, in global node-id order on
    /// the owning shards — the same driver-key sequence the reference
    /// world mints. Idempotent.
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        self.merged_stale = true;
        for cell in &mut self.shards {
            cell.0.started = true;
        }
        for i in 0..self.assignment.len() {
            let id = NodeId::from_index(i);
            self.on_owner(id, |w| w.start_node(id));
        }
    }

    /// Route cross-shard deliveries sitting in the shards' internal
    /// outboxes straight into their owners' event queues.
    ///
    /// Two producers mint remote events outside any BSP window, where no
    /// coordinator is collecting outboxes: driver-phase behaviour calls
    /// (`with_behavior`, `start`) that transmit immediately, and the
    /// final window of a `run_until` whose arrivals land past the
    /// deadline. Both are safe to inject directly — every shard is
    /// parked at a common `now` strictly before the arrival time (the
    /// hop delay is at least 1 µs) — but they MUST be injected before
    /// the next window plan, or `t_min` overshoots them and the
    /// delivery is silently lost.
    fn route_stranded(&mut self) {
        let mut pending: Vec<RemoteEvent> = Vec::new();
        for cell in &mut self.shards {
            cell.0.drain_shard_outbox(&mut pending);
        }
        for e in pending {
            let dst = self.assignment[e.to.index()] as usize;
            self.shards[dst].0.inject_remote(e);
        }
    }

    /// Process events until every shard is past `deadline`: events with
    /// `at <= deadline` fire; afterwards `now == deadline` everywhere.
    ///
    /// Runs as a sequence of supersteps. Each superstep the coordinator
    /// routes pending cross-shard deliveries, computes the global
    /// earliest event time `t_min`, and opens the window
    /// `[t_min, t_min + L)`; the workers then run their shards through
    /// the window in parallel. Coordinator and workers communicate
    /// exclusively through the per-shard mailboxes (see [`Mail`]), on
    /// opposite sides of the pool's barriers.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.start();
        self.route_stranded();
        self.merged_stale = true;
        let lookahead = self.lookahead;
        let mail: Vec<Mutex<Mail>> = self
            .shards
            .iter()
            .map(|_| Mutex::new(Mail::default()))
            .collect();
        for (cell, m) in self.shards.iter_mut().zip(&mail) {
            m.lock().unwrap().next_at = cell.0.peek_event_time();
        }
        let assignment = &self.assignment;
        let mut finished = false;
        bsp_run(
            &mut self.shards,
            &mail,
            self.threads,
            |mail| {
                if finished {
                    return false;
                }
                // Route last window's cross-shard deliveries.
                let mut in_flight: Vec<RemoteEvent> = Vec::new();
                for m in mail {
                    in_flight.append(&mut m.lock().unwrap().outbox);
                }
                for e in in_flight {
                    let dst = assignment[e.to.index()] as usize;
                    mail[dst].lock().unwrap().inbox.push(e);
                }
                // Global earliest pending event (local queues + inboxes).
                let mut t_min: Option<SimTime> = None;
                for m in mail {
                    let g = m.lock().unwrap();
                    let local = g.inbox.iter().map(|e| e.at).chain(g.next_at).min();
                    t_min = match (t_min, local) {
                        (Some(a), Some(b)) => Some(a.min(b)),
                        (a, b) => a.or(b),
                    };
                }
                let window_end = match t_min {
                    Some(t) if t <= deadline => (t + lookahead).min(deadline + 1),
                    // Nothing left within the horizon: one final window
                    // carries every shard's clock to the deadline.
                    _ => {
                        finished = true;
                        deadline + 1
                    }
                };
                for m in mail {
                    m.lock().unwrap().window_end = window_end;
                }
                true
            },
            |_, cell, mbox| {
                let (inbox, window_end) = {
                    let mut g = mbox.lock().unwrap();
                    (std::mem::take(&mut g.inbox), g.window_end)
                };
                let w = &mut cell.0;
                for e in inbox {
                    w.inject_remote(e);
                }
                w.run_until(window_end - 1);
                let mut g = mbox.lock().unwrap();
                w.drain_shard_outbox(&mut g.outbox);
                g.next_at = w.peek_event_time();
            },
        );
        // The final window's cross-shard arrivals all land past the
        // deadline (the window is truncated to `deadline + 1`, and the
        // hop delay is at least the lookahead), so the loop ends with
        // them still in the mailboxes. Hand them to their owners now —
        // the mailboxes die with this call.
        let mut leftover: Vec<RemoteEvent> = Vec::new();
        for m in &mail {
            leftover.append(&mut m.lock().unwrap().outbox);
        }
        for e in leftover {
            let dst = self.assignment[e.to.index()] as usize;
            self.shards[dst].0.inject_remote(e);
        }
        self.now = self.now.max(deadline);
    }

    /// Run for `dt` more microseconds.
    pub fn run_for(&mut self, dt: SimTime) {
        let deadline = self.now + dt;
        self.run_until(deadline);
    }

    /// Current time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.assignment.len()
    }

    /// Immutable node state (from the owning shard — the replica whose
    /// battery and liveness are authoritative).
    pub fn node(&self, id: NodeId) -> &NodeState {
        self.shards[self.assignment[id.index()] as usize].0.node(id)
    }

    /// Ids of all nodes with `role`.
    pub fn nodes_with_role(&self, role: NodeRole) -> Vec<NodeId> {
        self.shards[0].0.nodes_with_role(role)
    }

    /// Ids of sensors.
    pub fn sensor_ids(&self) -> Vec<NodeId> {
        self.shards[0].0.sensor_ids()
    }

    /// Move a node. Replicated to every shard (positions feed each
    /// shard's adjacency caches); only the owner emits the trace line.
    pub fn set_position(&mut self, id: NodeId, pos: Point) {
        self.on_owner(id, |w| w.set_position(id, pos));
        let owner = self.assignment[id.index()] as usize;
        for (s, cell) in self.shards.iter_mut().enumerate() {
            if s != owner {
                cell.0.set_position_inner(id, pos, false);
            }
        }
    }

    /// Kill a node on every shard (owner records death + trace).
    pub fn kill(&mut self, id: NodeId) {
        self.on_owner(id, |w| w.kill(id));
        self.replicate_to_others(id, |w| w.kill_inner(id, false));
    }

    /// Put a node to sleep on every shard.
    pub fn sleep(&mut self, id: NodeId) {
        self.on_owner(id, |w| w.sleep(id));
        self.replicate_to_others(id, |w| w.sleep_inner(id, false));
    }

    /// Wake a sleeping node on every shard.
    pub fn wake(&mut self, id: NodeId) {
        self.on_owner(id, |w| w.wake(id));
        self.replicate_to_others(id, |w| w.wake_inner(id, false));
    }

    /// Revive a node on every shard.
    pub fn revive(&mut self, id: NodeId) {
        self.on_owner(id, |w| w.revive(id));
        self.replicate_to_others(id, |w| w.wake_inner(id, false));
    }

    /// Set promiscuous mode on every shard.
    pub fn set_promiscuous(&mut self, id: NodeId, on: bool) {
        self.on_owner(id, |w| w.set_promiscuous(id, on));
        self.replicate_to_others(id, |w| w.core.nodes[id.index()].promiscuous = on);
    }

    fn replicate_to_others(&mut self, id: NodeId, f: impl Fn(&mut World)) {
        let owner = self.assignment[id.index()] as usize;
        for (s, cell) in self.shards.iter_mut().enumerate() {
            if s != owner {
                f(&mut cell.0);
            }
        }
    }

    /// Invoke a protocol entry point on a node's behaviour (which lives
    /// on its owning shard). Starts the network first, like
    /// [`World::with_behavior`].
    pub fn with_behavior<T: 'static, R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut T, &mut Ctx<'_>) -> R,
    ) -> Option<R> {
        self.start();
        self.on_owner(id, |w| w.with_behavior(id, f))
    }

    /// Downcast a node's behaviour for inspection.
    pub fn behavior_as<T: 'static>(&self, id: NodeId) -> Option<&T> {
        self.shards[self.assignment[id.index()] as usize]
            .0
            .behavior_as(id)
    }

    /// Install one [`KeyedBufferSink`] per shard. Retrieve the merged
    /// stream with [`ShardedWorld::take_merged_trace`].
    pub fn install_trace_sinks(&mut self) {
        for cell in &mut self.shards {
            cell.0.set_trace_sink(Box::new(KeyedBufferSink::new()));
        }
    }

    /// Remove the per-shard sinks and merge their captures into the
    /// byte-exact JSONL stream a single-threaded traced run produces
    /// (sorted by `(at, key, capture index)` — see
    /// [`wmsn_trace::merge_keyed_traces`]). `None` if
    /// [`ShardedWorld::install_trace_sinks`] was never called.
    pub fn take_merged_trace(&mut self) -> Option<String> {
        let mut sinks = Vec::with_capacity(self.shards.len());
        for cell in &mut self.shards {
            let sink = cell.0.take_trace_sink()?;
            let sink = sink
                .as_any()
                .downcast_ref::<KeyedBufferSink>()
                .expect("install_trace_sinks installs KeyedBufferSink");
            sinks.push(KeyedBufferSink {
                entries: sink.entries.clone(),
            });
        }
        Some(wmsn_trace::merge_keyed_traces(sinks))
    }

    /// Install one ring pipeline per shard: each shard's hot path only
    /// copies `TraceEvent` frames into its own bounded ring, and a
    /// per-shard drain thread buffers them (with their causal `(at,
    /// key)` stamps) off the simulation threads. Retrieve the merged
    /// stream with [`ShardedWorld::finish_ring_sinks`].
    ///
    /// Rings are strictly per-shard — a shard's world is the sole
    /// producer on its ring — so the SPSC discipline holds no matter
    /// which pool worker executes the shard in a given window.
    pub fn install_ring_sinks(&mut self, cfg: RingConfig) {
        for cell in &mut self.shards {
            cell.0
                .set_trace_sink(RingSink::boxed(cfg, vec![Box::new(FrameBufferSink::new())]));
        }
    }

    /// Stop the per-shard ring pipelines and merge their frames by
    /// `(at, key, capture index)` — the same total order
    /// [`ShardedWorld::take_merged_trace`] uses for JSONL — into the
    /// exact event sequence a single-threaded traced run emits, plus
    /// aggregate ring telemetry (counters summed, peak occupancy
    /// maxed). `None` if [`ShardedWorld::install_ring_sinks`] was never
    /// called.
    pub fn finish_ring_sinks(&mut self) -> Option<(Vec<TraceEvent>, RingStats)> {
        let (frames, agg) = self.finish_ring_frames()?;
        Some((merge_keyed_events(frames), agg))
    }

    /// Install one ring pipeline per shard draining into a
    /// [`wmsn_trace::CaptureSink`] that streams the shard's frames to a
    /// segmented capture file `shard-<i>.wcap` under `dir` — the
    /// disk-backed variant of [`ShardedWorld::install_ring_sinks`]:
    /// same per-shard SPSC discipline, but frames land on disk (encoded
    /// and written on the drain thread) instead of accumulating in
    /// memory. Returns the per-shard capture paths, in shard order;
    /// merge them after the run with `wmsn_trace::merge_captures_with`.
    pub fn install_capture_sinks(
        &mut self,
        cfg: RingConfig,
        capture_cfg: CaptureConfig,
        dir: &std::path::Path,
    ) -> std::io::Result<Vec<std::path::PathBuf>> {
        let mut paths = Vec::with_capacity(self.shards.len());
        for (i, cell) in self.shards.iter_mut().enumerate() {
            let path = dir.join(format!("shard-{i}.wcap"));
            let sink = CaptureSink::create(&path, capture_cfg)?;
            cell.0
                .set_trace_sink(RingSink::boxed(cfg, vec![Box::new(sink)]));
            paths.push(path);
        }
        Ok(paths)
    }

    /// Stop the per-shard capture pipelines: barrier each ring, record
    /// its drop count in the capture trailer, finalize the footer, and
    /// return aggregate ring telemetry plus aggregate capture telemetry
    /// (frames/segments/bytes summed). `None` if
    /// [`ShardedWorld::install_capture_sinks`] was never called or any
    /// capture hit a write error (its file is untrustworthy).
    pub fn finish_capture_sinks(&mut self) -> Option<(RingStats, CaptureStats)> {
        let mut agg = RingStats::default();
        let mut cap = CaptureStats::default();
        for cell in &mut self.shards {
            // take_trace_sink flushes, which for a RingSink is the
            // barrier: the drain has delivered everything on return.
            let mut sink = cell.0.take_trace_sink()?;
            let ring = sink
                .as_any_mut()
                .downcast_mut::<RingSink>()
                .expect("install_capture_sinks installs RingSink");
            let s = ring.stats();
            let shard_cap = ring.with_sink_mut::<CaptureSink, _>(|c| {
                c.set_frames_dropped(s.frames_dropped);
                c.finalize()
            })?;
            let shard_cap = shard_cap?;
            agg.frames_written += s.frames_written;
            agg.frames_dropped += s.frames_dropped;
            agg.blocked_us += s.blocked_us;
            agg.peak_chunks = agg.peak_chunks.max(s.peak_chunks);
            agg.capacity_chunks = s.capacity_chunks;
            agg.chunk_frames = s.chunk_frames;
            cap.frames += shard_cap.frames;
            cap.segments += shard_cap.segments;
            cap.bytes += shard_cap.bytes;
            cap.frames_dropped += shard_cap.frames_dropped;
            // Dropping the sink closes the ring and joins its drain.
        }
        Some((agg, cap))
    }

    /// Like [`ShardedWorld::finish_ring_sinks`], but hand back the raw
    /// per-shard `(at, key, event)` captures without merging. Callers
    /// that only need one ordered pass over the merged stream — feeding
    /// a detector bank, serialising to a file — should pass these to
    /// `wmsn_trace::merge_keyed_events_with` instead of materialising
    /// the merged `Vec` (a gigabyte of fresh pages at n=100k).
    #[allow(clippy::type_complexity)]
    pub fn finish_ring_frames(&mut self) -> Option<(Vec<Vec<(u64, u64, TraceEvent)>>, RingStats)> {
        let mut shard_frames = Vec::with_capacity(self.shards.len());
        let mut agg = RingStats::default();
        for cell in &mut self.shards {
            // take_trace_sink flushes, which for a RingSink is the
            // barrier: the drain has delivered everything on return.
            let mut sink = cell.0.take_trace_sink()?;
            let ring = sink
                .as_any_mut()
                .downcast_mut::<RingSink>()
                .expect("install_ring_sinks installs RingSink");
            let entries = ring
                .with_sink_mut::<FrameBufferSink, _>(|b| std::mem::take(&mut b.entries))
                .expect("ring drains into FrameBufferSink");
            let s = ring.stats();
            agg.frames_written += s.frames_written;
            agg.frames_dropped += s.frames_dropped;
            agg.blocked_us += s.blocked_us;
            agg.peak_chunks = agg.peak_chunks.max(s.peak_chunks);
            agg.capacity_chunks = s.capacity_chunks;
            agg.chunk_frames = s.chunk_frames;
            shard_frames.push(entries);
            // Dropping the sink closes the ring and joins its drain.
        }
        Some((shard_frames, agg))
    }

    /// Total events processed across all shards. **Not** equivalent to
    /// the reference world's count when the fast-unicast path or remote
    /// routing changes what gets queued — see module docs.
    pub fn events_processed(&self) -> u64 {
        self.shards.iter().map(|c| c.0.events_processed()).sum()
    }

    /// Maximum per-shard queue high-water mark. **Not** equivalent to
    /// the reference world's single-queue peak — see module docs.
    pub fn peak_queue_depth(&self) -> usize {
        self.shards
            .iter()
            .map(|c| c.0.peak_queue_depth())
            .max()
            .unwrap_or(0)
    }

    /// The merged metrics ledger, bit-equivalent to the reference
    /// world's on conforming workloads: counters and per-node vectors
    /// sum across shards (a given node's energy/tx cells are non-zero
    /// on exactly one shard), the delivery ledger is re-ordered by each
    /// record's causal stamp, and the histograms are rebuilt from the
    /// merged ledger.
    pub fn metrics(&mut self) -> &Metrics {
        if self.merged_stale {
            self.merged = self.merge_metrics();
            self.merged_stale = false;
        }
        &self.merged
    }

    /// Take a per-round snapshot of the merged metrics (the sharded
    /// counterpart of `Metrics::snapshot_round` on the reference
    /// world).
    pub fn snapshot_round(&mut self, round: u32, at: SimTime) {
        self.merged_stale = true;
        let mut m = self.merge_metrics();
        m.snapshot_round(round, at);
        self.snapshots
            .push(m.snapshots.pop().expect("snapshot_round pushed one"));
    }

    fn merge_metrics(&self) -> Metrics {
        let n = self.assignment.len();
        let mut out = Metrics {
            energy_consumed: vec![0.0; n],
            node_tx: vec![0; n],
            ..Metrics::default()
        };
        // (delivered_at, key, capture index) totally orders deliveries
        // across shards for the same reason it orders trace lines.
        let mut all: Vec<(SimTime, u64, usize, crate::metrics::Delivery)> = Vec::new();
        for cell in &self.shards {
            let m = cell.0.metrics();
            out.sent_control += m.sent_control;
            out.sent_data += m.sent_data;
            out.sent_security += m.sent_security;
            out.sent_bytes_control += m.sent_bytes_control;
            out.sent_bytes_data += m.sent_bytes_data;
            out.sent_bytes_security += m.sent_bytes_security;
            out.received += m.received;
            out.lost += m.lost;
            out.collided += m.collided;
            out.dead_receiver += m.dead_receiver;
            out.csma_deferrals += m.csma_deferrals;
            out.csma_drops += m.csma_drops;
            out.originated += m.originated;
            for (acc, v) in out.energy_consumed.iter_mut().zip(&m.energy_consumed) {
                *acc += v;
            }
            for (acc, v) in out.node_tx.iter_mut().zip(&m.node_tx) {
                *acc += v;
            }
            match (out.first_death, m.first_death) {
                (None, Some(_)) => {
                    out.first_death = m.first_death;
                    out.first_death_node = m.first_death_node;
                }
                (Some(a), Some(b)) if b < a => {
                    out.first_death = m.first_death;
                    out.first_death_node = m.first_death_node;
                }
                _ => {}
            }
            for (i, (d, &key)) in m.deliveries.iter().zip(&m.delivery_keys).enumerate() {
                all.push((d.delivered_at, key, i, d.clone()));
            }
        }
        all.sort_by_key(|a| (a.0, a.1, a.2));
        for (_, key, _, d) in all {
            out.record_delivery_keyed(d, key);
        }
        out.snapshots = self.snapshots.clone();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Behavior, NodeConfig};
    use crate::packet::{Packet, PacketKind};
    use crate::phy::Tier;
    use crate::world::WorldConfig;
    use std::any::Any;

    /// Relays any received counter once, incremented, back out as a
    /// broadcast — a ping-pong chain that forces shard crossings.
    struct Relay {
        kick_off: bool,
        seen: Vec<u8>,
        max_hops: u8,
    }

    impl Behavior for Relay {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            if self.kick_off {
                ctx.record_origination();
                ctx.send(None, Tier::Sensor, PacketKind::Data, vec![0u8]);
            }
        }
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: &Packet) {
            let hop = pkt.payload[0];
            self.seen.push(hop);
            if hop < self.max_hops {
                ctx.send(None, Tier::Sensor, PacketKind::Data, vec![hop + 1]);
            } else {
                ctx.record_delivery(pkt.src, hop as u64, 0, hop as u32);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// A line of `n` nodes, 10 m apart (range 25 m ⇒ each hears ≤ 2
    /// neighbours each side), node 0 kicks off. Batteries are
    /// unconstrained: the kernel's equivalence envelope requires
    /// death-free runs (battery death mid-window panics by design).
    fn line_world(n: usize) -> World {
        let mut w = World::new(WorldConfig::ideal(7));
        for i in 0..n {
            w.add_node(
                NodeConfig::sensor(wmsn_util::Point::new(10.0 * i as f64, 0.0), f64::INFINITY),
                Box::new(Relay {
                    kick_off: i == 0,
                    seen: Vec::new(),
                    max_hops: 6,
                }),
            );
        }
        w
    }

    fn fingerprint(m: &Metrics) -> (u64, u64, u64, u64, Vec<u64>, Vec<u64>) {
        (
            m.sent_data,
            m.received,
            m.originated,
            m.unique_deliveries(),
            m.node_tx.clone(),
            m.deliveries
                .iter()
                .map(|d| d.delivered_at ^ (d.hops as u64) ^ ((d.destination.0 as u64) << 40))
                .collect(),
        )
    }

    #[test]
    fn sharded_line_matches_reference_bit_for_bit() {
        let mut reference = line_world(12);
        reference.run_until(1_000_000);
        let want = fingerprint(reference.metrics());

        for shards in [2usize, 3, 4] {
            for threads in [1usize, 2] {
                let assignment: Vec<u16> = (0..12).map(|i| (i * shards / 12) as u16).collect();
                let mut sw = ShardedWorld::from_world(line_world(12), assignment, threads);
                sw.run_until(1_000_000);
                assert_eq!(
                    fingerprint(sw.metrics()),
                    want,
                    "shards={shards} threads={threads}"
                );
                assert_eq!(sw.now(), 1_000_000);
            }
        }
    }

    #[test]
    fn sharded_trace_merges_to_reference_bytes() {
        let mut reference = line_world(10);
        reference.set_trace_sink(Box::new(wmsn_trace::BufferSink::new()));
        reference.run_until(500_000);
        let sink = reference.take_trace_sink().unwrap();
        let want = &sink
            .as_any()
            .downcast_ref::<wmsn_trace::BufferSink>()
            .unwrap()
            .out;

        let assignment: Vec<u16> = (0..10).map(|i| (i % 2) as u16).collect();
        let mut sw = ShardedWorld::from_world(line_world(10), assignment, 2);
        sw.install_trace_sinks();
        sw.run_until(500_000);
        let got = sw.take_merged_trace().unwrap();
        assert_eq!(&got, want, "merged shard trace must be byte-identical");
    }

    #[test]
    fn driver_ops_replicate_and_match_reference() {
        let mut reference = line_world(12);
        reference.run_until(100); // start + first hop in flight
        reference.kill(NodeId(5));
        reference.run_until(1_000_000);
        let want = fingerprint(reference.metrics());

        let assignment: Vec<u16> = (0..12).map(|i| (i / 4) as u16).collect();
        let mut sw = ShardedWorld::from_world(line_world(12), assignment, 2);
        sw.run_until(100);
        sw.kill(NodeId(5));
        sw.run_until(1_000_000);
        assert_eq!(fingerprint(sw.metrics()), want);
        assert!(!sw.node(NodeId(5)).alive);
        // Replicas observe the kill too: no shard ever delivered to 5.
        assert_eq!(sw.metrics().first_death, reference.metrics().first_death);
    }

    #[test]
    #[should_panic(expected = "ideal medium")]
    fn non_ideal_medium_is_rejected() {
        let mut cfg = WorldConfig::ideal(1);
        cfg.medium.loss_prob = 0.1;
        let w = World::new(cfg);
        let _ = ShardedWorld::from_world(w, Vec::new(), 2);
    }

    #[test]
    fn empty_and_single_shard_edge_cases() {
        // Single shard, single thread: degenerates to the reference.
        let mut reference = line_world(6);
        reference.run_until(200_000);
        let want = fingerprint(reference.metrics());
        let mut sw = ShardedWorld::from_world(line_world(6), vec![0; 6], 1);
        sw.run_until(200_000);
        assert_eq!(fingerprint(sw.metrics()), want);
        assert_eq!(sw.shard_count(), 1);
    }
}
