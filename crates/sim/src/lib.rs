//! `wmsn-sim` — a deterministic discrete-event network simulator for
//! wireless (mesh) sensor networks.
//!
//! The paper evaluates its architecture and protocols analytically and by
//! simulation, but names no simulator; per the reproduction plan we build
//! the substrate from scratch. The simulator models exactly the physics the
//! paper's claims depend on:
//!
//! * **Two radio tiers** ([`phy`]): a short-range, low-rate sensor PHY
//!   (802.15.4-class) and a long-range, high-rate mesh PHY (802.11-class).
//!   Sensors own only the first; WMRs only the second; WMGs both (§3.2).
//! * **Unit-disk propagation with optional loss and collisions**
//!   ([`medium`]): every transmission reaches all alive nodes within range
//!   on the same tier, after a transmission + propagation delay.
//! * **A first-order radio energy model** ([`energy`]): transmit cost
//!   `E_elec·k + ε_amp·k·d²`, receive cost `E_elec·k` — with a
//!   constant-per-packet mode matching the paper's "identical power"
//!   simplification (§5.2). Network lifetime = first sensor death (§5.3).
//! * **An event-driven node framework** ([`node`], [`world`]): protocols
//!   implement [`node::Behavior`] (packet/timer callbacks) and run inside
//!   [`world::World`], which owns the event queue, the medium, node state
//!   and the metrics ledger ([`metrics`]).
//!
//! Determinism: a run is a pure function of its seed. Events with equal
//! timestamps fire in ascending *causal-key* order (`node << 32 |
//! per-node counter` — see [`event`]); per-node RNG streams are split
//! from the world seed so adding a node never perturbs another node's
//! stream. Because tie-breaking depends only on who scheduled what, the
//! sharded parallel kernel ([`sharded`]) reproduces the single-threaded
//! schedule bit for bit on conforming workloads.
//!
//! Observability: the world can carry a [`wmsn_trace::TraceSink`]
//! (installed via [`world::World::set_trace_sink`]) that receives a
//! structured event for every packet-lifecycle step; with no sink
//! installed every hook is a single branch on an `Option` — tracing is
//! zero-cost when disabled.

// `deny` rather than `forbid`: the sharded kernel's `Send` wrapper is
// the one audited exception (see `sharded::cell`); everything else in
// the crate remains unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod energy;
pub mod event;
pub mod host;
pub mod medium;
pub mod metrics;
pub mod node;
pub mod packet;
pub mod phy;
pub mod sharded;
pub mod time;
pub mod world;

pub use energy::EnergyModel;
pub use host::SimHost;
pub use medium::{CollisionModel, MediumConfig};
pub use metrics::{Metrics, RoundSnapshot};
pub use node::{Behavior, Ctx, NodeConfig, NodeState};
pub use packet::{Packet, PacketKind};
pub use phy::{PhyProfile, Tier};
pub use sharded::ShardedWorld;
pub use time::{SimTime, MICROS_PER_SEC};
pub use world::{World, WorldConfig};
