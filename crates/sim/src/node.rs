//! Node state and the protocol behaviour interface.
//!
//! A node is state (role, position, battery, liveness) plus a
//! [`Behavior`] — the protocol running on it. Behaviours are event-driven:
//! they react to packet arrivals and timer expiries through a [`Ctx`]
//! handle that exposes exactly the operations a real mote has (transmit,
//! set a timer, read its own clock/battery, draw local randomness) plus
//! two bookkeeping calls for the metrics ledger.

use crate::energy::Battery;
use crate::packet::{Packet, PacketKind};
use crate::phy::Tier;
use crate::time::SimTime;
use crate::world::WorldCore;
use std::any::Any;
use wmsn_util::{NodeId, NodeRole, Point, SplitMix64};

/// Static + dynamic state of one node.
#[derive(Clone, Debug)]
pub struct NodeState {
    /// Identifier (index into the world's node table).
    pub id: NodeId,
    /// Architectural role (§3.2).
    pub role: NodeRole,
    /// Current position.
    pub pos: Point,
    /// Battery.
    pub battery: Battery,
    /// Whether the node is operational. Nodes die when the battery drains
    /// or when an experiment kills them (fault injection).
    pub alive: bool,
    /// Promiscuous radio: receive frames regardless of their link-layer
    /// destination. Off for honest nodes (address-filtering radios);
    /// adversaries turn it on to eavesdrop unicast traffic.
    pub promiscuous: bool,
}

/// Construction parameters for a node.
#[derive(Clone, Copy, Debug)]
pub struct NodeConfig {
    /// Architectural role.
    pub role: NodeRole,
    /// Deployment position.
    pub pos: Point,
    /// Battery capacity in joules; `f64::INFINITY` for unconstrained
    /// nodes. [`NodeConfig::sensor`] / [`NodeConfig::gateway`] choose the
    /// paper's defaults.
    pub battery_j: f64,
}

impl NodeConfig {
    /// A sensor with the given battery.
    pub fn sensor(pos: Point, battery_j: f64) -> Self {
        NodeConfig {
            role: NodeRole::Sensor,
            pos,
            battery_j,
        }
    }

    /// A gateway (WMG) — unconstrained energy per §5.3.
    pub fn gateway(pos: Point) -> Self {
        NodeConfig {
            role: NodeRole::Gateway,
            pos,
            battery_j: f64::INFINITY,
        }
    }

    /// A mesh router (WMR).
    pub fn mesh_router(pos: Point) -> Self {
        NodeConfig {
            role: NodeRole::MeshRouter,
            pos,
            battery_j: f64::INFINITY,
        }
    }

    /// A base station.
    pub fn base_station(pos: Point) -> Self {
        NodeConfig {
            role: NodeRole::BaseStation,
            pos,
            battery_j: f64::INFINITY,
        }
    }
}

/// The protocol running on a node.
///
/// Implementations keep all their state in `self`; the world owns the
/// event loop and calls back in. `as_any`/`as_any_mut` let experiments
/// inspect protocol state after (or between phases of) a run.
pub trait Behavior {
    /// Called once when the world starts.
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}

    /// Called when a frame addressed to this node (or broadcast) arrives
    /// intact.
    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: &Packet) {}

    /// Called when a timer set via [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _tag: u64) {}

    /// Downcast support for post-run inspection.
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// The handle a behaviour uses to act on the world. Borrowed for the
/// duration of one callback.
pub struct Ctx<'a> {
    pub(crate) core: &'a mut WorldCore,
    pub(crate) node: NodeId,
}

impl Ctx<'_> {
    /// This node's id.
    #[inline]
    pub fn id(&self) -> NodeId {
        self.node
    }

    /// Current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// This node's role.
    pub fn role(&self) -> NodeRole {
        self.core.nodes[self.node.index()].role
    }

    /// This node's position.
    pub fn pos(&self) -> Point {
        self.core.nodes[self.node.index()].pos
    }

    /// Remaining battery fraction.
    pub fn battery_fraction(&self) -> f64 {
        self.core.nodes[self.node.index()].battery.fraction()
    }

    /// Remaining battery joules.
    pub fn battery_remaining(&self) -> f64 {
        self.core.nodes[self.node.index()].battery.remaining_j
    }

    /// This node's private RNG stream.
    pub fn rng(&mut self) -> &mut SplitMix64 {
        &mut self.core.node_rngs[self.node.index()]
    }

    /// Transmit a frame. `link_dst = None` broadcasts to every in-range
    /// node on `tier`. Charges transmit energy; the frame is delivered
    /// after the PHY's hop delay, subject to loss/collisions. Returns
    /// `false` if the node was dead or lacks the tier.
    ///
    /// Accepts anything convertible to a shared buffer (`Vec<u8>`, an
    /// existing `Rc<[u8]>` from a received packet, …); forwarding a
    /// received payload is free.
    pub fn send(
        &mut self,
        link_dst: Option<NodeId>,
        tier: Tier,
        kind: PacketKind,
        payload: impl Into<std::rc::Rc<[u8]>>,
    ) -> bool {
        self.core
            .transmit(self.node, link_dst, tier, kind, payload.into())
    }

    /// Boosted-power transmission reaching every tier member within
    /// `range_m`, charging amplifier energy for that distance — how LEACH
    /// cluster heads reach a distant sink in one hop. See
    /// [`Ctx::send`] for the normal-range variant.
    pub fn send_ranged(
        &mut self,
        link_dst: Option<NodeId>,
        tier: Tier,
        kind: PacketKind,
        payload: impl Into<std::rc::Rc<[u8]>>,
        range_m: f64,
    ) -> bool {
        self.core
            .transmit_ranged(self.node, link_dst, tier, kind, payload.into(), range_m)
    }

    /// Set a timer that fires `delay` microseconds from now, returning
    /// `tag` to [`Behavior::on_timer`].
    pub fn set_timer(&mut self, delay: SimTime, tag: u64) {
        let at = self.core.now + delay;
        let key = self.core.next_key(self.node);
        self.core.queue.schedule(
            at,
            key,
            crate::event::EventKind::Timer {
                node: self.node,
                tag,
            },
        );
    }

    /// Charge non-radio energy (CPU work such as cryptographic
    /// operations) against this node's battery. Returns `false` if the
    /// node died paying it.
    pub fn consume_energy(&mut self, joules: f64) -> bool {
        self.core.charge_public(self.node, joules)
    }

    /// Record that this node originated a new application message
    /// (denominator of the delivery ratio).
    pub fn record_origination(&mut self) {
        self.core.metrics.originated += 1;
    }

    /// Record a completed end-to-end delivery at this node. Feeds the
    /// delivery ledger, the latency/hop histograms and (when tracing is
    /// on) a `deliver` trace event.
    pub fn record_delivery(&mut self, source: NodeId, msg_id: u64, sent_at: SimTime, hops: u32) {
        let d = crate::metrics::Delivery {
            source,
            destination: self.node,
            msg_id,
            sent_at,
            delivered_at: self.core.now,
            hops,
        };
        let latency_us = d.latency();
        let key = self.core.exec_key;
        self.core.metrics.record_delivery_keyed(d, key);
        if self.trace_enabled() {
            self.trace(wmsn_trace::TraceEvent::Deliver {
                t: self.core.now,
                node: self.node,
                origin: source,
                msg_id,
                hops,
                latency_us,
            });
        }
    }

    /// Whether a trace sink is installed. Guard event construction with
    /// this so disabled tracing costs exactly one branch.
    #[inline]
    pub fn trace_enabled(&self) -> bool {
        self.core.trace.is_some()
    }

    /// Record a protocol-level trace event (route decisions, cache
    /// answers, forwards). No-op when tracing is disabled — but prefer
    /// checking [`Ctx::trace_enabled`] first so the event is never
    /// built on the disabled path.
    #[inline]
    pub fn trace(&mut self, ev: wmsn_trace::TraceEvent) {
        self.core.emit(ev);
    }

    /// Borrow the world's reusable frame-assembly buffer. In-place flood
    /// forwarding builds the outgoing frame here (memcpy + patch +
    /// append), freezes it with `Rc::from(&buf[..])`, then returns the
    /// buffer via [`Ctx::put_scratch`] so the capacity is reused across
    /// every forward in the run. Taking twice without returning is safe
    /// but forfeits the reuse (the second take sees an empty buffer).
    #[inline]
    pub fn take_scratch(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.core.frame_scratch)
    }

    /// Return the buffer obtained from [`Ctx::take_scratch`].
    #[inline]
    pub fn put_scratch(&mut self, buf: Vec<u8>) {
        self.core.frame_scratch = buf;
    }

    /// Modelling shortcut: the ids of currently-alive neighbours on
    /// `tier`. Real deployments learn this with HELLO beacons; simulation
    /// studies (including those the paper cites) commonly grant neighbour
    /// knowledge. Protocols that model HELLOs explicitly simply ignore
    /// this.
    pub fn neighbors(&mut self, tier: Tier) -> Vec<NodeId> {
        self.core.neighbors_of(self.node, tier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_config_constructors_set_roles() {
        let p = Point::new(1.0, 2.0);
        assert_eq!(NodeConfig::sensor(p, 2.0).role, NodeRole::Sensor);
        assert_eq!(NodeConfig::gateway(p).role, NodeRole::Gateway);
        assert_eq!(NodeConfig::mesh_router(p).role, NodeRole::MeshRouter);
        assert_eq!(NodeConfig::base_station(p).role, NodeRole::BaseStation);
        assert!(NodeConfig::gateway(p).battery_j.is_infinite());
        assert_eq!(NodeConfig::sensor(p, 2.0).battery_j, 2.0);
    }
}
