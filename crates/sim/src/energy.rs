//! Radio energy accounting.
//!
//! Two interchangeable models:
//!
//! * [`EnergyModel::FirstOrder`] — the Heinzelman first-order radio model
//!   used throughout the WSN literature the paper builds on (LEACH,
//!   PEGASIS): transmitting `k` bits over distance `d` costs
//!   `E_elec·k + ε_amp·k·d²`; receiving costs `E_elec·k`.
//! * [`EnergyModel::PerPacket`] — the paper's own simplification for SPR
//!   (§5.2): *"let all sensor nodes transmit data in identical power so
//!   that transmitting 1 bit data consumes the same energy to all of
//!   them"* — a constant `E_t` per transmitted packet and `E_r` per
//!   received packet, matching eqs. (2)–(3) of the MLR formulation.
//!
//! Energies are in joules; the default battery (2 J) is scaled down from
//! mote-class batteries so that lifetime experiments converge quickly while
//! preserving all ratios.

/// How radio operations are charged against a node's battery.
#[derive(Clone, Copy, Debug)]
pub enum EnergyModel {
    /// Heinzelman first-order model (per-bit, distance-dependent).
    FirstOrder {
        /// Electronics energy per bit, J/bit (typ. 50 nJ/bit).
        e_elec: f64,
        /// Amplifier energy per bit per m², J/bit/m² (typ. 100 pJ/bit/m²).
        eps_amp: f64,
    },
    /// The paper's constant-per-packet model: `E_t` per send, `E_r` per
    /// receive, independent of size and distance.
    PerPacket {
        /// Energy to transmit one packet, J.
        e_t: f64,
        /// Energy to receive one packet, J.
        e_r: f64,
    },
}

impl EnergyModel {
    /// First-order model with the standard literature constants.
    pub fn first_order_default() -> Self {
        EnergyModel::FirstOrder {
            e_elec: 50e-9,
            eps_amp: 100e-12,
        }
    }

    /// Per-packet model with `E_t = E_r`, normalised so that one packet
    /// costs 1 mJ — convenient for hand-checking lifetime arithmetic.
    pub fn per_packet_default() -> Self {
        EnergyModel::PerPacket {
            e_t: 1e-3,
            e_r: 1e-3,
        }
    }

    /// Energy to transmit `bytes` over `dist_m` metres.
    pub fn tx_cost(&self, bytes: usize, dist_m: f64) -> f64 {
        match *self {
            EnergyModel::FirstOrder { e_elec, eps_amp } => {
                let bits = (bytes * 8) as f64;
                e_elec * bits + eps_amp * bits * dist_m * dist_m
            }
            EnergyModel::PerPacket { e_t, .. } => e_t,
        }
    }

    /// Energy to receive `bytes`.
    pub fn rx_cost(&self, bytes: usize) -> f64 {
        match *self {
            EnergyModel::FirstOrder { e_elec, .. } => e_elec * (bytes * 8) as f64,
            EnergyModel::PerPacket { e_r, .. } => e_r,
        }
    }
}

/// A node's battery.
#[derive(Clone, Copy, Debug)]
pub struct Battery {
    /// Initial charge, J. `f64::INFINITY` for unconstrained nodes
    /// (gateways/WMRs/base stations — §5.3 assumes gateways have
    /// "unrestricted energy").
    pub capacity_j: f64,
    /// Remaining charge, J.
    pub remaining_j: f64,
}

impl Battery {
    /// Fresh battery with `capacity_j` joules.
    pub fn new(capacity_j: f64) -> Self {
        Battery {
            capacity_j,
            remaining_j: capacity_j,
        }
    }

    /// Unconstrained battery.
    pub fn unlimited() -> Self {
        Battery::new(f64::INFINITY)
    }

    /// Spend `j` joules; returns `false` if the battery was already empty
    /// or just drained (the node dies).
    pub fn spend(&mut self, j: f64) -> bool {
        if self.remaining_j <= 0.0 {
            return false;
        }
        self.remaining_j -= j;
        self.remaining_j > 0.0
    }

    /// Joules consumed so far (0 for unlimited batteries — their
    /// consumption is tracked separately in metrics if needed).
    pub fn consumed_j(&self) -> f64 {
        if self.capacity_j.is_infinite() {
            0.0
        } else {
            self.capacity_j - self.remaining_j
        }
    }

    /// Whether any charge remains.
    pub fn alive(&self) -> bool {
        self.remaining_j > 0.0
    }

    /// Fraction of capacity remaining in `[0, 1]` (1 for unlimited).
    pub fn fraction(&self) -> f64 {
        if self.capacity_j.is_infinite() {
            1.0
        } else if self.capacity_j <= 0.0 {
            0.0
        } else {
            (self.remaining_j / self.capacity_j).clamp(0.0, 1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_order_grows_with_distance_squared() {
        let m = EnergyModel::first_order_default();
        let near = m.tx_cost(100, 10.0);
        let far = m.tx_cost(100, 20.0);
        // ε·k·d² term quadruples; the electronics term is constant.
        let bits = 800.0;
        assert!((far - near - 100e-12 * bits * (400.0 - 100.0)).abs() < 1e-18);
        assert!(far > near);
    }

    #[test]
    fn first_order_rx_is_distance_independent() {
        let m = EnergyModel::first_order_default();
        assert_eq!(m.rx_cost(100), 50e-9 * 800.0);
    }

    #[test]
    fn per_packet_ignores_size_and_distance() {
        let m = EnergyModel::per_packet_default();
        assert_eq!(m.tx_cost(10, 5.0), m.tx_cost(1000, 500.0));
        assert_eq!(m.rx_cost(10), m.rx_cost(1000));
    }

    #[test]
    fn battery_dies_exactly_once() {
        let mut b = Battery::new(2.5e-3);
        assert!(b.spend(1e-3));
        assert!(b.spend(1e-3));
        assert!(!b.spend(1e-3), "third packet drains it");
        assert!(!b.alive());
        assert!(!b.spend(1e-3), "dead battery stays dead");
        assert!((b.consumed_j() - 3e-3).abs() < 1e-12);
    }

    #[test]
    fn unlimited_battery_never_dies() {
        let mut b = Battery::unlimited();
        for _ in 0..1_000_000 {
            assert!(b.spend(1.0));
        }
        assert_eq!(b.fraction(), 1.0);
        assert_eq!(b.consumed_j(), 0.0);
    }

    #[test]
    fn fraction_tracks_consumption() {
        let mut b = Battery::new(4.0);
        b.spend(1.0);
        assert!((b.fraction() - 0.75).abs() < 1e-12);
    }
}
