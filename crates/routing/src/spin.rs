//! SPIN — Sensor Protocols for Information via Negotiation (Heinzelman,
//! Kulik & Balakrishnan 1999; the paper's references \[20, 21\]).
//!
//! The flat-routing baseline of §2.2.1 that "addresses the deficiencies
//! of classic flooding by … data negotiation": instead of blasting whole
//! readings, a node holding new data broadcasts a small **ADV** naming it;
//! neighbours that have not seen that datum answer with a **REQ**; only
//! then is the full **DATA** sent — unicast, once per requester. The
//! three-way handshake trades latency for eliminating the *implosion*
//! (duplicate large payloads) and *resource blindness* of flooding:
//! payload bytes are transmitted only where wanted.
//!
//! This is SPIN-BC in its essential form; the resource-adaptive throttle
//! (SPIN-RL) is modelled by the low-water battery cut-off
//! [`SpinConfig::min_battery_fraction`], below which a node stops
//! advertising others' data (it still forwards its own).

use std::any::Any;
use std::collections::HashSet;
use wmsn_sim::{Behavior, Ctx, Packet, PacketKind, Tier};
use wmsn_util::codec::{DecodeError, Reader, Writer};
use wmsn_util::NodeId;

const TAG_ADV: u8 = 0x60;
const TAG_REQ: u8 = 0x61;
const TAG_DATA: u8 = 0x62;

/// SPIN wire messages. The *meta-datum* naming a reading is its
/// `(origin, msg_id)` pair — 12 bytes against a payload of tens.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SpinMsg {
    /// "I have new data named (origin, msg_id)."
    Adv {
        /// Original producer of the datum.
        origin: NodeId,
        /// Producer-unique id.
        msg_id: u64,
    },
    /// "Send me (origin, msg_id)." Unicast to the advertiser.
    Req {
        /// Datum requested.
        origin: NodeId,
        /// Datum requested, id part.
        msg_id: u64,
    },
    /// The datum itself. Unicast to the requester.
    Data {
        /// Producer.
        origin: NodeId,
        /// Producer-unique id.
        msg_id: u64,
        /// Origination time (metrics).
        sent_at: u64,
        /// Hops taken so far.
        hops: u32,
        /// Payload padding length.
        payload_len: u16,
    },
}

impl SpinMsg {
    /// Encode.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            SpinMsg::Adv { origin, msg_id } => {
                w.u8(TAG_ADV).u32(origin.0).u64(*msg_id);
            }
            SpinMsg::Req { origin, msg_id } => {
                w.u8(TAG_REQ).u32(origin.0).u64(*msg_id);
            }
            SpinMsg::Data {
                origin,
                msg_id,
                sent_at,
                hops,
                payload_len,
            } => {
                w.u8(TAG_DATA)
                    .u32(origin.0)
                    .u64(*msg_id)
                    .u64(*sent_at)
                    .u32(*hops)
                    .u16(*payload_len);
                for _ in 0..*payload_len {
                    w.u8(0);
                }
            }
        }
        w.into_bytes()
    }

    /// Decode.
    pub fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let tag = r.u8()?;
        let msg = match tag {
            TAG_ADV => SpinMsg::Adv {
                origin: NodeId(r.u32()?),
                msg_id: r.u64()?,
            },
            TAG_REQ => SpinMsg::Req {
                origin: NodeId(r.u32()?),
                msg_id: r.u64()?,
            },
            TAG_DATA => {
                let origin = NodeId(r.u32()?);
                let msg_id = r.u64()?;
                let sent_at = r.u64()?;
                let hops = r.u32()?;
                let payload_len = r.u16()?;
                let _ = r.raw(payload_len as usize)?;
                SpinMsg::Data {
                    origin,
                    msg_id,
                    sent_at,
                    hops,
                    payload_len,
                }
            }
            t => return Err(DecodeError::BadTag(t)),
        };
        r.finish()?;
        Ok(msg)
    }
}

/// SPIN tunables.
#[derive(Clone, Copy, Debug)]
pub struct SpinConfig {
    /// Payload bytes per datum.
    pub payload_len: u16,
    /// SPIN-RL resource adaptation: below this battery fraction a node
    /// stops re-advertising relayed data (its own readings still go out).
    pub min_battery_fraction: f64,
}

impl Default for SpinConfig {
    fn default() -> Self {
        SpinConfig {
            payload_len: 24,
            min_battery_fraction: 0.0,
        }
    }
}

/// SPIN sensor behaviour.
pub struct SpinSensor {
    cfg: SpinConfig,
    /// Data held (and therefore not re-requested): (origin, msg_id).
    have: HashSet<(NodeId, u64)>,
    /// Data requested but not yet received.
    requested: HashSet<(NodeId, u64)>,
    /// Cached metadata for data we hold (to answer REQs).
    store: std::collections::HashMap<(NodeId, u64), (u64, u32)>,
    next_msg_id: u64,
    /// ADVs suppressed by the resource throttle.
    pub throttled: u64,
    /// DATA frames sent (the implosion measure — compare with flooding).
    pub data_sent: u64,
}

impl SpinSensor {
    /// New SPIN node.
    pub fn new(cfg: SpinConfig) -> Self {
        SpinSensor {
            cfg,
            have: HashSet::new(),
            requested: HashSet::new(),
            store: std::collections::HashMap::new(),
            next_msg_id: 0,
            throttled: 0,
            data_sent: 0,
        }
    }

    /// Boxed, for `World::add_node`.
    pub fn boxed(cfg: SpinConfig) -> Box<dyn Behavior> {
        Box::new(Self::new(cfg))
    }

    /// Originate a reading: store it and advertise.
    pub fn originate(&mut self, ctx: &mut Ctx<'_>) {
        let key = (ctx.id(), self.next_msg_id);
        self.next_msg_id += 1;
        ctx.record_origination();
        self.have.insert(key);
        self.store.insert(key, (ctx.now(), 1));
        let adv = SpinMsg::Adv {
            origin: key.0,
            msg_id: key.1,
        };
        ctx.send(None, Tier::Sensor, PacketKind::Control, adv.encode());
    }

    fn handle_adv(&mut self, ctx: &mut Ctx<'_>, from: NodeId, origin: NodeId, msg_id: u64) {
        let key = (origin, msg_id);
        if self.have.contains(&key) || !self.requested.insert(key) {
            return; // already held or already requested elsewhere
        }
        let req = SpinMsg::Req { origin, msg_id };
        ctx.send(Some(from), Tier::Sensor, PacketKind::Control, req.encode());
    }

    fn handle_req(&mut self, ctx: &mut Ctx<'_>, from: NodeId, origin: NodeId, msg_id: u64) {
        let key = (origin, msg_id);
        let Some(&(sent_at, hops)) = self.store.get(&key) else {
            return; // we advertised then dropped? (never in this model)
        };
        let data = SpinMsg::Data {
            origin,
            msg_id,
            sent_at,
            hops,
            payload_len: self.cfg.payload_len,
        };
        self.data_sent += 1;
        ctx.send(Some(from), Tier::Sensor, PacketKind::Data, data.encode());
    }

    fn handle_data(
        &mut self,
        ctx: &mut Ctx<'_>,
        origin: NodeId,
        msg_id: u64,
        sent_at: u64,
        hops: u32,
    ) {
        let key = (origin, msg_id);
        self.requested.remove(&key);
        if !self.have.insert(key) {
            return;
        }
        self.store.insert(key, (sent_at, hops + 1));
        // Re-advertise (the SPIN relay step) — unless resources are low.
        if ctx.battery_fraction() < self.cfg.min_battery_fraction {
            self.throttled += 1;
            return;
        }
        let adv = SpinMsg::Adv { origin, msg_id };
        ctx.send(None, Tier::Sensor, PacketKind::Control, adv.encode());
    }

    /// Number of distinct data items held.
    pub fn held(&self) -> usize {
        self.have.len()
    }
}

impl Behavior for SpinSensor {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: &Packet) {
        let Ok(msg) = SpinMsg::decode(&pkt.payload) else {
            return;
        };
        match msg {
            SpinMsg::Adv { origin, msg_id } => self.handle_adv(ctx, pkt.src, origin, msg_id),
            SpinMsg::Req { origin, msg_id } => self.handle_req(ctx, pkt.src, origin, msg_id),
            SpinMsg::Data {
                origin,
                msg_id,
                sent_at,
                hops,
                ..
            } => self.handle_data(ctx, origin, msg_id, sent_at, hops),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// SPIN sink: requests every advertised datum, records deliveries.
pub struct SpinSink {
    have: HashSet<(NodeId, u64)>,
    requested: HashSet<(NodeId, u64)>,
    /// Distinct readings absorbed.
    pub absorbed: u64,
}

impl SpinSink {
    /// New sink.
    pub fn new() -> Self {
        SpinSink {
            have: HashSet::new(),
            requested: HashSet::new(),
            absorbed: 0,
        }
    }

    /// Boxed, for `World::add_node`.
    pub fn boxed() -> Box<dyn Behavior> {
        Box::new(Self::new())
    }
}

impl Default for SpinSink {
    fn default() -> Self {
        Self::new()
    }
}

impl Behavior for SpinSink {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: &Packet) {
        let Ok(msg) = SpinMsg::decode(&pkt.payload) else {
            return;
        };
        match msg {
            SpinMsg::Adv { origin, msg_id } => {
                let key = (origin, msg_id);
                if !self.have.contains(&key) && self.requested.insert(key) {
                    let req = SpinMsg::Req { origin, msg_id };
                    ctx.send(
                        Some(pkt.src),
                        Tier::Sensor,
                        PacketKind::Control,
                        req.encode(),
                    );
                }
            }
            SpinMsg::Data {
                origin,
                msg_id,
                sent_at,
                hops,
                ..
            } => {
                if self.have.insert((origin, msg_id)) {
                    self.absorbed += 1;
                    ctx.record_delivery(origin, msg_id, sent_at, hops);
                }
            }
            SpinMsg::Req { .. } => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flooding::{FloodMode, FloodSensor, FloodSink};
    use wmsn_sim::{NodeConfig, World, WorldConfig};
    use wmsn_util::Point;

    fn short_range(seed: u64) -> WorldConfig {
        let mut c = WorldConfig::ideal(seed);
        c.sensor_phy.range_m = 10.0;
        c
    }

    fn grid_world(cfg: SpinConfig) -> (World, Vec<NodeId>, NodeId) {
        let mut w = World::new(short_range(5));
        let mut sensors = Vec::new();
        for y in 0..4 {
            for x in 0..4 {
                sensors.push(w.add_node(
                    NodeConfig::sensor(Point::new(x as f64 * 9.0, y as f64 * 9.0), 100.0),
                    SpinSensor::boxed(cfg),
                ));
            }
        }
        let sink = w.add_node(
            NodeConfig::gateway(Point::new(36.0, 27.0)),
            SpinSink::boxed(),
        );
        (w, sensors, sink)
    }

    #[test]
    fn wire_roundtrips() {
        for msg in [
            SpinMsg::Adv {
                origin: NodeId(1),
                msg_id: 2,
            },
            SpinMsg::Req {
                origin: NodeId(1),
                msg_id: 2,
            },
            SpinMsg::Data {
                origin: NodeId(1),
                msg_id: 2,
                sent_at: 3,
                hops: 4,
                payload_len: 5,
            },
        ] {
            assert_eq!(SpinMsg::decode(&msg.encode()).unwrap(), msg);
        }
        assert!(SpinMsg::decode(&[0x7F]).is_err());
    }

    #[test]
    fn negotiation_delivers_to_the_sink() {
        let (mut w, sensors, sink) = grid_world(SpinConfig::default());
        w.start();
        w.with_behavior::<SpinSensor, _>(sensors[0], |s, ctx| s.originate(ctx));
        w.run_until(10_000_000);
        assert_eq!(w.metrics().deliveries.len(), 1);
        assert_eq!(w.behavior_as::<SpinSink>(sink).unwrap().absorbed, 1);
        assert!((w.metrics().delivery_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn every_node_ends_up_holding_the_datum_exactly_once() {
        let (mut w, sensors, _sink) = grid_world(SpinConfig::default());
        w.start();
        w.with_behavior::<SpinSensor, _>(sensors[5], |s, ctx| s.originate(ctx));
        w.run_until(10_000_000);
        for &s in &sensors {
            assert_eq!(w.behavior_as::<SpinSensor>(s).unwrap().held(), 1, "{s}");
        }
    }

    #[test]
    fn spin_moves_fewer_payload_bytes_than_flooding() {
        // Same 4×4 grid, same payload. Flooding broadcasts the payload at
        // every node; SPIN sends it only to requesters that lack it.
        let (mut w, sensors, _s) = grid_world(SpinConfig::default());
        w.start();
        w.with_behavior::<SpinSensor, _>(sensors[0], |s, ctx| s.originate(ctx));
        w.run_until(10_000_000);
        let spin_data_bytes = w.metrics().sent_bytes_data;

        let mut wf = World::new(short_range(5));
        let mut fsensors = Vec::new();
        for y in 0..4 {
            for x in 0..4 {
                fsensors.push(wf.add_node(
                    NodeConfig::sensor(Point::new(x as f64 * 9.0, y as f64 * 9.0), 100.0),
                    FloodSensor::boxed(FloodMode::Flood, 16),
                ));
            }
        }
        wf.add_node(
            NodeConfig::gateway(Point::new(36.0, 27.0)),
            FloodSink::boxed(),
        );
        wf.start();
        wf.with_behavior::<FloodSensor, _>(fsensors[0], |s, ctx| s.originate(ctx));
        wf.run_until(10_000_000);
        let flood_data_bytes = wf.metrics().sent_bytes_data;
        // SPIN pays control (ADV/REQ) to save payload. On this grid every
        // node still needs one copy, so DATA counts are close — the win is
        // that no node ever receives a payload it already has; flooding's
        // broadcasts deliver redundant copies to every neighbour.
        assert!(
            spin_data_bytes <= flood_data_bytes,
            "SPIN data bytes {spin_data_bytes} vs flooding {flood_data_bytes}"
        );
        // And crucially: receptions of redundant payloads.
        // Flooding: every node hears every neighbour's broadcast.
        // SPIN: each node receives the payload exactly once (unicast).
        let spin_receipts = w.metrics().received;
        let flood_receipts = wf.metrics().received;
        assert!(spin_receipts > 0 && flood_receipts > 0);
    }

    #[test]
    fn resource_throttle_stops_relaying_when_battery_low() {
        let mut w = World::new(short_range(1));
        // Chain: source — relay — outpost. Relay battery is nearly dead
        // and the throttle is set at 50%.
        let cfg = SpinConfig {
            min_battery_fraction: 0.5,
            ..SpinConfig::default()
        };
        let source = w.add_node(
            NodeConfig::sensor(Point::new(0.0, 0.0), 100.0),
            SpinSensor::boxed(cfg),
        );
        let relay = w.add_node(
            NodeConfig::sensor(Point::new(10.0, 0.0), 0.004), // 4 packets
            SpinSensor::boxed(cfg),
        );
        let outpost = w.add_node(
            NodeConfig::sensor(Point::new(20.0, 0.0), 100.0),
            SpinSensor::boxed(cfg),
        );
        w.start();
        w.with_behavior::<SpinSensor, _>(source, |s, ctx| s.originate(ctx));
        w.run_until(10_000_000);
        // The relay got the datum but refused to re-advertise.
        assert_eq!(w.behavior_as::<SpinSensor>(relay).unwrap().held(), 1);
        assert!(w.behavior_as::<SpinSensor>(relay).unwrap().throttled >= 1);
        assert_eq!(
            w.behavior_as::<SpinSensor>(outpost).unwrap().held(),
            0,
            "the throttled relay must not have advertised onward"
        );
    }

    #[test]
    fn duplicate_advs_trigger_only_one_request() {
        let (mut w, sensors, _sink) = grid_world(SpinConfig::default());
        w.start();
        // Two adjacent sources originate the same logical flood region;
        // every node must request each datum at most once.
        w.with_behavior::<SpinSensor, _>(sensors[0], |s, ctx| s.originate(ctx));
        w.with_behavior::<SpinSensor, _>(sensors[1], |s, ctx| s.originate(ctx));
        w.run_until(10_000_000);
        for &s in &sensors {
            assert_eq!(w.behavior_as::<SpinSensor>(s).unwrap().held(), 2, "{s}");
        }
        // Each datum travels to each node exactly once: 16 nodes hold it,
        // 15 transfers each (origin holds it for free).
        let total_sent: u64 = sensors
            .iter()
            .map(|&s| w.behavior_as::<SpinSensor>(s).unwrap().data_sent)
            .sum();
        // Sink also requests both data items.
        assert_eq!(total_sent, 2 * 15 + 2, "one unicast per (node, datum)");
    }
}
