//! MCFA — Minimum Cost Forwarding Algorithm (Ye et al. 2001, the paper's
//! reference \[24\]).
//!
//! MCFA exploits the fact that in a flat WSN "the direction of routing is
//! always known — towards the fixed external base-station", so nodes keep
//! **no routing tables and no ids**: only a scalar `cost` — the least hop
//! count to any sink — maintained by a beacon wave, and data packets carry
//! the remaining-cost budget. A node forwards a packet iff its own cost
//! equals the packet's remaining budget minus one, i.e. iff it lies on a
//! minimum-cost path. We implement the back-off-based setup refinement
//! from the original paper (delay ∝ advertised cost) that suppresses the
//! exponential re-broadcast storm of naive cost propagation.

use std::any::Any;
use std::collections::HashSet;
use wmsn_sim::{Behavior, Ctx, Packet, PacketKind, Tier};
use wmsn_util::codec::{DecodeError, Reader, Writer};
use wmsn_util::NodeId;

const TAG_BEACON: u8 = 0x20;
const TAG_DATA: u8 = 0x21;
const TIMER_BEACON: u64 = 0x4D43_0001;

/// Cost not yet known.
pub const COST_INF: u32 = u32::MAX;

/// MCFA wire messages.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum McfaMsg {
    /// Cost advertisement: "I can reach a sink in `cost` hops".
    Beacon {
        /// Advertised cost.
        cost: u32,
    },
    /// Data with a remaining-cost budget.
    Data {
        /// Source node (metrics only — MCFA itself never reads it).
        origin: NodeId,
        /// Source-unique id (duplicate suppression).
        msg_id: u64,
        /// Origination time.
        sent_at: u64,
        /// Hops so far.
        hops: u32,
        /// Remaining cost budget.
        budget: u32,
        /// Payload padding.
        payload_len: u16,
    },
}

impl McfaMsg {
    /// Encode.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            McfaMsg::Beacon { cost } => {
                w.u8(TAG_BEACON).u32(*cost);
            }
            McfaMsg::Data {
                origin,
                msg_id,
                sent_at,
                hops,
                budget,
                payload_len,
            } => {
                w.u8(TAG_DATA)
                    .u32(origin.0)
                    .u64(*msg_id)
                    .u64(*sent_at)
                    .u32(*hops)
                    .u32(*budget)
                    .u16(*payload_len);
                for _ in 0..*payload_len {
                    w.u8(0);
                }
            }
        }
        w.into_bytes()
    }

    /// Decode.
    pub fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let tag = r.u8()?;
        let msg = match tag {
            TAG_BEACON => McfaMsg::Beacon { cost: r.u32()? },
            TAG_DATA => {
                let origin = NodeId(r.u32()?);
                let msg_id = r.u64()?;
                let sent_at = r.u64()?;
                let hops = r.u32()?;
                let budget = r.u32()?;
                let payload_len = r.u16()?;
                let _ = r.raw(payload_len as usize)?;
                McfaMsg::Data {
                    origin,
                    msg_id,
                    sent_at,
                    hops,
                    budget,
                    payload_len,
                }
            }
            t => return Err(DecodeError::BadTag(t)),
        };
        r.finish()?;
        Ok(msg)
    }
}

/// MCFA sensor: maintains its cost, relays the beacon wave, forwards data
/// on the cost gradient.
pub struct McfaSensor {
    /// This node's current least-cost-to-sink estimate.
    pub cost: u32,
    /// Cost we have already advertised (suppresses redundant beacons).
    advertised: u32,
    /// Back-off per cost unit (µs) for the setup refinement.
    backoff_per_hop_us: u64,
    payload_len: u16,
    seen: HashSet<(NodeId, u64)>,
    next_msg_id: u64,
    beacon_pending: bool,
    /// Data frames this node forwarded.
    pub forwarded: u64,
    /// Data frames dropped because the cost field was not set up.
    pub dropped: u64,
}

impl McfaSensor {
    /// New sensor.
    pub fn new(backoff_per_hop_us: u64) -> Self {
        McfaSensor {
            cost: COST_INF,
            advertised: COST_INF,
            backoff_per_hop_us,
            payload_len: 24,
            seen: HashSet::new(),
            next_msg_id: 0,
            beacon_pending: false,
            forwarded: 0,
            dropped: 0,
        }
    }

    /// Boxed, for `World::add_node`.
    pub fn boxed() -> Box<dyn Behavior> {
        Box::new(Self::new(5_000))
    }

    /// Originate one message (requires the cost field to be set up).
    pub fn originate(&mut self, ctx: &mut Ctx<'_>) {
        ctx.record_origination();
        if self.cost == COST_INF {
            self.dropped += 1;
            return;
        }
        let msg = McfaMsg::Data {
            origin: ctx.id(),
            msg_id: self.next_msg_id,
            sent_at: ctx.now(),
            hops: 1,
            budget: self.cost,
            payload_len: self.payload_len,
        };
        self.next_msg_id += 1;
        self.seen.insert((ctx.id(), self.next_msg_id - 1));
        ctx.send(None, Tier::Sensor, PacketKind::Data, msg.encode());
    }

    fn schedule_beacon(&mut self, ctx: &mut Ctx<'_>) {
        if self.beacon_pending {
            return; // the pending timer will advertise the newest cost
        }
        self.beacon_pending = true;
        let delay = self.backoff_per_hop_us * self.cost as u64;
        ctx.set_timer(delay, TIMER_BEACON);
    }
}

impl Behavior for McfaSensor {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: &Packet) {
        let Ok(msg) = McfaMsg::decode(&pkt.payload) else {
            return;
        };
        match msg {
            McfaMsg::Beacon { cost } => {
                let new_cost = cost.saturating_add(1);
                if new_cost < self.cost {
                    self.cost = new_cost;
                    self.schedule_beacon(ctx);
                }
            }
            McfaMsg::Data {
                origin,
                msg_id,
                sent_at,
                hops,
                budget,
                payload_len,
            } => {
                // On-gradient check: we forward iff we are exactly one
                // cost unit closer to the sink than the budget says.
                if self.cost == COST_INF || budget == 0 || self.cost != budget - 1 {
                    return;
                }
                if !self.seen.insert((origin, msg_id)) {
                    return;
                }
                let fwd = McfaMsg::Data {
                    origin,
                    msg_id,
                    sent_at,
                    hops: hops + 1,
                    budget: self.cost,
                    payload_len,
                };
                self.forwarded += 1;
                ctx.send(None, Tier::Sensor, PacketKind::Data, fwd.encode());
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        if tag == TIMER_BEACON {
            self.beacon_pending = false;
            if self.cost < self.advertised {
                self.advertised = self.cost;
                let msg = McfaMsg::Beacon { cost: self.cost };
                ctx.send(None, Tier::Sensor, PacketKind::Control, msg.encode());
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// MCFA sink: seeds the cost field (cost 0) and absorbs data.
pub struct McfaSink {
    seen: HashSet<(NodeId, u64)>,
    /// Messages absorbed.
    pub absorbed: u64,
}

impl McfaSink {
    /// New sink.
    pub fn new() -> Self {
        McfaSink {
            seen: HashSet::new(),
            absorbed: 0,
        }
    }

    /// Boxed, for `World::add_node`.
    pub fn boxed() -> Box<dyn Behavior> {
        Box::new(Self::new())
    }
}

impl Default for McfaSink {
    fn default() -> Self {
        Self::new()
    }
}

impl Behavior for McfaSink {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        // Seed the wave.
        let msg = McfaMsg::Beacon { cost: 0 };
        ctx.send(None, Tier::Sensor, PacketKind::Control, msg.encode());
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: &Packet) {
        let Ok(msg) = McfaMsg::decode(&pkt.payload) else {
            return;
        };
        if let McfaMsg::Data {
            origin,
            msg_id,
            sent_at,
            hops,
            budget,
            ..
        } = msg
        {
            // Accept frames whose next stop is the sink (budget 1 from a
            // direct neighbour, or budget == cost of the neighbour that
            // broadcast with the sink in range).
            if budget >= 1 && self.seen.insert((origin, msg_id)) {
                self.absorbed += 1;
                ctx.record_delivery(origin, msg_id, sent_at, hops);
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmsn_sim::{NodeConfig, World, WorldConfig};
    use wmsn_util::Point;

    /// Test worlds use a 10 m sensor range so 10 m-spaced chains are
    /// genuine multi-hop topologies.
    fn short_range(seed: u64) -> WorldConfig {
        let mut c = WorldConfig::ideal(seed);
        c.sensor_phy.range_m = 10.0;
        c
    }

    fn chain_world(n: usize) -> (World, Vec<NodeId>, NodeId) {
        let mut w = World::new(short_range(13));
        let mut sensors = Vec::new();
        for i in 0..n {
            sensors.push(w.add_node(
                NodeConfig::sensor(Point::new((i + 1) as f64 * 10.0, 0.0), 100.0),
                McfaSensor::boxed(),
            ));
        }
        let sink = w.add_node(NodeConfig::gateway(Point::new(0.0, 0.0)), McfaSink::boxed());
        (w, sensors, sink)
    }

    #[test]
    fn wire_roundtrip() {
        let b = McfaMsg::Beacon { cost: 4 };
        assert_eq!(McfaMsg::decode(&b.encode()).unwrap(), b);
        let d = McfaMsg::Data {
            origin: NodeId(2),
            msg_id: 3,
            sent_at: 4,
            hops: 1,
            budget: 5,
            payload_len: 8,
        };
        assert_eq!(McfaMsg::decode(&d.encode()).unwrap(), d);
    }

    #[test]
    fn cost_field_converges_to_hop_distance() {
        let (mut w, sensors, _sink) = chain_world(5);
        w.run_until(2_000_000);
        for (i, &s) in sensors.iter().enumerate() {
            let cost = w.behavior_as::<McfaSensor>(s).unwrap().cost;
            assert_eq!(cost, i as u32 + 1, "sensor {i}");
        }
    }

    #[test]
    fn data_rides_the_gradient_to_the_sink() {
        let (mut w, sensors, sink) = chain_world(5);
        w.run_until(2_000_000);
        w.with_behavior::<McfaSensor, _>(sensors[4], |s, ctx| s.originate(ctx));
        w.run_until(4_000_000);
        let m = w.metrics();
        assert_eq!(m.deliveries.len(), 1);
        assert_eq!(m.deliveries[0].hops, 5);
        assert_eq!(w.behavior_as::<McfaSink>(sink).unwrap().absorbed, 1);
    }

    #[test]
    fn off_gradient_nodes_do_not_forward() {
        // A Y-shaped field: a side branch must stay silent when data flows
        // down the main chain.
        let (mut w, sensors, _sink) = chain_world(4);
        let branch = w.add_node(
            NodeConfig::sensor(Point::new(20.0, 9.0), 100.0),
            McfaSensor::boxed(),
        );
        w.run_until(2_000_000);
        // branch is adjacent to sensors[1] (20,0) and sensors[2]? (30,0) is
        // √(100+81)≈13.4 away — only sensors[1] and (10,0)=sensors[0]
        // (√(100+81) too)… adjacent to sensors[1] only. Its cost is 3.
        assert_eq!(w.behavior_as::<McfaSensor>(branch).unwrap().cost, 3);
        w.with_behavior::<McfaSensor, _>(sensors[3], |s, ctx| s.originate(ctx));
        w.run_until(4_000_000);
        assert_eq!(
            w.behavior_as::<McfaSensor>(branch).unwrap().forwarded,
            0,
            "off-gradient node forwarded"
        );
        assert_eq!(w.metrics().deliveries.len(), 1);
    }

    #[test]
    fn backoff_suppresses_redundant_beacons() {
        // With back-off, each node beacons exactly once on a chain.
        let (mut w, _sensors, _sink) = chain_world(6);
        w.run_until(2_000_000);
        // 1 sink beacon + 6 sensor beacons.
        assert_eq!(w.metrics().sent_control, 7);
    }

    #[test]
    fn origination_before_setup_is_dropped() {
        let (mut w, sensors, _sink) = chain_world(3);
        w.start();
        // Originate immediately — beacons have not propagated yet.
        w.with_behavior::<McfaSensor, _>(sensors[2], |s, ctx| s.originate(ctx));
        let s = w.behavior_as::<McfaSensor>(sensors[2]).unwrap();
        assert_eq!(s.dropped, 1);
    }

    #[test]
    fn multiple_sinks_give_each_node_the_nearest_cost() {
        let mut w = World::new(short_range(13));
        let mut sensors = Vec::new();
        for i in 0..5 {
            sensors.push(w.add_node(
                NodeConfig::sensor(Point::new((i + 1) as f64 * 10.0, 0.0), 100.0),
                McfaSensor::boxed(),
            ));
        }
        let _s1 = w.add_node(NodeConfig::gateway(Point::new(0.0, 0.0)), McfaSink::boxed());
        let _s2 = w.add_node(
            NodeConfig::gateway(Point::new(60.0, 0.0)),
            McfaSink::boxed(),
        );
        w.run_until(2_000_000);
        let costs: Vec<u32> = sensors
            .iter()
            .map(|&s| w.behavior_as::<McfaSensor>(s).unwrap().cost)
            .collect();
        assert_eq!(costs, vec![1, 2, 3, 2, 1]);
    }
}
