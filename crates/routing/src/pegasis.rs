//! PEGASIS — Power-Efficient GAthering in Sensor Information Systems
//! (Lindsey & Raghavendra 2002; the paper's reference \[25\]).
//!
//! The hierarchical baseline of §2.2.2 that improves on LEACH: "nodes
//! need only communicate with their closest neighbors and they take turns
//! in communicating with the sink". Nodes form a single **chain** by the
//! classic greedy construction (start from the node farthest from the
//! sink; repeatedly append the nearest unvisited node); each round a
//! rotating **leader** is chosen; data flows along the chain toward the
//! leader, aggregating at every hop, and the leader makes the one
//! long-range transmission to the sink.
//!
//! The chain is computed at deployment (PEGASIS assumes global knowledge
//! of positions, as the original paper does) and the round driver calls
//! [`PegasisSensor::gather`] on each node in chain-order, which matches
//! the token-passing schedule of the original protocol.

use std::any::Any;
use wmsn_sim::{Behavior, Ctx, Packet, PacketKind, Tier};
use wmsn_util::codec::{DecodeError, Reader, Writer};
use wmsn_util::{NodeId, Point};

const TAG_CHAIN: u8 = 0x70;
const TAG_LEADER: u8 = 0x71;

/// PEGASIS wire messages. The defining property of PEGASIS is **in-
/// network aggregation**: a chain frame is constant-size regardless of
/// how many readings it subsumes (the original paper fuses readings into
/// one representative value — a max, a mean — at every hop). The frame
/// carries the aggregate payload plus bookkeeping: how many readings are
/// folded in, the earliest origination time (for latency accounting) and
/// the chain hop count.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PegasisMsg {
    /// Aggregate moving along the chain toward the leader.
    Chain {
        /// Round this aggregate belongs to.
        round: u32,
        /// Readings fused into this aggregate.
        count: u16,
        /// Earliest origination time among them (µs).
        first_sent_at: u64,
        /// Chain hops taken so far.
        hops: u32,
        /// Fused payload size (constant; transmitted as padding).
        payload_len: u16,
    },
    /// The leader's long-range transmission to the sink.
    Leader {
        /// Round.
        round: u32,
        /// Readings represented.
        count: u16,
        /// Earliest origination time.
        first_sent_at: u64,
        /// Chain hops before the final sink hop.
        hops: u32,
        /// Fused payload size.
        payload_len: u16,
    },
}

impl PegasisMsg {
    /// Encode.
    pub fn encode(&self) -> Vec<u8> {
        let (tag, round, count, first, hops, payload_len) = match self {
            PegasisMsg::Chain {
                round,
                count,
                first_sent_at,
                hops,
                payload_len,
            } => (TAG_CHAIN, round, count, first_sent_at, hops, payload_len),
            PegasisMsg::Leader {
                round,
                count,
                first_sent_at,
                hops,
                payload_len,
            } => (TAG_LEADER, round, count, first_sent_at, hops, payload_len),
        };
        let mut w = Writer::new();
        w.u8(tag)
            .u32(*round)
            .u16(*count)
            .u64(*first)
            .u32(*hops)
            .u16(*payload_len);
        for _ in 0..*payload_len {
            w.u8(0);
        }
        w.into_bytes()
    }

    /// Decode.
    pub fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let tag = r.u8()?;
        let round = r.u32()?;
        let count = r.u16()?;
        let first_sent_at = r.u64()?;
        let hops = r.u32()?;
        let payload_len = r.u16()?;
        let _ = r.raw(payload_len as usize)?;
        r.finish()?;
        match tag {
            TAG_CHAIN => Ok(PegasisMsg::Chain {
                round,
                count,
                first_sent_at,
                hops,
                payload_len,
            }),
            TAG_LEADER => Ok(PegasisMsg::Leader {
                round,
                count,
                first_sent_at,
                hops,
                payload_len,
            }),
            t => Err(DecodeError::BadTag(t)),
        }
    }
}

/// Greedy chain construction: start from the node farthest from the
/// sink, repeatedly append the nearest unvisited node. Returns positions'
/// indices in chain order.
pub fn build_chain(positions: &[Point], sink: Point) -> Vec<usize> {
    let n = positions.len();
    if n == 0 {
        return Vec::new();
    }
    let start = (0..n)
        .max_by(|&a, &b| {
            positions[a]
                .dist_sq(sink)
                .partial_cmp(&positions[b].dist_sq(sink))
                .unwrap()
        })
        .unwrap();
    let mut chain = vec![start];
    let mut used = vec![false; n];
    used[start] = true;
    while chain.len() < n {
        let tail = *chain.last().unwrap();
        let next = (0..n)
            .filter(|&i| !used[i])
            .min_by(|&a, &b| {
                positions[tail]
                    .dist_sq(positions[a])
                    .partial_cmp(&positions[tail].dist_sq(positions[b]))
                    .unwrap()
            })
            .unwrap();
        used[next] = true;
        chain.push(next);
    }
    chain
}

/// Per-node PEGASIS configuration (set at deployment).
#[derive(Clone, Debug)]
pub struct PegasisConfig {
    /// This node's position in the chain.
    pub chain_index: usize,
    /// Node ids in chain order (shared by all nodes).
    pub chain: Vec<NodeId>,
    /// Node positions in chain order (for link-distance power control).
    pub chain_positions: Vec<Point>,
    /// The sink.
    pub sink: NodeId,
    /// Sink position.
    pub sink_pos: Point,
    /// Power-control cap (m).
    pub max_boost_range: f64,
}

/// PEGASIS sensor behaviour.
pub struct PegasisSensor {
    cfg: PegasisConfig,
    /// Readings fused into the aggregate held here, and the earliest
    /// origination time among them.
    pending_count: u16,
    pending_first: u64,
    pending_hops: u32,
    /// Current round (stamped into outgoing frames).
    round: u32,
    /// Whether this node leads the current round.
    pub is_leader: bool,
    /// Sides (lower/upper chain half) still expected by the leader.
    awaiting: u8,
    /// Whether this node's own gather step has run this round (the
    /// leader must fold its own reading in before transmitting).
    gathered: bool,
    next_msg_id: u64,
}

impl PegasisSensor {
    /// New node.
    pub fn new(cfg: PegasisConfig) -> Self {
        PegasisSensor {
            cfg,
            pending_count: 0,
            pending_first: u64::MAX,
            pending_hops: 0,
            round: 0,
            is_leader: false,
            awaiting: 0,
            gathered: false,
            next_msg_id: 0,
        }
    }

    /// Boxed, for `World::add_node`.
    pub fn boxed(cfg: PegasisConfig) -> Box<dyn Behavior> {
        Box::new(Self::new(cfg))
    }

    /// Leader index for a round: rotates along the chain (the original
    /// protocol's `i mod N` rotation).
    pub fn leader_index(round: u32, chain_len: usize) -> usize {
        (round as usize) % chain_len.max(1)
    }

    /// Round start: remember the leader role. The leader expects
    /// aggregates from each side of the chain that contains nodes.
    pub fn start_round(&mut self, round: u32) {
        let li = Self::leader_index(round, self.cfg.chain.len());
        self.is_leader = li == self.cfg.chain_index;
        self.pending_count = 0;
        self.pending_first = u64::MAX;
        self.pending_hops = 0;
        self.round = round;
        self.gathered = false;
        self.awaiting = if self.is_leader {
            u8::from(li > 0) + u8::from(li + 1 < self.cfg.chain.len())
        } else {
            0
        };
    }

    /// Gathering step for this node (driver calls end nodes first, then
    /// inward, mirroring the chain token schedule). End nodes originate;
    /// inner nodes fold their own reading into the passing aggregate.
    ///
    /// In this implementation each non-leader simply adds its reading and
    /// forwards the running aggregate one hop toward the leader; the
    /// driver's ordering guarantees the aggregate has already arrived.
    pub fn gather(&mut self, ctx: &mut Ctx<'_>, round: u32) {
        let me = self.cfg.chain_index;
        let li = Self::leader_index(round, self.cfg.chain.len());
        let msg_id = self.next_msg_id;
        self.next_msg_id += 1;
        ctx.record_origination();
        let _ = msg_id; // readings are identified as (node, round) at the sink
        self.pending_count += 1;
        self.pending_first = self.pending_first.min(ctx.now());
        self.gathered = true;
        if self.is_leader {
            self.maybe_flush(ctx);
            return;
        }
        // Forward the (constant-size) aggregate one hop toward the leader.
        let next = if me < li { me + 1 } else { me - 1 };
        let dist = self.cfg.chain_positions[me]
            .dist(self.cfg.chain_positions[next])
            .min(self.cfg.max_boost_range);
        let msg = PegasisMsg::Chain {
            round,
            count: self.pending_count,
            first_sent_at: self.pending_first,
            hops: self.pending_hops + 1,
            payload_len: 24,
        };
        self.pending_count = 0;
        self.pending_first = u64::MAX;
        self.pending_hops = 0;
        ctx.send_ranged(
            Some(self.cfg.chain[next]),
            Tier::Sensor,
            PacketKind::Data,
            msg.encode(),
            dist,
        );
    }

    fn maybe_flush(&mut self, ctx: &mut Ctx<'_>) {
        if self.awaiting > 0 || !self.gathered {
            return; // chain aggregates still incoming, or own reading missing
        }
        let dist = self.cfg.chain_positions[self.cfg.chain_index]
            .dist(self.cfg.sink_pos)
            .min(self.cfg.max_boost_range);
        let msg = PegasisMsg::Leader {
            round: self.round,
            count: self.pending_count,
            first_sent_at: self.pending_first,
            hops: self.pending_hops,
            payload_len: 24,
        };
        self.pending_count = 0;
        self.pending_first = u64::MAX;
        ctx.send_ranged(
            Some(self.cfg.sink),
            Tier::Sensor,
            PacketKind::Data,
            msg.encode(),
            dist,
        );
    }
}

impl Behavior for PegasisSensor {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: &Packet) {
        let Ok(PegasisMsg::Chain {
            count,
            first_sent_at,
            hops,
            ..
        }) = PegasisMsg::decode(&pkt.payload)
        else {
            return;
        };
        self.pending_count += count;
        self.pending_first = self.pending_first.min(first_sent_at);
        self.pending_hops = self.pending_hops.max(hops);
        if self.is_leader {
            self.awaiting = self.awaiting.saturating_sub(1);
            self.maybe_flush(ctx);
        }
        // Non-leaders hold the aggregate until their own gather() turn.
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// PEGASIS sink. Knows the chain membership (PEGASIS's global-knowledge
/// assumption), so an aggregate that fused `count` readings is credited
/// to the chain members — the aggregate *is* their information, delivered.
pub struct PegasisSink {
    chain: Vec<NodeId>,
    /// Readings absorbed (aggregated).
    pub absorbed: u64,
}

impl PegasisSink {
    /// New sink serving the given chain.
    pub fn new(chain: Vec<NodeId>) -> Self {
        PegasisSink { chain, absorbed: 0 }
    }

    /// Boxed, for `World::add_node`.
    pub fn boxed(chain: Vec<NodeId>) -> Box<dyn Behavior> {
        Box::new(Self::new(chain))
    }
}

impl Behavior for PegasisSink {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: &Packet) {
        let Ok(PegasisMsg::Leader {
            round,
            count,
            first_sent_at,
            hops,
            ..
        }) = PegasisMsg::decode(&pkt.payload)
        else {
            return;
        };
        // Credit the first `count` chain members (all of them, in a
        // healthy round); the reading id is the round number.
        for &member in self.chain.iter().take(count as usize) {
            self.absorbed += 1;
            ctx.record_delivery(member, u64::from(round), first_sent_at, hops + 1);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmsn_sim::{NodeConfig, World, WorldConfig};
    use wmsn_util::{Rect, SplitMix64};

    fn build(n: usize, seed: u64) -> (World, Vec<NodeId>, Vec<usize>, NodeId) {
        let field = Rect::field(100.0, 100.0);
        let sink_pos = Point::new(50.0, 150.0);
        let mut rng = SplitMix64::new(seed);
        let positions: Vec<Point> = (0..n)
            .map(|_| {
                Point::new(
                    rng.range_f64(field.min.x, field.max.x),
                    rng.range_f64(field.min.y, field.max.y),
                )
            })
            .collect();
        let chain_order = build_chain(&positions, sink_pos);
        // node ids will be 0..n in ADD order; chain[k] = id of k-th node.
        let chain_ids: Vec<NodeId> = chain_order.iter().map(|&i| NodeId(i as u32)).collect();
        let chain_positions: Vec<Point> = chain_order.iter().map(|&i| positions[i]).collect();
        let sink_id = NodeId(n as u32);
        let mut w = World::new(WorldConfig::ideal(seed));
        let mut sensors = Vec::new();
        for (i, &pos) in positions.iter().enumerate() {
            let chain_index = chain_order.iter().position(|&c| c == i).unwrap();
            let cfg = PegasisConfig {
                chain_index,
                chain: chain_ids.clone(),
                chain_positions: chain_positions.clone(),
                sink: sink_id,
                sink_pos,
                max_boost_range: 400.0,
            };
            sensors.push(w.add_node(NodeConfig::sensor(pos, 100.0), PegasisSensor::boxed(cfg)));
        }
        let sink = w.add_node(
            NodeConfig::gateway(sink_pos),
            PegasisSink::boxed(chain_ids.clone()),
        );
        (w, sensors, chain_order, sink)
    }

    /// One full round: start everyone, then gather from the chain ends
    /// inward toward the leader.
    fn run_round(w: &mut World, sensors: &[NodeId], chain_order: &[usize], round: u32) {
        for &s in sensors {
            w.with_behavior::<PegasisSensor, _>(s, |b, _| b.start_round(round));
        }
        let li = PegasisSensor::leader_index(round, chain_order.len());
        // Lower side: 0 → li-1; upper side: end → li+1; leader last.
        let mut order: Vec<usize> = (0..li).collect();
        order.extend((li + 1..chain_order.len()).rev());
        order.push(li);
        for k in order {
            let node = NodeId(chain_order[k] as u32);
            w.with_behavior::<PegasisSensor, _>(node, |b, ctx| b.gather(ctx, round));
            w.run_for(50_000);
        }
        w.run_for(500_000);
    }

    #[test]
    fn chain_visits_every_node_once() {
        let positions: Vec<Point> = (0..20).map(|i| Point::new(i as f64 * 7.0, 0.0)).collect();
        let chain = build_chain(&positions, Point::new(0.0, 100.0));
        let mut sorted = chain.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        // Farthest node from the sink starts the chain.
        assert_eq!(chain[0], 19);
        // On a line, the greedy chain is the line itself.
        assert_eq!(chain, (0..20).rev().collect::<Vec<_>>());
    }

    #[test]
    fn empty_chain_is_fine() {
        assert!(build_chain(&[], Point::new(0.0, 0.0)).is_empty());
    }

    #[test]
    fn a_round_delivers_every_reading_via_one_leader_transmission() {
        let (mut w, sensors, chain_order, sink) = build(30, 3);
        w.start();
        run_round(&mut w, &sensors, &chain_order, 0);
        let m = w.metrics();
        assert_eq!(m.originated, 30);
        assert_eq!(
            w.behavior_as::<PegasisSink>(sink).unwrap().absorbed,
            30,
            "all readings aggregated to the sink"
        );
        assert!((m.delivery_ratio() - 1.0).abs() < 1e-12);
        // Exactly 30 frames: 29 chain hops + 1 leader transmission.
        assert_eq!(m.sent_data, 30);
    }

    #[test]
    fn leadership_rotates_across_rounds() {
        let (mut w, sensors, chain_order, _sink) = build(10, 4);
        w.start();
        let mut leaders = Vec::new();
        for round in 0..5 {
            run_round(&mut w, &sensors, &chain_order, round);
            for &s in &sensors {
                if w.behavior_as::<PegasisSensor>(s).unwrap().is_leader {
                    leaders.push(s);
                }
            }
        }
        let distinct: std::collections::HashSet<_> = leaders.iter().collect();
        assert_eq!(leaders.len(), 5);
        assert_eq!(distinct.len(), 5, "a new leader each round");
        let m = w.metrics();
        assert!((m.delivery_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pegasis_spends_less_amplifier_energy_than_leach_style_direct() {
        use wmsn_sim::EnergyModel;
        // Under the first-order model, PEGASIS pays ε·d² only on short
        // chain links plus ONE long leader hop; all-direct pays ε·d² to
        // the sink for every node.
        let mk = |seed| {
            let mut cfg = WorldConfig::ideal(seed);
            cfg.energy = EnergyModel::first_order_default();
            cfg
        };
        // PEGASIS:
        let field = Rect::field(100.0, 100.0);
        let sink_pos = Point::new(50.0, 150.0);
        let mut rng = SplitMix64::new(9);
        let positions: Vec<Point> = (0..25)
            .map(|_| Point::new(rng.range_f64(0.0, 100.0), rng.range_f64(0.0, 100.0)))
            .collect();
        let chain_order = build_chain(&positions, sink_pos);
        let chain_ids: Vec<NodeId> = chain_order.iter().map(|&i| NodeId(i as u32)).collect();
        let chain_positions: Vec<Point> = chain_order.iter().map(|&i| positions[i]).collect();
        let sink_id = NodeId(25);
        let mut w = World::new(mk(9));
        let mut sensors = Vec::new();
        for (i, &pos) in positions.iter().enumerate() {
            let chain_index = chain_order.iter().position(|&c| c == i).unwrap();
            sensors.push(w.add_node(
                NodeConfig::sensor(pos, 100.0),
                PegasisSensor::boxed(PegasisConfig {
                    chain_index,
                    chain: chain_ids.clone(),
                    chain_positions: chain_positions.clone(),
                    sink: sink_id,
                    sink_pos,
                    max_boost_range: 400.0,
                }),
            ));
        }
        w.add_node(
            NodeConfig::gateway(sink_pos),
            PegasisSink::boxed(chain_ids.clone()),
        );
        w.start();
        run_round(&mut w, &sensors, &chain_order, 0);
        let pegasis_energy: f64 = w.metrics().energy_consumed.iter().sum();

        // All-direct: every sensor boosts straight to the sink.
        let mut wd = World::new(mk(9));
        let mut direct = Vec::new();
        for &pos in &positions {
            direct.push(wd.add_node(
                NodeConfig::sensor(pos, 100.0),
                crate::leach::LeachSensor::boxed(crate::leach::LeachConfig {
                    p: 0.0, // nobody elects: everyone falls back to direct
                    payload_len: 24,
                    sink_pos,
                    sink: NodeId(25),
                    max_boost_range: 400.0,
                }),
            ));
        }
        wd.add_node(
            NodeConfig::gateway(sink_pos),
            crate::leach::LeachSink::boxed(),
        );
        wd.start();
        for &s in &direct {
            wd.with_behavior::<crate::leach::LeachSensor, _>(s, |b, ctx| {
                b.start_round(ctx, 0);
                b.report(ctx);
            });
        }
        wd.run_for(1_000_000);
        let direct_energy: f64 = wd.metrics().energy_consumed.iter().sum();
        assert!((wd.metrics().delivery_ratio() - 1.0).abs() < 1e-12);
        assert!(
            pegasis_energy < direct_energy * 0.6,
            "chain gathering must beat all-direct: {pegasis_energy:.6} vs {direct_energy:.6}"
        );
        let _ = field;
    }
}
