//! `wmsn-routing` — the paper's routing protocols and every baseline they
//! are argued against.
//!
//! The paper's contributions (§5):
//!
//! * [`spr`] — **Shortest Path Routing**: on-demand RREQ flooding toward
//!   all `m` gateways, cached-route short-circuit replies (Property 1),
//!   source selection of the minimum-hop gateway, and table installation
//!   along the reply/data path. Per-round table reset ("merges the
//!   advantages of table-driven and on-demand routing").
//! * [`mlr`] — **Maximal network Lifetime Routing**: the feasible-place
//!   scheme of §5.3 — routing tables *accumulate* one entry per feasible
//!   place across rounds; moved gateways announce their new place at round
//!   start; only never-seen places trigger discovery (Table 1). Optional
//!   residual-energy-aware path selection and gateway load balancing
//!   (§4.3) are implemented as flagged extensions.
//! * [`optimal`] — the upper bound the MLR formulation (eqs. 1–6) aims
//!   at: maximum rounds before first sensor death, computed exactly by
//!   binary search over per-round flow with a Dinic max-flow feasibility
//!   oracle over the energy-capacitated graph.
//!
//! Baselines (§2) reimplemented for the comparison experiments:
//!
//! * [`flooding`] — classic data flooding (and its gossiping variant),
//!   with the implosion pathology the paper cites.
//! * [`mcfa`] — Minimum Cost Forwarding: a cost field flooded from the
//!   sink(s); data rides the gradient with no per-node routing tables.
//! * [`spin`] — SPIN's ADV/REQ/DATA negotiation, which removes
//!   flooding's implosion by transmitting payloads only where wanted.
//! * [`leach`] — LEACH cluster-head rotation, used to demonstrate the
//!   robustness argument of §2.1 (a dead head silences its cluster).
//! * [`pegasis`] — PEGASIS chain gathering with leader rotation, the
//!   LEACH improvement §2.2.2 describes.
//!
//! Plus the substrate the three-layer architecture needs:
//!
//! * [`mesh`] — a link-state protocol for the WMG/WMR backbone (hello +
//!   LSA flooding + Dijkstra), carrying sensor data from gateways to base
//!   stations (Fig. 1's upper tiers).
//!
//! All protocols are [`wmsn_sim::Behavior`]s sharing the wire formats of
//! [`wire`] and the table types of [`table`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flooding;
pub mod leach;
pub mod mcfa;
pub mod mesh;
pub mod mlr;
pub mod optimal;
pub mod pegasis;
pub mod spin;
pub mod spr;
pub mod table;
pub mod wire;

pub use mlr::{MlrGateway, MlrSensor};
pub use optimal::optimal_lifetime_rounds;
pub use spr::{SprGateway, SprSensor};
