//! SPR — Shortest Path Routing (§5.2).
//!
//! The protocol, step by step from the paper:
//!
//! 1. A source with a cached route sends DATA immediately (step 1).
//! 2. Otherwise it floods an RREQ "with m destinations" — a single flood
//!    that every gateway answers (step 2).
//! 3. Intermediate sensors holding a cached route **answer from the
//!    table** instead of re-flooding, appending their cached path after
//!    the path the RREQ walked (step 3.1, justified by Property 1);
//!    sensors without a route append themselves and re-flood. Gateways
//!    answer directly (step 3.2).
//! 4. The source collects RREPs for a short window and selects the
//!    minimum-hop gateway (step 4).
//! 5. Forwarding state is installed on every node along the winning path
//!    as the RREP relays back, so DATA needs no source route (step 5).
//!
//! Tables are **reset each round** (the "merges table-driven and
//! on-demand" property): the round driver calls [`SprSensor::reset_round`].
//!
//! The flat single-sink baseline of Fig. 2(a) is SPR with `m = 1`.

use crate::table::{Route, RoutingTable};
use crate::wire::{self, PeekHeader, RoutingMsg, RoutingMsgView, NO_PLACE};
use std::any::Any;
use std::collections::VecDeque;
use std::rc::Rc;
use wmsn_sim::{Behavior, Ctx, Packet, PacketKind, Tier};
use wmsn_trace::TraceEvent;
use wmsn_util::seen::SeenTable;
use wmsn_util::NodeId;

/// Timer tag: RREP collection window expired.
const TIMER_COLLECT: u64 = 1;
/// Timer tag: jittered re-flood.
const TIMER_FLOOD: u64 = 2;
/// Timer tag: deferred origination (see [`SprSensor::schedule_originate`]).
const TIMER_ORIGINATE: u64 = 3;

/// Tunables for SPR (and reused by MLR).
#[derive(Clone, Copy, Debug)]
pub struct SprConfig {
    /// How long a source waits to collect RREPs before choosing (µs).
    pub reply_wait_us: u64,
    /// Application payload size carried in DATA frames (bytes).
    pub data_payload: u16,
    /// Maximum random jitter before re-flooding an RREQ (µs); avoids the
    /// synchronized-broadcast collisions of naive flooding. 0 disables.
    pub flood_jitter_us: u64,
    /// Discovery retries before buffered data is dropped.
    pub max_retries: u32,
}

impl Default for SprConfig {
    fn default() -> Self {
        SprConfig {
            reply_wait_us: 60_000,
            data_payload: 24,
            flood_jitter_us: 2_000,
            max_retries: 2,
        }
    }
}

/// Counters exposed for tests and experiments.
#[derive(Clone, Copy, Debug, Default)]
pub struct SprStats {
    /// RREQ floods this node originated.
    pub rreq_originated: u64,
    /// RREQ frames this node re-broadcast.
    pub rreq_forwarded: u64,
    /// RREPs answered from this node's cached table (Property 1 path).
    pub cache_replies: u64,
    /// RREP frames relayed toward an origin.
    pub rrep_relayed: u64,
    /// DATA frames forwarded for others.
    pub data_forwarded: u64,
    /// DATA frames dropped for lack of a route.
    pub data_dropped: u64,
}

/// A buffered application message awaiting a route.
#[derive(Clone, Copy, Debug)]
struct PendingMsg {
    msg_id: u64,
    sent_at: u64,
}

/// The sensor side of SPR.
pub struct SprSensor {
    cfg: SprConfig,
    /// Cached routes (cleared each round).
    pub table: RoutingTable,
    /// Flood duplicate suppression (header-peek fast path: keyed on the
    /// fixed-offset `(origin, req_id)` before any path materialisation).
    seen_rreq: SeenTable,
    /// Best RREP relayed per (origin, req, gateway) — reply-storm damping.
    seen_rrep: std::collections::HashMap<(NodeId, u64, NodeId), usize>,
    seen_announce: SeenTable,
    next_req_id: u64,
    next_msg_id: u64,
    pending: Vec<PendingMsg>,
    /// Outstanding discovery, with retries used.
    discovering: Option<(u64, u32)>,
    flood_queue: VecDeque<Rc<[u8]>>,
    /// Counters.
    pub stats: SprStats,
}

impl SprSensor {
    /// New sensor with the given tunables.
    pub fn new(cfg: SprConfig) -> Self {
        SprSensor {
            cfg,
            table: RoutingTable::new(),
            seen_rreq: SeenTable::new(),
            seen_rrep: std::collections::HashMap::new(),
            seen_announce: SeenTable::new(),
            next_req_id: 0,
            next_msg_id: 0,
            pending: Vec::new(),
            discovering: None,
            flood_queue: VecDeque::new(),
            stats: SprStats::default(),
        }
    }

    /// Boxed, for `World::add_node`.
    pub fn boxed(cfg: SprConfig) -> Box<dyn Behavior> {
        Box::new(Self::new(cfg))
    }

    /// Round reset (§5.2): drop cached routes and flood-dedup state.
    pub fn reset_round(&mut self) {
        self.table.clear();
        self.seen_rreq.clear();
        self.seen_rrep.clear();
        self.discovering = None;
    }

    /// Originate one application message. Sends immediately if a route is
    /// cached, otherwise buffers and (if not already) starts discovery.
    pub fn originate(&mut self, ctx: &mut Ctx<'_>) {
        let msg_id = self.next_msg_id;
        self.next_msg_id += 1;
        ctx.record_origination();
        let msg = PendingMsg {
            msg_id,
            sent_at: ctx.now(),
        };
        if self.route_known() {
            self.send_data(ctx, msg);
        } else {
            self.pending.push(msg);
            if self.discovering.is_none() {
                self.start_discovery(ctx, 0);
            }
        }
    }

    /// Schedule [`Self::originate`] to fire `delay_us` from now via the
    /// node's own timer, instead of having an external driver call it.
    ///
    /// At large n a driver-side stagger loop serialises the whole world
    /// behind repeated `run_for` calls; timer-driven origination lets a
    /// scenario arm every source up front and then issue one long
    /// `run_until`, which is what the sharded kernel needs to overlap
    /// work across shards.
    pub fn schedule_originate(&mut self, ctx: &mut Ctx<'_>, delay_us: u64) {
        ctx.set_timer(delay_us, TIMER_ORIGINATE);
    }

    fn route_known(&self) -> bool {
        self.table.best().is_some()
    }

    fn start_discovery(&mut self, ctx: &mut Ctx<'_>, retries_used: u32) {
        let req_id = self.next_req_id;
        self.next_req_id += 1;
        self.discovering = Some((req_id, retries_used));
        self.seen_rreq.insert(ctx.id().0, req_id);
        let rreq = RoutingMsg::Rreq {
            origin: ctx.id(),
            req_id,
            path: vec![ctx.id()],
            wanted: Vec::new(), // SPR: any gateway's route is welcome
        };
        self.stats.rreq_originated += 1;
        if ctx.trace_enabled() {
            ctx.trace(TraceEvent::RreqFlood {
                t: ctx.now(),
                node: ctx.id(),
                origin: ctx.id(),
                req_id,
                forwarded: false,
            });
        }
        ctx.send(None, Tier::Sensor, PacketKind::Control, rreq.encode());
        ctx.set_timer(self.cfg.reply_wait_us, TIMER_COLLECT);
    }

    fn send_data(&mut self, ctx: &mut Ctx<'_>, msg: PendingMsg) {
        let Some(route) = self.table.best().cloned() else {
            self.stats.data_dropped += 1;
            return;
        };
        let data = RoutingMsg::Data {
            origin: ctx.id(),
            msg_id: msg.msg_id,
            sent_at: msg.sent_at,
            gateway: route.gateway,
            place: route.place,
            hops: 1,
            payload_len: self.cfg.data_payload,
        };
        if ctx.trace_enabled() {
            ctx.trace(TraceEvent::Forward {
                t: ctx.now(),
                node: ctx.id(),
                origin: ctx.id(),
                msg_id: msg.msg_id,
                next: Some(route.next_hop()),
                hops: 1,
            });
        }
        ctx.send(
            Some(route.next_hop()),
            Tier::Sensor,
            PacketKind::Data,
            data.encode(),
        );
    }

    fn queue_flood(&mut self, ctx: &mut Ctx<'_>, bytes: impl Into<Rc<[u8]>>) {
        let bytes = bytes.into();
        if self.cfg.flood_jitter_us == 0 {
            ctx.send(None, Tier::Sensor, PacketKind::Control, bytes);
        } else {
            let jitter = ctx.rng().next_below(self.cfg.flood_jitter_us);
            self.flood_queue.push_back(bytes);
            ctx.set_timer(jitter, TIMER_FLOOD);
        }
    }

    /// Shared RREQ handling (also used verbatim by MLR sensors). The
    /// frame was already structurally validated (and duplicate-checked
    /// via its peek header) by the caller's `wire::peek`; everything
    /// here runs on borrowed views plus in-place frame builders, so a
    /// forwarded flood hop allocates only the frozen `Rc<[u8]>`.
    fn handle_rreq(&mut self, ctx: &mut Ctx<'_>, frame: &[u8], origin: NodeId, req_id: u64) {
        let me = ctx.id();
        if origin == me || !self.seen_rreq.insert(origin.0, req_id) {
            return;
        }
        let Ok(RoutingMsgView::Rreq { path, .. }) = RoutingMsgView::decode(frame) else {
            return;
        };
        if path.contains(me.0) {
            return; // already walked through us
        }
        let Some(prev) = path.last() else { return };
        let prev = NodeId(prev);
        // Step 3.1: answer from the cache when we can. A cached path that
        // loops back through the query path cannot be offered (the
        // combined walk would repeat a node).
        if let Some(route) = self.table.best() {
            if wire::path_with_suffix_is_unique(path, me, &route.relays) {
                let own_pm = (ctx.battery_fraction() * 1000.0) as u16;
                let gateway = route.gateway;
                let place = route.place;
                let energy_pm = route.energy_pm.min(own_pm);
                let mut buf = ctx.take_scratch();
                wire::encode_rrep_into(
                    &mut buf,
                    origin,
                    req_id,
                    gateway,
                    place,
                    energy_pm,
                    path,
                    Some(me),
                    &route.relays,
                );
                self.stats.cache_replies += 1;
                if ctx.trace_enabled() {
                    ctx.trace(TraceEvent::CacheReply {
                        t: ctx.now(),
                        node: me,
                        origin,
                        req_id,
                        gateway,
                        place,
                    });
                }
                ctx.send(Some(prev), Tier::Sensor, PacketKind::Control, &buf[..]);
                ctx.put_scratch(buf);
                return;
            }
        }
        // Otherwise append ourselves in place and keep flooding.
        let mut buf = ctx.take_scratch();
        if wire::rreq_append_forward(frame, me, &mut buf).is_err() {
            ctx.put_scratch(buf);
            return;
        }
        self.stats.rreq_forwarded += 1;
        if ctx.trace_enabled() {
            ctx.trace(TraceEvent::RreqFlood {
                t: ctx.now(),
                node: me,
                origin,
                req_id,
                forwarded: true,
            });
        }
        self.queue_flood(ctx, &buf[..]);
        ctx.put_scratch(buf);
    }

    fn handle_rrep(&mut self, ctx: &mut Ctx<'_>, frame: &[u8]) {
        let Ok(RoutingMsgView::Rrep {
            origin,
            req_id,
            gateway,
            place,
            energy_pm,
            path,
        }) = RoutingMsgView::decode(frame)
        else {
            return;
        };
        let me = ctx.id();
        let Some(idx) = path.position(me.0) else {
            return;
        };
        // Install the suffix route (Property 1: suffixes of shortest paths
        // are shortest).
        let route = Route {
            gateway,
            place,
            relays: path.iter().skip(idx + 1).map(NodeId).collect(),
            energy_pm,
        };
        let route_hops = route.hops();
        self.table.upsert(route, false);
        if ctx.trace_enabled() {
            ctx.trace(TraceEvent::RouteInstall {
                t: ctx.now(),
                node: me,
                gateway,
                place,
                hops: route_hops,
                energy_pm,
            });
        }
        if idx == 0 {
            // We are the origin; the collection timer decides.
        } else {
            let remaining = path.len() - idx;
            let key = (origin, req_id, gateway);
            if self
                .seen_rrep
                .get(&key)
                .is_some_and(|&best| best <= remaining)
            {
                return;
            }
            self.seen_rrep.insert(key, remaining);
            let prev = NodeId(path.get(idx - 1).expect("idx > 0"));
            // Fold our own residual level into the bottleneck; the path
            // itself is relayed untouched, so patch the frame in place.
            let own_pm = (ctx.battery_fraction() * 1000.0) as u16;
            let mut buf = ctx.take_scratch();
            if wire::rrep_energy_patch(frame, energy_pm.min(own_pm), &mut buf).is_err() {
                ctx.put_scratch(buf);
                return;
            }
            self.stats.rrep_relayed += 1;
            ctx.send(Some(prev), Tier::Sensor, PacketKind::Control, &buf[..]);
            ctx.put_scratch(buf);
        }
    }

    fn handle_data(&mut self, ctx: &mut Ctx<'_>, frame: &[u8]) {
        let Ok(RoutingMsgView::Data {
            origin,
            msg_id,
            gateway,
            place,
            hops,
            ..
        }) = RoutingMsgView::decode(frame)
        else {
            return;
        };
        // Forward toward the gateway using our cached entry.
        let route = if place != NO_PLACE {
            self.table.by_place(place)
        } else {
            self.table.by_gateway(gateway)
        };
        let Some(route) = route else {
            self.stats.data_dropped += 1;
            return;
        };
        let next = if route.relays.is_empty() {
            gateway // final hop: the current occupant from the header
        } else {
            route.next_hop()
        };
        let mut buf = ctx.take_scratch();
        if wire::data_hops_patch(frame, hops + 1, &mut buf).is_err() {
            ctx.put_scratch(buf);
            return;
        }
        self.stats.data_forwarded += 1;
        if ctx.trace_enabled() {
            ctx.trace(TraceEvent::Forward {
                t: ctx.now(),
                node: ctx.id(),
                origin,
                msg_id,
                next: Some(next),
                hops: hops + 1,
            });
        }
        ctx.send(Some(next), Tier::Sensor, PacketKind::Data, &buf[..]);
        ctx.put_scratch(buf);
    }

    fn on_collect_timer(&mut self, ctx: &mut Ctx<'_>) {
        let Some((_, retries)) = self.discovering else {
            return;
        };
        if self.route_known() {
            self.discovering = None;
            let pending = std::mem::take(&mut self.pending);
            for msg in pending {
                self.send_data(ctx, msg);
            }
        } else if retries < self.cfg.max_retries {
            self.start_discovery(ctx, retries + 1);
        } else {
            self.discovering = None;
            self.stats.data_dropped += self.pending.len() as u64;
            self.pending.clear();
        }
    }

    /// Number of buffered, unsent messages (for tests).
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Record an announce for duplicate suppression; returns true if new.
    /// (Used by the MLR subclass-by-composition; SPR ignores announces.)
    fn announce_is_new(&mut self, gateway: NodeId, round: u32) -> bool {
        self.seen_announce.insert(gateway.0, u64::from(round))
    }
}

impl Behavior for SprSensor {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: &Packet) {
        // Header peek: classify + validate the frame from fixed offsets
        // so duplicate floods are dropped before any path materialises.
        let Ok(hdr) = wire::peek(&pkt.payload) else {
            return;
        };
        match hdr {
            PeekHeader::Rreq { origin, req_id } => {
                self.handle_rreq(ctx, &pkt.payload, origin, req_id)
            }
            PeekHeader::Rrep { .. } => self.handle_rrep(ctx, &pkt.payload),
            PeekHeader::Data { .. } => self.handle_data(ctx, &pkt.payload),
            PeekHeader::Announce { gateway, round, .. } => {
                // SPR has no notion of places; just keep the flood moving
                // so mixed deployments interoperate. The forwarded frame
                // is byte-identical, so re-flood the shared buffer.
                if self.announce_is_new(gateway, round) {
                    self.queue_flood(ctx, pkt.payload.clone());
                }
            }
            PeekHeader::Load { .. } => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        match tag {
            TIMER_COLLECT => self.on_collect_timer(ctx),
            TIMER_FLOOD => {
                if let Some(bytes) = self.flood_queue.pop_front() {
                    ctx.send(None, Tier::Sensor, PacketKind::Control, bytes);
                }
            }
            TIMER_ORIGINATE => self.originate(ctx),
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The gateway (WMG) side of SPR: answers RREQs, absorbs DATA, records
/// deliveries. Optionally hands delivered data to the mesh backbone (set
/// a relay callback target via [`SprGateway::set_uplink`]).
pub struct SprGateway {
    /// Feasible place this gateway currently occupies (NO_PLACE for SPR).
    pub place: u16,
    seen_rreq: SeenTable,
    /// Packets absorbed (per-gateway load, for E10).
    pub absorbed: u64,
    /// If set, delivered data is forwarded on the mesh tier to this node
    /// (a base station), exercising the full three-layer path.
    uplink: Option<NodeId>,
}

impl SprGateway {
    /// New gateway.
    pub fn new() -> Self {
        SprGateway {
            place: NO_PLACE,
            seen_rreq: SeenTable::new(),
            absorbed: 0,
            uplink: None,
        }
    }

    /// Boxed, for `World::add_node`.
    pub fn boxed() -> Box<dyn Behavior> {
        Box::new(Self::new())
    }

    /// Route delivered data up the mesh toward `base` (link-layer next
    /// hop is resolved by the mesh behaviour co-located on this node in
    /// the full architecture; here we unicast directly when in range).
    pub fn set_uplink(&mut self, base: NodeId) {
        self.uplink = Some(base);
    }

    /// Reset flood-dedup state (round boundary).
    pub fn reset_round(&mut self) {
        self.seen_rreq.clear();
    }
}

impl Default for SprGateway {
    fn default() -> Self {
        Self::new()
    }
}

impl Behavior for SprGateway {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: &Packet) {
        let Ok(hdr) = wire::peek(&pkt.payload) else {
            return;
        };
        match hdr {
            PeekHeader::Rreq { origin, req_id } => {
                // Step 3.2: first copy wins (the flood explores in BFS
                // order, so the first arrival walked a fewest-hop path).
                if !self.seen_rreq.insert(origin.0, req_id) {
                    return;
                }
                let Ok(RoutingMsgView::Rreq { path, .. }) = RoutingMsgView::decode(&pkt.payload)
                else {
                    return;
                };
                let Some(prev) = path.last() else { return };
                // Answer with the walked path verbatim — the reply path
                // is assembled straight from the RREQ's path bytes, no
                // intermediate clone.
                let mut buf = ctx.take_scratch();
                wire::encode_rrep_into(
                    &mut buf,
                    origin,
                    req_id,
                    ctx.id(),
                    self.place,
                    1000, // gateways are unconstrained (§5.3)
                    path,
                    None,
                    &[],
                );
                ctx.send(
                    Some(NodeId(prev)),
                    Tier::Sensor,
                    PacketKind::Control,
                    &buf[..],
                );
                ctx.put_scratch(buf);
            }
            PeekHeader::Data { .. } => {
                let Ok(RoutingMsgView::Data {
                    origin,
                    msg_id,
                    sent_at,
                    gateway,
                    hops,
                    payload_len,
                    ..
                }) = RoutingMsgView::decode(&pkt.payload)
                else {
                    return;
                };
                if gateway != ctx.id() {
                    return;
                }
                self.absorbed += 1;
                ctx.record_delivery(origin, msg_id, sent_at, hops);
                if let Some(base) = self.uplink {
                    let fwd = RoutingMsg::Data {
                        origin,
                        msg_id,
                        sent_at,
                        gateway: base,
                        place: NO_PLACE,
                        hops: hops + 1,
                        payload_len,
                    };
                    ctx.send(Some(base), Tier::Mesh, PacketKind::Data, fwd.encode());
                }
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmsn_sim::{NodeConfig, World, WorldConfig};
    use wmsn_util::Point;

    /// Test worlds use a 10 m sensor range so 10 m-spaced chains are
    /// genuine multi-hop topologies.
    fn short_range(seed: u64) -> WorldConfig {
        let mut c = WorldConfig::ideal(seed);
        c.sensor_phy.range_m = 10.0;
        c
    }

    /// Chain: S0 at x=0 … S4 at x=40, gateway at x=50, range 10.
    fn chain_world() -> (World, Vec<NodeId>, NodeId) {
        let mut w = World::new(short_range(42));
        let mut sensors = Vec::new();
        for i in 0..5 {
            sensors.push(w.add_node(
                NodeConfig::sensor(Point::new(i as f64 * 10.0, 0.0), 10.0),
                SprSensor::boxed(SprConfig::default()),
            ));
        }
        let gw = w.add_node(
            NodeConfig::gateway(Point::new(50.0, 0.0)),
            SprGateway::boxed(),
        );
        (w, sensors, gw)
    }

    #[test]
    fn discovery_then_delivery_over_a_chain() {
        let (mut w, sensors, _gw) = chain_world();
        w.start();
        w.with_behavior::<SprSensor, _>(sensors[0], |s, ctx| s.originate(ctx));
        w.run_until(2_000_000);
        let m = w.metrics();
        assert_eq!(m.originated, 1);
        assert_eq!(m.deliveries.len(), 1, "message must arrive");
        assert_eq!(
            m.deliveries[0].hops, 5,
            "S0 is 5 radio hops from the gateway"
        );
        assert_eq!(m.deliveries[0].source, sensors[0]);
        assert!((m.delivery_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn route_is_cached_after_discovery() {
        let (mut w, sensors, _gw) = chain_world();
        w.start();
        w.with_behavior::<SprSensor, _>(sensors[0], |s, ctx| s.originate(ctx));
        w.run_until(2_000_000);
        let control_after_discovery = w.metrics().sent_control;
        // Second message: no further control traffic.
        w.with_behavior::<SprSensor, _>(sensors[0], |s, ctx| s.originate(ctx));
        w.run_until(4_000_000);
        assert_eq!(w.metrics().sent_control, control_after_discovery);
        assert_eq!(w.metrics().deliveries.len(), 2);
    }

    #[test]
    fn intermediate_nodes_learn_routes_from_the_relay() {
        let (mut w, sensors, _gw) = chain_world();
        w.start();
        w.with_behavior::<SprSensor, _>(sensors[0], |s, ctx| s.originate(ctx));
        w.run_until(2_000_000);
        // Every sensor on the path now has a cached route with the right
        // hop count (Property 1: suffix shortest paths).
        for (i, &s) in sensors.iter().enumerate() {
            let hops = w
                .behavior_as::<SprSensor>(s)
                .unwrap()
                .table
                .best()
                .map(|r| r.hops());
            assert_eq!(hops, Some(5 - i as u32), "sensor {i}");
        }
    }

    #[test]
    fn cached_nodes_answer_queries_without_reflooding() {
        let (mut w, sensors, _gw) = chain_world();
        w.start();
        w.with_behavior::<SprSensor, _>(sensors[0], |s, ctx| s.originate(ctx));
        w.run_until(2_000_000);
        // S1's next discovery should be answered by a neighbour's cache
        // (S0 or S2), not by a fresh flood reaching the gateway.
        // Force S1 to forget its own route first.
        w.with_behavior::<SprSensor, _>(sensors[1], |s, ctx| {
            s.table.clear();
            s.seen_rreq.clear();
            s.originate(ctx);
        });
        w.run_until(4_000_000);
        let m = w.metrics();
        assert_eq!(m.deliveries.len(), 2);
        let repliers: u64 = sensors
            .iter()
            .map(|&s| w.behavior_as::<SprSensor>(s).unwrap().stats.cache_replies)
            .sum();
        assert!(repliers >= 1, "someone must have answered from cache");
    }

    #[test]
    fn source_picks_the_nearest_of_two_gateways() {
        // G_far — S0 S1 S2 — G_near(2 hops from S1? build: sensors at
        // 0,10,20; gateways at -10 (3 hops from S2) and 30 (1 hop from S2).
        let mut w = World::new(short_range(1));
        let mut sensors = Vec::new();
        for i in 0..3 {
            sensors.push(w.add_node(
                NodeConfig::sensor(Point::new(i as f64 * 10.0, 0.0), 10.0),
                SprSensor::boxed(SprConfig::default()),
            ));
        }
        let g_far = w.add_node(
            NodeConfig::gateway(Point::new(-10.0, 0.0)),
            SprGateway::boxed(),
        );
        let g_near = w.add_node(
            NodeConfig::gateway(Point::new(30.0, 0.0)),
            SprGateway::boxed(),
        );
        w.start();
        w.with_behavior::<SprSensor, _>(sensors[2], |s, ctx| s.originate(ctx));
        w.run_until(2_000_000);
        let m = w.metrics();
        assert_eq!(m.deliveries.len(), 1);
        assert_eq!(m.deliveries[0].destination, g_near);
        assert_eq!(m.deliveries[0].hops, 1);
        let _ = g_far;
    }

    #[test]
    fn reset_round_forces_rediscovery() {
        let (mut w, sensors, _gw) = chain_world();
        w.start();
        w.with_behavior::<SprSensor, _>(sensors[0], |s, ctx| s.originate(ctx));
        w.run_until(2_000_000);
        let control1 = w.metrics().sent_control;
        for &s in &sensors {
            w.with_behavior::<SprSensor, _>(s, |b, _| b.reset_round());
        }
        w.with_behavior::<SprGateway, _>(_gw, |g, _| g.reset_round());
        w.with_behavior::<SprSensor, _>(sensors[0], |s, ctx| s.originate(ctx));
        w.run_until(4_000_000);
        assert!(
            w.metrics().sent_control > control1,
            "reset must trigger a new flood"
        );
        assert_eq!(w.metrics().deliveries.len(), 2);
    }

    #[test]
    fn unreachable_source_gives_up_after_retries() {
        let mut w = World::new(short_range(1));
        let lonely = w.add_node(
            NodeConfig::sensor(Point::new(0.0, 0.0), 10.0),
            SprSensor::boxed(SprConfig::default()),
        );
        let _gw = w.add_node(
            NodeConfig::gateway(Point::new(500.0, 0.0)),
            SprGateway::boxed(),
        );
        w.start();
        w.with_behavior::<SprSensor, _>(lonely, |s, ctx| s.originate(ctx));
        w.run_until(5_000_000);
        let s = w.behavior_as::<SprSensor>(lonely).unwrap();
        assert_eq!(s.pending_len(), 0, "buffer must be drained");
        assert!(s.stats.data_dropped >= 1);
        assert_eq!(w.metrics().deliveries.len(), 0);
        // 1 original + max_retries floods.
        assert_eq!(
            s.stats.rreq_originated as u32,
            1 + SprConfig::default().max_retries
        );
    }

    #[test]
    fn duplicate_rreqs_are_suppressed() {
        let (mut w, sensors, _gw) = chain_world();
        w.start();
        w.with_behavior::<SprSensor, _>(sensors[0], |s, ctx| s.originate(ctx));
        w.run_until(2_000_000);
        // In a 5-chain each intermediate forwards the flood at most once.
        for &s in &sensors[1..] {
            let st = w.behavior_as::<SprSensor>(s).unwrap().stats;
            assert!(st.rreq_forwarded <= 1, "node re-flooded more than once");
        }
    }

    #[test]
    fn gateway_counts_absorbed_load() {
        let (mut w, sensors, gw) = chain_world();
        w.start();
        for _ in 0..3 {
            w.with_behavior::<SprSensor, _>(sensors[4], |s, ctx| s.originate(ctx));
            w.run_for(1_000_000);
        }
        assert_eq!(w.behavior_as::<SprGateway>(gw).unwrap().absorbed, 3);
    }

    #[test]
    fn delivery_latency_is_positive_and_bounded() {
        let (mut w, sensors, _gw) = chain_world();
        w.start();
        w.with_behavior::<SprSensor, _>(sensors[0], |s, ctx| s.originate(ctx));
        w.run_until(2_000_000);
        let d = &w.metrics().deliveries[0];
        assert!(d.latency() > 0);
        assert!(d.latency() < 2_000_000);
    }
}
