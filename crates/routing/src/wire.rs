//! Wire formats shared by SPR and MLR (the *unsecured* protocols; SecMLR
//! wraps these shapes in the crypto envelope in `wmsn-secure`).
//!
//! Five message types cover §5:
//!
//! * `Rreq` — routing query, flooded; carries the path walked so far
//!   (each forwarder appends itself, §5.2 step 3.1).
//! * `Rrep` — routing response, unicast back along the reversed path;
//!   carries the complete sensor path and the answering gateway.
//! * `Data` — application data; carries origin, message id, origination
//!   time and a hop counter for the metrics ledger, the destination
//!   gateway/place, and payload padding so frames have realistic size.
//! * `Announce` — a (moved) gateway advertising its place at round start
//!   (§5.3 step 2), flooded through the sensor tier.
//! * `Load` — a gateway advertising its recent traffic load, used by the
//!   §4.3 load-balance extension.
//!
//! # Frame layout (see DESIGN.md, "Wire layer")
//!
//! Every frame opens with a fixed-offset header — tag at byte 0, the
//! originating node id at bytes 1..5, and (for flooded kinds) the
//! originator-unique sequence at bytes 5..13 — so duplicate suppression
//! can run off [`peek`] without materialising any variable-length field.
//! The variable-length `path` is always the **trailing** field, which is
//! what makes [`rreq_append_forward`] a memcpy + 2-byte count patch +
//! 4-byte append instead of decode→clone→push→re-encode:
//!
//! ```text
//! Rreq     | 1 tag | 4 origin | 8 req_id | 2 wc | 2·wc wanted | 2 pc | 4·pc path |
//! Rrep     | 1 tag | 4 origin | 8 req_id | 4 gateway | 2 place | 2 energy | 2 pc | 4·pc path |
//! Data     | 1 tag | 4 origin | 8 msg_id | 8 sent_at | 4 gateway | 2 place | 4 hops | 2 pl | pl pad |
//! Announce | 1 tag | 4 gateway | 2 place | 4 round |
//! Load     | 1 tag | 4 gateway | 4 load | 4 seq |
//! ```
//!
//! Two decode surfaces share these layouts: the borrowed
//! [`RoutingMsgView`] (list fields are `&[u8]`-backed views over the
//! received frame — per-hop handling allocates nothing) and the owned
//! [`RoutingMsg`] (for originators and tests), bridged by
//! [`RoutingMsgView::to_owned`].

use wmsn_util::codec::{DecodeError, IdListView, Reader, U16ListView, Writer};
use wmsn_util::NodeId;

/// Maximum path length accepted by decoders (sanity bound; fields in the
/// experiments never exceed a few tens of hops).
pub const MAX_PATH: usize = 512;

/// Sentinel for "no feasible place" (SPR runs placeless).
pub const NO_PLACE: u16 = u16::MAX;

const TAG_RREQ: u8 = 1;
const TAG_RREP: u8 = 2;
const TAG_DATA: u8 = 3;
const TAG_ANNOUNCE: u8 = 4;
const TAG_LOAD: u8 = 5;

// Fixed offsets of the peek header and the patchable fields. The tag is
// byte 0; `origin`/`gateway` always sits at 1..5 and the flood sequence
// (req_id / msg_id) at 5..13.
const OFF_ID: usize = 1;
const OFF_SEQ: usize = 5;
const RREQ_WANTED_COUNT: usize = 13;
const RREQ_WANTED: usize = 15;
const RREP_GATEWAY: usize = 13;
const RREP_ENERGY: usize = 19;
const RREP_PATH_COUNT: usize = 21;
const DATA_GATEWAY: usize = 21;
const DATA_HOPS: usize = 27;
const DATA_PAYLOAD_LEN: usize = 31;
const DATA_HEADER: usize = 33;
const ANNOUNCE_LEN: usize = 11;
const LOAD_LEN: usize = 13;

/// A routing-layer message (owned representation).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RoutingMsg {
    /// Flooded routing query.
    Rreq {
        /// Query originator.
        origin: NodeId,
        /// Originator-unique query id (for duplicate suppression).
        req_id: u64,
        /// Nodes traversed so far, starting with `origin`.
        path: Vec<NodeId>,
        /// Feasible places the originator is missing entries for; empty
        /// means "any route welcome" (SPR). Intermediates may answer from
        /// cache only for wanted places — otherwise a cached reply for an
        /// old place would suppress discovery of a newly-occupied one.
        wanted: Vec<u16>,
    },
    /// Routing response, relayed back toward `origin`.
    Rrep {
        /// Query originator this answers.
        origin: NodeId,
        /// Query id this answers.
        req_id: u64,
        /// Responding gateway.
        gateway: NodeId,
        /// Feasible place of the gateway ([`NO_PLACE`] under SPR).
        place: u16,
        /// Residual battery (per mille of capacity) of the weakest relay
        /// the response has passed through so far — each relay folds its
        /// own level in, giving the source the path's energy bottleneck
        /// (the §5.3 balance objective made routable).
        energy_pm: u16,
        /// Full sensor path `origin … last-sensor` (gateway excluded).
        path: Vec<NodeId>,
    },
    /// Application data.
    Data {
        /// Source sensor.
        origin: NodeId,
        /// Source-unique message id.
        msg_id: u64,
        /// Origination timestamp (µs).
        sent_at: u64,
        /// Destination gateway.
        gateway: NodeId,
        /// Destination place ([`NO_PLACE`] under SPR).
        place: u16,
        /// Radio hops taken so far (incremented by each forwarder).
        hops: u32,
        /// Application payload size; encoded as that many padding bytes so
        /// the energy/latency cost of the frame is realistic.
        payload_len: u16,
    },
    /// Gateway place announcement (MLR round start).
    Announce {
        /// The gateway announcing.
        gateway: NodeId,
        /// Its (new) feasible place.
        place: u16,
        /// Round number, for duplicate suppression.
        round: u32,
    },
    /// Gateway load advertisement (§4.3 extension).
    Load {
        /// The gateway advertising.
        gateway: NodeId,
        /// Packets absorbed during the current window.
        load: u32,
        /// Advertisement sequence number.
        seq: u32,
    },
}

/// Borrowed decode of a routing frame: list fields are zero-copy views
/// over the received bytes, so per-hop handling of RREQ/RREP/Announce/
/// Load allocates nothing. Bridge to the owned [`RoutingMsg`] with
/// [`RoutingMsgView::to_owned`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RoutingMsgView<'a> {
    /// Flooded routing query (see [`RoutingMsg::Rreq`]).
    Rreq {
        /// Query originator.
        origin: NodeId,
        /// Originator-unique query id.
        req_id: u64,
        /// Nodes traversed so far (borrowed).
        path: IdListView<'a>,
        /// Wanted feasible places (borrowed).
        wanted: U16ListView<'a>,
    },
    /// Routing response (see [`RoutingMsg::Rrep`]).
    Rrep {
        /// Query originator this answers.
        origin: NodeId,
        /// Query id this answers.
        req_id: u64,
        /// Responding gateway.
        gateway: NodeId,
        /// Feasible place of the gateway.
        place: u16,
        /// Path energy bottleneck so far (per mille).
        energy_pm: u16,
        /// Full sensor path (borrowed).
        path: IdListView<'a>,
    },
    /// Application data (see [`RoutingMsg::Data`]).
    Data {
        /// Source sensor.
        origin: NodeId,
        /// Source-unique message id.
        msg_id: u64,
        /// Origination timestamp (µs).
        sent_at: u64,
        /// Destination gateway.
        gateway: NodeId,
        /// Destination place.
        place: u16,
        /// Radio hops taken so far.
        hops: u32,
        /// Application payload size.
        payload_len: u16,
    },
    /// Gateway place announcement (see [`RoutingMsg::Announce`]).
    Announce {
        /// The gateway announcing.
        gateway: NodeId,
        /// Its (new) feasible place.
        place: u16,
        /// Round number.
        round: u32,
    },
    /// Gateway load advertisement (see [`RoutingMsg::Load`]).
    Load {
        /// The gateway advertising.
        gateway: NodeId,
        /// Packets absorbed during the current window.
        load: u32,
        /// Advertisement sequence number.
        seq: u32,
    },
}

/// Fixed-offset header of a routing frame, extracted by [`peek`]. Carries
/// exactly the fields duplicate suppression and frame classification
/// need, with no variable-length field materialised.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PeekHeader {
    /// A structurally valid RREQ.
    Rreq {
        /// Query originator.
        origin: NodeId,
        /// Originator-unique query id.
        req_id: u64,
    },
    /// A structurally valid RREP.
    Rrep {
        /// Query originator this answers.
        origin: NodeId,
        /// Query id this answers.
        req_id: u64,
        /// Responding gateway.
        gateway: NodeId,
    },
    /// A structurally valid Data frame.
    Data {
        /// Source sensor.
        origin: NodeId,
        /// Source-unique message id.
        msg_id: u64,
        /// Destination gateway.
        gateway: NodeId,
    },
    /// A structurally valid Announce.
    Announce {
        /// The gateway announcing.
        gateway: NodeId,
        /// Its (new) feasible place.
        place: u16,
        /// Round number.
        round: u32,
    },
    /// A structurally valid Load advertisement.
    Load {
        /// The gateway advertising.
        gateway: NodeId,
        /// Packets absorbed during the current window.
        load: u32,
        /// Advertisement sequence number.
        seq: u32,
    },
}

#[inline]
fn rd_u16(b: &[u8], off: usize) -> Result<u16, DecodeError> {
    match b.get(off..off + 2) {
        Some(s) => Ok(u16::from_le_bytes([s[0], s[1]])),
        None => Err(DecodeError::Truncated {
            needed: off + 2,
            remaining: b.len(),
        }),
    }
}

#[inline]
fn rd_u32(b: &[u8], off: usize) -> Result<u32, DecodeError> {
    match b.get(off..off + 4) {
        Some(s) => Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]])),
        None => Err(DecodeError::Truncated {
            needed: off + 4,
            remaining: b.len(),
        }),
    }
}

#[inline]
fn rd_u64(b: &[u8], off: usize) -> Result<u64, DecodeError> {
    match b.get(off..off + 8) {
        Some(s) => {
            let mut a = [0u8; 8];
            a.copy_from_slice(s);
            Ok(u64::from_le_bytes(a))
        }
        None => Err(DecodeError::Truncated {
            needed: off + 8,
            remaining: b.len(),
        }),
    }
}

#[inline]
fn expect_len(b: &[u8], total: usize) -> Result<(), DecodeError> {
    if b.len() < total {
        Err(DecodeError::Truncated {
            needed: total,
            remaining: b.len(),
        })
    } else if b.len() > total {
        Err(DecodeError::TrailingBytes(b.len() - total))
    } else {
        Ok(())
    }
}

/// Read the fixed-offset header of a routing frame *and fully validate
/// its structure* — length prefixes within bounds, total length exact —
/// without touching any variable-length field. `peek(b).is_ok()` is
/// equivalent to `RoutingMsg::decode(b).is_ok()` (every fixed-size field
/// admits all byte patterns), so a frame accepted here is safe to hand
/// to the in-place forwarders below, and duplicate suppression keyed on
/// a peeked header never records a malformed frame as seen.
pub fn peek(bytes: &[u8]) -> Result<PeekHeader, DecodeError> {
    let tag = *bytes.first().ok_or(DecodeError::Truncated {
        needed: 1,
        remaining: 0,
    })?;
    match tag {
        TAG_RREQ => {
            let wc = rd_u16(bytes, RREQ_WANTED_COUNT)? as usize;
            if wc > MAX_PATH {
                return Err(DecodeError::LengthOutOfRange(wc));
            }
            let pc_off = RREQ_WANTED + 2 * wc;
            let pc = rd_u16(bytes, pc_off)? as usize;
            if pc > MAX_PATH {
                return Err(DecodeError::LengthOutOfRange(pc));
            }
            expect_len(bytes, pc_off + 2 + 4 * pc)?;
            Ok(PeekHeader::Rreq {
                origin: NodeId(rd_u32(bytes, OFF_ID)?),
                req_id: rd_u64(bytes, OFF_SEQ)?,
            })
        }
        TAG_RREP => {
            let pc = rd_u16(bytes, RREP_PATH_COUNT)? as usize;
            if pc > MAX_PATH {
                return Err(DecodeError::LengthOutOfRange(pc));
            }
            expect_len(bytes, RREP_PATH_COUNT + 2 + 4 * pc)?;
            Ok(PeekHeader::Rrep {
                origin: NodeId(rd_u32(bytes, OFF_ID)?),
                req_id: rd_u64(bytes, OFF_SEQ)?,
                gateway: NodeId(rd_u32(bytes, RREP_GATEWAY)?),
            })
        }
        TAG_DATA => {
            let pl = rd_u16(bytes, DATA_PAYLOAD_LEN)? as usize;
            expect_len(bytes, DATA_HEADER + pl)?;
            Ok(PeekHeader::Data {
                origin: NodeId(rd_u32(bytes, OFF_ID)?),
                msg_id: rd_u64(bytes, OFF_SEQ)?,
                gateway: NodeId(rd_u32(bytes, DATA_GATEWAY)?),
            })
        }
        TAG_ANNOUNCE => {
            expect_len(bytes, ANNOUNCE_LEN)?;
            Ok(PeekHeader::Announce {
                gateway: NodeId(rd_u32(bytes, OFF_ID)?),
                place: rd_u16(bytes, OFF_ID + 4)?,
                round: rd_u32(bytes, OFF_ID + 6)?,
            })
        }
        TAG_LOAD => {
            expect_len(bytes, LOAD_LEN)?;
            Ok(PeekHeader::Load {
                gateway: NodeId(rd_u32(bytes, OFF_ID)?),
                load: rd_u32(bytes, OFF_ID + 4)?,
                seq: rd_u32(bytes, OFF_ID + 8)?,
            })
        }
        t => Err(DecodeError::BadTag(t)),
    }
}

/// Build the forwarded copy of an RREQ into `out` (a reusable scratch
/// buffer) without decoding: memcpy the frame, bump the trailing path
/// count, append `me`. Satellite invariant: everything before the path
/// count — including the `wanted` list — is copied verbatim, never
/// re-serialised. Fails on structurally invalid frames, non-RREQ tags,
/// or a path already at [`MAX_PATH`].
pub fn rreq_append_forward(frame: &[u8], me: NodeId, out: &mut Vec<u8>) -> Result<(), DecodeError> {
    if !matches!(peek(frame)?, PeekHeader::Rreq { .. }) {
        return Err(DecodeError::BadTag(frame[0]));
    }
    let wc = rd_u16(frame, RREQ_WANTED_COUNT)? as usize;
    let pc_off = RREQ_WANTED + 2 * wc;
    let pc = rd_u16(frame, pc_off)?;
    if pc as usize + 1 > MAX_PATH {
        return Err(DecodeError::LengthOutOfRange(pc as usize + 1));
    }
    out.clear();
    out.reserve(frame.len() + 4);
    out.extend_from_slice(frame);
    out[pc_off..pc_off + 2].copy_from_slice(&(pc + 1).to_le_bytes());
    out.extend_from_slice(&me.0.to_le_bytes());
    Ok(())
}

/// Build the relayed copy of an RREP into `out`: memcpy the frame and
/// patch the energy-bottleneck field. The path is untouched (relays do
/// not append on the return trip). Fails on non-RREP frames.
pub fn rrep_energy_patch(
    frame: &[u8],
    energy_pm: u16,
    out: &mut Vec<u8>,
) -> Result<(), DecodeError> {
    if !matches!(peek(frame)?, PeekHeader::Rrep { .. }) {
        return Err(DecodeError::BadTag(frame[0]));
    }
    out.clear();
    out.extend_from_slice(frame);
    out[RREP_ENERGY..RREP_ENERGY + 2].copy_from_slice(&energy_pm.to_le_bytes());
    Ok(())
}

/// Build the forwarded copy of a Data frame into `out`: memcpy the frame
/// and overwrite the hop counter. Fails on non-Data frames.
pub fn data_hops_patch(frame: &[u8], hops: u32, out: &mut Vec<u8>) -> Result<(), DecodeError> {
    if !matches!(peek(frame)?, PeekHeader::Data { .. }) {
        return Err(DecodeError::BadTag(frame[0]));
    }
    out.clear();
    out.extend_from_slice(frame);
    out[DATA_HOPS..DATA_HOPS + 4].copy_from_slice(&hops.to_le_bytes());
    Ok(())
}

/// Encode an RREP into `out` whose path is `prefix ++ [me]? ++ relays`,
/// copying the prefix bytes straight out of the triggering RREQ — no
/// intermediate `Vec<NodeId>` clone (the gateway direct-answer and the
/// sensor cached-answer paths of `handle_rreq`).
#[allow(clippy::too_many_arguments)]
pub fn encode_rrep_into(
    out: &mut Vec<u8>,
    origin: NodeId,
    req_id: u64,
    gateway: NodeId,
    place: u16,
    energy_pm: u16,
    prefix: IdListView<'_>,
    me: Option<NodeId>,
    relays: &[NodeId],
) {
    let count = prefix.len() + usize::from(me.is_some()) + relays.len();
    debug_assert!(count <= MAX_PATH);
    out.clear();
    out.reserve(RREP_PATH_COUNT + 2 + 4 * count);
    out.push(TAG_RREP);
    out.extend_from_slice(&origin.0.to_le_bytes());
    out.extend_from_slice(&req_id.to_le_bytes());
    out.extend_from_slice(&gateway.0.to_le_bytes());
    out.extend_from_slice(&place.to_le_bytes());
    out.extend_from_slice(&energy_pm.to_le_bytes());
    out.extend_from_slice(&(count as u16).to_le_bytes());
    out.extend_from_slice(prefix.as_bytes());
    if let Some(id) = me {
        out.extend_from_slice(&id.0.to_le_bytes());
    }
    for r in relays {
        out.extend_from_slice(&r.0.to_le_bytes());
    }
}

/// Whether the conceptual path `prefix ++ [me] ++ relays` visits every
/// node at most once. Allocation-free pairwise scan — paths are tens of
/// entries, so O(n²) beats building a `HashSet` per candidate reply.
pub fn path_with_suffix_is_unique(prefix: IdListView<'_>, me: NodeId, relays: &[NodeId]) -> bool {
    let plen = prefix.len();
    let n = plen + 1 + relays.len();
    let at = |i: usize| -> u32 {
        if i < plen {
            prefix.get(i).expect("index < len")
        } else if i == plen {
            me.0
        } else {
            relays[i - plen - 1].0
        }
    };
    for i in 0..n {
        let v = at(i);
        for j in i + 1..n {
            if v == at(j) {
                return false;
            }
        }
    }
    true
}

fn write_ids(w: &mut Writer, ids: &[NodeId]) {
    let raw: Vec<u32> = ids.iter().map(|n| n.0).collect();
    w.id_list(&raw);
}

impl<'a> RoutingMsgView<'a> {
    /// Borrowed decode from bytes — list fields stay views over `bytes`.
    pub fn decode(bytes: &'a [u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let tag = r.u8()?;
        let msg = match tag {
            TAG_RREQ => {
                let origin = NodeId(r.u32()?);
                let req_id = r.u64()?;
                let wanted = r.u16_list_view(MAX_PATH)?;
                let path = r.id_list_view(MAX_PATH)?;
                RoutingMsgView::Rreq {
                    origin,
                    req_id,
                    path,
                    wanted,
                }
            }
            TAG_RREP => RoutingMsgView::Rrep {
                origin: NodeId(r.u32()?),
                req_id: r.u64()?,
                gateway: NodeId(r.u32()?),
                place: r.u16()?,
                energy_pm: r.u16()?,
                path: r.id_list_view(MAX_PATH)?,
            },
            TAG_DATA => {
                let origin = NodeId(r.u32()?);
                let msg_id = r.u64()?;
                let sent_at = r.u64()?;
                let gateway = NodeId(r.u32()?);
                let place = r.u16()?;
                let hops = r.u32()?;
                let payload_len = r.u16()?;
                let _pad = r.raw(payload_len as usize)?;
                RoutingMsgView::Data {
                    origin,
                    msg_id,
                    sent_at,
                    gateway,
                    place,
                    hops,
                    payload_len,
                }
            }
            TAG_ANNOUNCE => RoutingMsgView::Announce {
                gateway: NodeId(r.u32()?),
                place: r.u16()?,
                round: r.u32()?,
            },
            TAG_LOAD => RoutingMsgView::Load {
                gateway: NodeId(r.u32()?),
                load: r.u32()?,
                seq: r.u32()?,
            },
            t => return Err(DecodeError::BadTag(t)),
        };
        r.finish()?;
        Ok(msg)
    }

    /// Materialise the owned [`RoutingMsg`].
    pub fn to_owned(&self) -> RoutingMsg {
        match *self {
            RoutingMsgView::Rreq {
                origin,
                req_id,
                path,
                wanted,
            } => RoutingMsg::Rreq {
                origin,
                req_id,
                path: path.iter().map(NodeId).collect(),
                wanted: wanted.to_vec(),
            },
            RoutingMsgView::Rrep {
                origin,
                req_id,
                gateway,
                place,
                energy_pm,
                path,
            } => RoutingMsg::Rrep {
                origin,
                req_id,
                gateway,
                place,
                energy_pm,
                path: path.iter().map(NodeId).collect(),
            },
            RoutingMsgView::Data {
                origin,
                msg_id,
                sent_at,
                gateway,
                place,
                hops,
                payload_len,
            } => RoutingMsg::Data {
                origin,
                msg_id,
                sent_at,
                gateway,
                place,
                hops,
                payload_len,
            },
            RoutingMsgView::Announce {
                gateway,
                place,
                round,
            } => RoutingMsg::Announce {
                gateway,
                place,
                round,
            },
            RoutingMsgView::Load { gateway, load, seq } => RoutingMsg::Load { gateway, load, seq },
        }
    }
}

impl RoutingMsg {
    /// Encode to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(32);
        match self {
            RoutingMsg::Rreq {
                origin,
                req_id,
                path,
                wanted,
            } => {
                w.u8(TAG_RREQ).u32(origin.0).u64(*req_id);
                w.u16(wanted.len() as u16);
                for &p in wanted {
                    w.u16(p);
                }
                // Path last: forwarders append in place (see module docs).
                write_ids(&mut w, path);
            }
            RoutingMsg::Rrep {
                origin,
                req_id,
                gateway,
                place,
                energy_pm,
                path,
            } => {
                w.u8(TAG_RREP)
                    .u32(origin.0)
                    .u64(*req_id)
                    .u32(gateway.0)
                    .u16(*place)
                    .u16(*energy_pm);
                write_ids(&mut w, path);
            }
            RoutingMsg::Data {
                origin,
                msg_id,
                sent_at,
                gateway,
                place,
                hops,
                payload_len,
            } => {
                w.u8(TAG_DATA)
                    .u32(origin.0)
                    .u64(*msg_id)
                    .u64(*sent_at)
                    .u32(gateway.0)
                    .u16(*place)
                    .u32(*hops)
                    .u16(*payload_len);
                // Padding bytes standing in for the sensed payload.
                for _ in 0..*payload_len {
                    w.u8(0);
                }
            }
            RoutingMsg::Announce {
                gateway,
                place,
                round,
            } => {
                w.u8(TAG_ANNOUNCE).u32(gateway.0).u16(*place).u32(*round);
            }
            RoutingMsg::Load { gateway, load, seq } => {
                w.u8(TAG_LOAD).u32(gateway.0).u32(*load).u32(*seq);
            }
        }
        w.into_bytes()
    }

    /// Decode from bytes (owned; delegates to the borrowed decoder).
    pub fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        RoutingMsgView::decode(bytes).map(|v| v.to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: RoutingMsg) {
        let bytes = msg.encode();
        assert_eq!(RoutingMsg::decode(&bytes).unwrap(), msg);
    }

    fn sample_rreq() -> RoutingMsg {
        RoutingMsg::Rreq {
            origin: NodeId(7),
            req_id: 99,
            path: vec![NodeId(7), NodeId(3), NodeId(12)],
            wanted: vec![2, 5],
        }
    }

    #[test]
    fn rreq_roundtrip() {
        roundtrip(sample_rreq());
    }

    #[test]
    fn rrep_roundtrip() {
        roundtrip(RoutingMsg::Rrep {
            origin: NodeId(7),
            req_id: 99,
            gateway: NodeId(100),
            place: 4,
            energy_pm: 512,
            path: vec![NodeId(7), NodeId(3)],
        });
    }

    #[test]
    fn data_roundtrip_and_padding() {
        let msg = RoutingMsg::Data {
            origin: NodeId(2),
            msg_id: 5,
            sent_at: 123_456,
            gateway: NodeId(50),
            place: NO_PLACE,
            hops: 3,
            payload_len: 24,
        };
        let bytes = msg.encode();
        // 1 tag + 4 + 8 + 8 + 4 + 2 + 4 + 2 + 24 padding = 57.
        assert_eq!(bytes.len(), 57);
        roundtrip(msg);
    }

    #[test]
    fn announce_and_load_roundtrip() {
        roundtrip(RoutingMsg::Announce {
            gateway: NodeId(9),
            place: 2,
            round: 14,
        });
        roundtrip(RoutingMsg::Load {
            gateway: NodeId(9),
            load: 512,
            seq: 3,
        });
    }

    #[test]
    fn empty_path_roundtrips() {
        roundtrip(RoutingMsg::Rreq {
            origin: NodeId(0),
            req_id: 0,
            path: vec![],
            wanted: vec![],
        });
    }

    #[test]
    fn bad_tag_rejected() {
        assert!(matches!(
            RoutingMsg::decode(&[0xEE]),
            Err(DecodeError::BadTag(0xEE))
        ));
    }

    #[test]
    fn truncated_rejected() {
        let bytes = RoutingMsg::Announce {
            gateway: NodeId(9),
            place: 2,
            round: 14,
        }
        .encode();
        assert!(RoutingMsg::decode(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = RoutingMsg::Load {
            gateway: NodeId(9),
            load: 1,
            seq: 1,
        }
        .encode();
        bytes.push(0);
        assert!(RoutingMsg::decode(&bytes).is_err());
    }

    #[test]
    fn oversized_path_rejected() {
        let msg = RoutingMsg::Rreq {
            origin: NodeId(0),
            req_id: 0,
            path: (0..MAX_PATH as u32 + 1).map(NodeId).collect(),
            wanted: vec![],
        };
        let bytes = msg.encode();
        assert!(RoutingMsg::decode(&bytes).is_err());
    }

    #[test]
    fn view_decode_matches_owned_for_all_variants() {
        let msgs = [
            sample_rreq(),
            RoutingMsg::Rrep {
                origin: NodeId(1),
                req_id: 8,
                gateway: NodeId(44),
                place: 0,
                energy_pm: 999,
                path: vec![NodeId(1), NodeId(2), NodeId(3)],
            },
            RoutingMsg::Data {
                origin: NodeId(2),
                msg_id: 5,
                sent_at: 77,
                gateway: NodeId(50),
                place: 3,
                hops: 2,
                payload_len: 8,
            },
            RoutingMsg::Announce {
                gateway: NodeId(9),
                place: 2,
                round: 14,
            },
            RoutingMsg::Load {
                gateway: NodeId(9),
                load: 512,
                seq: 3,
            },
        ];
        for msg in msgs {
            let bytes = msg.encode();
            let view = RoutingMsgView::decode(&bytes).unwrap();
            assert_eq!(view.to_owned(), msg);
        }
    }

    #[test]
    fn peek_matches_decode_fields() {
        let bytes = sample_rreq().encode();
        assert_eq!(
            peek(&bytes).unwrap(),
            PeekHeader::Rreq {
                origin: NodeId(7),
                req_id: 99
            }
        );

        let bytes = RoutingMsg::Rrep {
            origin: NodeId(7),
            req_id: 99,
            gateway: NodeId(100),
            place: 4,
            energy_pm: 512,
            path: vec![NodeId(7)],
        }
        .encode();
        assert_eq!(
            peek(&bytes).unwrap(),
            PeekHeader::Rrep {
                origin: NodeId(7),
                req_id: 99,
                gateway: NodeId(100)
            }
        );

        let bytes = RoutingMsg::Data {
            origin: NodeId(2),
            msg_id: 5,
            sent_at: 77,
            gateway: NodeId(50),
            place: 3,
            hops: 2,
            payload_len: 8,
        }
        .encode();
        assert_eq!(
            peek(&bytes).unwrap(),
            PeekHeader::Data {
                origin: NodeId(2),
                msg_id: 5,
                gateway: NodeId(50)
            }
        );

        let bytes = RoutingMsg::Announce {
            gateway: NodeId(9),
            place: 2,
            round: 14,
        }
        .encode();
        assert_eq!(
            peek(&bytes).unwrap(),
            PeekHeader::Announce {
                gateway: NodeId(9),
                place: 2,
                round: 14
            }
        );

        let bytes = RoutingMsg::Load {
            gateway: NodeId(9),
            load: 512,
            seq: 3,
        }
        .encode();
        assert_eq!(
            peek(&bytes).unwrap(),
            PeekHeader::Load {
                gateway: NodeId(9),
                load: 512,
                seq: 3
            }
        );
    }

    #[test]
    fn peek_accepts_exactly_what_decode_accepts() {
        // Every truncation prefix of a valid frame must be rejected by
        // BOTH surfaces (never a panic or an over-read).
        let bytes = sample_rreq().encode();
        for cut in 0..bytes.len() {
            assert!(peek(&bytes[..cut]).is_err(), "peek accepted prefix {cut}");
            assert!(
                RoutingMsg::decode(&bytes[..cut]).is_err(),
                "decode accepted prefix {cut}"
            );
        }
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(peek(&extended).is_err());
        assert!(RoutingMsg::decode(&extended).is_err());
    }

    #[test]
    fn append_forward_equals_decode_push_reencode() {
        let frame = sample_rreq().encode();
        let mut out = Vec::new();
        rreq_append_forward(&frame, NodeId(55), &mut out).unwrap();

        let RoutingMsg::Rreq {
            origin,
            req_id,
            mut path,
            wanted,
        } = RoutingMsg::decode(&frame).unwrap()
        else {
            unreachable!()
        };
        path.push(NodeId(55));
        let expected = RoutingMsg::Rreq {
            origin,
            req_id,
            path,
            wanted,
        }
        .encode();
        assert_eq!(out, expected);
        // Satellite invariant: the wanted region is copied verbatim,
        // byte-for-byte — never re-serialised on forward.
        assert_eq!(&out[..RREQ_WANTED + 4], &frame[..RREQ_WANTED + 4]);
    }

    #[test]
    fn append_forward_rejects_full_or_malformed() {
        let full = RoutingMsg::Rreq {
            origin: NodeId(0),
            req_id: 0,
            path: (0..MAX_PATH as u32).map(NodeId).collect(),
            wanted: vec![],
        }
        .encode();
        let mut out = Vec::new();
        assert!(rreq_append_forward(&full, NodeId(9), &mut out).is_err());
        assert!(rreq_append_forward(&full[..10], NodeId(9), &mut out).is_err());
        let not_rreq = RoutingMsg::Load {
            gateway: NodeId(9),
            load: 1,
            seq: 1,
        }
        .encode();
        assert!(rreq_append_forward(&not_rreq, NodeId(9), &mut out).is_err());
    }

    #[test]
    fn rrep_energy_patch_equals_reencode() {
        let msg = RoutingMsg::Rrep {
            origin: NodeId(7),
            req_id: 99,
            gateway: NodeId(100),
            place: 4,
            energy_pm: 512,
            path: vec![NodeId(7), NodeId(3)],
        };
        let frame = msg.encode();
        let mut out = Vec::new();
        rrep_energy_patch(&frame, 300, &mut out).unwrap();
        let expected = RoutingMsg::Rrep {
            origin: NodeId(7),
            req_id: 99,
            gateway: NodeId(100),
            place: 4,
            energy_pm: 300,
            path: vec![NodeId(7), NodeId(3)],
        }
        .encode();
        assert_eq!(out, expected);
    }

    #[test]
    fn data_hops_patch_equals_reencode() {
        let msg = RoutingMsg::Data {
            origin: NodeId(2),
            msg_id: 5,
            sent_at: 77,
            gateway: NodeId(50),
            place: 3,
            hops: 2,
            payload_len: 16,
        };
        let frame = msg.encode();
        let mut out = Vec::new();
        data_hops_patch(&frame, 3, &mut out).unwrap();
        let expected = RoutingMsg::Data {
            origin: NodeId(2),
            msg_id: 5,
            sent_at: 77,
            gateway: NodeId(50),
            place: 3,
            hops: 3,
            payload_len: 16,
        }
        .encode();
        assert_eq!(out, expected);
    }

    #[test]
    fn encode_rrep_into_equals_owned_encode() {
        let rreq = sample_rreq().encode();
        let RoutingMsgView::Rreq { path, .. } = RoutingMsgView::decode(&rreq).unwrap() else {
            unreachable!()
        };
        let mut out = Vec::new();
        encode_rrep_into(
            &mut out,
            NodeId(7),
            99,
            NodeId(100),
            4,
            512,
            path,
            Some(NodeId(55)),
            &[NodeId(60), NodeId(61)],
        );
        let expected = RoutingMsg::Rrep {
            origin: NodeId(7),
            req_id: 99,
            gateway: NodeId(100),
            place: 4,
            energy_pm: 512,
            path: vec![
                NodeId(7),
                NodeId(3),
                NodeId(12),
                NodeId(55),
                NodeId(60),
                NodeId(61),
            ],
        }
        .encode();
        assert_eq!(out, expected);
    }

    #[test]
    fn path_uniqueness_matches_hashset_semantics() {
        let rreq = sample_rreq().encode(); // path 7, 3, 12
        let RoutingMsgView::Rreq { path, .. } = RoutingMsgView::decode(&rreq).unwrap() else {
            unreachable!()
        };
        assert!(path_with_suffix_is_unique(path, NodeId(55), &[NodeId(60)]));
        // me collides with the prefix
        assert!(!path_with_suffix_is_unique(path, NodeId(3), &[]));
        // relay collides with the prefix
        assert!(!path_with_suffix_is_unique(path, NodeId(55), &[NodeId(7)]));
        // relay collides with me
        assert!(!path_with_suffix_is_unique(path, NodeId(55), &[NodeId(55)]));
        // duplicate inside relays
        assert!(!path_with_suffix_is_unique(
            path,
            NodeId(55),
            &[NodeId(60), NodeId(60)]
        ));
    }
}
