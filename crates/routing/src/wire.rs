//! Wire formats shared by SPR and MLR (the *unsecured* protocols; SecMLR
//! wraps these shapes in the crypto envelope in `wmsn-secure`).
//!
//! Five message types cover §5:
//!
//! * `Rreq` — routing query, flooded; carries the path walked so far
//!   (each forwarder appends itself, §5.2 step 3.1).
//! * `Rrep` — routing response, unicast back along the reversed path;
//!   carries the complete sensor path and the answering gateway.
//! * `Data` — application data; carries origin, message id, origination
//!   time and a hop counter for the metrics ledger, the destination
//!   gateway/place, and payload padding so frames have realistic size.
//! * `Announce` — a (moved) gateway advertising its place at round start
//!   (§5.3 step 2), flooded through the sensor tier.
//! * `Load` — a gateway advertising its recent traffic load, used by the
//!   §4.3 load-balance extension.

use wmsn_util::codec::{DecodeError, Reader, Writer};
use wmsn_util::NodeId;

/// Maximum path length accepted by decoders (sanity bound; fields in the
/// experiments never exceed a few tens of hops).
pub const MAX_PATH: usize = 512;

/// Sentinel for "no feasible place" (SPR runs placeless).
pub const NO_PLACE: u16 = u16::MAX;

/// A routing-layer message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RoutingMsg {
    /// Flooded routing query.
    Rreq {
        /// Query originator.
        origin: NodeId,
        /// Originator-unique query id (for duplicate suppression).
        req_id: u64,
        /// Nodes traversed so far, starting with `origin`.
        path: Vec<NodeId>,
        /// Feasible places the originator is missing entries for; empty
        /// means "any route welcome" (SPR). Intermediates may answer from
        /// cache only for wanted places — otherwise a cached reply for an
        /// old place would suppress discovery of a newly-occupied one.
        wanted: Vec<u16>,
    },
    /// Routing response, relayed back toward `origin`.
    Rrep {
        /// Query originator this answers.
        origin: NodeId,
        /// Query id this answers.
        req_id: u64,
        /// Responding gateway.
        gateway: NodeId,
        /// Feasible place of the gateway ([`NO_PLACE`] under SPR).
        place: u16,
        /// Residual battery (per mille of capacity) of the weakest relay
        /// the response has passed through so far — each relay folds its
        /// own level in, giving the source the path's energy bottleneck
        /// (the §5.3 balance objective made routable).
        energy_pm: u16,
        /// Full sensor path `origin … last-sensor` (gateway excluded).
        path: Vec<NodeId>,
    },
    /// Application data.
    Data {
        /// Source sensor.
        origin: NodeId,
        /// Source-unique message id.
        msg_id: u64,
        /// Origination timestamp (µs).
        sent_at: u64,
        /// Destination gateway.
        gateway: NodeId,
        /// Destination place ([`NO_PLACE`] under SPR).
        place: u16,
        /// Radio hops taken so far (incremented by each forwarder).
        hops: u32,
        /// Application payload size; encoded as that many padding bytes so
        /// the energy/latency cost of the frame is realistic.
        payload_len: u16,
    },
    /// Gateway place announcement (MLR round start).
    Announce {
        /// The gateway announcing.
        gateway: NodeId,
        /// Its (new) feasible place.
        place: u16,
        /// Round number, for duplicate suppression.
        round: u32,
    },
    /// Gateway load advertisement (§4.3 extension).
    Load {
        /// The gateway advertising.
        gateway: NodeId,
        /// Packets absorbed during the current window.
        load: u32,
        /// Advertisement sequence number.
        seq: u32,
    },
}

const TAG_RREQ: u8 = 1;
const TAG_RREP: u8 = 2;
const TAG_DATA: u8 = 3;
const TAG_ANNOUNCE: u8 = 4;
const TAG_LOAD: u8 = 5;

fn write_ids(w: &mut Writer, ids: &[NodeId]) {
    let raw: Vec<u32> = ids.iter().map(|n| n.0).collect();
    w.id_list(&raw);
}

fn read_ids(r: &mut Reader<'_>) -> Result<Vec<NodeId>, DecodeError> {
    Ok(r.id_list(MAX_PATH)?.into_iter().map(NodeId).collect())
}

impl RoutingMsg {
    /// Encode to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(32);
        match self {
            RoutingMsg::Rreq {
                origin,
                req_id,
                path,
                wanted,
            } => {
                w.u8(TAG_RREQ).u32(origin.0).u64(*req_id);
                write_ids(&mut w, path);
                w.u16(wanted.len() as u16);
                for &p in wanted {
                    w.u16(p);
                }
            }
            RoutingMsg::Rrep {
                origin,
                req_id,
                gateway,
                place,
                energy_pm,
                path,
            } => {
                w.u8(TAG_RREP)
                    .u32(origin.0)
                    .u64(*req_id)
                    .u32(gateway.0)
                    .u16(*place)
                    .u16(*energy_pm);
                write_ids(&mut w, path);
            }
            RoutingMsg::Data {
                origin,
                msg_id,
                sent_at,
                gateway,
                place,
                hops,
                payload_len,
            } => {
                w.u8(TAG_DATA)
                    .u32(origin.0)
                    .u64(*msg_id)
                    .u64(*sent_at)
                    .u32(gateway.0)
                    .u16(*place)
                    .u32(*hops)
                    .u16(*payload_len);
                // Padding bytes standing in for the sensed payload.
                for _ in 0..*payload_len {
                    w.u8(0);
                }
            }
            RoutingMsg::Announce {
                gateway,
                place,
                round,
            } => {
                w.u8(TAG_ANNOUNCE).u32(gateway.0).u16(*place).u32(*round);
            }
            RoutingMsg::Load { gateway, load, seq } => {
                w.u8(TAG_LOAD).u32(gateway.0).u32(*load).u32(*seq);
            }
        }
        w.into_bytes()
    }

    /// Decode from bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let tag = r.u8()?;
        let msg = match tag {
            TAG_RREQ => {
                let origin = NodeId(r.u32()?);
                let req_id = r.u64()?;
                let path = read_ids(&mut r)?;
                let n = r.u16()? as usize;
                if n > MAX_PATH {
                    return Err(DecodeError::LengthOutOfRange(n));
                }
                let mut wanted = Vec::with_capacity(n);
                for _ in 0..n {
                    wanted.push(r.u16()?);
                }
                RoutingMsg::Rreq {
                    origin,
                    req_id,
                    path,
                    wanted,
                }
            }
            TAG_RREP => RoutingMsg::Rrep {
                origin: NodeId(r.u32()?),
                req_id: r.u64()?,
                gateway: NodeId(r.u32()?),
                place: r.u16()?,
                energy_pm: r.u16()?,
                path: read_ids(&mut r)?,
            },
            TAG_DATA => {
                let origin = NodeId(r.u32()?);
                let msg_id = r.u64()?;
                let sent_at = r.u64()?;
                let gateway = NodeId(r.u32()?);
                let place = r.u16()?;
                let hops = r.u32()?;
                let payload_len = r.u16()?;
                let _pad = r.raw(payload_len as usize)?;
                RoutingMsg::Data {
                    origin,
                    msg_id,
                    sent_at,
                    gateway,
                    place,
                    hops,
                    payload_len,
                }
            }
            TAG_ANNOUNCE => RoutingMsg::Announce {
                gateway: NodeId(r.u32()?),
                place: r.u16()?,
                round: r.u32()?,
            },
            TAG_LOAD => RoutingMsg::Load {
                gateway: NodeId(r.u32()?),
                load: r.u32()?,
                seq: r.u32()?,
            },
            t => return Err(DecodeError::BadTag(t)),
        };
        r.finish()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: RoutingMsg) {
        let bytes = msg.encode();
        assert_eq!(RoutingMsg::decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn rreq_roundtrip() {
        roundtrip(RoutingMsg::Rreq {
            origin: NodeId(7),
            req_id: 99,
            path: vec![NodeId(7), NodeId(3), NodeId(12)],
            wanted: vec![2, 5],
        });
    }

    #[test]
    fn rrep_roundtrip() {
        roundtrip(RoutingMsg::Rrep {
            origin: NodeId(7),
            req_id: 99,
            gateway: NodeId(100),
            place: 4,
            energy_pm: 512,
            path: vec![NodeId(7), NodeId(3)],
        });
    }

    #[test]
    fn data_roundtrip_and_padding() {
        let msg = RoutingMsg::Data {
            origin: NodeId(2),
            msg_id: 5,
            sent_at: 123_456,
            gateway: NodeId(50),
            place: NO_PLACE,
            hops: 3,
            payload_len: 24,
        };
        let bytes = msg.encode();
        // 1 tag + 4 + 8 + 8 + 4 + 2 + 4 + 2 + 24 padding = 57.
        assert_eq!(bytes.len(), 57);
        roundtrip(msg);
    }

    #[test]
    fn announce_and_load_roundtrip() {
        roundtrip(RoutingMsg::Announce {
            gateway: NodeId(9),
            place: 2,
            round: 14,
        });
        roundtrip(RoutingMsg::Load {
            gateway: NodeId(9),
            load: 512,
            seq: 3,
        });
    }

    #[test]
    fn empty_path_roundtrips() {
        roundtrip(RoutingMsg::Rreq {
            origin: NodeId(0),
            req_id: 0,
            path: vec![],
            wanted: vec![],
        });
    }

    #[test]
    fn bad_tag_rejected() {
        assert!(matches!(
            RoutingMsg::decode(&[0xEE]),
            Err(DecodeError::BadTag(0xEE))
        ));
    }

    #[test]
    fn truncated_rejected() {
        let bytes = RoutingMsg::Announce {
            gateway: NodeId(9),
            place: 2,
            round: 14,
        }
        .encode();
        assert!(RoutingMsg::decode(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = RoutingMsg::Load {
            gateway: NodeId(9),
            load: 1,
            seq: 1,
        }
        .encode();
        bytes.push(0);
        assert!(RoutingMsg::decode(&bytes).is_err());
    }

    #[test]
    fn oversized_path_rejected() {
        let msg = RoutingMsg::Rreq {
            origin: NodeId(0),
            req_id: 0,
            path: (0..MAX_PATH as u32 + 1).map(NodeId).collect(),
            wanted: vec![],
        };
        let bytes = msg.encode();
        assert!(RoutingMsg::decode(&bytes).is_err());
    }
}
