//! MLR — Maximal network Lifetime Routing (§5.3).
//!
//! MLR refines SPR with the feasible-place scheme:
//!
//! * Gateways occupy `m` of `|P|` fixed feasible places per round and move
//!   between rounds; **moved** gateways flood an authenticated-in-SecMLR
//!   `Announce` at round start ("moved gateways notify all sensor nodes …
//!   unmoved gateways do not need to issue such a notification").
//! * Sensor routing tables are keyed by *place* and **accumulate** across
//!   rounds (Table 1): an entry, once learned, is reused whenever any
//!   gateway re-occupies that place; only never-seen places trigger
//!   discovery. After all `|P|` places have been visited, no discovery
//!   ever happens again — the steady state the paper's overhead argument
//!   (experiment E5) relies on.
//! * Each round the source selects the fewest-hop entry among the `m`
//!   currently occupied places.
//!
//! Two flagged extensions implement §4.3:
//!
//! * **Load balance** ([`MlrConfig::load_alpha`] > 0): gateways advertise
//!   their absorbed-traffic counters; sources score candidate places by
//!   `hops + α · load_share` and divert traffic away from hot gateways.
//! * **Failover**: if a DATA forward fails for lack of a route the packet
//!   is dropped and counted, but sources holding multiple entries can be
//!   switched by purging routes through a dead node
//!   ([`crate::table::RoutingTable::purge_via`]).

use crate::table::{Route, RoutingTable};
use crate::wire::{self, PeekHeader, RoutingMsg, RoutingMsgView};
use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;
use wmsn_sim::{Behavior, Ctx, Packet, PacketKind, Tier};
use wmsn_trace::TraceEvent;
use wmsn_util::codec::IdListView;
use wmsn_util::seen::SeenTable;
use wmsn_util::NodeId;

const TIMER_COLLECT: u64 = 1;
const TIMER_FLOOD: u64 = 2;

/// MLR tunables.
#[derive(Clone, Copy, Debug)]
pub struct MlrConfig {
    /// RREP collection window (µs).
    pub reply_wait_us: u64,
    /// DATA payload bytes.
    pub data_payload: u16,
    /// Flood jitter bound (µs); 0 disables.
    pub flood_jitter_us: u64,
    /// Discovery retries.
    pub max_retries: u32,
    /// Load-balance weight α (0 = pure shortest path). Cost is
    /// `hops + α · gateway_load / mean_load`.
    pub load_alpha: f64,
    /// Energy-aware selection slack (extra hops tolerated to route via a
    /// fresher bottleneck relay); 0 = pure minimum-hop. Implements the
    /// §5.3 balance objective in-protocol (see `RoutingTable::best_energy_aware`).
    pub energy_slack: u32,
}

impl Default for MlrConfig {
    fn default() -> Self {
        MlrConfig {
            reply_wait_us: 60_000,
            data_payload: 24,
            flood_jitter_us: 2_000,
            max_retries: 2,
            load_alpha: 0.0,
            energy_slack: 0,
        }
    }
}

/// Counters for tests/experiments.
#[derive(Clone, Copy, Debug, Default)]
pub struct MlrStats {
    /// Discovery floods originated.
    pub rreq_originated: u64,
    /// RREQs re-broadcast.
    pub rreq_forwarded: u64,
    /// Cache replies sent.
    pub cache_replies: u64,
    /// RREPs relayed.
    pub rrep_relayed: u64,
    /// DATA frames forwarded.
    pub data_forwarded: u64,
    /// DATA frames dropped (no route).
    pub data_dropped: u64,
    /// Times a cached place entry was reused without discovery.
    pub table_reuses: u64,
}

#[derive(Clone, Copy, Debug)]
struct PendingMsg {
    msg_id: u64,
    sent_at: u64,
}

/// The sensor side of MLR.
pub struct MlrSensor {
    cfg: MlrConfig,
    /// Persistent, place-keyed routing table (grows toward |P| entries).
    pub table: RoutingTable,
    /// Current round's occupant map: gateway → (place, announce round).
    /// The round stamp disambiguates stale claims: when two gateways have
    /// announced the same place, the most recent announcement wins.
    occupied: HashMap<NodeId, (u16, u32)>,
    /// Gateway load advertisements (for the §4.3 extension).
    loads: HashMap<NodeId, u32>,
    /// Flood duplicate suppression, keyed on the peeked `(origin, req_id)`
    /// header so duplicates drop before any path materialisation.
    seen_rreq: SeenTable,
    /// Best (fewest-hops-to-go) RREP relayed per (origin, req, place):
    /// later, no-better copies are installed locally but not re-relayed,
    /// damping the reply storm when many caches answer one flood.
    seen_rrep: HashMap<(NodeId, u64, u16), usize>,
    seen_announce: SeenTable,
    seen_load: SeenTable,
    next_req_id: u64,
    next_msg_id: u64,
    pending: Vec<PendingMsg>,
    discovering: Option<(u64, u32)>,
    flood_queue: VecDeque<Rc<[u8]>>,
    /// Counters.
    pub stats: MlrStats,
}

impl MlrSensor {
    /// New sensor.
    pub fn new(cfg: MlrConfig) -> Self {
        MlrSensor {
            cfg,
            table: RoutingTable::new(),
            occupied: HashMap::new(),
            loads: HashMap::new(),
            seen_rreq: SeenTable::new(),
            seen_rrep: HashMap::new(),
            seen_announce: SeenTable::new(),
            seen_load: SeenTable::new(),
            next_req_id: 0,
            next_msg_id: 0,
            pending: Vec::new(),
            discovering: None,
            flood_queue: VecDeque::new(),
            stats: MlrStats::default(),
        }
    }

    /// Boxed, for `World::add_node`.
    pub fn boxed(cfg: MlrConfig) -> Box<dyn Behavior> {
        Box::new(Self::new(cfg))
    }

    /// Places currently occupied (sorted, deduped).
    pub fn occupied_places(&self) -> Vec<u16> {
        let mut v: Vec<u16> = self.occupied.values().map(|&(p, _)| p).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Current occupant of `place`, if known: the gateway with the most
    /// recent announcement (ties break toward the higher id, so the
    /// choice is deterministic).
    pub fn occupant_of(&self, place: u16) -> Option<NodeId> {
        self.occupied
            .iter()
            .filter(|(_, &(p, _))| p == place)
            .max_by_key(|(&g, &(_, round))| (round, g))
            .map(|(&g, _)| g)
    }

    /// Pre-load the initial deployment (sensors are told the round-0
    /// placement at deployment time, like keys in SecMLR). Subsequent
    /// rounds arrive via `Announce` floods.
    pub fn set_initial_occupancy(&mut self, occupants: &[(NodeId, u16)]) {
        self.occupied = occupants.iter().map(|&(g, p)| (g, (p, 0))).collect();
    }

    /// Forget a gateway entirely (a watchdog detected it dead): its
    /// occupancy claim is dropped, so selection falls back to the
    /// surviving gateways — the §4.2 fault-tolerance redirect.
    pub fn remove_gateway(&mut self, gateway: NodeId) {
        self.occupied.remove(&gateway);
    }

    /// Whether every occupied place has a table entry.
    fn all_places_known(&self) -> bool {
        self.occupied_places()
            .iter()
            .all(|&p| self.table.by_place(p).is_some())
    }

    /// Score-and-select: the best route among occupied places, by hops
    /// plus (optionally) the load penalty.
    fn select_route(&self) -> Option<Route> {
        let occupied = self.occupied_places();
        if self.cfg.load_alpha <= 0.0 {
            if self.cfg.energy_slack > 0 {
                return self
                    .table
                    .best_energy_aware(&occupied, self.cfg.energy_slack)
                    .cloned();
            }
            return self.table.best_among_places(&occupied).cloned();
        }
        let total: u64 = self.loads.values().map(|&l| l as u64).sum();
        let mean = (total as f64 / self.loads.len().max(1) as f64).max(1.0);
        self.table
            .iter()
            .filter(|r| occupied.contains(&r.place))
            .min_by(|a, b| {
                let cost = |r: &Route| {
                    let gw = self.occupant_of(r.place);
                    let load = gw.and_then(|g| self.loads.get(&g)).copied().unwrap_or(0) as f64;
                    r.hops() as f64 + self.cfg.load_alpha * load / mean
                };
                cost(a)
                    .partial_cmp(&cost(b))
                    .unwrap()
                    .then(a.place.cmp(&b.place))
            })
            .cloned()
    }

    /// Originate one application message.
    pub fn originate(&mut self, ctx: &mut Ctx<'_>) {
        let msg_id = self.next_msg_id;
        self.next_msg_id += 1;
        ctx.record_origination();
        let msg = PendingMsg {
            msg_id,
            sent_at: ctx.now(),
        };
        if self.all_places_known() && !self.occupied.is_empty() {
            self.stats.table_reuses += 1;
            self.send_data(ctx, msg);
        } else {
            self.pending.push(msg);
            if self.discovering.is_none() {
                self.start_discovery(ctx, 0);
            }
        }
    }

    fn start_discovery(&mut self, ctx: &mut Ctx<'_>, retries_used: u32) {
        let req_id = self.next_req_id;
        self.next_req_id += 1;
        self.discovering = Some((req_id, retries_used));
        self.seen_rreq.insert(ctx.id().0, req_id);
        // Ask specifically for the occupied places we have no entry for;
        // cached replies for other places must not satisfy (or suppress)
        // this query.
        let wanted: Vec<u16> = self
            .occupied_places()
            .into_iter()
            .filter(|&p| self.table.by_place(p).is_none())
            .collect();
        let rreq = RoutingMsg::Rreq {
            origin: ctx.id(),
            req_id,
            path: vec![ctx.id()],
            wanted,
        };
        self.stats.rreq_originated += 1;
        if ctx.trace_enabled() {
            ctx.trace(TraceEvent::RreqFlood {
                t: ctx.now(),
                node: ctx.id(),
                origin: ctx.id(),
                req_id,
                forwarded: false,
            });
        }
        ctx.send(None, Tier::Sensor, PacketKind::Control, rreq.encode());
        ctx.set_timer(self.cfg.reply_wait_us, TIMER_COLLECT);
    }

    fn send_data(&mut self, ctx: &mut Ctx<'_>, msg: PendingMsg) {
        let Some(route) = self.select_route() else {
            self.stats.data_dropped += 1;
            return;
        };
        // The wire gateway is the *current occupant* of the chosen place —
        // the cached entry may have been learned from a previous occupant.
        let gateway = self.occupant_of(route.place).unwrap_or(route.gateway);
        let data = RoutingMsg::Data {
            origin: ctx.id(),
            msg_id: msg.msg_id,
            sent_at: msg.sent_at,
            gateway,
            place: route.place,
            hops: 1,
            payload_len: self.cfg.data_payload,
        };
        let next = if route.relays.is_empty() {
            gateway
        } else {
            route.next_hop()
        };
        if ctx.trace_enabled() {
            ctx.trace(TraceEvent::RouteSelect {
                t: ctx.now(),
                node: ctx.id(),
                gateway,
                place: route.place,
                hops: route.hops(),
                energy_pm: route.energy_pm,
            });
            ctx.trace(TraceEvent::Forward {
                t: ctx.now(),
                node: ctx.id(),
                origin: ctx.id(),
                msg_id: msg.msg_id,
                next: Some(next),
                hops: 1,
            });
        }
        ctx.send(Some(next), Tier::Sensor, PacketKind::Data, data.encode());
    }

    fn queue_flood(&mut self, ctx: &mut Ctx<'_>, bytes: impl Into<Rc<[u8]>>, kind: PacketKind) {
        let bytes = bytes.into();
        if self.cfg.flood_jitter_us == 0 {
            ctx.send(None, Tier::Sensor, kind, bytes);
        } else {
            let jitter = ctx.rng().next_below(self.cfg.flood_jitter_us);
            self.flood_queue.push_back(bytes);
            // Kind is re-derived on pop; stash Control for simplicity —
            // floods are always control traffic.
            let _ = kind;
            ctx.set_timer(jitter, TIMER_FLOOD);
        }
    }

    /// Send one cached-answer RREP assembled straight from the RREQ's
    /// borrowed path bytes plus our cached relays — no intermediate
    /// `Vec<NodeId>` clone.
    #[allow(clippy::too_many_arguments)]
    fn send_cache_reply(
        ctx: &mut Ctx<'_>,
        stats: &mut MlrStats,
        origin: NodeId,
        req_id: u64,
        gateway: NodeId,
        place: u16,
        energy_pm: u16,
        path: IdListView<'_>,
        relays: &[NodeId],
        prev: NodeId,
    ) {
        let mut buf = ctx.take_scratch();
        wire::encode_rrep_into(
            &mut buf,
            origin,
            req_id,
            gateway,
            place,
            energy_pm,
            path,
            Some(ctx.id()),
            relays,
        );
        stats.cache_replies += 1;
        if ctx.trace_enabled() {
            ctx.trace(TraceEvent::CacheReply {
                t: ctx.now(),
                node: ctx.id(),
                origin,
                req_id,
                gateway,
                place,
            });
        }
        ctx.send(Some(prev), Tier::Sensor, PacketKind::Control, &buf[..]);
        ctx.put_scratch(buf);
    }

    fn handle_rreq(&mut self, ctx: &mut Ctx<'_>, frame: &[u8], origin: NodeId, req_id: u64) {
        let me = ctx.id();
        if origin == me || !self.seen_rreq.insert(origin.0, req_id) {
            return;
        }
        let Ok(RoutingMsgView::Rreq { path, wanted, .. }) = RoutingMsgView::decode(frame) else {
            return;
        };
        if path.contains(me.0) {
            return;
        }
        let Some(prev) = path.last() else { return };
        let prev = NodeId(prev);
        let occupied = self.occupied_places();
        if wanted.is_empty() {
            // SPR-style query: any occupied route satisfies it entirely.
            // A cached path that loops back through the query path cannot
            // be offered (the combined walk would repeat a node).
            if let Some(route) = self.table.best_among_places(&occupied) {
                if wire::path_with_suffix_is_unique(path, me, &route.relays) {
                    let gateway = self.occupant_of(route.place).unwrap_or(route.gateway);
                    let own_pm = (ctx.battery_fraction() * 1000.0) as u16;
                    Self::send_cache_reply(
                        ctx,
                        &mut self.stats,
                        origin,
                        req_id,
                        gateway,
                        route.place,
                        route.energy_pm.min(own_pm),
                        path,
                        &route.relays,
                        prev,
                    );
                    return;
                }
            }
        } else {
            // Targeted query: answer every wanted place we have cached,
            // and keep the flood alive for the rest — a partial cache
            // answer must not suppress discovery of the other places.
            let mut remaining: Vec<u16> = Vec::new();
            for p in wanted.iter() {
                if !occupied.contains(&p) {
                    continue; // stale want: place no longer occupied
                }
                let answered = self
                    .table
                    .by_place(p)
                    .filter(|route| wire::path_with_suffix_is_unique(path, me, &route.relays));
                match answered {
                    Some(route) => {
                        let gateway = self.occupant_of(p).unwrap_or(route.gateway);
                        let own_pm = (ctx.battery_fraction() * 1000.0) as u16;
                        Self::send_cache_reply(
                            ctx,
                            &mut self.stats,
                            origin,
                            req_id,
                            gateway,
                            p,
                            route.energy_pm.min(own_pm),
                            path,
                            &route.relays,
                            prev,
                        );
                    }
                    None => remaining.push(p),
                }
            }
            if remaining.is_empty() {
                return; // fully answered: the flood stops here
            }
            self.stats.rreq_forwarded += 1;
            if ctx.trace_enabled() {
                ctx.trace(TraceEvent::RreqFlood {
                    t: ctx.now(),
                    node: me,
                    origin,
                    req_id,
                    forwarded: true,
                });
            }
            if remaining.len() == wanted.len() {
                // Nothing answered or stripped: the wanted list is
                // unchanged, so forward in place (memcpy + append).
                let mut buf = ctx.take_scratch();
                if wire::rreq_append_forward(frame, me, &mut buf).is_ok() {
                    self.queue_flood(ctx, &buf[..], PacketKind::Control);
                }
                ctx.put_scratch(buf);
            } else {
                // The wanted list shrank: re-encode (cold path).
                let mut new_path: Vec<NodeId> = path.iter().map(NodeId).collect();
                new_path.push(me);
                let rreq = RoutingMsg::Rreq {
                    origin,
                    req_id,
                    path: new_path,
                    wanted: remaining,
                };
                self.queue_flood(ctx, rreq.encode(), PacketKind::Control);
            }
            return;
        }
        // Append ourselves in place and keep flooding.
        self.stats.rreq_forwarded += 1;
        if ctx.trace_enabled() {
            ctx.trace(TraceEvent::RreqFlood {
                t: ctx.now(),
                node: me,
                origin,
                req_id,
                forwarded: true,
            });
        }
        let mut buf = ctx.take_scratch();
        if wire::rreq_append_forward(frame, me, &mut buf).is_ok() {
            self.queue_flood(ctx, &buf[..], PacketKind::Control);
        }
        ctx.put_scratch(buf);
    }

    fn handle_rrep(&mut self, ctx: &mut Ctx<'_>, frame: &[u8]) {
        let Ok(RoutingMsgView::Rrep {
            origin,
            req_id,
            gateway,
            place,
            energy_pm,
            path,
        }) = RoutingMsgView::decode(frame)
        else {
            return;
        };
        let me = ctx.id();
        let Some(idx) = path.position(me.0) else {
            return;
        };
        let route = Route {
            gateway,
            place,
            relays: path.iter().skip(idx + 1).map(NodeId).collect(),
            energy_pm,
        };
        let route_hops = route.hops();
        self.table.upsert(route, false);
        if ctx.trace_enabled() {
            ctx.trace(TraceEvent::RouteInstall {
                t: ctx.now(),
                node: me,
                gateway,
                place,
                hops: route_hops,
                energy_pm,
            });
        }
        if idx > 0 {
            // Relay only the first/best reply per (origin, req, place).
            let remaining = path.len() - idx;
            let key = (origin, req_id, place);
            if self
                .seen_rrep
                .get(&key)
                .is_some_and(|&best| best <= remaining)
            {
                return;
            }
            self.seen_rrep.insert(key, remaining);
            let prev = NodeId(path.get(idx - 1).expect("idx > 0"));
            // Fold our own residual level into the bottleneck; the path
            // is relayed untouched, so patch the frame in place.
            let own_pm = (ctx.battery_fraction() * 1000.0) as u16;
            let mut buf = ctx.take_scratch();
            if wire::rrep_energy_patch(frame, energy_pm.min(own_pm), &mut buf).is_err() {
                ctx.put_scratch(buf);
                return;
            }
            self.stats.rrep_relayed += 1;
            ctx.send(Some(prev), Tier::Sensor, PacketKind::Control, &buf[..]);
            ctx.put_scratch(buf);
        }
    }

    fn handle_data(&mut self, ctx: &mut Ctx<'_>, frame: &[u8]) {
        let Ok(RoutingMsgView::Data {
            origin,
            msg_id,
            gateway,
            place,
            hops,
            ..
        }) = RoutingMsgView::decode(frame)
        else {
            return;
        };
        let Some(route) = self.table.by_place(place) else {
            self.stats.data_dropped += 1;
            return;
        };
        let next = if route.relays.is_empty() {
            gateway
        } else {
            route.next_hop()
        };
        let mut buf = ctx.take_scratch();
        if wire::data_hops_patch(frame, hops + 1, &mut buf).is_err() {
            ctx.put_scratch(buf);
            return;
        }
        self.stats.data_forwarded += 1;
        if ctx.trace_enabled() {
            ctx.trace(TraceEvent::Forward {
                t: ctx.now(),
                node: ctx.id(),
                origin,
                msg_id,
                next: Some(next),
                hops: hops + 1,
            });
        }
        ctx.send(Some(next), Tier::Sensor, PacketKind::Data, &buf[..]);
        ctx.put_scratch(buf);
    }

    fn handle_announce(
        &mut self,
        ctx: &mut Ctx<'_>,
        bytes: Rc<[u8]>,
        gateway: NodeId,
        place: u16,
        round: u32,
    ) {
        if !self.seen_announce.insert(gateway.0, u64::from(round)) {
            return;
        }
        // Never regress a gateway to an older claim (late or replayed
        // announces).
        let stale = self
            .occupied
            .get(&gateway)
            .is_some_and(|&(_, have)| round < have);
        if !stale {
            self.occupied.insert(gateway, (place, round));
        }
        // Keep the flood moving — the forwarded frame is byte-identical,
        // so re-flood the shared buffer instead of re-encoding.
        self.queue_flood(ctx, bytes, PacketKind::Control);
    }

    fn handle_load(
        &mut self,
        ctx: &mut Ctx<'_>,
        bytes: Rc<[u8]>,
        gateway: NodeId,
        load: u32,
        seq: u32,
    ) {
        if !self.seen_load.insert(gateway.0, u64::from(seq)) {
            return;
        }
        self.loads.insert(gateway, load);
        self.queue_flood(ctx, bytes, PacketKind::Control);
    }

    fn on_collect_timer(&mut self, ctx: &mut Ctx<'_>) {
        let Some((_, retries)) = self.discovering else {
            return;
        };
        if self.select_route().is_some() {
            self.discovering = None;
            let pending = std::mem::take(&mut self.pending);
            for msg in pending {
                self.send_data(ctx, msg);
            }
        } else if retries < self.cfg.max_retries {
            self.start_discovery(ctx, retries + 1);
        } else {
            self.discovering = None;
            self.stats.data_dropped += self.pending.len() as u64;
            self.pending.clear();
        }
    }

    /// Buffered message count (tests).
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

impl Behavior for MlrSensor {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: &Packet) {
        // Header peek: classify + validate from fixed offsets so
        // duplicate floods drop before any path materialises.
        let Ok(hdr) = wire::peek(&pkt.payload) else {
            return;
        };
        match hdr {
            PeekHeader::Rreq { origin, req_id } => {
                self.handle_rreq(ctx, &pkt.payload, origin, req_id)
            }
            PeekHeader::Rrep { .. } => self.handle_rrep(ctx, &pkt.payload),
            PeekHeader::Data { .. } => self.handle_data(ctx, &pkt.payload),
            PeekHeader::Announce {
                gateway,
                place,
                round,
            } => self.handle_announce(ctx, pkt.payload.clone(), gateway, place, round),
            PeekHeader::Load { gateway, load, seq } => {
                self.handle_load(ctx, pkt.payload.clone(), gateway, load, seq)
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        match tag {
            TIMER_COLLECT => self.on_collect_timer(ctx),
            TIMER_FLOOD => {
                if let Some(bytes) = self.flood_queue.pop_front() {
                    ctx.send(None, Tier::Sensor, PacketKind::Control, bytes);
                }
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The gateway (WMG) side of MLR.
pub struct MlrGateway {
    /// Current feasible place.
    pub place: u16,
    seen_rreq: SeenTable,
    /// Data packets absorbed in total.
    pub absorbed: u64,
    /// Data packets absorbed since the last load advertisement.
    window_load: u32,
    next_load_seq: u32,
}

impl MlrGateway {
    /// New gateway, initially at `place`.
    pub fn new(place: u16) -> Self {
        MlrGateway {
            place,
            seen_rreq: SeenTable::new(),
            absorbed: 0,
            window_load: 0,
            next_load_seq: 0,
        }
    }

    /// Boxed, for `World::add_node`.
    pub fn boxed(place: u16) -> Box<dyn Behavior> {
        Box::new(Self::new(place))
    }

    /// Round start: take the (possibly new) place and flood the
    /// announcement. Call for moved gateways — and for everyone in round
    /// 0, which the paper treats as the initial notification.
    pub fn set_place(&mut self, ctx: &mut Ctx<'_>, place: u16, round: u32) {
        self.place = place;
        if ctx.trace_enabled() {
            ctx.trace(TraceEvent::GatewayMove {
                t: ctx.now(),
                gateway: ctx.id(),
                place,
            });
        }
        let msg = RoutingMsg::Announce {
            gateway: ctx.id(),
            place,
            round,
        };
        ctx.send(None, Tier::Sensor, PacketKind::Control, msg.encode());
    }

    /// Advertise the current load window (§4.3) and reset it.
    pub fn announce_load(&mut self, ctx: &mut Ctx<'_>) {
        let seq = self.next_load_seq;
        self.next_load_seq += 1;
        let msg = RoutingMsg::Load {
            gateway: ctx.id(),
            load: self.window_load,
            seq,
        };
        self.window_load = 0;
        ctx.send(None, Tier::Sensor, PacketKind::Control, msg.encode());
    }
}

impl Behavior for MlrGateway {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: &Packet) {
        let Ok(hdr) = wire::peek(&pkt.payload) else {
            return;
        };
        match hdr {
            PeekHeader::Rreq { origin, req_id } => {
                if !self.seen_rreq.insert(origin.0, req_id) {
                    return;
                }
                let Ok(RoutingMsgView::Rreq { path, .. }) = RoutingMsgView::decode(&pkt.payload)
                else {
                    return;
                };
                let Some(prev) = path.last() else { return };
                // Answer with the walked path verbatim, assembled from
                // the RREQ's path bytes — no intermediate clone.
                let mut buf = ctx.take_scratch();
                wire::encode_rrep_into(
                    &mut buf,
                    origin,
                    req_id,
                    ctx.id(),
                    self.place,
                    1000, // gateways are unconstrained (§5.3)
                    path,
                    None,
                    &[],
                );
                ctx.send(
                    Some(NodeId(prev)),
                    Tier::Sensor,
                    PacketKind::Control,
                    &buf[..],
                );
                ctx.put_scratch(buf);
            }
            PeekHeader::Data { .. } => {
                let Ok(RoutingMsgView::Data {
                    origin,
                    msg_id,
                    sent_at,
                    gateway,
                    hops,
                    ..
                }) = RoutingMsgView::decode(&pkt.payload)
                else {
                    return;
                };
                if gateway != ctx.id() {
                    return;
                }
                self.absorbed += 1;
                self.window_load += 1;
                ctx.record_delivery(origin, msg_id, sent_at, hops);
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::NO_PLACE;
    use wmsn_sim::{NodeConfig, World, WorldConfig};
    use wmsn_util::Point;

    /// Test worlds use a 10 m sensor range so 10 m-spaced chains are
    /// genuine multi-hop topologies.
    fn short_range(seed: u64) -> WorldConfig {
        let mut c = WorldConfig::ideal(seed);
        c.sensor_phy.range_m = 10.0;
        c
    }

    /// Chain of 6 sensors (x = 0..50) plus one mobile gateway. Feasible
    /// places: place 0 at x=60 (right end), place 1 at x=-10 (left end).
    fn chain_world() -> (World, Vec<NodeId>, NodeId) {
        let mut w = World::new(short_range(7));
        let mut sensors = Vec::new();
        for i in 0..6 {
            sensors.push(w.add_node(
                NodeConfig::sensor(Point::new(i as f64 * 10.0, 0.0), 100.0),
                MlrSensor::boxed(MlrConfig::default()),
            ));
        }
        let gw = w.add_node(
            NodeConfig::gateway(Point::new(60.0, 0.0)),
            MlrGateway::boxed(0),
        );
        (w, sensors, gw)
    }

    fn announce(w: &mut World, gw: NodeId, place: u16, round: u32) {
        w.with_behavior::<MlrGateway, _>(gw, |g, ctx| g.set_place(ctx, place, round));
        w.run_for(500_000);
    }

    #[test]
    fn announce_floods_to_every_sensor() {
        let (mut w, sensors, gw) = chain_world();
        w.start();
        announce(&mut w, gw, 0, 0);
        for &s in &sensors {
            let b = w.behavior_as::<MlrSensor>(s).unwrap();
            assert_eq!(b.occupied_places(), vec![0], "sensor {s}");
            assert_eq!(b.occupant_of(0), Some(gw));
        }
    }

    #[test]
    fn discovery_fills_the_place_entry_and_delivers() {
        let (mut w, sensors, gw) = chain_world();
        w.start();
        announce(&mut w, gw, 0, 0);
        w.with_behavior::<MlrSensor, _>(sensors[0], |s, ctx| s.originate(ctx));
        w.run_for(2_000_000);
        let m = w.metrics();
        assert_eq!(m.deliveries.len(), 1);
        assert_eq!(m.deliveries[0].hops, 6);
        let b = w.behavior_as::<MlrSensor>(sensors[0]).unwrap();
        assert_eq!(b.table.by_place(0).map(|r| r.hops()), Some(6));
    }

    #[test]
    fn cached_place_entries_are_reused_when_a_gateway_returns() {
        let (mut w, sensors, gw) = chain_world();
        w.start();
        // Round 0: gateway at place 0; discover.
        announce(&mut w, gw, 0, 0);
        w.with_behavior::<MlrSensor, _>(sensors[0], |s, ctx| s.originate(ctx));
        w.run_for(2_000_000);
        // Round 1: gateway moves to place 1 (left end, x = -10).
        w.set_position(gw, Point::new(-10.0, 0.0));
        announce(&mut w, gw, 1, 1);
        w.with_behavior::<MlrSensor, _>(sensors[0], |s, ctx| s.originate(ctx));
        w.run_for(2_000_000);
        // Round 2: gateway returns to place 0 — NO new discovery needed.
        w.set_position(gw, Point::new(60.0, 0.0));
        announce(&mut w, gw, 0, 2);
        let control_before = w.metrics().sent_control;
        w.with_behavior::<MlrSensor, _>(sensors[0], |s, ctx| s.originate(ctx));
        w.run_for(2_000_000);
        let m = w.metrics();
        assert_eq!(m.deliveries.len(), 3, "all three rounds delivered");
        // Only DATA frames since the round-2 announce (no discovery).
        assert_eq!(
            m.sent_control, control_before,
            "round 2 must reuse the cached place-0 entry"
        );
        let b = w.behavior_as::<MlrSensor>(sensors[0]).unwrap();
        assert_eq!(b.table.len(), 2, "one entry per visited place");
        assert!(b.stats.table_reuses >= 1);
    }

    #[test]
    fn source_selects_the_best_among_occupied_places() {
        // Two gateways: place 0 at the right (6 hops from S0), place 1 at
        // the left (1 hop from S0). S0 must pick place 1.
        let (mut w, sensors, gw0) = chain_world();
        let gw1 = w.add_node(
            NodeConfig::gateway(Point::new(-10.0, 0.0)),
            MlrGateway::boxed(1),
        );
        w.start();
        announce(&mut w, gw0, 0, 0);
        announce(&mut w, gw1, 1, 0);
        w.with_behavior::<MlrSensor, _>(sensors[0], |s, ctx| s.originate(ctx));
        w.run_for(2_000_000);
        let m = w.metrics();
        assert_eq!(m.deliveries.len(), 1);
        assert_eq!(m.deliveries[0].destination, gw1);
        assert_eq!(m.deliveries[0].hops, 1);
    }

    #[test]
    fn moved_gateway_takes_over_a_known_place_entry() {
        // Gateway A discovers place 0; then gateway B occupies place 0.
        // Sensors must route to B through the cached place-0 path.
        let (mut w, sensors, gw_a) = chain_world();
        let gw_b = w.add_node(
            NodeConfig::gateway(Point::new(0.0, 200.0)), // far away initially
            MlrGateway::boxed(NO_PLACE),
        );
        w.start();
        announce(&mut w, gw_a, 0, 0);
        w.with_behavior::<MlrSensor, _>(sensors[0], |s, ctx| s.originate(ctx));
        w.run_for(2_000_000);
        // Round 1: A leaves (to an unannounced nowhere), B takes place 0.
        w.set_position(gw_a, Point::new(0.0, 300.0));
        w.set_position(gw_b, Point::new(60.0, 0.0));
        // A's departure is implicit: B's announce overwrites nothing for
        // A, so also announce A at an unoccupied pseudo-place far away.
        announce(&mut w, gw_a, 7, 1);
        announce(&mut w, gw_b, 0, 1);
        w.with_behavior::<MlrSensor, _>(sensors[0], |s, ctx| s.originate(ctx));
        w.run_for(2_000_000);
        let m = w.metrics();
        let last = m.deliveries.last().unwrap();
        assert_eq!(last.destination, gw_b, "B now owns place 0");
    }

    #[test]
    fn load_balancing_diverts_traffic_from_the_hot_gateway() {
        // S0 sits 1 hop from G0 and 2 hops from G1. With α=0 all traffic
        // goes to G0; with a large α and G0 advertising heavy load, S0
        // diverts to G1.
        let build = |alpha: f64| -> (World, NodeId, NodeId, NodeId) {
            let mut w = World::new(short_range(3));
            let s0 = w.add_node(
                NodeConfig::sensor(Point::new(0.0, 0.0), 100.0),
                MlrSensor::boxed(MlrConfig {
                    load_alpha: alpha,
                    ..MlrConfig::default()
                }),
            );
            let relay = w.add_node(
                NodeConfig::sensor(Point::new(10.0, 0.0), 100.0),
                MlrSensor::boxed(MlrConfig {
                    load_alpha: alpha,
                    ..MlrConfig::default()
                }),
            );
            let g0 = w.add_node(
                NodeConfig::gateway(Point::new(-10.0, 0.0)),
                MlrGateway::boxed(0),
            );
            let g1 = w.add_node(
                NodeConfig::gateway(Point::new(20.0, 0.0)),
                MlrGateway::boxed(1),
            );
            let _ = relay;
            (w, s0, g0, g1)
        };
        // Baseline: α = 0.
        let (mut w, s0, g0, _g1) = build(0.0);
        w.start();
        announce(&mut w, g0, 0, 0);
        let g1 = w.nodes_with_role(wmsn_util::NodeRole::Gateway)[1];
        announce(&mut w, g1, 1, 0);
        w.with_behavior::<MlrSensor, _>(s0, |s, ctx| s.originate(ctx));
        w.run_for(2_000_000);
        assert_eq!(w.metrics().deliveries[0].destination, g0);

        // Loaded: α = 10, G0 advertises overwhelming load.
        let (mut w2, s0b, g0b, g1b) = build(10.0);
        w2.start();
        announce(&mut w2, g0b, 0, 0);
        announce(&mut w2, g1b, 1, 0);
        // First message discovers both routes (goes to G0, the shorter).
        w2.with_behavior::<MlrSensor, _>(s0b, |s, ctx| s.originate(ctx));
        w2.run_for(2_000_000);
        // G0 advertises a huge load; G1 stays idle.
        w2.with_behavior::<MlrGateway, _>(g0b, |g, ctx| {
            g.window_load = 10_000;
            g.announce_load(ctx);
        });
        w2.with_behavior::<MlrGateway, _>(g1b, |g, ctx| g.announce_load(ctx));
        w2.run_for(500_000);
        w2.with_behavior::<MlrSensor, _>(s0b, |s, ctx| s.originate(ctx));
        w2.run_for(2_000_000);
        let last = w2.metrics().deliveries.last().unwrap();
        assert_eq!(last.destination, g1b, "hot G0 must be avoided");
    }

    #[test]
    fn no_occupied_places_buffers_then_drops() {
        let (mut w, sensors, _gw) = chain_world();
        w.start();
        // No announce at all: sensors know of no occupied place.
        w.with_behavior::<MlrSensor, _>(sensors[0], |s, ctx| s.originate(ctx));
        w.run_for(5_000_000);
        let b = w.behavior_as::<MlrSensor>(sensors[0]).unwrap();
        assert_eq!(b.pending_len(), 0);
        assert!(b.stats.data_dropped >= 1);
        assert!(w.metrics().deliveries.is_empty());
    }

    #[test]
    fn duplicate_announces_are_suppressed() {
        let (mut w, sensors, gw) = chain_world();
        w.start();
        announce(&mut w, gw, 0, 0);
        let control1 = w.metrics().sent_control;
        // Replaying the same (gateway, round) announce must not re-flood.
        announce(&mut w, gw, 0, 0);
        let extra = w.metrics().sent_control - control1;
        assert_eq!(extra, 1, "only the gateway's own rebroadcast, no relay");
        let _ = sensors;
    }
}
