//! LEACH — Low-Energy Adaptive Clustering Hierarchy (Heinzelman et al.
//! 2000, the paper's reference \[17\]).
//!
//! The hierarchical baseline of §2.2.2 and the robustness foil of §2.1
//! ("if a head goes wrong in the LEACH routing, all nodes in the same
//! cluster with the head cannot send back their data"):
//!
//! * Each round, every sensor elects itself cluster head with the
//!   rotating-probability threshold `T(n) = p / (1 − p·(r mod ⌈1/p⌉))`,
//!   barred for `⌈1/p⌉` rounds after serving.
//! * Heads advertise; members join the nearest head by advertisement
//!   signal strength (modelled by geometric distance carried in the ADV).
//! * Members report to their head single-hop; the head aggregates all
//!   member reports into one frame and sends it **directly to the sink**
//!   with boosted transmit power (`Ctx::send_ranged`), paying the
//!   amplifier energy `ε·d²` that makes LEACH "not applicable to networks
//!   deployed in large regions" (§2.2.2).
//! * A member that heard no advertisement falls back to transmitting
//!   directly to the sink, as in the original protocol.
//!
//! The round phases (elect → advertise → join → report → flush) are
//! driven externally by the experiment harness, which matches LEACH's
//! TDMA round structure and keeps the protocol inspectable mid-phase.

use std::any::Any;
use wmsn_sim::{Behavior, Ctx, Packet, PacketKind, Tier};
use wmsn_util::codec::{DecodeError, Reader, Writer};
use wmsn_util::{NodeId, Point};

const TAG_ADV: u8 = 0x30;
const TAG_REPORT: u8 = 0x31;
const TAG_AGGREGATE: u8 = 0x32;

/// LEACH wire messages.
#[derive(Clone, PartialEq, Debug)]
pub enum LeachMsg {
    /// Cluster-head advertisement.
    Adv {
        /// The head.
        head: NodeId,
        /// Head position (signal-strength surrogate for nearest-head
        /// selection).
        x: f64,
        /// Head position, y coordinate.
        y: f64,
    },
    /// Member → head data report.
    Report {
        /// Reporting member.
        origin: NodeId,
        /// Member-unique message id.
        msg_id: u64,
        /// Origination time.
        sent_at: u64,
        /// Payload padding.
        payload_len: u16,
    },
    /// Head → sink aggregate.
    Aggregate {
        /// The head.
        head: NodeId,
        /// (origin, msg_id, sent_at) of every aggregated report.
        entries: Vec<(NodeId, u64, u64)>,
    },
}

impl LeachMsg {
    /// Encode.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            LeachMsg::Adv { head, x, y } => {
                w.u8(TAG_ADV).u32(head.0).u64(x.to_bits()).u64(y.to_bits());
            }
            LeachMsg::Report {
                origin,
                msg_id,
                sent_at,
                payload_len,
            } => {
                w.u8(TAG_REPORT)
                    .u32(origin.0)
                    .u64(*msg_id)
                    .u64(*sent_at)
                    .u16(*payload_len);
                for _ in 0..*payload_len {
                    w.u8(0);
                }
            }
            LeachMsg::Aggregate { head, entries } => {
                w.u8(TAG_AGGREGATE).u32(head.0).u16(entries.len() as u16);
                for (o, m, t) in entries {
                    w.u32(o.0).u64(*m).u64(*t);
                }
            }
        }
        w.into_bytes()
    }

    /// Decode.
    pub fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let tag = r.u8()?;
        let msg = match tag {
            TAG_ADV => LeachMsg::Adv {
                head: NodeId(r.u32()?),
                x: f64::from_bits(r.u64()?),
                y: f64::from_bits(r.u64()?),
            },
            TAG_REPORT => {
                let origin = NodeId(r.u32()?);
                let msg_id = r.u64()?;
                let sent_at = r.u64()?;
                let payload_len = r.u16()?;
                let _ = r.raw(payload_len as usize)?;
                LeachMsg::Report {
                    origin,
                    msg_id,
                    sent_at,
                    payload_len,
                }
            }
            TAG_AGGREGATE => {
                let head = NodeId(r.u32()?);
                let n = r.u16()? as usize;
                if n > 4096 {
                    return Err(DecodeError::LengthOutOfRange(n));
                }
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    entries.push((NodeId(r.u32()?), r.u64()?, r.u64()?));
                }
                LeachMsg::Aggregate { head, entries }
            }
            t => return Err(DecodeError::BadTag(t)),
        };
        r.finish()?;
        Ok(msg)
    }
}

/// LEACH tunables.
#[derive(Clone, Copy, Debug)]
pub struct LeachConfig {
    /// Desired cluster-head fraction `p` (typ. 0.05–0.1).
    pub p: f64,
    /// Report payload bytes.
    pub payload_len: u16,
    /// Sink position (known a priori, as LEACH assumes).
    pub sink_pos: Point,
    /// Sink node id.
    pub sink: NodeId,
    /// Boosted-range cap for head↔sink and member↔head sends (m).
    pub max_boost_range: f64,
}

/// LEACH sensor.
pub struct LeachSensor {
    cfg: LeachConfig,
    /// Round the node last served as head (`None` = never).
    last_head_round: Option<u32>,
    /// Whether this node heads the current round.
    pub is_head: bool,
    /// The head this member joined (with its position), if any.
    my_head: Option<(NodeId, Point)>,
    /// Reports collected while heading.
    collected: Vec<(NodeId, u64, u64)>,
    next_msg_id: u64,
    /// Reports that found neither head nor sink.
    pub lost_reports: u64,
}

impl LeachSensor {
    /// New sensor.
    pub fn new(cfg: LeachConfig) -> Self {
        LeachSensor {
            cfg,
            last_head_round: None,
            is_head: false,
            my_head: None,
            collected: Vec::new(),
            next_msg_id: 0,
            lost_reports: 0,
        }
    }

    /// Boxed, for `World::add_node`.
    pub fn boxed(cfg: LeachConfig) -> Box<dyn Behavior> {
        Box::new(Self::new(cfg))
    }

    /// Phase 1 — election + advertisement. Returns whether this node
    /// heads the round.
    pub fn start_round(&mut self, ctx: &mut Ctx<'_>, round: u32) -> bool {
        self.my_head = None;
        self.collected.clear();
        let cycle = (1.0 / self.cfg.p).ceil() as u32;
        let barred = self
            .last_head_round
            .is_some_and(|r| round.saturating_sub(r) < cycle);
        let threshold = if barred {
            0.0
        } else {
            self.cfg.p / (1.0 - self.cfg.p * f64::from(round % cycle))
        };
        self.is_head = ctx.rng().chance(threshold);
        if self.is_head {
            self.last_head_round = Some(round);
            let pos = ctx.pos();
            let adv = LeachMsg::Adv {
                head: ctx.id(),
                x: pos.x,
                y: pos.y,
            };
            ctx.send(None, Tier::Sensor, PacketKind::Control, adv.encode());
        }
        self.is_head
    }

    /// Phase 3 — member report (run after advertisements settled). Heads
    /// record their own reading locally instead of transmitting.
    pub fn report(&mut self, ctx: &mut Ctx<'_>) {
        let msg_id = self.next_msg_id;
        self.next_msg_id += 1;
        ctx.record_origination();
        let me = ctx.id();
        if self.is_head {
            self.collected.push((me, msg_id, ctx.now()));
            return;
        }
        let report = LeachMsg::Report {
            origin: me,
            msg_id,
            sent_at: ctx.now(),
            payload_len: self.cfg.payload_len,
        };
        match self.my_head {
            Some((head, head_pos)) => {
                let d = ctx.pos().dist(head_pos).min(self.cfg.max_boost_range);
                ctx.send_ranged(
                    Some(head),
                    Tier::Sensor,
                    PacketKind::Data,
                    report.encode(),
                    d,
                );
            }
            None => {
                // No head heard: direct to sink (original LEACH fallback).
                let d = ctx.pos().dist(self.cfg.sink_pos);
                if d <= self.cfg.max_boost_range {
                    ctx.send_ranged(
                        Some(self.cfg.sink),
                        Tier::Sensor,
                        PacketKind::Data,
                        report.encode(),
                        d,
                    );
                } else {
                    self.lost_reports += 1;
                }
            }
        }
    }

    /// Phase 4 — head flushes its aggregate to the sink.
    pub fn flush(&mut self, ctx: &mut Ctx<'_>) {
        if !self.is_head || self.collected.is_empty() {
            return;
        }
        let agg = LeachMsg::Aggregate {
            head: ctx.id(),
            entries: std::mem::take(&mut self.collected),
        };
        let d = ctx
            .pos()
            .dist(self.cfg.sink_pos)
            .min(self.cfg.max_boost_range);
        ctx.send_ranged(
            Some(self.cfg.sink),
            Tier::Sensor,
            PacketKind::Data,
            agg.encode(),
            d,
        );
    }

    /// Members this head collected so far (tests).
    pub fn collected_len(&self) -> usize {
        self.collected.len()
    }
}

impl Behavior for LeachSensor {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: &Packet) {
        let Ok(msg) = LeachMsg::decode(&pkt.payload) else {
            return;
        };
        match msg {
            LeachMsg::Adv { head, x, y } => {
                if self.is_head {
                    return;
                }
                let pos = Point::new(x, y);
                let better = match self.my_head {
                    None => true,
                    Some((_, current)) => ctx.pos().dist_sq(pos) < ctx.pos().dist_sq(current),
                };
                if better {
                    self.my_head = Some((head, pos));
                }
            }
            LeachMsg::Report {
                origin,
                msg_id,
                sent_at,
                ..
            } => {
                if self.is_head {
                    self.collected.push((origin, msg_id, sent_at));
                }
            }
            LeachMsg::Aggregate { .. } => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// LEACH sink: absorbs aggregates and stray direct reports.
pub struct LeachSink {
    /// Messages absorbed.
    pub absorbed: u64,
}

impl LeachSink {
    /// New sink.
    pub fn new() -> Self {
        LeachSink { absorbed: 0 }
    }

    /// Boxed, for `World::add_node`.
    pub fn boxed() -> Box<dyn Behavior> {
        Box::new(Self::new())
    }
}

impl Default for LeachSink {
    fn default() -> Self {
        Self::new()
    }
}

impl Behavior for LeachSink {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: &Packet) {
        let Ok(msg) = LeachMsg::decode(&pkt.payload) else {
            return;
        };
        match msg {
            LeachMsg::Aggregate { entries, .. } => {
                for (origin, msg_id, sent_at) in entries {
                    self.absorbed += 1;
                    ctx.record_delivery(origin, msg_id, sent_at, 2);
                }
            }
            LeachMsg::Report {
                origin,
                msg_id,
                sent_at,
                ..
            } => {
                self.absorbed += 1;
                ctx.record_delivery(origin, msg_id, sent_at, 1);
            }
            LeachMsg::Adv { .. } => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmsn_sim::{NodeConfig, World, WorldConfig};
    use wmsn_util::{NodeRole, Rect, SplitMix64};

    fn build(n: usize, seed: u64) -> (World, Vec<NodeId>, NodeId) {
        let mut w = World::new(WorldConfig::ideal(seed));
        let field = Rect::field(100.0, 100.0);
        let sink_pos = Point::new(50.0, 120.0);
        // The sink id will be n; configure sensors with it up front.
        let cfg = LeachConfig {
            p: 0.15,
            payload_len: 24,
            sink_pos,
            sink: NodeId(n as u32),
            max_boost_range: 400.0,
        };
        let mut rng = SplitMix64::new(seed);
        let mut sensors = Vec::new();
        for _ in 0..n {
            let pos = Point::new(
                rng.range_f64(field.min.x, field.max.x),
                rng.range_f64(field.min.y, field.max.y),
            );
            sensors.push(w.add_node(NodeConfig::sensor(pos, 100.0), LeachSensor::boxed(cfg)));
        }
        let sink = w.add_node(NodeConfig::gateway(sink_pos), LeachSink::boxed());
        assert_eq!(sink, cfg.sink);
        (w, sensors, sink)
    }

    fn run_round(w: &mut World, sensors: &[NodeId], round: u32) {
        for &s in sensors {
            w.with_behavior::<LeachSensor, _>(s, |b, ctx| {
                b.start_round(ctx, round);
            });
        }
        w.run_for(200_000); // advertisements settle
        for &s in sensors {
            w.with_behavior::<LeachSensor, _>(s, |b, ctx| b.report(ctx));
        }
        w.run_for(200_000); // reports settle
        for &s in sensors {
            w.with_behavior::<LeachSensor, _>(s, |b, ctx| b.flush(ctx));
        }
        w.run_for(200_000);
    }

    #[test]
    fn wire_roundtrips() {
        for msg in [
            LeachMsg::Adv {
                head: NodeId(4),
                x: 1.5,
                y: -2.25,
            },
            LeachMsg::Report {
                origin: NodeId(1),
                msg_id: 2,
                sent_at: 3,
                payload_len: 4,
            },
            LeachMsg::Aggregate {
                head: NodeId(9),
                entries: vec![(NodeId(1), 2, 3), (NodeId(4), 5, 6)],
            },
        ] {
            assert_eq!(LeachMsg::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn a_round_delivers_everyones_report() {
        let (mut w, sensors, _sink) = build(40, 3);
        w.start();
        run_round(&mut w, &sensors, 0);
        let m = w.metrics();
        assert_eq!(m.originated, 40);
        assert!(
            (m.delivery_ratio() - 1.0).abs() < 1e-9,
            "ratio {} with {} deliveries",
            m.delivery_ratio(),
            m.deliveries.len()
        );
    }

    #[test]
    fn head_fraction_approximates_p() {
        let (mut w, sensors, _sink) = build(200, 9);
        w.start();
        let mut heads = 0usize;
        for &s in &sensors {
            let is_head = w
                .with_behavior::<LeachSensor, _>(s, |b, ctx| b.start_round(ctx, 0))
                .unwrap();
            heads += is_head as usize;
        }
        let frac = heads as f64 / sensors.len() as f64;
        assert!((0.05..=0.30).contains(&frac), "head fraction {frac}");
    }

    #[test]
    fn heads_rotate_across_rounds() {
        let (mut w, sensors, _sink) = build(60, 5);
        w.start();
        let mut ever_heads: std::collections::HashSet<NodeId> = Default::default();
        for round in 0..10 {
            run_round(&mut w, &sensors, round);
            for &s in &sensors {
                if w.behavior_as::<LeachSensor>(s).unwrap().is_head {
                    ever_heads.insert(s);
                }
            }
        }
        // With p=0.15 over 10 rounds, far more than one round's worth of
        // distinct nodes must have served.
        assert!(
            ever_heads.len() > sensors.len() / 4,
            "only {} distinct heads",
            ever_heads.len()
        );
    }

    #[test]
    fn members_join_the_nearest_head() {
        let mut w = World::new(WorldConfig::ideal(1));
        let cfg = LeachConfig {
            p: 0.15,
            payload_len: 8,
            sink_pos: Point::new(500.0, 500.0),
            sink: NodeId(3),
            max_boost_range: 1000.0,
        };
        let member = w.add_node(
            NodeConfig::sensor(Point::new(0.0, 0.0), 100.0),
            LeachSensor::boxed(cfg),
        );
        let near = w.add_node(
            NodeConfig::sensor(Point::new(5.0, 0.0), 100.0),
            LeachSensor::boxed(cfg),
        );
        let far = w.add_node(
            NodeConfig::sensor(Point::new(9.0, 0.0), 100.0),
            LeachSensor::boxed(cfg),
        );
        let _sink = w.add_node(NodeConfig::gateway(cfg.sink_pos), LeachSink::boxed());
        w.start();
        // Force both candidates to head.
        for head in [near, far] {
            w.with_behavior::<LeachSensor, _>(head, |b, ctx| {
                b.is_head = true;
                let pos = ctx.pos();
                let adv = LeachMsg::Adv {
                    head: ctx.id(),
                    x: pos.x,
                    y: pos.y,
                };
                ctx.send(None, Tier::Sensor, PacketKind::Control, adv.encode());
            });
        }
        w.run_for(200_000);
        w.with_behavior::<LeachSensor, _>(member, |b, ctx| b.report(ctx));
        w.run_for(200_000);
        assert_eq!(
            w.behavior_as::<LeachSensor>(near).unwrap().collected_len(),
            1,
            "member must join the nearer head"
        );
        assert_eq!(
            w.behavior_as::<LeachSensor>(far).unwrap().collected_len(),
            0
        );
    }

    #[test]
    fn dead_head_silences_its_cluster() {
        // The §2.1 robustness argument: kill heads after the join phase;
        // their members' reports go nowhere.
        let (mut w, sensors, _sink) = build(40, 3);
        w.start();
        for &s in &sensors {
            w.with_behavior::<LeachSensor, _>(s, |b, ctx| {
                b.start_round(ctx, 0);
            });
        }
        w.run_for(200_000);
        // Kill every head now — members already joined.
        let heads: Vec<NodeId> = sensors
            .iter()
            .copied()
            .filter(|&s| w.behavior_as::<LeachSensor>(s).unwrap().is_head)
            .collect();
        assert!(!heads.is_empty());
        for &h in &heads {
            w.kill(h);
        }
        for &s in &sensors {
            w.with_behavior::<LeachSensor, _>(s, |b, ctx| b.report(ctx));
        }
        w.run_for(200_000);
        for &s in &sensors {
            w.with_behavior::<LeachSensor, _>(s, |b, ctx| b.flush(ctx));
        }
        w.run_for(200_000);
        let m = w.metrics();
        assert!(
            m.delivery_ratio() < 0.9,
            "killing heads must lose cluster traffic: ratio {}",
            m.delivery_ratio()
        );
    }

    #[test]
    fn orphan_members_fall_back_to_direct_transmission() {
        let mut w = World::new(WorldConfig::ideal(1));
        let cfg = LeachConfig {
            p: 0.15,
            payload_len: 8,
            sink_pos: Point::new(200.0, 0.0),
            sink: NodeId(1),
            max_boost_range: 400.0,
        };
        let lonely = w.add_node(
            NodeConfig::sensor(Point::new(0.0, 0.0), 100.0),
            LeachSensor::boxed(cfg),
        );
        let _sink = w.add_node(NodeConfig::gateway(cfg.sink_pos), LeachSink::boxed());
        w.start();
        // No heads anywhere; report directly.
        w.with_behavior::<LeachSensor, _>(lonely, |b, ctx| b.report(ctx));
        w.run_for(200_000);
        assert_eq!(w.metrics().deliveries.len(), 1);
        assert_eq!(w.metrics().deliveries[0].hops, 1);
    }

    #[test]
    fn boosted_sends_cost_distance_squared_energy() {
        use wmsn_sim::EnergyModel;
        let mut w = World::new(WorldConfig {
            energy: EnergyModel::first_order_default(),
            ..WorldConfig::ideal(1)
        });
        let cfg = LeachConfig {
            p: 1.0,
            payload_len: 8,
            sink_pos: Point::new(300.0, 0.0),
            sink: NodeId(1),
            max_boost_range: 400.0,
        };
        let head = w.add_node(
            NodeConfig::sensor(Point::new(0.0, 0.0), 100.0),
            LeachSensor::boxed(cfg),
        );
        let _sink = w.add_node(NodeConfig::gateway(cfg.sink_pos), LeachSink::boxed());
        w.start();
        w.with_behavior::<LeachSensor, _>(head, |b, ctx| {
            b.start_round(ctx, 0);
            b.report(ctx);
            b.flush(ctx);
        });
        w.run_for(500_000);
        let spent = w.metrics().energy_consumed[head.index()];
        // ε·d² term at 300 m dominates: 100 pJ/bit/m² · 8·size bits · 9e4 m².
        assert!(spent > 1e-4, "boosted send too cheap: {spent}");
        assert_eq!(w.metrics().deliveries.len(), 1);
        let _ = w.nodes_with_role(NodeRole::Gateway);
    }
}
