//! Flooding and gossiping — the classic flat baselines (§2.2.1).
//!
//! *Flooding*: every node rebroadcasts every data packet it has not seen,
//! bounded by a TTL. Robust and stateless, but exhibits the *implosion*
//! pathology the paper cites: O(n) transmissions per message.
//!
//! *Gossiping*: the flooding variant that forwards to **one randomly
//! selected neighbour** instead of all — avoids implosion but "message
//! propagation takes longer time" (and may miss the sink entirely).

use std::any::Any;
use wmsn_sim::{Behavior, Ctx, Packet, PacketKind, Tier};
use wmsn_trace::TraceEvent;
use wmsn_util::codec::{DecodeError, Reader, Writer};
use wmsn_util::seen::SeenTable;
use wmsn_util::NodeId;

/// Byte offsets of the mutable header fields (see [`FloodMsg::encode`]).
const OFF_HOPS: usize = 21;
const OFF_TTL: usize = 25;

/// Rebuild a received flood frame for forwarding without re-encoding:
/// copy the frame into `out` and patch the hops/ttl words in place. The
/// padding bytes are carried verbatim, so the result is byte-identical
/// to decode → bump → re-encode.
fn patch_forward(frame: &[u8], hops: u32, ttl: u32, out: &mut Vec<u8>) {
    out.clear();
    out.extend_from_slice(frame);
    out[OFF_HOPS..OFF_HOPS + 4].copy_from_slice(&hops.to_le_bytes());
    out[OFF_TTL..OFF_TTL + 4].copy_from_slice(&ttl.to_le_bytes());
}

/// Forwarding discipline.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FloodMode {
    /// Rebroadcast to all neighbours.
    Flood,
    /// Forward to one random neighbour.
    Gossip,
}

/// Flood/gossip frame.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FloodMsg {
    /// Source sensor.
    pub origin: NodeId,
    /// Source-unique id.
    pub msg_id: u64,
    /// Origination time (µs).
    pub sent_at: u64,
    /// Hops taken so far.
    pub hops: u32,
    /// Remaining time-to-live.
    pub ttl: u32,
    /// Payload padding size.
    pub payload_len: u16,
}

impl FloodMsg {
    /// Encode.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(30 + self.payload_len as usize);
        w.u8(0x10)
            .u32(self.origin.0)
            .u64(self.msg_id)
            .u64(self.sent_at)
            .u32(self.hops)
            .u32(self.ttl)
            .u16(self.payload_len);
        for _ in 0..self.payload_len {
            w.u8(0);
        }
        w.into_bytes()
    }

    /// Decode.
    pub fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let tag = r.u8()?;
        if tag != 0x10 {
            return Err(DecodeError::BadTag(tag));
        }
        let msg = FloodMsg {
            origin: NodeId(r.u32()?),
            msg_id: r.u64()?,
            sent_at: r.u64()?,
            hops: r.u32()?,
            ttl: r.u32()?,
            payload_len: r.u16()?,
        };
        let _ = r.raw(msg.payload_len as usize)?;
        r.finish()?;
        Ok(msg)
    }
}

/// Sensor behaviour for flooding/gossiping.
pub struct FloodSensor {
    mode: FloodMode,
    initial_ttl: u32,
    payload_len: u16,
    seen: SeenTable,
    next_msg_id: u64,
    /// Frames this node forwarded (implosion measurement).
    pub forwarded: u64,
}

impl FloodSensor {
    /// New sensor with the given mode and TTL.
    pub fn new(mode: FloodMode, initial_ttl: u32, payload_len: u16) -> Self {
        FloodSensor {
            mode,
            initial_ttl,
            payload_len,
            seen: SeenTable::new(),
            next_msg_id: 0,
            forwarded: 0,
        }
    }

    /// Boxed, for `World::add_node`.
    pub fn boxed(mode: FloodMode, initial_ttl: u32) -> Box<dyn Behavior> {
        Box::new(Self::new(mode, initial_ttl, 24))
    }

    /// Originate one message.
    pub fn originate(&mut self, ctx: &mut Ctx<'_>) {
        let msg = FloodMsg {
            origin: ctx.id(),
            msg_id: self.next_msg_id,
            sent_at: ctx.now(),
            hops: 1,
            ttl: self.initial_ttl,
            payload_len: self.payload_len,
        };
        self.next_msg_id += 1;
        self.seen.insert(msg.origin.0, msg.msg_id);
        ctx.record_origination();
        self.emit(ctx, &msg);
    }

    fn emit(&mut self, ctx: &mut Ctx<'_>, msg: &FloodMsg) {
        match self.mode {
            FloodMode::Flood => {
                if ctx.trace_enabled() {
                    ctx.trace(TraceEvent::Forward {
                        t: ctx.now(),
                        node: ctx.id(),
                        origin: msg.origin,
                        msg_id: msg.msg_id,
                        next: None,
                        hops: msg.hops,
                    });
                }
                ctx.send(None, Tier::Sensor, PacketKind::Data, msg.encode());
            }
            FloodMode::Gossip => {
                let neighbors = ctx.neighbors(Tier::Sensor);
                if neighbors.is_empty() {
                    return;
                }
                let pick = neighbors[ctx.rng().next_index(neighbors.len())];
                if ctx.trace_enabled() {
                    ctx.trace(TraceEvent::Forward {
                        t: ctx.now(),
                        node: ctx.id(),
                        origin: msg.origin,
                        msg_id: msg.msg_id,
                        next: Some(pick),
                        hops: msg.hops,
                    });
                }
                ctx.send(Some(pick), Tier::Sensor, PacketKind::Data, msg.encode());
            }
        }
    }
}

impl Behavior for FloodSensor {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: &Packet) {
        let Ok(msg) = FloodMsg::decode(&pkt.payload) else {
            return;
        };
        // Flooding drops duplicates; gossiping is a random walk, so a
        // revisited node keeps the walk alive (otherwise walks die on the
        // first loop and nothing ever propagates far).
        if self.mode == FloodMode::Flood && !self.seen.insert(msg.origin.0, msg.msg_id) {
            return;
        }
        if msg.ttl == 0 {
            return;
        }
        let (fwd_hops, fwd_ttl) = (msg.hops + 1, msg.ttl - 1);
        self.forwarded += 1;
        match self.mode {
            FloodMode::Flood => {
                if ctx.trace_enabled() {
                    ctx.trace(TraceEvent::Forward {
                        t: ctx.now(),
                        node: ctx.id(),
                        origin: msg.origin,
                        msg_id: msg.msg_id,
                        next: None,
                        hops: fwd_hops,
                    });
                }
                let mut buf = ctx.take_scratch();
                patch_forward(&pkt.payload, fwd_hops, fwd_ttl, &mut buf);
                ctx.send(None, Tier::Sensor, PacketKind::Data, &buf[..]);
                ctx.put_scratch(buf);
            }
            FloodMode::Gossip => {
                // Non-backtracking step where possible.
                let neighbors: Vec<_> = ctx
                    .neighbors(Tier::Sensor)
                    .into_iter()
                    .filter(|&n| n != pkt.src)
                    .collect();
                let all = if neighbors.is_empty() {
                    ctx.neighbors(Tier::Sensor)
                } else {
                    neighbors
                };
                if all.is_empty() {
                    return;
                }
                let pick = all[ctx.rng().next_index(all.len())];
                if ctx.trace_enabled() {
                    ctx.trace(TraceEvent::Forward {
                        t: ctx.now(),
                        node: ctx.id(),
                        origin: msg.origin,
                        msg_id: msg.msg_id,
                        next: Some(pick),
                        hops: fwd_hops,
                    });
                }
                let mut buf = ctx.take_scratch();
                patch_forward(&pkt.payload, fwd_hops, fwd_ttl, &mut buf);
                ctx.send(Some(pick), Tier::Sensor, PacketKind::Data, &buf[..]);
                ctx.put_scratch(buf);
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Sink behaviour: records deliveries, drops duplicates.
pub struct FloodSink {
    seen: SeenTable,
    /// Messages absorbed.
    pub absorbed: u64,
}

impl FloodSink {
    /// New sink.
    pub fn new() -> Self {
        FloodSink {
            seen: SeenTable::new(),
            absorbed: 0,
        }
    }

    /// Boxed, for `World::add_node`.
    pub fn boxed() -> Box<dyn Behavior> {
        Box::new(Self::new())
    }
}

impl Default for FloodSink {
    fn default() -> Self {
        Self::new()
    }
}

impl Behavior for FloodSink {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: &Packet) {
        let Ok(msg) = FloodMsg::decode(&pkt.payload) else {
            return;
        };
        if !self.seen.insert(msg.origin.0, msg.msg_id) {
            return;
        }
        self.absorbed += 1;
        ctx.record_delivery(msg.origin, msg.msg_id, msg.sent_at, msg.hops);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmsn_sim::{NodeConfig, World, WorldConfig};
    use wmsn_util::Point;

    /// Test worlds use a 10 m sensor range so 10 m-spaced chains are
    /// genuine multi-hop topologies.
    fn short_range(seed: u64) -> WorldConfig {
        let mut c = WorldConfig::ideal(seed);
        c.sensor_phy.range_m = 10.0;
        c
    }

    fn grid_world(mode: FloodMode) -> (World, Vec<NodeId>, NodeId) {
        let mut w = World::new(short_range(5));
        let mut sensors = Vec::new();
        for y in 0..4 {
            for x in 0..4 {
                sensors.push(w.add_node(
                    NodeConfig::sensor(Point::new(x as f64 * 9.0, y as f64 * 9.0), 100.0),
                    FloodSensor::boxed(mode, 16),
                ));
            }
        }
        let sink = w.add_node(
            NodeConfig::gateway(Point::new(36.0, 27.0)),
            FloodSink::boxed(),
        );
        (w, sensors, sink)
    }

    #[test]
    fn wire_roundtrip() {
        let msg = FloodMsg {
            origin: NodeId(3),
            msg_id: 9,
            sent_at: 77,
            hops: 2,
            ttl: 5,
            payload_len: 10,
        };
        assert_eq!(FloodMsg::decode(&msg.encode()).unwrap(), msg);
        assert!(FloodMsg::decode(&[0x11, 0, 0]).is_err());
    }

    #[test]
    fn flooding_always_delivers_on_connected_fields() {
        let (mut w, sensors, _sink) = grid_world(FloodMode::Flood);
        w.start();
        w.with_behavior::<FloodSensor, _>(sensors[0], |s, ctx| s.originate(ctx));
        w.run_until(5_000_000);
        assert_eq!(w.metrics().deliveries.len(), 1);
        assert!((w.metrics().delivery_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn flooding_implodes_with_n_transmissions_per_message() {
        let (mut w, sensors, _sink) = grid_world(FloodMode::Flood);
        w.start();
        w.with_behavior::<FloodSensor, _>(sensors[0], |s, ctx| s.originate(ctx));
        w.run_until(5_000_000);
        // Every one of the 16 sensors transmits once: 16 data frames for
        // one delivered message — the implosion the paper criticises.
        assert_eq!(w.metrics().sent_data, 16);
    }

    #[test]
    fn gossip_uses_far_fewer_transmissions() {
        let (mut w, sensors, _sink) = grid_world(FloodMode::Gossip);
        w.start();
        w.with_behavior::<FloodSensor, _>(sensors[0], |s, ctx| s.originate(ctx));
        w.run_until(5_000_000);
        // One unicast per hop, bounded by the TTL.
        assert!(w.metrics().sent_data <= 17);
    }

    #[test]
    fn gossip_delivery_is_unreliable_but_sometimes_succeeds() {
        // Over many seeds, gossip should deliver sometimes and fail
        // sometimes on a 4×4 grid with TTL 16.
        let mut delivered = 0;
        let trials = 30;
        for seed in 0..trials {
            let mut w = World::new(short_range(seed));
            let mut first = None;
            for y in 0..4 {
                for x in 0..4 {
                    let id = w.add_node(
                        NodeConfig::sensor(Point::new(x as f64 * 9.0, y as f64 * 9.0), 100.0),
                        FloodSensor::boxed(FloodMode::Gossip, 16),
                    );
                    first.get_or_insert(id);
                }
            }
            let _sink = w.add_node(
                NodeConfig::gateway(Point::new(36.0, 27.0)),
                FloodSink::boxed(),
            );
            w.start();
            w.with_behavior::<FloodSensor, _>(first.unwrap(), |s, ctx| s.originate(ctx));
            w.run_until(5_000_000);
            delivered += w.metrics().deliveries.len();
        }
        assert!(delivered > 0, "gossip never delivered in {trials} trials");
        assert!(
            (delivered as u64) < trials,
            "gossip delivered every time — too reliable for a random walk"
        );
    }

    #[test]
    fn ttl_bounds_propagation() {
        // TTL 1: only direct neighbours of the source transmit.
        let mut w = World::new(short_range(5));
        let mut ids = Vec::new();
        for i in 0..5 {
            ids.push(w.add_node(
                NodeConfig::sensor(Point::new(i as f64 * 9.0, 0.0), 100.0),
                FloodSensor::boxed(FloodMode::Flood, 1),
            ));
        }
        w.start();
        w.with_behavior::<FloodSensor, _>(ids[0], |s, ctx| s.originate(ctx));
        w.run_until(5_000_000);
        // Source + its sole neighbour; the neighbour's neighbour gets
        // ttl=0 and stops.
        assert_eq!(w.metrics().sent_data, 2);
    }

    #[test]
    fn duplicate_frames_are_not_reforwarded() {
        let (mut w, sensors, _sink) = grid_world(FloodMode::Flood);
        w.start();
        w.with_behavior::<FloodSensor, _>(sensors[5], |s, ctx| s.originate(ctx));
        w.run_until(5_000_000);
        for &s in &sensors {
            let f = w.behavior_as::<FloodSensor>(s).unwrap().forwarded;
            assert!(f <= 1, "a node forwarded the same message twice");
        }
    }

    #[test]
    fn sink_dedups_multiple_arrivals() {
        let (mut w, sensors, sink) = grid_world(FloodMode::Flood);
        w.start();
        w.with_behavior::<FloodSensor, _>(sensors[0], |s, ctx| s.originate(ctx));
        w.run_until(5_000_000);
        assert_eq!(w.behavior_as::<FloodSink>(sink).unwrap().absorbed, 1);
    }
}
