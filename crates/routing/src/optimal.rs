//! The optimal network-lifetime upper bound (§5.3, eqs. 1–6).
//!
//! The paper formulates maximal-lifetime routing as a constrained
//! optimisation ("accurately resolving above goal is rather complex
//! because it probably is a NP problem") and offers MLR as a heuristic.
//! To *measure* how close MLR gets (experiment E3), we compute the exact
//! optimum of the underlying flow relaxation:
//!
//! Find the largest `R` (rounds) such that a flow exists delivering
//! `R·T` packets from every sensor to some gateway where each sensor's
//! energy budget is respected: `E_t·out_i + E_r·(out_i − g_i) ≤ E`, i.e.
//! node throughput `out_i ≤ (E + E_r·g_i)/(E_t + E_r)` with `g_i = R·T`.
//!
//! Feasibility of a given `R` is a max-flow problem on the node-split
//! graph (source → sensorᵢⁿ (cap `g_i`), sensorᵢⁿ → sensorᵒᵘᵗ (cap from
//! the energy budget), radio links at ∞, gateways → sink at ∞); we binary
//! search `R` with a Dinic max-flow oracle. The result upper-bounds every
//! realisable protocol, because real protocols also pay discovery
//! overhead and route integrally.

use wmsn_topology::Topology;

/// Dinic max-flow over `f64` capacities.
struct Dinic {
    /// (to, cap, rev-index)
    graph: Vec<Vec<(usize, f64, usize)>>,
    level: Vec<i32>,
    iter: Vec<usize>,
}

const EPS: f64 = 1e-9;

impl Dinic {
    fn new(n: usize) -> Self {
        Dinic {
            graph: vec![Vec::new(); n],
            level: vec![0; n],
            iter: vec![0; n],
        }
    }

    fn add_edge(&mut self, from: usize, to: usize, cap: f64) {
        let rev_from = self.graph[to].len();
        let rev_to = self.graph[from].len();
        self.graph[from].push((to, cap, rev_from));
        self.graph[to].push((from, 0.0, rev_to));
    }

    fn bfs(&mut self, s: usize, t: usize) -> bool {
        self.level.iter_mut().for_each(|l| *l = -1);
        let mut queue = std::collections::VecDeque::from([s]);
        self.level[s] = 0;
        while let Some(v) = queue.pop_front() {
            for &(to, cap, _) in &self.graph[v] {
                if cap > EPS && self.level[to] < 0 {
                    self.level[to] = self.level[v] + 1;
                    queue.push_back(to);
                }
            }
        }
        self.level[t] >= 0
    }

    fn dfs(&mut self, v: usize, t: usize, f: f64) -> f64 {
        if v == t {
            return f;
        }
        while self.iter[v] < self.graph[v].len() {
            let (to, cap, rev) = self.graph[v][self.iter[v]];
            if cap > EPS && self.level[v] < self.level[to] {
                let d = self.dfs(to, t, f.min(cap));
                if d > EPS {
                    self.graph[v][self.iter[v]].1 -= d;
                    self.graph[to][rev].1 += d;
                    return d;
                }
            }
            self.iter[v] += 1;
        }
        0.0
    }

    fn max_flow(&mut self, s: usize, t: usize) -> f64 {
        let mut flow = 0.0;
        while self.bfs(s, t) {
            self.iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let f = self.dfs(s, t, f64::INFINITY);
                if f <= EPS {
                    break;
                }
                flow += f;
            }
        }
        flow
    }
}

/// Whether `rounds` rounds are feasible for the given energy parameters.
fn feasible(
    topo: &Topology,
    adj: &[Vec<usize>],
    battery_j: f64,
    e_t: f64,
    e_r: f64,
    packets_per_round: f64,
    rounds: f64,
) -> bool {
    let ns = topo.sensors.len();
    let ng = topo.gateways.len();
    if ns == 0 {
        return true;
    }
    if ng == 0 {
        return false;
    }
    let g = rounds * packets_per_round; // packets each sensor must inject
                                        // Vertices: 0 = source, 1 = sink, sensors in: 2+i, sensors out:
                                        // 2+ns+i, gateways: 2+2ns+j.
    let v_in = |i: usize| 2 + i;
    let v_out = |i: usize| 2 + ns + i;
    let v_gw = |j: usize| 2 + 2 * ns + j;
    let mut dinic = Dinic::new(2 + 2 * ns + ng);
    let inf = f64::INFINITY;
    #[allow(clippy::needless_range_loop)] // i is a vertex id used in 3 roles
    for i in 0..ns {
        dinic.add_edge(0, v_in(i), g);
        let cap = (battery_j + e_r * g) / (e_t + e_r);
        dinic.add_edge(v_in(i), v_out(i), cap);
        for &nb in &adj[i] {
            if nb < ns {
                dinic.add_edge(v_out(i), v_in(nb), inf);
            } else {
                dinic.add_edge(v_out(i), v_gw(nb - ns), inf);
            }
        }
    }
    for j in 0..ng {
        dinic.add_edge(v_gw(j), 1, inf);
    }
    let need = g * ns as f64;
    let flow = dinic.max_flow(0, 1);
    flow >= need * (1.0 - 1e-6)
}

/// The maximum (fractional) number of rounds before any sensor must
/// exceed its energy budget — the optimal-lifetime upper bound.
///
/// * `battery_j` — per-sensor energy budget (J).
/// * `e_t`/`e_r` — energy per transmitted/received packet (J), the
///   paper's per-packet model.
/// * `packets_per_round` — `T` in eq. (3).
///
/// Returns 0 if any sensor cannot reach a gateway at all.
pub fn optimal_lifetime_rounds(
    topo: &Topology,
    battery_j: f64,
    e_t: f64,
    e_r: f64,
    packets_per_round: f64,
) -> f64 {
    assert!(e_t > 0.0 && e_r >= 0.0 && packets_per_round > 0.0);
    let adj = topo.adjacency();
    // Upper bound: every packet costs at least one transmission at its
    // origin, so R ≤ E / (E_t · T).
    let hi0 = battery_j / (e_t * packets_per_round);
    // Reachability gate: a sensor that cannot reach any gateway makes
    // every positive round count infeasible.
    let hf = wmsn_topology::connectivity::HopField::compute(topo);
    if !hf.all_sensors_covered(topo.sensors.len()) || topo.gateways.is_empty() {
        return 0.0;
    }
    let (mut lo, mut hi) = (0.0, hi0);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if feasible(topo, &adj, battery_j, e_t, e_r, packets_per_round, mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmsn_util::{Point, Rect};

    fn topo(sensors: Vec<Point>, gateways: Vec<Point>) -> Topology {
        Topology::new(sensors, gateways, Rect::field(200.0, 200.0), 10.0)
    }

    #[test]
    fn single_sensor_adjacent_to_gateway() {
        // One sensor one hop from the gateway: every round costs exactly
        // E_t per packet; optimum = E / (E_t · T).
        let t = topo(vec![Point::new(0.0, 0.0)], vec![Point::new(5.0, 0.0)]);
        let r = optimal_lifetime_rounds(&t, 1.0, 1e-3, 1e-3, 1.0);
        assert!((r - 1000.0).abs() < 1.0, "expected ~1000 rounds, got {r}");
    }

    #[test]
    fn relay_node_halves_its_own_budget() {
        // Chain S0 — S1 — G. S1 relays S0's packets (E_r + E_t each) plus
        // its own (E_t). Per round with T=1: S1 spends E_t·2 + E_r·1 =
        // 3 mJ; S1 dies first at E/3e-3 rounds.
        let t = topo(
            vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)],
            vec![Point::new(20.0, 0.0)],
        );
        let r = optimal_lifetime_rounds(&t, 1.0, 1e-3, 1e-3, 1.0);
        assert!(
            (r - 1000.0 / 3.0).abs() < 1.0,
            "expected ~333 rounds, got {r}"
        );
    }

    #[test]
    fn two_gateways_split_the_relay_burden() {
        // S0 — S1 — G, plus a second gateway adjacent to S0: now S0 sends
        // its own packets directly (1 mJ/round) and S1 does too; nobody
        // relays. Optimum doubles the chain's 333 → 1000.
        let t = topo(
            vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)],
            vec![Point::new(20.0, 0.0), Point::new(-7.0, 0.0)],
        );
        let r = optimal_lifetime_rounds(&t, 1.0, 1e-3, 1e-3, 1.0);
        assert!((r - 1000.0).abs() < 1.0, "expected ~1000 rounds, got {r}");
    }

    #[test]
    fn flow_splitting_beats_any_single_path() {
        // A diamond: S — (A|B) — G. The middle relays can share S's load,
        // so the bound must exceed the single-path lifetime.
        // S(0,0); A(8,6); B(8,-6); G(16,0). Range 10: S↔A, S↔B, A↔G, B↔G.
        let t = topo(
            vec![
                Point::new(0.0, 0.0),
                Point::new(8.0, 6.0),
                Point::new(8.0, -6.0),
            ],
            vec![Point::new(16.0, 0.0)],
        );
        let r = optimal_lifetime_rounds(&t, 1.0, 1e-3, 1e-3, 1.0);
        // Single path: the chosen relay spends 3 mJ per round → 333.
        // Split: each relay spends E_t(1 + 0.5) + E_r·0.5 = 2 mJ → 500.
        assert!(r > 450.0, "flow splitting not exploited: {r}");
        assert!(r < 550.0, "bound too loose: {r}");
    }

    #[test]
    fn disconnected_sensor_means_zero_lifetime() {
        let t = topo(
            vec![Point::new(0.0, 0.0), Point::new(150.0, 150.0)],
            vec![Point::new(5.0, 0.0)],
        );
        assert_eq!(optimal_lifetime_rounds(&t, 1.0, 1e-3, 1e-3, 1.0), 0.0);
    }

    #[test]
    fn no_gateways_means_zero_lifetime() {
        let t = topo(vec![Point::new(0.0, 0.0)], vec![]);
        assert_eq!(optimal_lifetime_rounds(&t, 1.0, 1e-3, 1e-3, 1.0), 0.0);
    }

    #[test]
    fn more_traffic_shortens_lifetime_proportionally() {
        let t = topo(vec![Point::new(0.0, 0.0)], vec![Point::new(5.0, 0.0)]);
        let r1 = optimal_lifetime_rounds(&t, 1.0, 1e-3, 1e-3, 1.0);
        let r4 = optimal_lifetime_rounds(&t, 1.0, 1e-3, 1e-3, 4.0);
        assert!((r1 / r4 - 4.0).abs() < 0.01);
    }

    #[test]
    fn free_receive_energy_only_helps() {
        let t = topo(
            vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)],
            vec![Point::new(20.0, 0.0)],
        );
        let with_rx = optimal_lifetime_rounds(&t, 1.0, 1e-3, 1e-3, 1.0);
        let free_rx = optimal_lifetime_rounds(&t, 1.0, 1e-3, 0.0, 1.0);
        assert!(free_rx > with_rx);
        // Free receive: relay spends 2·E_t per round → 500 rounds.
        assert!((free_rx - 500.0).abs() < 1.0);
    }

    #[test]
    fn bound_dominates_a_simulated_mlr_run_shape() {
        // Not a simulation here — just the monotone sanity that adding a
        // gateway can only raise the optimum.
        let sensors: Vec<Point> = (0..10).map(|i| Point::new(i as f64 * 9.0, 0.0)).collect();
        let one = topo(sensors.clone(), vec![Point::new(-5.0, 0.0)]);
        let two = topo(sensors, vec![Point::new(-5.0, 0.0), Point::new(86.0, 0.0)]);
        let r1 = optimal_lifetime_rounds(&one, 1.0, 1e-3, 1e-3, 1.0);
        let r2 = optimal_lifetime_rounds(&two, 1.0, 1e-3, 1e-3, 1.0);
        assert!(
            r2 > r1 * 1.5,
            "second gateway should help a chain: {r1} → {r2}"
        );
    }
}
