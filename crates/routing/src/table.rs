//! Routing-table types shared by SPR and MLR.
//!
//! A table entry remembers, per destination gateway (SPR) or per feasible
//! place (MLR), the full sensor path from this node to the gateway. The
//! full path — not just the next hop — is stored because §5.2 step 3.1
//! requires intermediate nodes to *answer* queries by appending their
//! cached path, and Property 1 guarantees cached sub-paths of shortest
//! paths are themselves shortest.

use wmsn_util::NodeId;

/// One cached route from this node to a gateway.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Route {
    /// Destination gateway.
    pub gateway: NodeId,
    /// Feasible place id of the gateway ([`crate::wire::NO_PLACE`] under
    /// SPR, which does not model places).
    pub place: u16,
    /// Sensor path from this node (exclusive) to the gateway (exclusive):
    /// the intermediate relays. Empty = the gateway is one hop away.
    pub relays: Vec<NodeId>,
    /// Residual battery (per mille) of the weakest relay on this route at
    /// discovery time; 1000 when unknown/fresh.
    pub energy_pm: u16,
}

impl Route {
    /// Number of radio hops this route takes (`relays + 1`).
    pub fn hops(&self) -> u32 {
        self.relays.len() as u32 + 1
    }

    /// The next node toward the gateway.
    pub fn next_hop(&self) -> NodeId {
        self.relays.first().copied().unwrap_or(self.gateway)
    }
}

/// A per-node routing table keyed by feasible place (MLR) or by gateway
/// id (SPR, via [`crate::wire::NO_PLACE`]-placed entries keyed on the
/// gateway).
#[derive(Clone, Debug, Default)]
pub struct RoutingTable {
    entries: Vec<Route>,
}

impl RoutingTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries — the paper's "|P| entries" invariant (§5.3)
    /// is asserted against this.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries.
    pub fn iter(&self) -> impl Iterator<Item = &Route> {
        self.entries.iter()
    }

    /// Insert or replace. Entries are keyed by `place` when it is a real
    /// place, else by `gateway`. Replacement keeps the better (fewer-hop)
    /// route unless `force` is set (used when topology changed).
    pub fn upsert(&mut self, route: Route, force: bool) {
        let key_match = |r: &Route| {
            if route.place != crate::wire::NO_PLACE {
                r.place == route.place
            } else {
                r.gateway == route.gateway
            }
        };
        if let Some(existing) = self.entries.iter_mut().find(|r| key_match(r)) {
            if force || route.hops() < existing.hops() {
                *existing = route;
            }
        } else {
            self.entries.push(route);
        }
    }

    /// Look up by place id.
    pub fn by_place(&self, place: u16) -> Option<&Route> {
        self.entries.iter().find(|r| r.place == place)
    }

    /// Look up by gateway id.
    pub fn by_gateway(&self, gateway: NodeId) -> Option<&Route> {
        self.entries.iter().find(|r| r.gateway == gateway)
    }

    /// The minimum-hop entry among `allowed` places — MLR's per-round
    /// selection ("select the best path from m entries which respond to m
    /// deployed places", §5.3). Ties break toward the lower place id, like
    /// the multi-source BFS the analytic experiments use.
    pub fn best_among_places(&self, allowed: &[u16]) -> Option<&Route> {
        self.entries
            .iter()
            .filter(|r| allowed.contains(&r.place))
            .min_by_key(|r| (r.hops(), r.place))
    }

    /// The minimum-hop entry over all entries — SPR's selection (§5.2
    /// step 4). Ties break toward the lower gateway id.
    pub fn best(&self) -> Option<&Route> {
        self.entries.iter().min_by_key(|r| (r.hops(), r.gateway))
    }

    /// Energy-aware selection (the §5.3 balance objective): among entries
    /// for `allowed` places within `slack` hops of the minimum, pick the
    /// route whose weakest relay has the most residual energy; ties break
    /// toward fewer hops, then the lower place id.
    pub fn best_energy_aware(&self, allowed: &[u16], slack: u32) -> Option<&Route> {
        let min_hops = self
            .entries
            .iter()
            .filter(|r| allowed.contains(&r.place))
            .map(|r| r.hops())
            .min()?;
        self.entries
            .iter()
            .filter(|r| allowed.contains(&r.place) && r.hops() <= min_hops + slack)
            .min_by_key(|r| (std::cmp::Reverse(r.energy_pm), r.hops(), r.place))
    }

    /// Drop every entry (SPR's per-round reset).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Remove entries routing through or to a node believed dead
    /// (failover support). Returns how many were dropped.
    pub fn purge_via(&mut self, bad: NodeId) -> usize {
        let before = self.entries.len();
        self.entries
            .retain(|r| r.gateway != bad && !r.relays.contains(&bad));
        before - self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::NO_PLACE;

    fn route(gw: u32, place: u16, relays: &[u32]) -> Route {
        Route {
            gateway: NodeId(gw),
            place,
            relays: relays.iter().map(|&r| NodeId(r)).collect(),
            energy_pm: 1000,
        }
    }

    #[test]
    fn hops_and_next_hop() {
        let r = route(9, 0, &[1, 2, 3]);
        assert_eq!(r.hops(), 4);
        assert_eq!(r.next_hop(), NodeId(1));
        let direct = route(9, 0, &[]);
        assert_eq!(direct.hops(), 1);
        assert_eq!(direct.next_hop(), NodeId(9));
    }

    #[test]
    fn upsert_keyed_by_place_keeps_better_route() {
        let mut t = RoutingTable::new();
        t.upsert(route(9, 2, &[1, 2, 3]), false);
        assert_eq!(t.len(), 1);
        // Worse route for the same place: ignored.
        t.upsert(route(8, 2, &[1, 2, 3, 4]), false);
        assert_eq!(t.by_place(2).unwrap().gateway, NodeId(9));
        // Better route: replaces.
        t.upsert(route(8, 2, &[1]), false);
        assert_eq!(t.by_place(2).unwrap().gateway, NodeId(8));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn force_replaces_even_with_worse_route() {
        let mut t = RoutingTable::new();
        t.upsert(route(9, 2, &[1]), false);
        t.upsert(route(9, 2, &[1, 2, 3]), true);
        assert_eq!(t.by_place(2).unwrap().hops(), 4);
    }

    #[test]
    fn spr_entries_are_keyed_by_gateway() {
        let mut t = RoutingTable::new();
        t.upsert(route(9, NO_PLACE, &[1]), false);
        t.upsert(route(10, NO_PLACE, &[1, 2]), false);
        assert_eq!(t.len(), 2);
        assert_eq!(t.by_gateway(NodeId(10)).unwrap().hops(), 3);
        // Same gateway again: dedups.
        t.upsert(route(9, NO_PLACE, &[]), false);
        assert_eq!(t.len(), 2);
        assert_eq!(t.by_gateway(NodeId(9)).unwrap().hops(), 1);
    }

    #[test]
    fn best_among_places_is_the_table1_selection() {
        // Table 1 round 2: places {A=0, C=2, D=3} with hops 8, 7, 5 → D.
        let mut t = RoutingTable::new();
        t.upsert(route(100, 0, [0; 7].as_slice()), false);
        t.upsert(route(101, 1, [0; 5].as_slice()), false);
        t.upsert(route(102, 2, [0; 6].as_slice()), false);
        t.upsert(route(103, 3, [0; 4].as_slice()), false);
        let best = t.best_among_places(&[0, 2, 3]).unwrap();
        assert_eq!(best.place, 3);
        assert_eq!(best.hops(), 5);
        // B (place 1, 6 hops) is in the table but not deployed: excluded.
        assert_eq!(t.best().unwrap().place, 3);
    }

    #[test]
    fn best_ties_break_deterministically() {
        let mut t = RoutingTable::new();
        t.upsert(route(100, 4, &[1]), false);
        t.upsert(route(101, 1, &[2]), false);
        assert_eq!(t.best_among_places(&[1, 4]).unwrap().place, 1);
    }

    #[test]
    fn best_of_empty_is_none() {
        let t = RoutingTable::new();
        assert!(t.best().is_none());
        assert!(t.best_among_places(&[0, 1]).is_none());
    }

    #[test]
    fn purge_via_drops_routes_through_dead_nodes() {
        let mut t = RoutingTable::new();
        t.upsert(route(100, 0, &[1, 2]), false);
        t.upsert(route(101, 1, &[3]), false);
        t.upsert(route(2, 2, &[]), false); // gateway IS the dead node
        assert_eq!(t.purge_via(NodeId(2)), 2);
        assert_eq!(t.len(), 1);
        assert!(t.by_place(1).is_some());
    }

    #[test]
    fn energy_aware_prefers_fresh_relays_within_slack() {
        let mut t = RoutingTable::new();
        // Place 0: 3 hops, weakest relay at 90% — the min-hop route.
        let mut a = route(100, 0, &[1, 2]);
        a.energy_pm = 900;
        // Place 1: 4 hops, weakest relay at 95%.
        let mut b = route(101, 1, &[3, 4, 5]);
        b.energy_pm = 950;
        // Place 2: 6 hops, pristine — outside slack 1.
        let mut c = route(102, 2, &[4, 5, 6, 7, 8]);
        c.energy_pm = 1000;
        t.upsert(a, false);
        t.upsert(b, false);
        t.upsert(c, false);
        let allowed = [0, 1, 2];
        // Slack 0: pure min-hop → place 0.
        assert_eq!(t.best_energy_aware(&allowed, 0).unwrap().place, 0);
        // Slack 1: place 1's fresher bottleneck wins.
        assert_eq!(t.best_energy_aware(&allowed, 1).unwrap().place, 1);
        // Slack 99: pristine place 2 wins.
        assert_eq!(t.best_energy_aware(&allowed, 99).unwrap().place, 2);
        // Restricted place set is honoured.
        assert_eq!(t.best_energy_aware(&[0], 99).unwrap().place, 0);
        assert!(t.best_energy_aware(&[7], 99).is_none());
    }

    #[test]
    fn clear_resets_for_the_next_round() {
        let mut t = RoutingTable::new();
        t.upsert(route(9, 0, &[]), false);
        t.clear();
        assert!(t.is_empty());
    }
}
