//! Link-state routing for the wireless-mesh backbone (Fig. 1's middle
//! tier).
//!
//! The paper treats mesh routing as a solved substrate ("mesh network
//! routing in middle layer has been well researched", §5) but the
//! three-layer architecture cannot run without one, so we implement a
//! compact link-state protocol in the OLSR/OSPF family:
//!
//! 1. **Hello** — every mesh node (WMG, WMR, base station) broadcasts a
//!    hello at start-up; hearers record the sender as a neighbour
//!    (unit-disk links are symmetric).
//! 2. **LSA flooding** — after the hello phase each node floods a
//!    sequence-numbered link-state advertisement listing its neighbours;
//!    every node assembles the same topology database.
//! 3. **Forwarding** — unicast hop-by-hop along BFS shortest paths
//!    computed from the database on demand (links are unit cost, matching
//!    the hop-count objective used everywhere else in the paper).
//!
//! [`MeshRouter`] is a composable component (not a [`Behavior`]) so a WMG
//! can run it *beside* its sensor-tier gateway protocol; [`MeshNode`]
//! wraps it as a standalone behaviour for WMRs and base stations, with
//! delivered payloads handed to a pluggable sink hook.

use std::any::Any;
use std::collections::{HashMap, HashSet, VecDeque};
use wmsn_sim::{Behavior, Ctx, Packet, PacketKind, Tier};
use wmsn_util::codec::{DecodeError, Reader, Writer};
use wmsn_util::NodeId;

const TAG_HELLO: u8 = 0x40;
const TAG_LSA: u8 = 0x41;
const TAG_MESH_DATA: u8 = 0x42;

/// Fixed byte offsets of the data-frame header (see [`MeshMsg::encode`]):
/// `| 1 tag | 4 dst | 4 src | 4 hops | 2 inner_len | inner… |`.
const DATA_HOPS: usize = 9;
const DATA_INNER_LEN: usize = 13;
const DATA_HEADER: usize = 15;

/// Validate a backbone data frame from its fixed-offset header alone and
/// return `(dst, src, hops)`. Accepts exactly the frames
/// [`MeshMsg::decode`] accepts as `Data` — the inner payload is opaque,
/// so checking the declared length against the frame length is total
/// validation. Transit nodes use this to forward by patching the hops
/// word without ever materialising the inner payload.
fn peek_data(b: &[u8]) -> Option<(NodeId, NodeId, u32)> {
    if b.len() < DATA_HEADER || b[0] != TAG_MESH_DATA {
        return None;
    }
    let inner_len =
        u16::from_le_bytes(b[DATA_INNER_LEN..DATA_INNER_LEN + 2].try_into().unwrap()) as usize;
    if b.len() != DATA_HEADER + inner_len {
        return None;
    }
    let dst = NodeId(u32::from_le_bytes(b[1..5].try_into().unwrap()));
    let src = NodeId(u32::from_le_bytes(b[5..9].try_into().unwrap()));
    let hops = u32::from_le_bytes(b[DATA_HOPS..DATA_HOPS + 4].try_into().unwrap());
    Some((dst, src, hops))
}

/// Timer tag namespace for the mesh component (distinct from any
/// sensor-tier protocol tags a co-located behaviour might use).
pub const MESH_TIMER_LSA: u64 = 0x4D45_5348_0001;

/// Mesh wire messages.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MeshMsg {
    /// Neighbour discovery beacon.
    Hello {
        /// Sender.
        from: NodeId,
    },
    /// Link-state advertisement.
    Lsa {
        /// Advertising node.
        origin: NodeId,
        /// Monotone per-origin sequence number.
        seq: u32,
        /// Origin's neighbour list.
        neighbors: Vec<NodeId>,
    },
    /// Backbone data frame carrying an opaque inner payload.
    Data {
        /// Final mesh destination.
        dst: NodeId,
        /// Mesh source.
        src: NodeId,
        /// Backbone hops so far.
        hops: u32,
        /// Opaque payload (typically an encoded sensor-tier DATA).
        inner: Vec<u8>,
    },
}

impl MeshMsg {
    /// Encode.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            MeshMsg::Hello { from } => {
                w.u8(TAG_HELLO).u32(from.0);
            }
            MeshMsg::Lsa {
                origin,
                seq,
                neighbors,
            } => {
                w.u8(TAG_LSA).u32(origin.0).u32(*seq);
                let raw: Vec<u32> = neighbors.iter().map(|n| n.0).collect();
                w.id_list(&raw);
            }
            MeshMsg::Data {
                dst,
                src,
                hops,
                inner,
            } => {
                w.u8(TAG_MESH_DATA).u32(dst.0).u32(src.0).u32(*hops);
                w.bytes(inner);
            }
        }
        w.into_bytes()
    }

    /// Decode.
    pub fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let tag = r.u8()?;
        let msg = match tag {
            TAG_HELLO => MeshMsg::Hello {
                from: NodeId(r.u32()?),
            },
            TAG_LSA => MeshMsg::Lsa {
                origin: NodeId(r.u32()?),
                seq: r.u32()?,
                neighbors: r.id_list(4096)?.into_iter().map(NodeId).collect(),
            },
            TAG_MESH_DATA => MeshMsg::Data {
                dst: NodeId(r.u32()?),
                src: NodeId(r.u32()?),
                hops: r.u32()?,
                inner: r.bytes(u16::MAX as usize)?.to_vec(),
            },
            t => return Err(DecodeError::BadTag(t)),
        };
        r.finish()?;
        Ok(msg)
    }
}

/// The reusable link-state engine.
pub struct MeshRouter {
    /// Directly heard neighbours.
    pub neighbors: HashSet<NodeId>,
    /// Link-state database: origin → (seq, neighbour list).
    lsdb: HashMap<NodeId, (u32, Vec<NodeId>)>,
    my_seq: u32,
    lsa_delay_us: u64,
    /// Frames forwarded on the backbone.
    pub forwarded: u64,
    /// Frames dropped for want of a route.
    pub dropped: u64,
}

impl MeshRouter {
    /// New engine; LSAs flood `lsa_delay_us` after start so hellos settle
    /// first.
    pub fn new(lsa_delay_us: u64) -> Self {
        MeshRouter {
            neighbors: HashSet::new(),
            lsdb: HashMap::new(),
            my_seq: 0,
            lsa_delay_us,
            forwarded: 0,
            dropped: 0,
        }
    }

    /// Start-up: broadcast a hello, arm the LSA timer.
    pub fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let hello = MeshMsg::Hello { from: ctx.id() };
        ctx.send(None, Tier::Mesh, PacketKind::Control, hello.encode());
        ctx.set_timer(self.lsa_delay_us, MESH_TIMER_LSA);
    }

    /// Timer hook; returns `true` if the tag belonged to the mesh engine.
    pub fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) -> bool {
        if tag != MESH_TIMER_LSA {
            return false;
        }
        self.flood_own_lsa(ctx);
        true
    }

    /// Re-advertise the current neighbour set (call after topology
    /// changes, e.g. a WMR died).
    pub fn flood_own_lsa(&mut self, ctx: &mut Ctx<'_>) {
        self.my_seq += 1;
        let mut ns: Vec<NodeId> = self.neighbors.iter().copied().collect();
        ns.sort_unstable();
        self.lsdb.insert(ctx.id(), (self.my_seq, ns.clone()));
        let lsa = MeshMsg::Lsa {
            origin: ctx.id(),
            seq: self.my_seq,
            neighbors: ns,
        };
        ctx.send(None, Tier::Mesh, PacketKind::Control, lsa.encode());
    }

    /// Packet hook. Consumes mesh frames; returns the `(src, inner)` of a
    /// data frame whose final destination is this node. Non-mesh frames
    /// return `None` without side effects.
    pub fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: &Packet) -> Option<(NodeId, Vec<u8>)> {
        if pkt.tier != Tier::Mesh {
            return None;
        }
        // Fast path: data frames are the backbone's bulk traffic. Transit
        // nodes forward them as memcpy + hops patch; only the final
        // destination copies the inner payload out.
        if let Some((dst, src, hops)) = peek_data(&pkt.payload) {
            if dst == ctx.id() {
                return Some((src, pkt.payload[DATA_HEADER..].to_vec()));
            }
            match self.next_hop(ctx.id(), dst) {
                Some(next) => {
                    self.forwarded += 1;
                    let mut buf = ctx.take_scratch();
                    buf.clear();
                    buf.extend_from_slice(&pkt.payload);
                    buf[DATA_HOPS..DATA_HOPS + 4].copy_from_slice(&(hops + 1).to_le_bytes());
                    ctx.send(Some(next), Tier::Mesh, PacketKind::Data, &buf[..]);
                    ctx.put_scratch(buf);
                }
                None => self.dropped += 1,
            }
            return None;
        }
        let msg = MeshMsg::decode(&pkt.payload).ok()?;
        match msg {
            MeshMsg::Hello { from } => {
                self.neighbors.insert(from);
                None
            }
            MeshMsg::Lsa {
                origin,
                seq,
                neighbors,
            } => {
                let fresher = self.lsdb.get(&origin).is_none_or(|(have, _)| seq > *have);
                if fresher {
                    self.lsdb.insert(origin, (seq, neighbors));
                    // Re-flood the received frame verbatim: re-encoding
                    // the same LSA would produce the same bytes, so an
                    // `Rc` clone of the payload is free and identical.
                    ctx.send(None, Tier::Mesh, PacketKind::Control, pkt.payload.clone());
                }
                None
            }
            // Valid data frames were consumed by the peek above; decode
            // accepts exactly the same set, so this arm is unreachable.
            MeshMsg::Data { .. } => None,
        }
    }

    /// Send an opaque payload to `dst` across the backbone. Returns
    /// `false` if no route is known.
    pub fn send(&mut self, ctx: &mut Ctx<'_>, dst: NodeId, inner: Vec<u8>) -> bool {
        if dst == ctx.id() {
            return false;
        }
        let Some(next) = self.next_hop(ctx.id(), dst) else {
            self.dropped += 1;
            return false;
        };
        let msg = MeshMsg::Data {
            dst,
            src: ctx.id(),
            hops: 1,
            inner,
        };
        ctx.send(Some(next), Tier::Mesh, PacketKind::Data, msg.encode());
        true
    }

    /// BFS next hop from `me` toward `dst` over the LSDB ∪ direct
    /// neighbours.
    pub fn next_hop(&self, me: NodeId, dst: NodeId) -> Option<NodeId> {
        if self.neighbors.contains(&dst) {
            return Some(dst);
        }
        // Build adjacency from the database (our own entry may be stale;
        // overlay live neighbours).
        let mut adj: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for (&origin, (_, ns)) in &self.lsdb {
            adj.entry(origin).or_default().extend(ns.iter().copied());
        }
        adj.insert(me, self.neighbors.iter().copied().collect());
        let mut prev: HashMap<NodeId, NodeId> = HashMap::new();
        let mut queue = VecDeque::from([me]);
        prev.insert(me, me);
        while let Some(v) = queue.pop_front() {
            if v == dst {
                // Walk back to the first hop.
                let mut cur = dst;
                while prev[&cur] != me {
                    cur = prev[&cur];
                }
                return Some(cur);
            }
            if let Some(ns) = adj.get(&v) {
                for &u in ns {
                    prev.entry(u).or_insert_with(|| {
                        queue.push_back(u);
                        v
                    });
                }
            }
        }
        None
    }

    /// Number of nodes known to the topology database.
    pub fn known_nodes(&self) -> usize {
        self.lsdb.len()
    }
}

/// Standalone mesh behaviour for WMRs and base stations. Delivered data
/// frames whose inner payload parses as a sensor-tier
/// [`crate::wire::RoutingMsg::Data`] are recorded as end-to-end
/// deliveries — this is what makes the base station the Internet-side
/// measurement point of experiment E12.
pub struct MeshNode {
    /// The link-state engine.
    pub router: MeshRouter,
    /// Inner payloads delivered to this node.
    pub delivered: Vec<(NodeId, Vec<u8>)>,
}

impl MeshNode {
    /// New node (LSAs after 100 ms).
    pub fn new() -> Self {
        MeshNode {
            router: MeshRouter::new(100_000),
            delivered: Vec::new(),
        }
    }

    /// Boxed, for `World::add_node`.
    pub fn boxed() -> Box<dyn Behavior> {
        Box::new(Self::new())
    }
}

impl Default for MeshNode {
    fn default() -> Self {
        Self::new()
    }
}

impl Behavior for MeshNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.router.on_start(ctx);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: &Packet) {
        if let Some((src, inner)) = self.router.on_packet(ctx, pkt) {
            if let Ok(crate::wire::RoutingMsgView::Data {
                origin,
                msg_id,
                sent_at,
                hops,
                ..
            }) = crate::wire::RoutingMsgView::decode(&inner)
            {
                ctx.record_delivery(origin, msg_id, sent_at, hops);
            }
            self.delivered.push((src, inner));
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        self.router.on_timer(ctx, tag);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmsn_sim::{NodeConfig, World, WorldConfig};
    use wmsn_util::Point;

    /// A backbone chain: base — R1 — R2 — R3 — far, 200 m spacing
    /// (within the 250 m wifi range, out of 2-hop reach).
    fn backbone() -> (World, Vec<NodeId>) {
        let mut w = World::new(WorldConfig::ideal(17));
        let mut ids = Vec::new();
        for i in 0..5 {
            let pos = Point::new(i as f64 * 200.0, 0.0);
            let cfg = if i == 0 {
                NodeConfig::base_station(pos)
            } else {
                NodeConfig::mesh_router(pos)
            };
            ids.push(w.add_node(cfg, MeshNode::boxed()));
        }
        (w, ids)
    }

    #[test]
    fn wire_roundtrips() {
        for msg in [
            MeshMsg::Hello { from: NodeId(1) },
            MeshMsg::Lsa {
                origin: NodeId(2),
                seq: 3,
                neighbors: vec![NodeId(1), NodeId(4)],
            },
            MeshMsg::Data {
                dst: NodeId(0),
                src: NodeId(4),
                hops: 2,
                inner: vec![9, 9, 9],
            },
        ] {
            assert_eq!(MeshMsg::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn hellos_build_symmetric_neighbor_sets() {
        let (mut w, ids) = backbone();
        w.run_until(500_000);
        let n1 = &w.behavior_as::<MeshNode>(ids[1]).unwrap().router.neighbors;
        assert!(n1.contains(&ids[0]) && n1.contains(&ids[2]));
        assert_eq!(n1.len(), 2);
        let n0 = &w.behavior_as::<MeshNode>(ids[0]).unwrap().router.neighbors;
        assert_eq!(n0.len(), 1);
    }

    #[test]
    fn lsdb_converges_to_the_full_topology() {
        let (mut w, ids) = backbone();
        w.run_until(2_000_000);
        for &id in &ids {
            assert_eq!(
                w.behavior_as::<MeshNode>(id).unwrap().router.known_nodes(),
                5,
                "node {id} has an incomplete database"
            );
        }
    }

    #[test]
    fn multi_hop_unicast_reaches_the_far_end() {
        let (mut w, ids) = backbone();
        w.run_until(2_000_000);
        let base = ids[0];
        let far = ids[4];
        let sent = w.with_behavior::<MeshNode, _>(far, |n, ctx| {
            n.router.send(ctx, base, b"reading".to_vec())
        });
        assert_eq!(sent, Some(true));
        w.run_for(1_000_000);
        let delivered = &w.behavior_as::<MeshNode>(base).unwrap().delivered;
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0], (far, b"reading".to_vec()));
    }

    #[test]
    fn forwarding_goes_through_every_intermediate() {
        let (mut w, ids) = backbone();
        w.run_until(2_000_000);
        w.with_behavior::<MeshNode, _>(ids[4], |n, ctx| {
            n.router.send(ctx, ids[0], vec![1]);
        });
        w.run_for(1_000_000);
        for &mid in &ids[1..4] {
            assert_eq!(
                w.behavior_as::<MeshNode>(mid).unwrap().router.forwarded,
                1,
                "router {mid} did not forward"
            );
        }
    }

    #[test]
    fn unknown_destination_is_dropped_not_looped() {
        let (mut w, ids) = backbone();
        w.run_until(2_000_000);
        let ghost = NodeId(999);
        let sent =
            w.with_behavior::<MeshNode, _>(ids[2], |n, ctx| n.router.send(ctx, ghost, vec![1]));
        assert_eq!(sent, Some(false));
        assert_eq!(w.behavior_as::<MeshNode>(ids[2]).unwrap().router.dropped, 1);
    }

    #[test]
    fn rerouting_after_a_router_dies() {
        // Diamond: base(0,0) — A(200,100)/B(200,-100) — far(400,0).
        let mut w = World::new(WorldConfig::ideal(3));
        let base = w.add_node(
            NodeConfig::base_station(Point::new(0.0, 0.0)),
            MeshNode::boxed(),
        );
        let a = w.add_node(
            NodeConfig::mesh_router(Point::new(200.0, 100.0)),
            MeshNode::boxed(),
        );
        let b = w.add_node(
            NodeConfig::mesh_router(Point::new(200.0, -100.0)),
            MeshNode::boxed(),
        );
        let far = w.add_node(
            NodeConfig::mesh_router(Point::new(400.0, 0.0)),
            MeshNode::boxed(),
        );
        w.run_until(2_000_000);
        // Kill A; far must still reach base via B after re-advertising.
        w.kill(a);
        w.with_behavior::<MeshNode, _>(far, |n, ctx| {
            n.router.neighbors.remove(&a);
            n.router.flood_own_lsa(ctx);
        });
        w.with_behavior::<MeshNode, _>(base, |n, ctx| {
            n.router.neighbors.remove(&a);
            n.router.flood_own_lsa(ctx);
        });
        w.run_for(1_000_000);
        w.with_behavior::<MeshNode, _>(far, |n, ctx| {
            n.router.send(ctx, base, vec![7]);
        });
        w.run_for(1_000_000);
        assert_eq!(
            w.behavior_as::<MeshNode>(base).unwrap().delivered.len(),
            1,
            "self-healing failed"
        );
        assert_eq!(w.behavior_as::<MeshNode>(b).unwrap().router.forwarded, 1);
    }

    #[test]
    fn sensor_tier_frames_are_ignored() {
        let (mut w, ids) = backbone();
        w.run_until(2_000_000);
        // A gateway-role node can emit on the sensor tier; routers never
        // see it (tier filter), but even a mesh-tier garbage frame is
        // ignored gracefully.
        w.with_behavior::<MeshNode, _>(ids[1], |_, ctx| {
            ctx.send(None, Tier::Mesh, PacketKind::Data, vec![0xFF, 0, 1]);
        });
        w.run_for(500_000);
        // No panic, no delivery.
        assert!(w
            .behavior_as::<MeshNode>(ids[0])
            .unwrap()
            .delivered
            .is_empty());
    }
}
