//! Bounded single-producer / single-consumer ring for the trace
//! pipeline.
//!
//! The trace plane's off-thread drain ([`wmsn-trace`'s ring sink])
//! needs a queue with three properties the std channels don't surface
//! together: a hard capacity bound (backpressure is an explicit policy,
//! not an OOM), occupancy accounting (peak depth is part of the bench
//! telemetry), and blocked-time accounting (how long the producer sat
//! in backpressure, in wall microseconds).
//!
//! The implementation is a `Mutex` + two `Condvar`s around a fixed
//! capacity `VecDeque` — deliberately boring. The producer batches
//! events into chunks *before* pushing (one lock per few hundred
//! events), so the lock is never on the per-event hot path and a
//! lock-free ring would buy nothing measurable. The crate-wide
//! `forbid(unsafe_code)` stays intact.
//!
//! `T` is the *chunk* type; both sides move whole chunks. [`SpscRing`]
//! is used through an `Arc`, one handle on each side.

use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Counters a ring accumulates over its lifetime. Snapshot via
/// [`SpscRing::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RingCounters {
    /// Chunks accepted by `push_blocking` / `try_push`.
    pub pushed: u64,
    /// Chunks taken by the consumer.
    pub popped: u64,
    /// Occupancy high-water mark (chunks resident), including the one
    /// being pushed.
    pub peak: usize,
    /// Total wall time the producer spent blocked on a full ring, µs.
    pub blocked_us: u64,
}

struct RingState<T> {
    buf: std::collections::VecDeque<T>,
    closed: bool,
    counters: RingCounters,
}

/// A bounded SPSC chunk queue. See the module docs for the design
/// rationale; the API is intentionally minimal:
///
/// * producer side — [`SpscRing::push_blocking`] (block-until-space
///   backpressure) or [`SpscRing::try_push`] (fail-fast, for
///   count-and-drop policies), then [`SpscRing::close`];
/// * consumer side — [`SpscRing::pop_blocking`], which returns `None`
///   only once the ring is closed *and* drained.
pub struct SpscRing<T> {
    cap: usize,
    state: Mutex<RingState<T>>,
    /// Signalled when space frees up (producer waits here).
    not_full: Condvar,
    /// Signalled when a chunk arrives or the ring closes (consumer
    /// waits here).
    not_empty: Condvar,
}

impl<T> SpscRing<T> {
    /// A ring holding at most `capacity` chunks (`capacity >= 1`).
    pub fn new(capacity: usize) -> Self {
        SpscRing {
            cap: capacity.max(1),
            state: Mutex::new(RingState {
                buf: std::collections::VecDeque::with_capacity(capacity.max(1)),
                closed: false,
                counters: RingCounters::default(),
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// Capacity in chunks.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Push, blocking while the ring is full. Accumulates the blocked
    /// wall time into the counters. Returns the chunk back if the ring
    /// was closed (the consumer is gone; nothing will drain it).
    pub fn push_blocking(&self, chunk: T) -> Result<(), T> {
        let mut g = self.state.lock().expect("ring lock");
        if g.buf.len() >= self.cap && !g.closed {
            let start = Instant::now();
            while g.buf.len() >= self.cap && !g.closed {
                g = self.not_full.wait(g).expect("ring lock");
            }
            g.counters.blocked_us += start.elapsed().as_micros() as u64;
        }
        if g.closed {
            return Err(chunk);
        }
        g.buf.push_back(chunk);
        g.counters.pushed += 1;
        g.counters.peak = g.counters.peak.max(g.buf.len());
        drop(g);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Push without blocking. Returns the chunk back when the ring is
    /// full or closed — the caller decides whether that's a drop to
    /// count or an error.
    pub fn try_push(&self, chunk: T) -> Result<(), T> {
        let mut g = self.state.lock().expect("ring lock");
        if g.closed || g.buf.len() >= self.cap {
            return Err(chunk);
        }
        g.buf.push_back(chunk);
        g.counters.pushed += 1;
        g.counters.peak = g.counters.peak.max(g.buf.len());
        drop(g);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Take the oldest chunk, blocking while the ring is empty and
    /// open. `None` means closed-and-drained: the consumer's loop
    /// condition.
    pub fn pop_blocking(&self) -> Option<T> {
        let mut g = self.state.lock().expect("ring lock");
        loop {
            if let Some(chunk) = g.buf.pop_front() {
                g.counters.popped += 1;
                drop(g);
                self.not_full.notify_one();
                return Some(chunk);
            }
            if g.closed {
                return None;
            }
            g = self.not_empty.wait(g).expect("ring lock");
        }
    }

    /// Close the ring: future pushes fail, the consumer drains what is
    /// left and then sees `None`. Idempotent.
    pub fn close(&self) {
        let mut g = self.state.lock().expect("ring lock");
        g.closed = true;
        drop(g);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Chunks currently resident.
    pub fn len(&self) -> usize {
        self.state.lock().expect("ring lock").buf.len()
    }

    /// Whether the ring is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime counters (see [`RingCounters`]).
    pub fn stats(&self) -> RingCounters {
        self.state.lock().expect("ring lock").counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_counters() {
        let r: SpscRing<u32> = SpscRing::new(4);
        for i in 0..3 {
            r.push_blocking(i).unwrap();
        }
        assert_eq!(r.len(), 3);
        for i in 0..3 {
            assert_eq!(r.pop_blocking(), Some(i));
        }
        r.close();
        assert_eq!(r.pop_blocking(), None);
        let c = r.stats();
        assert_eq!((c.pushed, c.popped, c.peak), (3, 3, 3));
    }

    #[test]
    fn try_push_fails_fast_when_full() {
        let r: SpscRing<u8> = SpscRing::new(2);
        r.try_push(1).unwrap();
        r.try_push(2).unwrap();
        assert_eq!(r.try_push(3), Err(3));
        assert_eq!(r.pop_blocking(), Some(1));
        r.try_push(3).unwrap();
        assert_eq!(r.stats().pushed, 3);
    }

    #[test]
    fn push_blocking_waits_for_the_consumer() {
        let r = Arc::new(SpscRing::<u64>::new(1));
        r.push_blocking(0).unwrap();
        let producer = {
            let r = Arc::clone(&r);
            std::thread::spawn(move || {
                // Blocks until the main thread pops.
                r.push_blocking(1).unwrap();
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(r.pop_blocking(), Some(0));
        producer.join().unwrap();
        assert_eq!(r.pop_blocking(), Some(1));
        assert!(r.stats().blocked_us > 0, "producer must have waited");
    }

    #[test]
    fn close_unblocks_both_sides() {
        let r = Arc::new(SpscRing::<u64>::new(1));
        let consumer = {
            let r = Arc::clone(&r);
            std::thread::spawn(move || r.pop_blocking())
        };
        r.close();
        assert_eq!(consumer.join().unwrap(), None);
        assert_eq!(r.push_blocking(9), Err(9));
        assert_eq!(r.try_push(9), Err(9));
    }
}
