//! Node identifiers and the WMSN node-role taxonomy.
//!
//! The paper's architecture (§3.2, Fig. 1) distinguishes four kinds of
//! nodes: resource-poor **sensor nodes** (802.15.4 only), **wireless mesh
//! gateways** (WMGs — sink + backbone router, both MACs), **wireless mesh
//! routers** (WMRs — backbone only, 802.11), and **base stations** bridging
//! the mesh backbone to the Internet.

use std::fmt;

/// A dense, copyable node identifier.
///
/// Identifiers are indices into the simulation's node table, so they are
/// cheap to store in routing tables and packet headers (encoded as `u32`
/// on the wire). `NodeId` is deliberately *not* an address with structure;
/// the paper's sensor nodes need no globally meaningful IDs beyond
/// distinguishing neighbours and gateways.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index into per-node vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a vector index (panics if it does not fit in `u32`).
    #[inline]
    pub fn from_index(i: usize) -> Self {
        NodeId(u32::try_from(i).expect("node index exceeds u32"))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// The role a node plays in the three-layer architecture (§3.2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum NodeRole {
    /// Low-level sensing node; short-range radio only (802.15.4 in the
    /// paper). Sources of all sensed data; energy-constrained.
    Sensor,
    /// Wireless mesh gateway (WMG): sink of a sensor subnet *and* router of
    /// the mesh backbone. Speaks both MACs. Trusted in SecMLR.
    Gateway,
    /// Wireless mesh router (WMR): backbone-only relay (802.11 in the
    /// paper). Never a routing destination for sensors.
    MeshRouter,
    /// Base station: bridges the mesh backbone to the Internet and anchors
    /// gateway mobility (§3.2). Treated as having unlimited resources.
    BaseStation,
}

impl NodeRole {
    /// Whether this node participates in the low-level sensor network
    /// (sends or receives on the short-range PHY).
    #[inline]
    pub fn in_sensor_tier(self) -> bool {
        matches!(self, NodeRole::Sensor | NodeRole::Gateway)
    }

    /// Whether this node participates in the mesh backbone (long-range PHY).
    #[inline]
    pub fn in_mesh_tier(self) -> bool {
        matches!(
            self,
            NodeRole::Gateway | NodeRole::MeshRouter | NodeRole::BaseStation
        )
    }

    /// Whether sensors may select this node as a routing destination
    /// (the paper's sinks are exactly the WMGs).
    #[inline]
    pub fn is_sink(self) -> bool {
        matches!(self, NodeRole::Gateway)
    }

    /// Whether the node is considered energy-unconstrained. The paper's
    /// MLR model assumes "gateways have unrestricted energy" (§5.3).
    #[inline]
    pub fn unlimited_energy(self) -> bool {
        !matches!(self, NodeRole::Sensor)
    }

    /// Short label used in traces and reports.
    pub fn label(self) -> &'static str {
        match self {
            NodeRole::Sensor => "sensor",
            NodeRole::Gateway => "wmg",
            NodeRole::MeshRouter => "wmr",
            NodeRole::BaseStation => "base",
        }
    }
}

impl fmt::Display for NodeRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrips_through_index() {
        for i in [0usize, 1, 41, 65_535, 1_000_000] {
            assert_eq!(NodeId::from_index(i).index(), i);
        }
    }

    #[test]
    fn node_id_orders_by_value() {
        assert!(NodeId(3) < NodeId(10));
        assert_eq!(NodeId(7), NodeId::from(7u32));
    }

    #[test]
    fn roles_partition_tiers_as_in_fig1() {
        // Fig. 1: sensors only in the sensor tier; WMRs only in the mesh
        // tier; WMGs in both; base stations in the mesh tier.
        assert!(NodeRole::Sensor.in_sensor_tier());
        assert!(!NodeRole::Sensor.in_mesh_tier());
        assert!(NodeRole::Gateway.in_sensor_tier());
        assert!(NodeRole::Gateway.in_mesh_tier());
        assert!(!NodeRole::MeshRouter.in_sensor_tier());
        assert!(NodeRole::MeshRouter.in_mesh_tier());
        assert!(!NodeRole::BaseStation.in_sensor_tier());
        assert!(NodeRole::BaseStation.in_mesh_tier());
    }

    #[test]
    fn only_gateways_are_sinks() {
        assert!(NodeRole::Gateway.is_sink());
        for r in [
            NodeRole::Sensor,
            NodeRole::MeshRouter,
            NodeRole::BaseStation,
        ] {
            assert!(!r.is_sink());
        }
    }

    #[test]
    fn only_sensors_are_energy_constrained() {
        assert!(!NodeRole::Sensor.unlimited_energy());
        assert!(NodeRole::Gateway.unlimited_energy());
        assert!(NodeRole::MeshRouter.unlimited_energy());
        assert!(NodeRole::BaseStation.unlimited_energy());
    }

    #[test]
    fn display_labels_are_stable() {
        assert_eq!(NodeRole::Gateway.to_string(), "wmg");
        assert_eq!(NodeId(12).to_string(), "N12");
        assert_eq!(format!("{:?}", NodeId(12)), "N12");
    }
}
