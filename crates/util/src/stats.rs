//! Statistics used across the evaluation: running summaries, the paper's
//! energy-balance variance `D²`, and percentile reports.
//!
//! §5.3 of the paper defines network-lifetime optimality via two criteria:
//! minimal total energy `Σ Eᵢ` and minimal variance
//! `D² = Σ (Eᵢ − Ē)²` of per-node energy consumption. [`energy_variance`]
//! computes exactly that quantity (not the sample variance — the paper sums
//! squared deviations without dividing by `n`).

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
#[derive(Clone, Debug, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Build a summary from a slice.
    pub fn of(xs: &[f64]) -> Self {
        let mut s = Summary::new();
        for &x in xs {
            s.push(x);
        }
        s
    }

    /// Add an observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Maximum (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merge another summary into this one (parallel reduction).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// The paper's energy-balance objective `D² = Σᵢ (Eᵢ − Ē)²` (eq. 1, §5.3).
///
/// `Ē` is the mean of `energies`. Returns 0 for an empty slice.
pub fn energy_variance(energies: &[f64]) -> f64 {
    if energies.is_empty() {
        return 0.0;
    }
    let mean = energies.iter().sum::<f64>() / energies.len() as f64;
    energies.iter().map(|e| (e - mean) * (e - mean)).sum()
}

/// Linear-interpolation percentile of a sample; `q` in `[0,1]`.
/// Returns `None` for an empty slice.
pub fn percentile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// A labelled row of an experiment report table — the unit every benchmark
/// prints and serialises, so paper tables can be regenerated line by line.
#[derive(Clone, Debug)]
pub struct ReportRow {
    /// Experiment identifier, e.g. `"E3"`.
    pub experiment: String,
    /// Independent-variable description, e.g. `"n=100 m=3"`.
    pub config: String,
    /// Metric name, e.g. `"lifetime_rounds"`.
    pub metric: String,
    /// Measured value.
    pub value: f64,
}

impl ReportRow {
    /// Construct a row.
    pub fn new(
        experiment: impl Into<String>,
        config: impl Into<String>,
        metric: impl Into<String>,
        value: f64,
    ) -> Self {
        ReportRow {
            experiment: experiment.into(),
            config: config.into(),
            metric: metric.into(),
            value,
        }
    }
}

impl std::fmt::Display for ReportRow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<5} {:<32} {:<28} {:>12.4}",
            self.experiment, self.config, self.metric, self.value
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = Summary::of(&xs);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn empty_summary_is_safe() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn merge_equals_single_pass() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let whole = Summary::of(&xs);
        let mut left = Summary::of(&xs[..37]);
        let right = Summary::of(&xs[37..]);
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-10);
        assert!((left.variance() - whole.variance()).abs() < 1e-10);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let xs = [1.0, 2.0, 3.0];
        let mut s = Summary::of(&xs);
        s.merge(&Summary::new());
        assert_eq!(s.count(), 3);
        let mut e = Summary::new();
        e.merge(&Summary::of(&xs));
        assert!((e.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn energy_variance_matches_paper_definition() {
        // D² sums squared deviations WITHOUT dividing by n.
        let es = [1.0, 3.0];
        // mean = 2, deviations ±1 → D² = 2.
        assert!((energy_variance(&es) - 2.0).abs() < 1e-12);
        assert_eq!(energy_variance(&[]), 0.0);
        assert_eq!(energy_variance(&[5.0]), 0.0);
    }

    #[test]
    fn perfectly_balanced_energy_has_zero_variance() {
        // 4.2 is not exactly representable, so allow rounding dust.
        assert!(energy_variance(&[4.2; 17]) < 1e-24);
    }

    #[test]
    fn percentiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 1.0), Some(4.0));
        assert_eq!(percentile(&xs, 0.5), Some(2.5));
        assert_eq!(percentile(&[], 0.5), None);
        assert_eq!(percentile(&[7.0], 0.99), Some(7.0));
    }

    #[test]
    fn report_row_display_is_aligned() {
        let row = ReportRow::new("E1", "n=100", "avg_hops", 3.25);
        let s = row.to_string();
        assert!(s.starts_with("E1"));
        assert!(s.contains("avg_hops"));
        assert!(s.contains("3.2500"));
    }
}
