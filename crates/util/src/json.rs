//! Minimal JSON emission for reports and benchmark artifacts.
//!
//! The workspace builds without external crates, so report archiving and
//! the perf baseline (`BENCH_hotpath.json`) use this hand-rolled writer
//! instead of `serde_json`. It covers exactly what we emit: objects,
//! arrays, strings, integers, floats and booleans, with RFC 8259 string
//! escaping. Non-finite floats serialise as `null` (matching what
//! `serde_json` does for them under default settings).

use std::fmt::Write as _;

/// An owned JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integer (kept separate from floats so counters print without `.0`).
    Int(i64),
    /// Unsigned integer (u64 counters that may exceed i64).
    UInt(u64),
    /// Floating-point number; non-finite values serialise as `null`.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object as an ordered key/value list (insertion order preserved).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Serialise with two-space indentation, like `to_string_pretty`.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    // `{}` on f64 is shortest round-trip and never produces
                    // exponent notation, so it is always valid JSON.
                    let mut s = format!("{x}");
                    if !s.contains('.') {
                        // Keep floats visibly floats ("3.0", not "3").
                        s.push_str(".0");
                    }
                    out.push_str(&s);
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1)
            }),
            Json::Obj(pairs) => write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i| {
                write_escaped(out, &pairs[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                pairs[i].1.write(out, indent, depth + 1);
            }),
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl std::fmt::Display for Json {
    /// Compact serialisation (no whitespace).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::UInt(x)
    }
}

impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::UInt(x as u64)
    }
}

impl From<i64> for Json {
    fn from(x: i64) -> Json {
        Json::Int(x)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialise() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::Int(-7).to_string(), "-7");
        assert_eq!(
            Json::UInt(18_446_744_073_709_551_615).to_string(),
            "18446744073709551615"
        );
        assert_eq!(Json::Num(1.5).to_string(), "1.5");
        assert_eq!(Json::Num(3.0).to_string(), "3.0");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn strings_escape_control_characters() {
        assert_eq!(
            Json::Str("a\"b\\c\nd\u{1}".into()).to_string(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn nested_compact_and_pretty() {
        let v = Json::obj([
            ("name", Json::from("e1")),
            ("values", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("empty", Json::Arr(vec![])),
        ]);
        assert_eq!(v.to_string(), r#"{"name":"e1","values":[1,2],"empty":[]}"#);
        let pretty = v.to_string_pretty();
        assert!(pretty.contains("\n  \"name\": \"e1\""), "{pretty}");
        assert!(pretty.contains("\n    1,\n    2\n  ]"), "{pretty}");
    }
}
