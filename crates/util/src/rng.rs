//! Deterministic randomness for reproducible simulations.
//!
//! Every simulation run is derived from a single `u64` seed. We use
//! SplitMix64 (Steele, Lea & Flood 2014) both as a fast generator and as a
//! seed *splitter*: independent subsystems (deployment, traffic, radio
//! loss, adversary behaviour) each get their own stream so that, e.g.,
//! toggling the attack module does not perturb the deployment.
//!
/// SplitMix64 PRNG. Tiny state, passes BigCrush, and supports cheap
/// independent substreams via [`SplitMix64::split`].
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

/// Golden-ratio increment used by SplitMix64.
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64_raw(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Derive an independent substream labelled by `label`. Streams with
    /// different labels from the same parent are de-correlated; the parent
    /// is not advanced, so subsystem order does not matter.
    pub fn split(&self, label: u64) -> SplitMix64 {
        let mut mixer = SplitMix64::new(self.state ^ label.wrapping_mul(GAMMA | 1));
        // Burn one output so that label 0 differs from the parent stream.
        let s = mixer.next_u64_raw();
        SplitMix64::new(s)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64_raw() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, bound)` via Lemire's method. Panics if
    /// `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below(0)");
        // Widening-multiply rejection sampling (unbiased).
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64_raw();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` index in `[0, len)`. Panics if `len == 0`.
    #[inline]
    pub fn next_index(&mut self, len: usize) -> usize {
        self.next_below(len as u64) as usize
    }

    /// Bernoulli trial with probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Sample `k` distinct indices out of `0..n` (k ≤ n), in random order.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} of {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx.truncate(k);
        idx
    }

    /// Standard normal variate (Box–Muller; one value per call).
    pub fn next_gaussian(&mut self) -> f64 {
        // Avoid ln(0) by nudging u away from zero.
        let u = (self.next_f64()).max(f64::MIN_POSITIVE);
        let v = self.next_f64();
        (-2.0 * u.ln()).sqrt() * (2.0 * std::f64::consts::PI * v).cos()
    }

    /// Exponential variate with rate `lambda` (mean `1/lambda`).
    pub fn next_exp(&mut self, lambda: f64) -> f64 {
        assert!(lambda > 0.0);
        let u = (1.0 - self.next_f64()).max(f64::MIN_POSITIVE);
        -u.ln() / lambda
    }

    /// Fill `dest` with pseudorandom bytes (little-endian words of the
    /// stream, truncated at the tail).
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64_raw().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_raw(), b.next_u64_raw());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64)
            .filter(|_| a.next_u64_raw() == b.next_u64_raw())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_streams_are_independent_of_consumption_order() {
        let root = SplitMix64::new(7);
        let mut s1 = root.split(1);
        let first = s1.next_u64_raw();
        // Consuming another stream must not change stream 1.
        let root2 = SplitMix64::new(7);
        let mut other = root2.split(2);
        let _ = other.next_u64_raw();
        let mut s1b = root2.split(1);
        assert_eq!(s1b.next_u64_raw(), first);
    }

    #[test]
    fn split_label_zero_differs_from_parent() {
        let root = SplitMix64::new(99);
        let mut child = root.split(0);
        let mut parent = root.clone();
        assert_ne!(child.next_u64_raw(), parent.next_u64_raw());
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SplitMix64::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_is_in_range_and_roughly_uniform() {
        let mut r = SplitMix64::new(4);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[r.next_below(10) as usize] += 1;
        }
        for &c in &counts {
            // Each bucket expects 10 000; allow ±10 %.
            assert!((9_000..=11_000).contains(&c), "skewed bucket: {c}");
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::new(6);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_are_distinct() {
        let mut r = SplitMix64::new(8);
        let s = r.sample_indices(100, 30);
        assert_eq!(s.len(), 30);
        let set: std::collections::HashSet<_> = s.iter().collect();
        assert_eq!(set.len(), 30);
        assert!(s.iter().all(|&i| i < 100));
    }

    #[test]
    fn gaussian_mean_and_variance_sane() {
        let mut r = SplitMix64::new(9);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| r.next_gaussian()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn exponential_mean_sane() {
        let mut r = SplitMix64::new(10);
        let n = 50_000;
        let mean = (0..n).map(|_| r.next_exp(0.5)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = SplitMix64::new(11);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        // Compare with a fresh stream assembled by hand.
        let mut r2 = SplitMix64::new(11);
        let a = r2.next_u64_raw().to_le_bytes();
        let b = r2.next_u64_raw().to_le_bytes();
        assert_eq!(&buf[..8], &a);
        assert_eq!(&buf[8..13], &b[..5]);
    }
}
