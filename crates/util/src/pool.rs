//! Scoped worker-pool helpers.
//!
//! Two parallel execution shapes recur in this workspace and both live
//! here so they are written (and tested) exactly once:
//!
//! * [`parallel_chunked`] — embarrassingly parallel fan-out over an
//!   index range with results collected in index order. Used by the
//!   experiment seed sweeps (E17) where each item is an independent
//!   simulation.
//! * [`bsp_run`] — a bulk-synchronous-parallel loop over a set of
//!   worker-owned states with a coordinator phase between supersteps.
//!   Used by the sharded simulation kernel, where each state is one
//!   spatial shard of the world and the coordinator routes boundary
//!   traffic and computes the next conservative time window.
//!
//! Both helpers degrade to a plain serial loop when asked for a single
//! worker (or when the input is trivially small), so callers get
//! bit-identical behaviour with and without threads.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};

/// Run `f(i)` for every `i in 0..n_items` across up to `workers` scoped
/// threads and collect the results in index order.
///
/// Work is chunked dynamically (an atomic cursor), so uneven item costs
/// balance themselves; results land in their index's slot, so ordering
/// is independent of scheduling. With `workers <= 1` or fewer than two
/// items the loop runs inline on the caller's thread.
pub fn parallel_chunked<T, F>(n_items: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.min(n_items.max(1));
    if workers <= 1 || n_items <= 1 {
        return (0..n_items).map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, T)>();
    let f = &f;
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_items {
                    break;
                }
                let r = f(i);
                if tx.send((i, r)).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);
    let mut out: Vec<Option<T>> = Vec::new();
    out.resize_with(n_items, || None);
    for (i, r) in rx {
        out[i] = Some(r);
    }
    out.into_iter()
        .map(|x| x.expect("every item slot filled"))
        .collect()
}

/// Bulk-synchronous-parallel loop: repeat `plan` → barrier → `step` on
/// every state → barrier, until `plan` returns `false`.
///
/// * `states[i]` is owned by exactly one worker thread for the whole
///   run; the coordinator never touches it. All cross-thread traffic
///   goes through `mailboxes[i]`, whose lock is only ever contended at
///   the barrier edges.
/// * `plan` runs on the caller's thread between supersteps with every
///   worker parked at a barrier, so it may lock any subset of mailboxes
///   without deadlock. Returning `false` ends the loop.
/// * `step(i, state, mailbox)` runs on the owning worker. A worker may
///   own several states (they are chunked over `workers` threads).
///
/// With `workers <= 1` the whole loop runs inline on the caller's
/// thread in state order — the serial reference the threaded path must
/// match.
pub fn bsp_run<S, M>(
    states: &mut [S],
    mailboxes: &[Mutex<M>],
    workers: usize,
    mut plan: impl FnMut(&[Mutex<M>]) -> bool,
    step: impl Fn(usize, &mut S, &Mutex<M>) + Sync,
) where
    S: Send,
    M: Send,
{
    assert_eq!(
        states.len(),
        mailboxes.len(),
        "one mailbox per state required"
    );
    let workers = workers.min(states.len().max(1));
    if workers <= 1 {
        while plan(mailboxes) {
            for (i, s) in states.iter_mut().enumerate() {
                step(i, s, &mailboxes[i]);
            }
        }
        return;
    }
    // Two barriers per superstep: `start` releases the workers into
    // `step`, `done` hands control back to the coordinator. Both count
    // the coordinator (caller's thread) as a participant.
    let start = Barrier::new(workers + 1);
    let done = Barrier::new(workers + 1);
    let stop = AtomicBool::new(false);
    // Panic protocol: every participant must keep meeting its barriers
    // or the others deadlock, so a panicking worker parks its payload
    // here, finishes the superstep handshake, and exits through the
    // normal stop path; the coordinator re-raises after the scope
    // joins. (`AssertUnwindSafe` is fine: the poisoned state never
    // escapes — the whole loop unwinds.)
    let panicked = AtomicBool::new(false);
    let payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    // Split `states` into one contiguous chunk per worker. Chunks are
    // fixed for the whole run so each state has a stable owner thread.
    let chunk = states.len().div_ceil(workers);
    let step = &step;
    std::thread::scope(|scope| {
        let mut rest = states;
        let mut base = 0usize;
        for _ in 0..workers {
            let take = chunk.min(rest.len());
            let (mine, tail) = rest.split_at_mut(take);
            rest = tail;
            let (start, done, stop) = (&start, &done, &stop);
            let (panicked, payload) = (&panicked, &payload);
            scope.spawn(move || loop {
                start.wait();
                if stop.load(Ordering::Acquire) {
                    break;
                }
                if let Err(p) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    for (k, s) in mine.iter_mut().enumerate() {
                        step(base + k, s, &mailboxes[base + k]);
                    }
                })) {
                    *payload.lock().unwrap() = Some(p);
                    panicked.store(true, Ordering::Release);
                }
                done.wait();
            });
            base += take;
        }
        loop {
            if panicked.load(Ordering::Acquire) || !plan(mailboxes) {
                stop.store(true, Ordering::Release);
                start.wait();
                break;
            }
            start.wait();
            done.wait();
        }
    });
    if let Some(p) = payload.into_inner().unwrap() {
        std::panic::resume_unwind(p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_chunked_preserves_index_order() {
        let got = parallel_chunked(100, 8, |i| i * i);
        let want: Vec<usize> = (0..100).map(|i| i * i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn parallel_chunked_serial_fallback_matches() {
        let a = parallel_chunked(37, 1, |i| i + 1);
        let b = parallel_chunked(37, 4, |i| i + 1);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_chunked_handles_empty_and_single() {
        assert!(parallel_chunked(0, 4, |i| i).is_empty());
        assert_eq!(parallel_chunked(1, 4, |i| i + 10), vec![10]);
    }

    /// Drive a tiny BSP computation: each superstep every state adds its
    /// mailbox input to its accumulator and reports back; the
    /// coordinator doubles the report into the next input.
    fn run_bsp(workers: usize, states: usize, rounds: usize) -> Vec<u64> {
        let mut accs = vec![0u64; states];
        let boxes: Vec<Mutex<(u64, u64)>> =
            (0..states).map(|i| Mutex::new((i as u64, 0))).collect();
        let mut left = rounds;
        bsp_run(
            &mut accs,
            &boxes,
            workers,
            |boxes| {
                if left == 0 {
                    return false;
                }
                left -= 1;
                for b in boxes {
                    let mut g = b.lock().unwrap();
                    g.0 = g.1 * 2 + 1;
                }
                true
            },
            |_, acc, b| {
                let mut g = b.lock().unwrap();
                *acc += g.0;
                g.1 = *acc;
            },
        );
        accs
    }

    #[test]
    fn bsp_threaded_matches_serial_reference() {
        let serial = run_bsp(1, 5, 20);
        for workers in [2, 3, 8] {
            assert_eq!(run_bsp(workers, 5, 20), serial, "workers={workers}");
        }
    }

    #[test]
    fn bsp_zero_rounds_runs_no_steps() {
        let mut states = vec![0u64; 3];
        let boxes: Vec<Mutex<()>> = (0..3).map(|_| Mutex::new(())).collect();
        bsp_run(&mut states, &boxes, 4, |_| false, |_, s, _| *s += 1);
        assert_eq!(states, vec![0, 0, 0]);
    }

    #[test]
    fn bsp_more_workers_than_states_is_fine() {
        assert_eq!(run_bsp(16, 2, 5), run_bsp(1, 2, 5));
    }

    #[test]
    fn bsp_worker_panic_propagates_instead_of_deadlocking() {
        let result = std::panic::catch_unwind(|| {
            let mut states = vec![0u64; 4];
            let boxes: Vec<Mutex<()>> = (0..4).map(|_| Mutex::new(())).collect();
            let mut first = true;
            bsp_run(
                &mut states,
                &boxes,
                2,
                |_| std::mem::take(&mut first),
                |i, _, _| {
                    if i == 3 {
                        panic!("boom in worker");
                    }
                },
            );
        });
        let p = result.expect_err("worker panic must surface on the caller");
        let msg = p.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "boom in worker");
    }
}
