//! 2-D geometry for deployment fields.
//!
//! The paper models a sensor network as nodes scattered in a planar
//! monitoring area with unit-disk radio reachability ("the radio range of a
//! sensor node only covers its immediate neighboring nodes", §5.1). All
//! coordinates are in metres.

use std::fmt;

/// A point in the deployment plane (metres).
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Point {
    /// X coordinate in metres.
    pub x: f64,
    /// Y coordinate in metres.
    pub y: f64,
}

impl Point {
    /// Construct a point.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(self, other: Point) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Squared Euclidean distance (cheaper; use for comparisons).
    #[inline]
    pub fn dist_sq(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Whether `other` lies within radio range `r` of `self` (inclusive).
    #[inline]
    pub fn within(self, other: Point, r: f64) -> bool {
        self.dist_sq(other) <= r * r
    }

    /// Midpoint between two points.
    #[inline]
    pub fn midpoint(self, other: Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}, {:.1})", self.x, self.y)
    }
}

/// An axis-aligned rectangle, the deployment field boundary.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Rect {
    /// Minimum corner.
    pub min: Point,
    /// Maximum corner.
    pub max: Point,
}

impl Rect {
    /// A field spanning `[0,w] × [0,h]`.
    pub fn field(w: f64, h: f64) -> Self {
        assert!(
            w >= 0.0 && h >= 0.0,
            "field dimensions must be non-negative"
        );
        Rect {
            min: Point::new(0.0, 0.0),
            max: Point::new(w, h),
        }
    }

    /// Construct from two corners (normalised so `min <= max`).
    pub fn from_corners(a: Point, b: Point) -> Self {
        Rect {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Width of the rectangle.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height of the rectangle.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area in square metres.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Geometric centre.
    #[inline]
    pub fn center(&self) -> Point {
        self.min.midpoint(self.max)
    }

    /// Whether `p` lies inside (inclusive of the boundary).
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Clamp a point into the rectangle.
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        )
    }

    /// The length of the diagonal — an upper bound on any in-field distance.
    #[inline]
    pub fn diagonal(&self) -> f64 {
        self.min.dist(self.max)
    }
}

/// Build the unit-disk adjacency lists for a set of positions with radio
/// range `range`: `adj[i]` lists every `j != i` with `dist(i,j) <= range`.
///
/// Uses a uniform grid bucketing so construction is O(n) for bounded
/// density rather than O(n²); fields in the experiments reach thousands of
/// nodes.
pub fn unit_disk_adjacency(positions: &[Point], range: f64) -> Vec<Vec<usize>> {
    let n = positions.len();
    let mut adj = vec![Vec::new(); n];
    if n == 0 || range <= 0.0 {
        return adj;
    }
    // Grid cell = range, so neighbours of a point lie in its 3×3 cell block.
    let min_x = positions.iter().map(|p| p.x).fold(f64::INFINITY, f64::min);
    let min_y = positions.iter().map(|p| p.y).fold(f64::INFINITY, f64::min);
    let cell = |p: &Point| -> (i64, i64) {
        (
            ((p.x - min_x) / range).floor() as i64,
            ((p.y - min_y) / range).floor() as i64,
        )
    };
    let mut buckets: std::collections::HashMap<(i64, i64), Vec<usize>> =
        std::collections::HashMap::new();
    for (i, p) in positions.iter().enumerate() {
        buckets.entry(cell(p)).or_default().push(i);
    }
    for (i, p) in positions.iter().enumerate() {
        let (cx, cy) = cell(p);
        for dx in -1..=1 {
            for dy in -1..=1 {
                if let Some(bucket) = buckets.get(&(cx + dx, cy + dy)) {
                    for &j in bucket {
                        if j != i && p.within(positions[j], range) {
                            adj[i].push(j);
                        }
                    }
                }
            }
        }
        adj[i].sort_unstable();
    }
    adj
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist(b), 5.0);
        assert_eq!(a.dist_sq(b), 25.0);
        assert_eq!(a.dist(a), 0.0);
    }

    #[test]
    fn within_is_inclusive_of_the_boundary() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        assert!(a.within(b, 10.0));
        assert!(!a.within(b, 9.999));
    }

    #[test]
    fn rect_contains_and_clamps() {
        let r = Rect::field(100.0, 50.0);
        assert!(r.contains(Point::new(0.0, 0.0)));
        assert!(r.contains(Point::new(100.0, 50.0)));
        assert!(!r.contains(Point::new(100.1, 0.0)));
        let clamped = r.clamp(Point::new(-5.0, 60.0));
        assert_eq!(clamped, Point::new(0.0, 50.0));
    }

    #[test]
    fn rect_geometry() {
        let r = Rect::field(100.0, 50.0);
        assert_eq!(r.area(), 5000.0);
        assert_eq!(r.center(), Point::new(50.0, 25.0));
        assert!((r.diagonal() - (100.0f64.powi(2) + 50.0f64.powi(2)).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn rect_from_corners_normalises() {
        let r = Rect::from_corners(Point::new(5.0, 9.0), Point::new(1.0, 2.0));
        assert_eq!(r.min, Point::new(1.0, 2.0));
        assert_eq!(r.max, Point::new(5.0, 9.0));
    }

    #[test]
    fn adjacency_matches_brute_force() {
        // Deterministic pseudo-random layout without pulling in `rand`.
        let mut s = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts: Vec<Point> = (0..200)
            .map(|_| Point::new(next() * 100.0, next() * 100.0))
            .collect();
        let range = 17.0;
        let fast = unit_disk_adjacency(&pts, range);
        for i in 0..pts.len() {
            let brute: Vec<usize> = (0..pts.len())
                .filter(|&j| j != i && pts[i].within(pts[j], range))
                .collect();
            assert_eq!(fast[i], brute, "adjacency mismatch at node {i}");
        }
    }

    #[test]
    fn adjacency_handles_degenerate_inputs() {
        assert!(unit_disk_adjacency(&[], 10.0).is_empty());
        let one = unit_disk_adjacency(&[Point::new(1.0, 1.0)], 10.0);
        assert_eq!(one, vec![Vec::<usize>::new()]);
        let zero_range = unit_disk_adjacency(&[Point::new(0.0, 0.0); 3], 0.0);
        assert!(zero_range.iter().all(|v| v.is_empty()));
    }
}
