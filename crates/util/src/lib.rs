//! Shared foundation types for the WMSN reproduction.
//!
//! This crate holds the pieces every other crate needs and that carry no
//! protocol logic of their own:
//!
//! * [`ids`] — strongly typed node identifiers ([`ids::NodeId`]) and
//!   the node-role taxonomy of the paper's three-layer architecture
//!   (sensor / wireless mesh gateway / wireless mesh router / base station).
//! * [`geom`] — 2-D geometry for deployment fields (points, distances,
//!   rectangles, unit-disk reachability).
//! * [`stats`] — running statistics, including the paper's energy-balance
//!   variance `D²` (eq. 1 of §5.3) and percentile summaries.
//! * [`rng`] — a small deterministic PRNG wrapper so simulations are
//!   bit-reproducible from a `u64` seed, plus stream-splitting.
//! * [`codec`] — byte-level encode/decode helpers used by the wire formats
//!   of the secure routing protocol (Figs. 4–6 of the paper).
//! * [`seen`] — generation-stamped duplicate-suppression tables for flood
//!   protocols (replacing per-packet `HashSet` probes on the hot path).
//! * [`pool`] — scoped worker-pool helpers: index-ordered parallel
//!   fan-out for seed sweeps and the bulk-synchronous loop driving the
//!   sharded simulation kernel.
//! * [`spsc`] — the bounded single-producer/single-consumer chunk ring
//!   behind the off-thread trace drain, with occupancy and blocked-time
//!   accounting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod geom;
pub mod ids;
pub mod json;
pub mod pool;
pub mod rng;
pub mod seen;
pub mod spsc;
pub mod stats;

pub use geom::{Point, Rect};
pub use ids::{NodeId, NodeRole};
pub use rng::SplitMix64;
pub use stats::Summary;
