//! Duplicate-suppression tables for flood protocols.
//!
//! Every flooding protocol in the workspace deduplicates on a
//! `(originator, sequence)` pair — RREQ floods on `(origin, req_id)`,
//! announce floods on `(gateway, round)`, data floods on
//! `(origin, msg_id)`. The naive representation is a
//! `HashSet<(NodeId, u64)>`, which pays a hash + probe on the hottest
//! branch in the simulator: *dropping an already-seen flood copy*.
//!
//! [`SeenTable`] replaces the hash set with a dense, generation-stamped
//! array indexed by originator id. Each slot tracks the highest sequence
//! seen plus a 64-wide membership bitmap below it, which is exact for
//! every realistic arrival pattern: per-origin sequences are issued
//! monotonically, and stale copies (late deliveries, replay attacks)
//! trail the newest flood by far less than 64 sequence numbers.
//! Clearing is O(1) — the generation stamp is bumped and stale slots
//! are recognised lazily.
//!
//! Out-of-range originator ids (forged identities larger than any dense
//! deployment) spill to an exact hash-set overflow so adversarial input
//! cannot force a huge allocation.

use std::collections::HashSet;

/// Originator ids below this are tracked in the dense array; anything
/// larger (necessarily a forged id — deployments are orders of magnitude
/// smaller) falls back to the exact overflow set.
const DENSE_LIMIT: usize = 1 << 16;

#[derive(Clone, Copy, Debug, Default)]
struct Slot {
    /// Generation this slot was last written in; mismatches mean empty.
    gen: u64,
    /// Highest sequence inserted for this originator.
    max: u64,
    /// Membership bitmap over `[max - 63, max]`; bit `k` set means
    /// `max - k` has been seen.
    bits: u64,
}

/// Dense generation-stamped `(originator, sequence)` membership table.
///
/// Semantics match a `HashSet<(u32, u64)>` for monotone-per-origin
/// sequences with bounded reordering: a sequence more than 63 behind the
/// newest one inserted for that origin is conservatively reported as
/// already seen (such frames are ancient replays; treating them as
/// duplicates is the safe direction for duplicate suppression).
#[derive(Clone, Debug)]
pub struct SeenTable {
    gen: u64,
    slots: Vec<Slot>,
    overflow: HashSet<(u32, u64)>,
}

impl Default for SeenTable {
    fn default() -> Self {
        Self::new()
    }
}

impl SeenTable {
    /// Empty table.
    pub fn new() -> Self {
        SeenTable {
            gen: 1,
            slots: Vec::new(),
            overflow: HashSet::new(),
        }
    }

    /// O(1) clear: forget every recorded pair.
    pub fn clear(&mut self) {
        self.gen += 1;
        self.overflow.clear();
    }

    /// Whether `(origin, seq)` has been recorded since the last clear.
    #[inline]
    pub fn contains(&self, origin: u32, seq: u64) -> bool {
        let idx = origin as usize;
        if idx >= DENSE_LIMIT {
            return self.overflow.contains(&(origin, seq));
        }
        let Some(slot) = self.slots.get(idx) else {
            return false;
        };
        if slot.gen != self.gen || seq > slot.max {
            return false;
        }
        let back = slot.max - seq;
        // Ancient sequences below the bitmap window count as seen.
        back >= 64 || slot.bits & (1u64 << back) != 0
    }

    /// Record `(origin, seq)`; returns `true` if it was newly inserted
    /// (mirrors `HashSet::insert`).
    pub fn insert(&mut self, origin: u32, seq: u64) -> bool {
        let idx = origin as usize;
        if idx >= DENSE_LIMIT {
            return self.overflow.insert((origin, seq));
        }
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, Slot::default());
        }
        let gen = self.gen;
        let slot = &mut self.slots[idx];
        if slot.gen != gen {
            *slot = Slot {
                gen,
                max: seq,
                bits: 1,
            };
            return true;
        }
        if seq > slot.max {
            let shift = seq - slot.max;
            slot.bits = if shift >= 64 { 0 } else { slot.bits << shift };
            slot.bits |= 1;
            slot.max = seq;
            return true;
        }
        let back = slot.max - seq;
        if back >= 64 {
            return false; // ancient: conservatively already-seen
        }
        let mask = 1u64 << back;
        if slot.bits & mask != 0 {
            return false;
        }
        slot.bits |= mask;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_contains() {
        let mut t = SeenTable::new();
        assert!(!t.contains(3, 7));
        assert!(t.insert(3, 7));
        assert!(t.contains(3, 7));
        assert!(!t.insert(3, 7), "second insert reports duplicate");
        assert!(!t.contains(3, 8));
        assert!(!t.contains(4, 7));
    }

    #[test]
    fn monotone_sequences_track_exactly() {
        let mut t = SeenTable::new();
        for seq in 0..200u64 {
            assert!(t.insert(9, seq), "seq {seq} must be new");
        }
        for seq in 150..200u64 {
            assert!(t.contains(9, seq));
            assert!(!t.insert(9, seq));
        }
    }

    #[test]
    fn bounded_reordering_is_exact() {
        let mut t = SeenTable::new();
        t.insert(1, 10);
        t.insert(1, 12); // 11 skipped
        assert!(!t.contains(1, 11));
        assert!(t.insert(1, 11), "late seq within window is new");
        assert!(t.contains(1, 11));
        assert!(!t.insert(1, 11));
    }

    #[test]
    fn ancient_sequences_count_as_seen() {
        let mut t = SeenTable::new();
        t.insert(1, 1000);
        assert!(t.contains(1, 1), "64+ behind max is conservatively seen");
        assert!(!t.insert(1, 1));
    }

    #[test]
    fn clear_forgets_everything_cheaply() {
        let mut t = SeenTable::new();
        t.insert(2, 5);
        t.insert(70_000, 5); // overflow path
        t.clear();
        assert!(!t.contains(2, 5));
        assert!(!t.contains(70_000, 5));
        assert!(t.insert(2, 5));
        assert!(t.insert(70_000, 5));
    }

    #[test]
    fn forged_huge_ids_use_the_exact_overflow() {
        let mut t = SeenTable::new();
        assert!(t.insert(u32::MAX, 3));
        assert!(t.contains(u32::MAX, 3));
        assert!(!t.insert(u32::MAX, 3));
        // Arbitrary (non-monotone) sequences stay exact in overflow.
        assert!(t.insert(u32::MAX, 1));
        assert!(t.contains(u32::MAX, 1));
    }

    #[test]
    fn window_slide_beyond_64_drops_the_bitmap() {
        let mut t = SeenTable::new();
        t.insert(5, 0);
        t.insert(5, 100); // shift >= 64 zeroes the window
        assert!(t.contains(5, 100));
        assert!(t.contains(5, 0), "below-window is treated as seen");
        assert!(!t.contains(5, 101));
    }
}
