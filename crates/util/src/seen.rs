//! Duplicate-suppression tables for flood protocols.
//!
//! Every flooding protocol in the workspace deduplicates on a
//! `(originator, sequence)` pair — RREQ floods on `(origin, req_id)`,
//! announce floods on `(gateway, round)`, data floods on
//! `(origin, msg_id)`. The naive representation is a
//! `HashSet<(NodeId, u64)>`, which pays a hash + probe on the hottest
//! branch in the simulator: *dropping an already-seen flood copy*.
//!
//! [`SeenTable`] stores one compact slot per originator — the highest
//! sequence seen plus a 64-wide membership bitmap below it, which is
//! exact for every realistic arrival pattern: per-origin sequences are
//! issued monotonically, and stale copies (late deliveries, replay
//! attacks) trail the newest flood by far less than 64 sequence
//! numbers. Slots live in a small open-addressed table keyed by
//! originator id (deterministic Fibonacci hashing, linear probing), so
//! a node's table is sized by the *distinct originators it has heard*,
//! not by the deployment's id space — at n = 100k every node hears a
//! few dozen flood sources, and a dense origin-indexed array would cost
//! O(n) memory per node (O(n²) across the field) and blow the cache on
//! the hottest lookup. Clearing is O(1): the generation stamp is
//! bumped and stale slots are dropped lazily at the next growth.

/// One originator's duplicate-suppression state.
#[derive(Clone, Copy, Debug, Default)]
struct Slot {
    /// Generation this slot was last written in; mismatches mean empty.
    gen: u64,
    /// Highest sequence inserted for this originator.
    max: u64,
    /// Membership bitmap over `[max - 63, max]`; bit `k` set means
    /// `max - k` has been seen.
    bits: u64,
}

/// Compact generation-stamped `(originator, sequence)` membership table.
///
/// Semantics match a `HashSet<(u32, u64)>` for monotone-per-origin
/// sequences with bounded reordering: a sequence more than 63 behind the
/// newest one inserted for that origin is conservatively reported as
/// already seen (such frames are ancient replays; treating them as
/// duplicates is the safe direction for duplicate suppression). This
/// holds for any `u32` originator, including forged identities — an
/// adversary inventing ids costs one slot per distinct id, never a
/// large allocation.
#[derive(Clone, Debug)]
pub struct SeenTable {
    gen: u64,
    /// `origin + 1` per table slot; 0 = never used. Stale keys (older
    /// generation) stay until the next growth rehash.
    keys: Vec<u64>,
    slots: Vec<Slot>,
    /// Occupied table slots, live or stale — drives growth.
    used: usize,
}

impl Default for SeenTable {
    fn default() -> Self {
        Self::new()
    }
}

/// Fibonacci multiplier (2^64 / φ) — a deterministic, well-mixing hash
/// for the near-sequential node ids that dominate real origins.
const HASH_MUL: u64 = 0x9E37_79B9_7F4A_7C15;

impl SeenTable {
    /// Empty table.
    pub fn new() -> Self {
        SeenTable {
            gen: 1,
            keys: Vec::new(),
            slots: Vec::new(),
            used: 0,
        }
    }

    /// O(1) clear: forget every recorded pair.
    pub fn clear(&mut self) {
        self.gen += 1;
    }

    /// Home slot of `origin` for the current capacity.
    #[inline]
    fn home(&self, origin: u32) -> usize {
        let mask = self.keys.len() - 1;
        ((u64::from(origin) + 1).wrapping_mul(HASH_MUL) >> 32) as usize & mask
    }

    /// Whether `(origin, seq)` has been recorded since the last clear.
    #[inline]
    pub fn contains(&self, origin: u32, seq: u64) -> bool {
        if self.keys.is_empty() {
            return false;
        }
        let key = u64::from(origin) + 1;
        let mask = self.keys.len() - 1;
        let mut i = self.home(origin);
        loop {
            let k = self.keys[i];
            if k == 0 {
                return false;
            }
            if k == key {
                let slot = &self.slots[i];
                if slot.gen != self.gen || seq > slot.max {
                    return false;
                }
                let back = slot.max - seq;
                // Ancient sequences below the bitmap window count as seen.
                return back >= 64 || slot.bits & (1u64 << back) != 0;
            }
            i = (i + 1) & mask;
        }
    }

    /// Record `(origin, seq)`; returns `true` if it was newly inserted
    /// (mirrors `HashSet::insert`).
    pub fn insert(&mut self, origin: u32, seq: u64) -> bool {
        // Keep at least one slot in four vacant so probes stay short;
        // growth rehashes live entries only, dropping stale generations.
        if self.keys.is_empty() || (self.used + 1) * 4 > self.keys.len() * 3 {
            self.grow();
        }
        let key = u64::from(origin) + 1;
        let mask = self.keys.len() - 1;
        let gen = self.gen;
        let mut i = self.home(origin);
        loop {
            let k = self.keys[i];
            if k == 0 {
                self.keys[i] = key;
                self.slots[i] = Slot {
                    gen,
                    max: seq,
                    bits: 1,
                };
                self.used += 1;
                return true;
            }
            if k == key {
                break;
            }
            i = (i + 1) & mask;
        }
        let slot = &mut self.slots[i];
        if slot.gen != gen {
            // Stale slot from a cleared generation: reclaim in place.
            *slot = Slot {
                gen,
                max: seq,
                bits: 1,
            };
            return true;
        }
        if seq > slot.max {
            let shift = seq - slot.max;
            slot.bits = if shift >= 64 { 0 } else { slot.bits << shift };
            slot.bits |= 1;
            slot.max = seq;
            return true;
        }
        let back = slot.max - seq;
        if back >= 64 {
            return false; // ancient: conservatively already-seen
        }
        let mask = 1u64 << back;
        if slot.bits & mask != 0 {
            return false;
        }
        slot.bits |= mask;
        true
    }

    /// Double the table (min 8 slots) and rehash, keeping only the
    /// current generation's entries. Deterministic: reinsertion walks
    /// the old table in slot order.
    fn grow(&mut self) {
        let cap = (self.keys.len() * 2).max(8);
        let old_keys = std::mem::replace(&mut self.keys, vec![0; cap]);
        let old_slots = std::mem::replace(&mut self.slots, vec![Slot::default(); cap]);
        self.used = 0;
        let mask = cap - 1;
        for (k, s) in old_keys.into_iter().zip(old_slots) {
            if k == 0 || s.gen != self.gen {
                continue;
            }
            let mut i = ((k.wrapping_mul(HASH_MUL)) >> 32) as usize & mask;
            while self.keys[i] != 0 {
                i = (i + 1) & mask;
            }
            self.keys[i] = k;
            self.slots[i] = s;
            self.used += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_contains() {
        let mut t = SeenTable::new();
        assert!(!t.contains(3, 7));
        assert!(t.insert(3, 7));
        assert!(t.contains(3, 7));
        assert!(!t.insert(3, 7), "second insert reports duplicate");
        assert!(!t.contains(3, 8));
        assert!(!t.contains(4, 7));
    }

    #[test]
    fn monotone_sequences_track_exactly() {
        let mut t = SeenTable::new();
        for seq in 0..200u64 {
            assert!(t.insert(9, seq), "seq {seq} must be new");
        }
        for seq in 150..200u64 {
            assert!(t.contains(9, seq));
            assert!(!t.insert(9, seq));
        }
    }

    #[test]
    fn bounded_reordering_is_exact() {
        let mut t = SeenTable::new();
        t.insert(1, 10);
        t.insert(1, 12); // 11 skipped
        assert!(!t.contains(1, 11));
        assert!(t.insert(1, 11), "late seq within window is new");
        assert!(t.contains(1, 11));
        assert!(!t.insert(1, 11));
    }

    #[test]
    fn ancient_sequences_count_as_seen() {
        let mut t = SeenTable::new();
        t.insert(1, 1000);
        assert!(t.contains(1, 1), "64+ behind max is conservatively seen");
        assert!(!t.insert(1, 1));
    }

    #[test]
    fn clear_forgets_everything_cheaply() {
        let mut t = SeenTable::new();
        t.insert(2, 5);
        t.insert(70_000, 5);
        t.clear();
        assert!(!t.contains(2, 5));
        assert!(!t.contains(70_000, 5));
        assert!(t.insert(2, 5));
        assert!(t.insert(70_000, 5));
    }

    #[test]
    fn forged_huge_ids_cost_one_slot_each() {
        let mut t = SeenTable::new();
        assert!(t.insert(u32::MAX, 3));
        assert!(t.contains(u32::MAX, 3));
        assert!(!t.insert(u32::MAX, 3));
        // Nearby (bounded-reorder) sequences stay exact for forged ids
        // too — they share the windowed slot semantics.
        assert!(t.insert(u32::MAX, 1));
        assert!(t.contains(u32::MAX, 1));
    }

    #[test]
    fn window_slide_beyond_64_drops_the_bitmap() {
        let mut t = SeenTable::new();
        t.insert(5, 0);
        t.insert(5, 100); // shift >= 64 zeroes the window
        assert!(t.contains(5, 100));
        assert!(t.contains(5, 0), "below-window is treated as seen");
        assert!(!t.contains(5, 101));
    }

    #[test]
    fn many_origins_grow_and_rehash_without_loss() {
        let mut t = SeenTable::new();
        for o in 0..5_000u32 {
            assert!(t.insert(o * 37, u64::from(o)));
        }
        for o in 0..5_000u32 {
            assert!(t.contains(o * 37, u64::from(o)), "origin {o}");
            assert!(!t.insert(o * 37, u64::from(o)));
        }
    }

    #[test]
    fn stale_generations_are_dropped_on_growth() {
        let mut t = SeenTable::new();
        for round in 0..50u64 {
            for o in 0..100u32 {
                assert!(t.insert(o, round), "round {round} origin {o}");
            }
            t.clear();
        }
        // Capacity is bounded by live entries, not by generation count.
        assert!(
            t.keys.len() <= 512,
            "capacity {} grew unbounded",
            t.keys.len()
        );
    }
}
