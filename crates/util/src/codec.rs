//! Byte-level encode/decode helpers for protocol wire formats.
//!
//! The secure routing protocol (§6.2, Figs. 4–6) is specified at the level
//! of concrete packet fields — type tags, node ids, counters, paths, MACs —
//! so we encode packets as real byte buffers and authenticate those bytes.
//! This module provides a tiny writer/reader pair with explicit error
//! handling; all integers are little-endian.

use std::fmt;

/// Errors produced while decoding a wire buffer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// The buffer ended before the requested field.
    Truncated {
        /// Bytes requested.
        needed: usize,
        /// Bytes remaining.
        remaining: usize,
    },
    /// A tag or enum discriminant had no defined meaning.
    BadTag(u8),
    /// A length prefix exceeded a sanity bound.
    LengthOutOfRange(usize),
    /// Trailing bytes remained after a complete decode.
    TrailingBytes(usize),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { needed, remaining } => {
                write!(f, "truncated buffer: needed {needed}, had {remaining}")
            }
            DecodeError::BadTag(t) => write!(f, "unknown tag {t:#04x}"),
            DecodeError::LengthOutOfRange(n) => write!(f, "length {n} out of range"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Append-only wire writer.
#[derive(Default, Debug)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Fresh writer.
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    /// Writer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Writer {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Finish and take the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write a single byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Write a little-endian `u16`.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Write a little-endian `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Write a little-endian `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Write raw bytes with no length prefix.
    pub fn raw(&mut self, bytes: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(bytes);
        self
    }

    /// Write a `u16` length prefix followed by the bytes.
    pub fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        let len = u16::try_from(bytes.len()).expect("field longer than u16::MAX");
        self.u16(len);
        self.raw(bytes)
    }

    /// Write a list of `u32` node ids with a `u16` count prefix — the
    /// encoding used for `path_ij(k)` fields.
    pub fn id_list(&mut self, ids: &[u32]) -> &mut Self {
        let len = u16::try_from(ids.len()).expect("path longer than u16::MAX");
        self.u16(len);
        for &id in ids {
            self.u32(id);
        }
        self
    }
}

/// Cursor-based wire reader.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Error unless the buffer is fully consumed.
    pub fn finish(self) -> Result<(), DecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes(self.remaining()))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, DecodeError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Read exactly `n` raw bytes.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        self.take(n)
    }

    /// Read a `u16`-length-prefixed byte field, bounded by `max` for sanity.
    pub fn bytes(&mut self, max: usize) -> Result<&'a [u8], DecodeError> {
        let len = self.u16()? as usize;
        if len > max {
            return Err(DecodeError::LengthOutOfRange(len));
        }
        self.take(len)
    }

    /// Read a `u16`-count-prefixed list of `u32` ids, bounded by `max`.
    pub fn id_list(&mut self, max: usize) -> Result<Vec<u32>, DecodeError> {
        Ok(self.id_list_view(max)?.iter().collect())
    }

    /// Borrowed variant of [`Reader::id_list`]: validates the count
    /// prefix and returns a zero-copy [`IdListView`] over the id bytes
    /// without materialising a `Vec`.
    pub fn id_list_view(&mut self, max: usize) -> Result<IdListView<'a>, DecodeError> {
        let len = self.u16()? as usize;
        if len > max {
            return Err(DecodeError::LengthOutOfRange(len));
        }
        Ok(IdListView {
            raw: self.take(len * 4)?,
        })
    }

    /// Borrowed `u16`-count-prefixed list of `u16` values, bounded by
    /// `max` — the encoding of `wanted` place lists.
    pub fn u16_list_view(&mut self, max: usize) -> Result<U16ListView<'a>, DecodeError> {
        let len = self.u16()? as usize;
        if len > max {
            return Err(DecodeError::LengthOutOfRange(len));
        }
        Ok(U16ListView {
            raw: self.take(len * 2)?,
        })
    }
}

/// Zero-copy view over a wire-encoded list of little-endian `u32` ids
/// (the byte region *after* its `u16` count prefix). Produced by
/// [`Reader::id_list_view`]; the backing bytes live in the received
/// frame, so iterating or indexing allocates nothing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct IdListView<'a> {
    raw: &'a [u8],
}

impl<'a> IdListView<'a> {
    /// View over raw id bytes (length must be a multiple of 4).
    pub fn from_bytes(raw: &'a [u8]) -> Self {
        debug_assert_eq!(raw.len() % 4, 0);
        IdListView { raw }
    }

    /// Number of ids.
    #[inline]
    pub fn len(&self) -> usize {
        self.raw.len() / 4
    }

    /// Whether the list is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// The `i`-th id, or `None` past the end.
    #[inline]
    pub fn get(&self, i: usize) -> Option<u32> {
        let b = self.raw.get(i * 4..i * 4 + 4)?;
        Some(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// The last id, if any.
    #[inline]
    pub fn last(&self) -> Option<u32> {
        self.len().checked_sub(1).and_then(|i| self.get(i))
    }

    /// Whether `id` occurs in the list.
    pub fn contains(&self, id: u32) -> bool {
        self.iter().any(|x| x == id)
    }

    /// Index of the first occurrence of `id`.
    pub fn position(&self, id: u32) -> Option<usize> {
        self.iter().position(|x| x == id)
    }

    /// Iterate the ids without allocating.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.raw
            .chunks_exact(4)
            .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// The underlying id bytes (no count prefix) — the memcpy source for
    /// in-place path forwarding.
    #[inline]
    pub fn as_bytes(&self) -> &'a [u8] {
        self.raw
    }
}

/// Zero-copy view over a wire-encoded list of little-endian `u16`
/// values (after its count prefix). See [`IdListView`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct U16ListView<'a> {
    raw: &'a [u8],
}

impl<'a> U16ListView<'a> {
    /// Number of values.
    #[inline]
    pub fn len(&self) -> usize {
        self.raw.len() / 2
    }

    /// Whether the list is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// Iterate the values without allocating.
    pub fn iter(&self) -> impl Iterator<Item = u16> + '_ {
        self.raw
            .chunks_exact(2)
            .map(|b| u16::from_le_bytes([b[0], b[1]]))
    }

    /// Collect into an owned `Vec`.
    pub fn to_vec(&self) -> Vec<u16> {
        self.iter().collect()
    }

    /// The underlying value bytes (no count prefix).
    #[inline]
    pub fn as_bytes(&self) -> &'a [u8] {
        self.raw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut w = Writer::new();
        w.u8(0xAB)
            .u16(0x1234)
            .u32(0xDEAD_BEEF)
            .u64(0x0102_0304_0506_0708);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u16().unwrap(), 0x1234);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), 0x0102_0304_0506_0708);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_reported_with_counts() {
        let bytes = [1u8, 2];
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u16().unwrap(), 0x0201);
        let err = r.u32().unwrap_err();
        assert_eq!(
            err,
            DecodeError::Truncated {
                needed: 4,
                remaining: 0
            }
        );
    }

    #[test]
    fn trailing_bytes_fail_finish() {
        let bytes = [0u8; 3];
        let mut r = Reader::new(&bytes);
        let _ = r.u8().unwrap();
        assert_eq!(r.finish().unwrap_err(), DecodeError::TrailingBytes(2));
    }

    #[test]
    fn length_prefixed_bytes_roundtrip_and_bound() {
        let mut w = Writer::new();
        w.bytes(b"hello");
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert_eq!(r.bytes(16).unwrap(), b"hello");
        // Same buffer, tighter bound → rejected.
        let mut r2 = Reader::new(&buf);
        assert_eq!(r2.bytes(4).unwrap_err(), DecodeError::LengthOutOfRange(5));
    }

    #[test]
    fn id_list_roundtrip() {
        let ids = [5u32, 0, 9_999_999];
        let mut w = Writer::new();
        w.id_list(&ids);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert_eq!(r.id_list(10).unwrap(), ids.to_vec());
        r.finish().unwrap();
    }

    #[test]
    fn id_list_respects_bound() {
        let ids: Vec<u32> = (0..20).collect();
        let mut w = Writer::new();
        w.id_list(&ids);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert_eq!(
            r.id_list(10).unwrap_err(),
            DecodeError::LengthOutOfRange(20)
        );
    }

    #[test]
    fn empty_collections_roundtrip() {
        let mut w = Writer::new();
        w.bytes(b"").id_list(&[]);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert_eq!(r.bytes(8).unwrap(), b"");
        assert!(r.id_list(8).unwrap().is_empty());
        r.finish().unwrap();
    }

    #[test]
    fn id_list_view_matches_owned_decode() {
        let ids = [7u32, 0, 42, u32::MAX];
        let mut w = Writer::new();
        w.id_list(&ids);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        let view = r.id_list_view(8).unwrap();
        r.finish().unwrap();
        assert_eq!(view.len(), 4);
        assert!(!view.is_empty());
        assert_eq!(view.iter().collect::<Vec<_>>(), ids.to_vec());
        assert_eq!(view.get(2), Some(42));
        assert_eq!(view.get(4), None);
        assert_eq!(view.last(), Some(u32::MAX));
        assert!(view.contains(0));
        assert!(!view.contains(1));
        assert_eq!(view.position(42), Some(2));
        assert_eq!(view.as_bytes().len(), 16);
    }

    #[test]
    fn id_list_view_rejects_truncated_and_oversized() {
        let mut w = Writer::new();
        w.id_list(&[1, 2, 3]);
        let buf = w.into_bytes();
        // Truncated payload: count says 3 but only 2 ids present.
        let mut r = Reader::new(&buf[..buf.len() - 4]);
        assert!(r.id_list_view(8).is_err());
        // Count exceeding the bound.
        let mut r2 = Reader::new(&buf);
        assert_eq!(
            r2.id_list_view(2).unwrap_err(),
            DecodeError::LengthOutOfRange(3)
        );
    }

    #[test]
    fn u16_list_view_roundtrips() {
        let mut w = Writer::new();
        w.u16(3).u16(5).u16(0).u16(9);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        let view = r.u16_list_view(8).unwrap();
        r.finish().unwrap();
        assert_eq!(view.to_vec(), vec![5, 0, 9]);
        assert_eq!(view.len(), 3);
        assert!(!view.is_empty());
        assert_eq!(view.as_bytes().len(), 6);
        let mut r2 = Reader::new(&buf);
        assert!(r2.u16_list_view(2).is_err());
    }

    #[test]
    fn decode_error_displays() {
        let msgs = [
            DecodeError::Truncated {
                needed: 4,
                remaining: 1,
            }
            .to_string(),
            DecodeError::BadTag(0x7F).to_string(),
            DecodeError::LengthOutOfRange(9).to_string(),
            DecodeError::TrailingBytes(2).to_string(),
        ];
        assert!(msgs[0].contains("truncated"));
        assert!(msgs[1].contains("0x7f"));
        assert!(msgs[2].contains('9'));
        assert!(msgs[3].contains("trailing"));
    }
}
