//! SecMLR wire formats — the concrete byte layouts of Figs. 4–6.
//!
//! Design notes carried over from the paper:
//!
//! * The `path` field of a query/response is **plaintext**: intermediate
//!   sensors must append themselves (query) or locate themselves
//!   (response relay) without holding the pair key. Integrity of the
//!   *chosen* path is enforced end-to-end: the gateway MACs the response
//!   path, so a tampered response is dropped by the source; a tampered
//!   query path at worst advertises a non-existent route that then simply
//!   fails to relay (and the minimum-hop collection at the gateway makes
//!   inflated paths lose).
//! * The RI header of DATA (Fig. 6) — source, destination, immediate
//!   sender, immediate receiver — is plaintext and rewritten hop by hop;
//!   payload confidentiality and integrity come from the sealed section.
//! * Counters ride in clear and are authenticated inside the MAC
//!   ([`wmsn_crypto::envelope`]).

use wmsn_crypto::mac::Tag;
use wmsn_crypto::SealedMessage;
use wmsn_util::codec::{DecodeError, IdListView, Reader, Writer};
use wmsn_util::NodeId;

pub(crate) const TAG_SRREQ: u8 = 0x50;
const TAG_SRRES: u8 = 0x51;
pub(crate) const TAG_SDATA: u8 = 0x52;
const TAG_SANNOUNCE: u8 = 0x53;
const TAG_SDISCLOSE: u8 = 0x54;

/// Maximum accepted path length.
pub const MAX_PATH: usize = 512;

/// One gateway-specific authentication section of a query (Fig. 4's
/// `{req}<K_ij,C>, MAC{K_ij, C|{req}}` for a single `G_j`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct QuerySection {
    /// Target gateway.
    pub gateway: NodeId,
    /// The sealed `req` (carries the counter and the MAC).
    pub sealed: SealedMessage,
}

/// A SecMLR message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SecMsg {
    /// Flooded routing query (Fig. 4).
    Rreq {
        /// Query origin.
        origin: NodeId,
        /// Origin-unique query id (plaintext; the authenticated copy is
        /// inside each sealed section).
        req_id: u64,
        /// Path walked so far, starting at `origin`.
        path: Vec<NodeId>,
        /// One sealed section per target gateway.
        sections: Vec<QuerySection>,
    },
    /// Routing response (Fig. 5), relayed back along `path`.
    Rres {
        /// Origin the response answers.
        origin: NodeId,
        /// Responding gateway.
        gateway: NodeId,
        /// Gateway's feasible place.
        place: u16,
        /// The chosen minimum-hop path `[origin, …, gateway]`.
        path: Vec<NodeId>,
        /// Sealed `res` (authenticates req_id, place and the path).
        sealed: SealedMessage,
    },
    /// Data (Fig. 6): RI header + sealed payload.
    Data {
        /// RI: source sensor.
        source: NodeId,
        /// RI: destination gateway.
        destination: NodeId,
        /// RI: immediate sender (rewritten per hop).
        is: NodeId,
        /// RI: immediate receiver (rewritten per hop).
        ir: NodeId,
        /// Radio hops so far (metrics; not security-relevant).
        hops: u32,
        /// Sealed application payload.
        sealed: SealedMessage,
    },
    /// μTESLA-authenticated gateway move announcement (§6.2.3).
    Announce {
        /// Moving gateway.
        gateway: NodeId,
        /// New place.
        place: u16,
        /// Round number.
        round: u32,
        /// μTESLA interval index the MAC key belongs to.
        interval: u64,
        /// μTESLA MAC over (gateway, place, round).
        tesla_tag: Tag,
    },
    /// μTESLA delayed key disclosure.
    Disclose {
        /// Disclosing gateway.
        gateway: NodeId,
        /// Interval whose key is disclosed.
        interval: u64,
        /// The chain key.
        key: [u8; 16],
    },
}

fn write_sealed(w: &mut Writer, s: &SealedMessage) {
    w.u64(s.counter);
    w.bytes(&s.ciphertext);
    w.raw(&s.tag.0);
}

fn read_sealed(r: &mut Reader<'_>) -> Result<SealedMessage, DecodeError> {
    let counter = r.u64()?;
    let ciphertext = r.bytes(u16::MAX as usize)?.to_vec();
    let mut tag = [0u8; 8];
    tag.copy_from_slice(r.raw(8)?);
    Ok(SealedMessage {
        counter,
        ciphertext,
        tag: Tag(tag),
    })
}

fn write_ids(w: &mut Writer, ids: &[NodeId]) {
    let raw: Vec<u32> = ids.iter().map(|n| n.0).collect();
    w.id_list(&raw);
}

fn read_ids(r: &mut Reader<'_>) -> Result<Vec<NodeId>, DecodeError> {
    Ok(r.id_list(MAX_PATH)?.into_iter().map(NodeId).collect())
}

impl SecMsg {
    /// Encode to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(64);
        match self {
            SecMsg::Rreq {
                origin,
                req_id,
                path,
                sections,
            } => {
                w.u8(TAG_SRREQ).u32(origin.0).u64(*req_id);
                write_ids(&mut w, path);
                w.u16(sections.len() as u16);
                for s in sections {
                    w.u32(s.gateway.0);
                    write_sealed(&mut w, &s.sealed);
                }
            }
            SecMsg::Rres {
                origin,
                gateway,
                place,
                path,
                sealed,
            } => {
                w.u8(TAG_SRRES).u32(origin.0).u32(gateway.0).u16(*place);
                write_ids(&mut w, path);
                write_sealed(&mut w, sealed);
            }
            SecMsg::Data {
                source,
                destination,
                is,
                ir,
                hops,
                sealed,
            } => {
                w.u8(TAG_SDATA)
                    .u32(source.0)
                    .u32(destination.0)
                    .u32(is.0)
                    .u32(ir.0)
                    .u32(*hops);
                write_sealed(&mut w, sealed);
            }
            SecMsg::Announce {
                gateway,
                place,
                round,
                interval,
                tesla_tag,
            } => {
                w.u8(TAG_SANNOUNCE)
                    .u32(gateway.0)
                    .u16(*place)
                    .u32(*round)
                    .u64(*interval)
                    .raw(&tesla_tag.0);
            }
            SecMsg::Disclose {
                gateway,
                interval,
                key,
            } => {
                w.u8(TAG_SDISCLOSE).u32(gateway.0).u64(*interval).raw(key);
            }
        }
        w.into_bytes()
    }

    /// Decode from bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let tag = r.u8()?;
        let msg = match tag {
            TAG_SRREQ => {
                let origin = NodeId(r.u32()?);
                let req_id = r.u64()?;
                let path = read_ids(&mut r)?;
                let n = r.u16()? as usize;
                if n > 256 {
                    return Err(DecodeError::LengthOutOfRange(n));
                }
                let mut sections = Vec::with_capacity(n);
                for _ in 0..n {
                    let gateway = NodeId(r.u32()?);
                    let sealed = read_sealed(&mut r)?;
                    sections.push(QuerySection { gateway, sealed });
                }
                SecMsg::Rreq {
                    origin,
                    req_id,
                    path,
                    sections,
                }
            }
            TAG_SRRES => SecMsg::Rres {
                origin: NodeId(r.u32()?),
                gateway: NodeId(r.u32()?),
                place: r.u16()?,
                path: read_ids(&mut r)?,
                sealed: read_sealed(&mut r)?,
            },
            TAG_SDATA => SecMsg::Data {
                source: NodeId(r.u32()?),
                destination: NodeId(r.u32()?),
                is: NodeId(r.u32()?),
                ir: NodeId(r.u32()?),
                hops: r.u32()?,
                sealed: read_sealed(&mut r)?,
            },
            TAG_SANNOUNCE => {
                let gateway = NodeId(r.u32()?);
                let place = r.u16()?;
                let round = r.u32()?;
                let interval = r.u64()?;
                let mut t = [0u8; 8];
                t.copy_from_slice(r.raw(8)?);
                SecMsg::Announce {
                    gateway,
                    place,
                    round,
                    interval,
                    tesla_tag: Tag(t),
                }
            }
            TAG_SDISCLOSE => {
                let gateway = NodeId(r.u32()?);
                let interval = r.u64()?;
                let mut key = [0u8; 16];
                key.copy_from_slice(r.raw(16)?);
                SecMsg::Disclose {
                    gateway,
                    interval,
                    key,
                }
            }
            t => return Err(DecodeError::BadTag(t)),
        };
        r.finish()?;
        Ok(msg)
    }
}

/// Byte offset of the SRREQ path count (`| 1 tag | 4 origin | 8 req_id |
/// 2 path_count | …`).
const SRREQ_PATH_COUNT: usize = 13;

/// Fixed offsets of the SDATA RI header (`| 1 tag | 4 source | 4 dst |
/// 4 is | 4 ir | 4 hops | sealed |`) and the start of the sealed section
/// (`| 8 counter | 2 clen | clen ciphertext | 8 mac |`).
const SDATA_IS: usize = 9;
const SDATA_IR: usize = 13;
const SDATA_HOPS: usize = 17;
const SDATA_CLEN: usize = 29;
const SDATA_MIN: usize = 39;

/// A structurally validated, zero-copy view of a flooded SRREQ.
///
/// `decode` walks the whole frame — path bounds, section count, every
/// sealed section's length fields, exact total length — so it accepts
/// precisely the frames [`SecMsg::decode`] accepts as `Rreq`, without
/// materialising the path or the sealed sections. Intermediates use it
/// for duplicate suppression and loop detection before any allocation.
pub struct SrreqView<'a> {
    /// Query origin.
    pub origin: NodeId,
    /// Origin-unique query id.
    pub req_id: u64,
    /// Borrowed path walked so far.
    pub path: IdListView<'a>,
    /// Offset where the sealed sections begin (end of the path field).
    sections_off: usize,
    frame: &'a [u8],
}

impl<'a> SrreqView<'a> {
    /// Validate and borrow an SRREQ frame.
    pub fn decode(bytes: &'a [u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let tag = r.u8()?;
        if tag != TAG_SRREQ {
            return Err(DecodeError::BadTag(tag));
        }
        let origin = NodeId(r.u32()?);
        let req_id = r.u64()?;
        let path = r.id_list_view(MAX_PATH)?;
        let sections_off = bytes.len() - r.remaining();
        let n = r.u16()? as usize;
        if n > 256 {
            return Err(DecodeError::LengthOutOfRange(n));
        }
        for _ in 0..n {
            let _gateway = r.u32()?;
            let _counter = r.u64()?;
            let _ciphertext = r.bytes(u16::MAX as usize)?;
            let _tag = r.raw(8)?;
        }
        r.finish()?;
        Ok(SrreqView {
            origin,
            req_id,
            path,
            sections_off,
            frame: bytes,
        })
    }

    /// Build the frame an intermediate re-floods — the received frame
    /// with `me` appended to the path — as two memcpys around the
    /// appended id, patching the path count in place. The sealed
    /// sections pass through byte-for-byte (envelope passthrough); no
    /// section is ever decoded, so the result is identical to decode →
    /// `path.push(me)` → re-encode.
    pub fn append_forward(&self, me: NodeId, out: &mut Vec<u8>) -> Result<(), DecodeError> {
        let pc = self.path.len();
        if pc + 1 > MAX_PATH {
            return Err(DecodeError::LengthOutOfRange(pc + 1));
        }
        out.clear();
        out.reserve(self.frame.len() + 4);
        out.extend_from_slice(&self.frame[..self.sections_off]);
        out[SRREQ_PATH_COUNT..SRREQ_PATH_COUNT + 2]
            .copy_from_slice(&((pc + 1) as u16).to_le_bytes());
        out.extend_from_slice(&me.0.to_le_bytes());
        out.extend_from_slice(&self.frame[self.sections_off..]);
        Ok(())
    }
}

/// Read the RI header of an SDATA frame from its fixed-offset prefix,
/// validating the full structure (the declared ciphertext length must
/// account for the frame exactly). Returns `(source, destination, ir,
/// hops)` for precisely the frames [`SecMsg::decode`] accepts as `Data`.
pub fn sdata_peek(b: &[u8]) -> Option<(NodeId, NodeId, NodeId, u32)> {
    if b.len() < SDATA_MIN || b[0] != TAG_SDATA {
        return None;
    }
    let clen = u16::from_le_bytes(b[SDATA_CLEN..SDATA_CLEN + 2].try_into().unwrap()) as usize;
    if b.len() != SDATA_MIN + clen {
        return None;
    }
    let source = NodeId(u32::from_le_bytes(b[1..5].try_into().unwrap()));
    let destination = NodeId(u32::from_le_bytes(b[5..9].try_into().unwrap()));
    let ir = NodeId(u32::from_le_bytes(
        b[SDATA_IR..SDATA_IR + 4].try_into().unwrap(),
    ));
    let hops = u32::from_le_bytes(b[SDATA_HOPS..SDATA_HOPS + 4].try_into().unwrap());
    Some((source, destination, ir, hops))
}

/// Rewrite an SDATA frame for the next hop: copy it into `out` and patch
/// the immediate-sender, immediate-receiver and hop fields in place. The
/// sealed payload is untouched, so the result is byte-identical to
/// decode → rewrite RI → re-encode.
pub fn sdata_forward_patch(frame: &[u8], is: NodeId, ir: NodeId, hops: u32, out: &mut Vec<u8>) {
    out.clear();
    out.extend_from_slice(frame);
    out[SDATA_IS..SDATA_IS + 4].copy_from_slice(&is.0.to_le_bytes());
    out[SDATA_IR..SDATA_IR + 4].copy_from_slice(&ir.0.to_le_bytes());
    out[SDATA_HOPS..SDATA_HOPS + 4].copy_from_slice(&hops.to_le_bytes());
}

/// The authenticated content of a `req` section: binds the query id so a
/// recorded section cannot be replayed under a different query.
pub fn req_plaintext(req_id: u64, origin: NodeId) -> Vec<u8> {
    let mut w = Writer::with_capacity(13);
    w.u8(b'Q').u64(req_id).u32(origin.0);
    w.into_bytes()
}

/// The authenticated content of a `res`: binds query id, place, and the
/// full chosen path, so neither can be altered in flight.
pub fn res_plaintext(req_id: u64, place: u16, path: &[NodeId]) -> Vec<u8> {
    let mut w = Writer::with_capacity(16 + 4 * path.len());
    w.u8(b'R').u64(req_id).u16(place);
    write_ids(&mut w, path);
    w.into_bytes()
}

/// The authenticated content of the μTESLA announce MAC.
pub fn announce_plaintext(gateway: NodeId, place: u16, round: u32) -> Vec<u8> {
    let mut w = Writer::with_capacity(11);
    w.u8(b'A').u32(gateway.0).u16(place).u32(round);
    w.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmsn_crypto::{seal, Key128};

    fn sealed() -> SealedMessage {
        seal(&Key128([9; 16]), 7, b"req")
    }

    fn roundtrip(msg: SecMsg) {
        assert_eq!(SecMsg::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn rreq_roundtrip_with_sections() {
        roundtrip(SecMsg::Rreq {
            origin: NodeId(1),
            req_id: 2,
            path: vec![NodeId(1), NodeId(5)],
            sections: vec![
                QuerySection {
                    gateway: NodeId(100),
                    sealed: sealed(),
                },
                QuerySection {
                    gateway: NodeId(101),
                    sealed: sealed(),
                },
            ],
        });
    }

    #[test]
    fn rres_and_data_roundtrip() {
        roundtrip(SecMsg::Rres {
            origin: NodeId(1),
            gateway: NodeId(100),
            place: 3,
            path: vec![NodeId(1), NodeId(2), NodeId(100)],
            sealed: sealed(),
        });
        roundtrip(SecMsg::Data {
            source: NodeId(1),
            destination: NodeId(100),
            is: NodeId(2),
            ir: NodeId(3),
            hops: 2,
            sealed: sealed(),
        });
    }

    #[test]
    fn announce_and_disclose_roundtrip() {
        roundtrip(SecMsg::Announce {
            gateway: NodeId(100),
            place: 1,
            round: 2,
            interval: 3,
            tesla_tag: Tag([1, 2, 3, 4, 5, 6, 7, 8]),
        });
        roundtrip(SecMsg::Disclose {
            gateway: NodeId(100),
            interval: 3,
            key: [0xAB; 16],
        });
    }

    #[test]
    fn truncation_and_bad_tags_rejected() {
        let bytes = SecMsg::Disclose {
            gateway: NodeId(1),
            interval: 2,
            key: [0; 16],
        }
        .encode();
        assert!(SecMsg::decode(&bytes[..bytes.len() - 1]).is_err());
        assert!(SecMsg::decode(&[0x99]).is_err());
    }

    #[test]
    fn plaintext_builders_bind_their_fields() {
        assert_ne!(req_plaintext(1, NodeId(2)), req_plaintext(2, NodeId(2)));
        assert_ne!(req_plaintext(1, NodeId(2)), req_plaintext(1, NodeId(3)));
        let p1 = res_plaintext(1, 2, &[NodeId(1), NodeId(9)]);
        let p2 = res_plaintext(1, 2, &[NodeId(1), NodeId(8)]);
        assert_ne!(p1, p2, "path must be authenticated");
        assert_ne!(
            announce_plaintext(NodeId(1), 2, 3),
            announce_plaintext(NodeId(1), 2, 4)
        );
    }

    #[test]
    fn srreq_view_matches_owned_decode_and_rejects_what_decode_rejects() {
        let msg = SecMsg::Rreq {
            origin: NodeId(7),
            req_id: 42,
            path: vec![NodeId(7), NodeId(3)],
            sections: vec![
                QuerySection {
                    gateway: NodeId(100),
                    sealed: sealed(),
                },
                QuerySection {
                    gateway: NodeId(101),
                    sealed: sealed(),
                },
            ],
        };
        let bytes = msg.encode();
        let view = SrreqView::decode(&bytes).unwrap();
        assert_eq!(view.origin, NodeId(7));
        assert_eq!(view.req_id, 42);
        assert_eq!(view.path.iter().collect::<Vec<_>>(), vec![7, 3]);
        // Every truncation prefix fails for both decoders; so does a
        // trailing byte.
        for cut in 0..bytes.len() {
            assert!(SrreqView::decode(&bytes[..cut]).is_err());
            assert!(SecMsg::decode(&bytes[..cut]).is_err());
        }
        let mut long = bytes.clone();
        long.push(0);
        assert!(SrreqView::decode(&long).is_err());
    }

    #[test]
    fn srreq_append_forward_equals_push_and_reencode() {
        let msg = SecMsg::Rreq {
            origin: NodeId(7),
            req_id: 42,
            path: vec![NodeId(7), NodeId(3)],
            sections: vec![QuerySection {
                gateway: NodeId(100),
                sealed: sealed(),
            }],
        };
        let bytes = msg.encode();
        let mut out = Vec::new();
        SrreqView::decode(&bytes)
            .unwrap()
            .append_forward(NodeId(9), &mut out)
            .unwrap();
        let expected = SecMsg::Rreq {
            origin: NodeId(7),
            req_id: 42,
            path: vec![NodeId(7), NodeId(3), NodeId(9)],
            sections: vec![QuerySection {
                gateway: NodeId(100),
                sealed: sealed(),
            }],
        }
        .encode();
        assert_eq!(out, expected);
    }

    #[test]
    fn sdata_peek_and_forward_patch_equal_decode_and_reencode() {
        let msg = SecMsg::Data {
            source: NodeId(1),
            destination: NodeId(100),
            is: NodeId(2),
            ir: NodeId(3),
            hops: 2,
            sealed: sealed(),
        };
        let bytes = msg.encode();
        assert_eq!(
            sdata_peek(&bytes),
            Some((NodeId(1), NodeId(100), NodeId(3), 2))
        );
        for cut in 0..bytes.len() {
            assert_eq!(sdata_peek(&bytes[..cut]), None);
        }
        let mut out = Vec::new();
        sdata_forward_patch(&bytes, NodeId(3), NodeId(4), 3, &mut out);
        let expected = SecMsg::Data {
            source: NodeId(1),
            destination: NodeId(100),
            is: NodeId(3),
            ir: NodeId(4),
            hops: 3,
            sealed: sealed(),
        }
        .encode();
        assert_eq!(out, expected);
    }

    #[test]
    fn oversized_section_count_rejected() {
        // Craft a header claiming 300 sections.
        let mut w = Writer::new();
        w.u8(0x50).u32(1).u64(1);
        w.id_list(&[1]);
        w.u16(300);
        assert!(matches!(
            SecMsg::decode(&w.into_bytes()),
            Err(DecodeError::LengthOutOfRange(300))
        ));
    }
}
