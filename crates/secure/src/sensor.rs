//! The sensor side of SecMLR.
//!
//! A sensor holds only its own pairwise keys (`K_ij` for each gateway it
//! was deployed with), outbound counters, per-gateway replay windows for
//! responses, and μTESLA receivers anchored at deployment. It can seal
//! queries/data for gateways and verify gateway responses — but it can
//! *not* authenticate other sensors, which is why (unlike plain MLR)
//! intermediate sensors never answer queries from cache and forward data
//! only along gateway-authenticated 4-tuple entries.

use crate::wire::{
    announce_plaintext, req_plaintext, sdata_forward_patch, sdata_peek, QuerySection, SecMsg,
    SrreqView,
};
use std::any::Any;
use std::collections::{HashMap, HashSet, VecDeque};
use std::rc::Rc;
use wmsn_crypto::keys::CounterSet;
use wmsn_crypto::tesla::TeslaReceiver;
use wmsn_crypto::{open, seal, KeyStore, ReplayGuard};
use wmsn_sim::{Behavior, Ctx, Packet, PacketKind, Tier};
use wmsn_util::codec::Reader;
use wmsn_util::seen::SeenTable;
use wmsn_util::NodeId;

const TIMER_COLLECT: u64 = 0x5EC1;
const TIMER_FLOOD: u64 = 0x5EC3;

/// Sensor-side tunables.
#[derive(Clone, Copy, Debug)]
pub struct SecSensorConfig {
    /// Response collection window (µs).
    pub reply_wait_us: u64,
    /// Application payload bytes per DATA.
    pub data_payload: u16,
    /// Flood jitter bound (µs); 0 disables.
    pub flood_jitter_us: u64,
    /// Discovery retries.
    pub max_retries: u32,
    /// CPU energy per seal/MAC operation (J) — SecMLR's sensor-side
    /// compute cost, charged via [`Ctx::consume_energy`].
    pub cpu_seal_j: f64,
    /// CPU energy per open/verify operation (J).
    pub cpu_open_j: f64,
}

impl Default for SecSensorConfig {
    fn default() -> Self {
        SecSensorConfig {
            reply_wait_us: 250_000,
            data_payload: 24,
            flood_jitter_us: 2_000,
            max_retries: 2,
            // CC2420-class figures: a block-cipher op costs ~µJ.
            cpu_seal_j: 2e-6,
            cpu_open_j: 2e-6,
        }
    }
}

/// Counters for tests/experiments.
#[derive(Clone, Copy, Debug, Default)]
pub struct SecSensorStats {
    /// Queries originated.
    pub rreq_originated: u64,
    /// Queries re-flooded.
    pub rreq_forwarded: u64,
    /// Responses relayed toward an origin.
    pub rres_relayed: u64,
    /// Responses rejected (bad MAC / replayed counter / path mismatch).
    pub rres_rejected: u64,
    /// DATA frames forwarded via 4-tuple entries.
    pub data_forwarded: u64,
    /// DATA frames dropped (no matching entry).
    pub data_dropped: u64,
    /// Announcements rejected by μTESLA (unsafe arrival / bad key / MAC).
    pub announce_rejected: u64,
    /// Announcements authenticated and applied.
    pub announce_applied: u64,
}

#[derive(Clone, Copy, Debug)]
struct PendingMsg {
    msg_id: u64,
    sent_at: u64,
}

/// A verified route to one gateway.
#[derive(Clone, Debug)]
pub struct SecRoute {
    /// Feasible place the gateway occupied when it answered.
    pub place: u16,
    /// Full path `[me, …, gateway]`.
    pub path: Vec<NodeId>,
}

impl SecRoute {
    /// Radio hops.
    pub fn hops(&self) -> u32 {
        (self.path.len() - 1) as u32
    }
}

/// The SecMLR sensor behaviour.
pub struct SecMlrSensor {
    cfg: SecSensorConfig,
    keys: KeyStore,
    counters: CounterSet,
    replay: ReplayGuard,
    /// Verified per-gateway routes (the paper's multi-entry table that
    /// enables failover).
    pub routes: HashMap<NodeId, SecRoute>,
    /// 4-tuple forwarding entries: (source, destination) → immediate
    /// receiver. The immediate sender is implicit (us ← previous hop).
    fwd: HashMap<(NodeId, NodeId), NodeId>,
    /// Authenticated occupancy: gateway → (place, round).
    occupied: HashMap<NodeId, (u16, u32)>,
    /// μTESLA receivers per gateway, anchored at deployment.
    tesla: HashMap<NodeId, TeslaReceiver>,
    /// Gateways the application has declared compromised/unresponsive.
    blacklist: HashSet<NodeId>,
    seen_rreq: SeenTable,
    seen_announce: HashSet<(NodeId, u32, u64)>,
    seen_disclose: SeenTable,
    next_req_id: u64,
    next_msg_id: u64,
    pending: Vec<PendingMsg>,
    discovering: Option<(u64, u32)>,
    flood_queue: VecDeque<(Rc<[u8]>, PacketKind)>,
    /// Counters.
    pub stats: SecSensorStats,
}

impl SecMlrSensor {
    /// Create a sensor with its deployment-time key store.
    pub fn new(cfg: SecSensorConfig, keys: KeyStore) -> Self {
        SecMlrSensor {
            cfg,
            keys,
            counters: CounterSet::new(),
            replay: ReplayGuard::new(),
            routes: HashMap::new(),
            fwd: HashMap::new(),
            occupied: HashMap::new(),
            tesla: HashMap::new(),
            blacklist: HashSet::new(),
            seen_rreq: SeenTable::new(),
            seen_announce: HashSet::new(),
            seen_disclose: SeenTable::new(),
            next_req_id: 0,
            next_msg_id: 0,
            pending: Vec::new(),
            discovering: None,
            flood_queue: VecDeque::new(),
            stats: SecSensorStats::default(),
        }
    }

    /// Boxed, for `World::add_node`.
    pub fn boxed(cfg: SecSensorConfig, keys: KeyStore) -> Box<dyn Behavior> {
        Box::new(Self::new(cfg, keys))
    }

    /// Install the μTESLA receiver for a gateway (anchor distributed at
    /// deployment, like the pairwise keys).
    pub fn install_tesla(&mut self, gateway: NodeId, receiver: TeslaReceiver) {
        self.tesla.insert(gateway, receiver);
    }

    /// Pre-load initial occupancy (round-0 placement is part of the
    /// deployment configuration).
    pub fn set_initial_occupancy(&mut self, occupants: &[(NodeId, u16)]) {
        self.occupied = occupants.iter().map(|&(g, p)| (g, (p, 0))).collect();
    }

    /// Declare a gateway compromised/unresponsive: future selections skip
    /// it (the §8 failover).
    pub fn blacklist_gateway(&mut self, gateway: NodeId) {
        self.blacklist.insert(gateway);
    }

    /// Authenticated occupancy view (tests).
    pub fn occupied_gateways(&self) -> Vec<(NodeId, u16)> {
        let mut v: Vec<(NodeId, u16)> = self.occupied.iter().map(|(&g, &(p, _))| (g, p)).collect();
        v.sort_unstable();
        v
    }

    fn eligible_gateways(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self
            .occupied
            .keys()
            .copied()
            .filter(|g| !self.blacklist.contains(g))
            .collect();
        v.sort_unstable();
        v
    }

    fn best_route(&self) -> Option<(NodeId, &SecRoute)> {
        self.eligible_gateways()
            .into_iter()
            .filter_map(|g| self.routes.get(&g).map(|r| (g, r)))
            .min_by_key(|(g, r)| (r.hops(), *g))
    }

    /// Originate one application message.
    pub fn originate(&mut self, ctx: &mut Ctx<'_>) {
        let msg_id = self.next_msg_id;
        self.next_msg_id += 1;
        ctx.record_origination();
        let msg = PendingMsg {
            msg_id,
            sent_at: ctx.now(),
        };
        let all_known = !self.eligible_gateways().is_empty()
            && self
                .eligible_gateways()
                .iter()
                .all(|g| self.routes.contains_key(g));
        if all_known {
            self.send_data(ctx, msg);
        } else {
            self.pending.push(msg);
            if self.discovering.is_none() {
                self.start_discovery(ctx, 0);
            }
        }
    }

    fn start_discovery(&mut self, ctx: &mut Ctx<'_>, retries_used: u32) {
        let me = ctx.id();
        let req_id = self.next_req_id;
        self.next_req_id += 1;
        self.discovering = Some((req_id, retries_used));
        self.seen_rreq.insert(me.0, req_id);
        // One sealed section per eligible gateway ("RREQ with m
        // destinations").
        // Occupancy is part of the deployment configuration (round 0) and
        // thereafter maintained by authenticated announces; a sensor with
        // no known gateways has nobody to seal a query for.
        let targets = self.eligible_gateways();
        let mut sections = Vec::with_capacity(targets.len());
        for g in targets {
            let Some(key) = self.keys.key_for(g.0) else {
                continue;
            };
            let c = self.counters.next_for(g.0);
            ctx.consume_energy(self.cfg.cpu_seal_j);
            sections.push(QuerySection {
                gateway: g,
                sealed: seal(&key, c, &req_plaintext(req_id, me)),
            });
        }
        if sections.is_empty() {
            return;
        }
        let rreq = SecMsg::Rreq {
            origin: me,
            req_id,
            path: vec![me],
            sections,
        };
        self.stats.rreq_originated += 1;
        ctx.send(None, Tier::Sensor, PacketKind::Control, rreq.encode());
        ctx.set_timer(self.cfg.reply_wait_us, TIMER_COLLECT);
    }

    fn send_data(&mut self, ctx: &mut Ctx<'_>, msg: PendingMsg) {
        let me = ctx.id();
        let Some((gateway, route)) = self.best_route() else {
            self.stats.data_dropped += 1;
            return;
        };
        let route = route.clone();
        let Some(key) = self.keys.key_for(gateway.0) else {
            self.stats.data_dropped += 1;
            return;
        };
        let c = self.counters.next_for(gateway.0);
        ctx.consume_energy(self.cfg.cpu_seal_j);
        // Payload: msg id + origination time + padding, sealed.
        let mut plain = Vec::with_capacity(16 + self.cfg.data_payload as usize);
        plain.extend_from_slice(&msg.msg_id.to_le_bytes());
        plain.extend_from_slice(&msg.sent_at.to_le_bytes());
        plain.resize(16 + self.cfg.data_payload as usize, 0);
        let sealed = seal(&key, c, &plain);
        let ir = route.path[1];
        let data = SecMsg::Data {
            source: me,
            destination: gateway,
            is: me,
            ir,
            hops: 1,
            sealed,
        };
        ctx.send(Some(ir), Tier::Sensor, PacketKind::Data, data.encode());
    }

    fn queue_flood(&mut self, ctx: &mut Ctx<'_>, bytes: impl Into<Rc<[u8]>>, kind: PacketKind) {
        let bytes = bytes.into();
        if self.cfg.flood_jitter_us == 0 {
            ctx.send(None, Tier::Sensor, kind, bytes);
        } else {
            let jitter = ctx.rng().next_below(self.cfg.flood_jitter_us);
            self.flood_queue.push_back((bytes, kind));
            ctx.set_timer(jitter, TIMER_FLOOD);
        }
    }

    fn handle_rreq(&mut self, ctx: &mut Ctx<'_>, frame: &[u8]) {
        // The view validates the whole frame (path and every sealed
        // section) without materialising either, so duplicate and loop
        // checks run allocation-free.
        let Ok(view) = SrreqView::decode(frame) else {
            return;
        };
        let me = ctx.id();
        if view.origin == me || !self.seen_rreq.insert(view.origin.0, view.req_id) {
            return;
        }
        if view.path.contains(me.0) {
            return;
        }
        // Intermediates cannot verify or answer — append and re-flood.
        // The sealed sections pass through byte-for-byte.
        self.stats.rreq_forwarded += 1;
        let mut buf = ctx.take_scratch();
        if view.append_forward(me, &mut buf).is_ok() {
            self.queue_flood(ctx, &buf[..], PacketKind::Control);
        }
        ctx.put_scratch(buf);
    }

    fn handle_rres(&mut self, ctx: &mut Ctx<'_>, msg: SecMsg, raw: &Rc<[u8]>) {
        let SecMsg::Rres {
            origin,
            gateway,
            place,
            path,
            sealed,
        } = msg
        else {
            return;
        };
        let me = ctx.id();
        let Some(idx) = path.iter().position(|&n| n == me) else {
            return;
        };
        if me == origin && idx == 0 {
            // Terminal verification at the source.
            let Some(key) = self.keys.key_for(gateway.0) else {
                self.stats.rres_rejected += 1;
                return;
            };
            ctx.consume_energy(self.cfg.cpu_open_j);
            let Some(plain) = open(&key, &sealed) else {
                self.stats.rres_rejected += 1;
                return;
            };
            if !self.replay.accept(gateway.0, sealed.counter) {
                self.stats.rres_rejected += 1;
                return;
            }
            // The sealed res must bind this path and a req we issued.
            let mut r = Reader::new(&plain);
            let ok = (|| -> Option<bool> {
                let tag = r.u8().ok()?;
                if tag != b'R' {
                    return Some(false);
                }
                let req_id = r.u64().ok()?;
                let sealed_place = r.u16().ok()?;
                let ids: Vec<NodeId> = r
                    .id_list(crate::wire::MAX_PATH)
                    .ok()?
                    .into_iter()
                    .map(NodeId)
                    .collect();
                Some(req_id < self.next_req_id && sealed_place == place && ids == path)
            })()
            .unwrap_or(false);
            if !ok {
                self.stats.rres_rejected += 1;
                return;
            }
            self.routes.insert(
                gateway,
                SecRoute {
                    place,
                    path: path.clone(),
                },
            );
            // Collection timer decides when to flush.
        } else if idx > 0 {
            // Relay toward the origin and install the 4-tuple entry
            // (source=origin, destination=gateway, IS=path[idx-1],
            // IR=path[idx+1]).
            if idx + 1 < path.len() {
                self.fwd.insert((origin, gateway), path[idx + 1]);
            }
            let prev = path[idx - 1];
            self.stats.rres_relayed += 1;
            // A relayed response is unchanged — re-encoding would
            // reproduce the received bytes, so forward the frame itself.
            ctx.send(Some(prev), Tier::Sensor, PacketKind::Control, raw.clone());
        }
    }

    fn handle_data(&mut self, ctx: &mut Ctx<'_>, frame: &[u8]) {
        // RI header peek: the sealed envelope is never opened (or even
        // copied out) on transit nodes — forwarding rewrites the three
        // RI words in place.
        let Some((source, destination, ir, hops)) = sdata_peek(frame) else {
            return;
        };
        let me = ctx.id();
        if ir != me {
            return;
        }
        let Some(&next) = self.fwd.get(&(source, destination)) else {
            self.stats.data_dropped += 1;
            return;
        };
        self.stats.data_forwarded += 1;
        let mut buf = ctx.take_scratch();
        sdata_forward_patch(frame, me, next, hops + 1, &mut buf);
        ctx.send(Some(next), Tier::Sensor, PacketKind::Data, &buf[..]);
        ctx.put_scratch(buf);
    }

    fn handle_announce(&mut self, ctx: &mut Ctx<'_>, msg: SecMsg, raw: &Rc<[u8]>) {
        let SecMsg::Announce {
            gateway,
            place,
            round,
            interval,
            tesla_tag,
        } = msg
        else {
            return;
        };
        if !self.seen_announce.insert((gateway, round, interval)) {
            return;
        }
        let now = ctx.now();
        if let Some(rx) = self.tesla.get_mut(&gateway) {
            use wmsn_crypto::tesla::ReceiveOutcome;
            let plain = announce_plaintext(gateway, place, round);
            match rx.on_message(now, interval, &plain, tesla_tag) {
                ReceiveOutcome::Buffered => {}
                _ => {
                    self.stats.announce_rejected += 1;
                    return; // do not propagate provably-unsafe frames
                }
            }
        }
        // Keep the (still-pending) flood moving so other sensors can
        // buffer it before the key discloses. The re-flooded frame is
        // unchanged, so forward the received bytes verbatim.
        self.queue_flood(ctx, raw.clone(), PacketKind::Control);
    }

    fn handle_disclose(&mut self, ctx: &mut Ctx<'_>, msg: SecMsg, raw: &Rc<[u8]>) {
        let SecMsg::Disclose {
            gateway,
            interval,
            key,
        } = msg
        else {
            return;
        };
        if !self.seen_disclose.insert(gateway.0, interval) {
            return;
        }
        if let Some(rx) = self.tesla.get_mut(&gateway) {
            ctx.consume_energy(self.cfg.cpu_open_j);
            let released = rx.on_disclosure(interval, wmsn_crypto::Digest(key));
            for plain in released {
                if let Some((g, place, round)) = parse_announce_plaintext(&plain) {
                    if g == gateway {
                        let prev = self.occupied.get(&gateway).copied();
                        let stale = prev.is_some_and(|(_, have)| round < have);
                        if !stale {
                            self.occupied.insert(gateway, (place, round));
                            self.stats.announce_applied += 1;
                            // The gateway moved: any cached route to it now
                            // leads to its old position. Drop it so the next
                            // origination rediscovers (§6.2.3 routing update).
                            if prev.map(|(p, _)| p) != Some(place) {
                                self.routes.remove(&gateway);
                            }
                        }
                    }
                }
            }
        }
        self.queue_flood(ctx, raw.clone(), PacketKind::Security);
    }

    fn on_collect_timer(&mut self, ctx: &mut Ctx<'_>) {
        let Some((_, retries)) = self.discovering else {
            return;
        };
        if self.best_route().is_some() {
            self.discovering = None;
            let pending = std::mem::take(&mut self.pending);
            for msg in pending {
                self.send_data(ctx, msg);
            }
        } else if retries < self.cfg.max_retries {
            self.start_discovery(ctx, retries + 1);
        } else {
            self.discovering = None;
            self.stats.data_dropped += self.pending.len() as u64;
            self.pending.clear();
        }
    }

    /// Buffered message count (tests).
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// 4-tuple forwarding entry count (tests).
    pub fn fwd_entries(&self) -> usize {
        self.fwd.len()
    }
}

/// Parse the announce plaintext built by
/// [`crate::wire::announce_plaintext`].
pub fn parse_announce_plaintext(plain: &[u8]) -> Option<(NodeId, u16, u32)> {
    let mut r = Reader::new(plain);
    if r.u8().ok()? != b'A' {
        return None;
    }
    let g = NodeId(r.u32().ok()?);
    let place = r.u16().ok()?;
    let round = r.u32().ok()?;
    r.finish().ok()?;
    Some((g, place, round))
}

impl Behavior for SecMlrSensor {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: &Packet) {
        // Fast paths for the bulk traffic: flooded queries and relayed
        // data are handled from the raw frame (their handlers validate
        // it themselves) without materialising the sealed envelope.
        match pkt.payload.first() {
            Some(&crate::wire::TAG_SRREQ) => return self.handle_rreq(ctx, &pkt.payload),
            Some(&crate::wire::TAG_SDATA) => return self.handle_data(ctx, &pkt.payload),
            _ => {}
        }
        let Ok(msg) = SecMsg::decode(&pkt.payload) else {
            return;
        };
        match msg {
            m @ SecMsg::Rres { .. } => self.handle_rres(ctx, m, &pkt.payload),
            m @ SecMsg::Announce { .. } => self.handle_announce(ctx, m, &pkt.payload),
            m @ SecMsg::Disclose { .. } => self.handle_disclose(ctx, m, &pkt.payload),
            // Queries and data were consumed by the fast paths above.
            SecMsg::Rreq { .. } | SecMsg::Data { .. } => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        match tag {
            TIMER_COLLECT => self.on_collect_timer(ctx),
            TIMER_FLOOD => {
                if let Some((bytes, kind)) = self.flood_queue.pop_front() {
                    ctx.send(None, Tier::Sensor, kind, bytes);
                }
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmsn_crypto::Key128;

    #[test]
    fn announce_plaintext_roundtrips_through_the_parser() {
        let plain = announce_plaintext(NodeId(9), 4, 17);
        assert_eq!(parse_announce_plaintext(&plain), Some((NodeId(9), 4, 17)));
    }

    #[test]
    fn announce_parser_rejects_malformed_input() {
        assert_eq!(parse_announce_plaintext(b""), None);
        assert_eq!(parse_announce_plaintext(b"X123456789A"), None);
        let mut long = announce_plaintext(NodeId(1), 2, 3);
        long.push(0); // trailing byte
        assert_eq!(parse_announce_plaintext(&long), None);
        let short = &announce_plaintext(NodeId(1), 2, 3)[..5];
        assert_eq!(parse_announce_plaintext(short), None);
    }

    #[test]
    fn sec_route_hop_arithmetic() {
        let r = SecRoute {
            place: 0,
            path: vec![NodeId(0), NodeId(1), NodeId(2), NodeId(9)],
        };
        assert_eq!(r.hops(), 3);
        let direct = SecRoute {
            place: 0,
            path: vec![NodeId(0), NodeId(9)],
        };
        assert_eq!(direct.hops(), 1);
    }

    #[test]
    fn blacklisting_and_occupancy_shape_the_eligible_set() {
        let master = Key128([1; 16]);
        let keys = KeyStore::for_sensor(&master, 0, &[10, 11]);
        let mut s = SecMlrSensor::new(SecSensorConfig::default(), keys);
        s.set_initial_occupancy(&[(NodeId(10), 0), (NodeId(11), 1)]);
        assert_eq!(s.eligible_gateways(), vec![NodeId(10), NodeId(11)]);
        s.blacklist_gateway(NodeId(10));
        assert_eq!(s.eligible_gateways(), vec![NodeId(11)]);
        // Routes for blacklisted gateways never win selection.
        s.routes.insert(
            NodeId(10),
            SecRoute {
                place: 0,
                path: vec![NodeId(0), NodeId(10)],
            },
        );
        s.routes.insert(
            NodeId(11),
            SecRoute {
                place: 1,
                path: vec![NodeId(0), NodeId(5), NodeId(11)],
            },
        );
        let (gw, route) = s.best_route().expect("route exists");
        assert_eq!(gw, NodeId(11), "shorter blacklisted route must lose");
        assert_eq!(route.hops(), 2);
    }

    #[test]
    fn best_route_prefers_fewer_hops_then_lower_gateway_id() {
        let master = Key128([1; 16]);
        let keys = KeyStore::for_sensor(&master, 0, &[10, 11]);
        let mut s = SecMlrSensor::new(SecSensorConfig::default(), keys);
        s.set_initial_occupancy(&[(NodeId(10), 0), (NodeId(11), 1)]);
        s.routes.insert(
            NodeId(11),
            SecRoute {
                place: 1,
                path: vec![NodeId(0), NodeId(11)],
            },
        );
        s.routes.insert(
            NodeId(10),
            SecRoute {
                place: 0,
                path: vec![NodeId(0), NodeId(10)],
            },
        );
        let (gw, _) = s.best_route().unwrap();
        assert_eq!(gw, NodeId(10), "hop tie breaks toward the lower id");
    }
}
