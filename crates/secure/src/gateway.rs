//! The gateway (WMG) side of SecMLR.
//!
//! Gateways are the trusted, resource-rich half of the protocol: they
//! hold the deployment master key (so they can derive any sensor's pair
//! key on demand), run the μTESLA broadcaster for move announcements, and
//! carry the expensive parts of routing — "it performs main computing
//! tasks on resource-rich gateways during routing establishment" (§6.2).
//!
//! Per §6.2.2, a gateway does **not** answer the first query copy it
//! hears: it verifies origin and freshness once, then collects candidate
//! paths for a timeout window and responds with
//! `path_ij = min_k |path_ij(k)|` — the collection step that makes
//! artificially shortened (sinkhole-style) paths lose to genuine ones.

use crate::wire::{announce_plaintext, req_plaintext, res_plaintext, SecMsg};
use std::any::Any;
use std::collections::HashMap;
use wmsn_crypto::hash::hash;
use wmsn_crypto::keys::{derive_key, labels, CounterSet, Key128};
use wmsn_crypto::tesla::TeslaBroadcaster;
use wmsn_crypto::{open, seal, KeyStore, ReplayGuard};
use wmsn_sim::{Behavior, Ctx, Packet, PacketKind, SimTime, Tier};
use wmsn_util::codec::Reader;
use wmsn_util::{NodeId, Point};

const TIMER_COLLECT: u64 = 0x5EC4;
const TIMER_DISCLOSE: u64 = 0x5EC5;

/// Gateway-side tunables.
#[derive(Clone, Copy, Debug)]
pub struct SecGatewayConfig {
    /// Path-collection window after the first valid query copy (µs).
    pub collect_window_us: u64,
    /// μTESLA interval length (µs).
    pub tesla_interval_us: u64,
    /// μTESLA disclosure delay (intervals).
    pub tesla_delay: u64,
    /// μTESLA chain length (intervals the deployment can run).
    pub tesla_intervals: usize,
}

impl Default for SecGatewayConfig {
    fn default() -> Self {
        SecGatewayConfig {
            collect_window_us: 50_000,
            tesla_interval_us: 250_000,
            tesla_delay: 2,
            tesla_intervals: 4096,
        }
    }
}

/// Deployment-knowledge wormhole guard (§2.3's wormhole countermeasure).
///
/// Cryptography cannot reject a wormhole — tunnelled frames are genuine —
/// but the *geometry* a wormholed path claims is impossible: two nodes
/// that are not radio neighbours appear adjacent. Gateways are deployed
/// with the sensor layout (the same channel that pre-distributes keys),
/// so they can validate every candidate path link-by-link and discard
/// physically impossible ones before the min-hop selection.
#[derive(Clone, Debug)]
pub struct TopologyGuard {
    positions: std::collections::HashMap<NodeId, Point>,
    max_link_m: f64,
}

impl TopologyGuard {
    /// Build a guard from the deployment layout and the radio range
    /// (a small tolerance is applied for boundary cases).
    pub fn new(positions: impl IntoIterator<Item = (NodeId, Point)>, range_m: f64) -> Self {
        TopologyGuard {
            positions: positions.into_iter().collect(),
            max_link_m: range_m * 1.01,
        }
    }

    /// Whether every consecutive pair in `path` is a plausible radio link.
    /// Unknown nodes (fabricated sybil identities) are implausible too.
    pub fn plausible(&self, path: &[NodeId]) -> bool {
        path.windows(2).all(
            |w| match (self.positions.get(&w[0]), self.positions.get(&w[1])) {
                (Some(a), Some(b)) => a.within(*b, self.max_link_m),
                _ => false,
            },
        )
    }
}

/// Gateway counters for tests/experiments.
#[derive(Clone, Copy, Debug, Default)]
pub struct SecGatewayStats {
    /// Queries whose MAC/counter verification failed.
    pub rreq_rejected: u64,
    /// Queries accepted (first valid copy per (origin, req)).
    pub rreq_accepted: u64,
    /// Extra path candidates collected.
    pub paths_collected: u64,
    /// Responses sent.
    pub rres_sent: u64,
    /// Data frames rejected (MAC/replay).
    pub data_rejected: u64,
    /// Data frames delivered.
    pub data_accepted: u64,
    /// Candidate paths discarded by the topology guard (wormhole-shaped).
    pub implausible_paths: u64,
}

struct Collect {
    /// Candidate full paths `[origin, …, me]`.
    candidates: Vec<Vec<NodeId>>,
    /// Deadline for the response.
    deadline: SimTime,
}

/// The SecMLR gateway behaviour.
pub struct SecMlrGateway {
    cfg: SecGatewayConfig,
    keys: KeyStore,
    counters: CounterSet,
    replay: ReplayGuard,
    /// Current feasible place.
    pub place: u16,
    /// Current round.
    pub round: u32,
    tesla: TeslaBroadcaster,
    last_disclosed: Option<u64>,
    collecting: HashMap<(NodeId, u64), Collect>,
    /// Optional deployment-knowledge wormhole guard.
    pub guard: Option<TopologyGuard>,
    /// Data packets absorbed.
    pub absorbed: u64,
    /// Counters.
    pub stats: SecGatewayStats,
}

impl SecMlrGateway {
    /// Create a gateway holding the deployment `master` key, sitting at
    /// `place`. The μTESLA chain seed is derived from the master key and
    /// the gateway id, so the whole deployment boots from one secret.
    pub fn new(cfg: SecGatewayConfig, master: &Key128, id: NodeId, place: u16) -> Self {
        let seed_key = derive_key(master, labels::TESLA_SEED, id.0, 0);
        let seed = hash(&seed_key.0);
        let tesla = TeslaBroadcaster::new(
            &seed,
            cfg.tesla_intervals,
            0,
            cfg.tesla_interval_us,
            cfg.tesla_delay,
        );
        SecMlrGateway {
            cfg,
            keys: KeyStore::for_gateway(master, id.0),
            counters: CounterSet::new(),
            replay: ReplayGuard::new(),
            place,
            round: 0,
            tesla,
            last_disclosed: None,
            collecting: HashMap::new(),
            guard: None,
            absorbed: 0,
            stats: SecGatewayStats::default(),
        }
    }

    /// Boxed, for `World::add_node`.
    pub fn boxed(
        cfg: SecGatewayConfig,
        master: &Key128,
        id: NodeId,
        place: u16,
    ) -> Box<dyn Behavior> {
        Box::new(Self::new(cfg, master, id, place))
    }

    /// The μTESLA parameters receivers need:
    /// `(anchor, t0, interval, delay, max_interval)`.
    pub fn tesla_params(&self) -> (wmsn_crypto::Digest, u64, u64, u64, u64) {
        (
            self.tesla.anchor(),
            0,
            self.cfg.tesla_interval_us,
            self.cfg.tesla_delay,
            self.tesla.max_interval(),
        )
    }

    /// Round start: move to `place` and flood the μTESLA-authenticated
    /// announcement (§6.2.3).
    pub fn set_place(&mut self, ctx: &mut Ctx<'_>, place: u16, round: u32) {
        self.place = place;
        self.round = round;
        let plain = announce_plaintext(ctx.id(), place, round);
        let (interval, tag) = self.tesla.authenticate(ctx.now(), &plain);
        let msg = SecMsg::Announce {
            gateway: ctx.id(),
            place,
            round,
            interval,
            tesla_tag: tag,
        };
        ctx.send(None, Tier::Sensor, PacketKind::Control, msg.encode());
        // Arm the disclosure schedule.
        ctx.set_timer(self.cfg.tesla_interval_us, TIMER_DISCLOSE);
    }

    fn disclose_due(&mut self, ctx: &mut Ctx<'_>) {
        if let Some((interval, key)) = self.tesla.disclosable(ctx.now()) {
            if self.last_disclosed != Some(interval) {
                self.last_disclosed = Some(interval);
                let msg = SecMsg::Disclose {
                    gateway: ctx.id(),
                    interval,
                    key: key.0,
                };
                ctx.send(None, Tier::Sensor, PacketKind::Security, msg.encode());
            }
        }
        // Keep the schedule running while the deployment lives.
        ctx.set_timer(self.cfg.tesla_interval_us, TIMER_DISCLOSE);
    }

    fn handle_rreq(&mut self, ctx: &mut Ctx<'_>, msg: SecMsg) {
        let SecMsg::Rreq {
            origin,
            req_id,
            path,
            sections,
        } = msg
        else {
            return;
        };
        let me = ctx.id();
        // Candidate path sanity: must start at the claimed origin, end
        // adjacent to us, and repeat no node.
        let valid_shape = path.first() == Some(&origin) && {
            let set: std::collections::HashSet<_> = path.iter().collect();
            set.len() == path.len()
        };
        if !valid_shape {
            self.stats.rreq_rejected += 1;
            return;
        }
        let mut full = path;
        full.push(me);
        // Wormhole guard: a tunnelled query claims adjacency between
        // nodes that cannot hear each other; discard such candidates.
        if let Some(guard) = &self.guard {
            if !guard.plausible(&full) {
                self.stats.implausible_paths += 1;
                return;
            }
        }
        if let Some(c) = self.collecting.get_mut(&(origin, req_id)) {
            // Additional copy of an already-verified query.
            c.candidates.push(full);
            self.stats.paths_collected += 1;
            return;
        }
        // First copy: verify the section addressed to us.
        let Some(section) = sections.iter().find(|s| s.gateway == me) else {
            self.stats.rreq_rejected += 1;
            return;
        };
        let Some(key) = self.keys.key_for(origin.0) else {
            self.stats.rreq_rejected += 1;
            return;
        };
        let Some(plain) = open(&key, &section.sealed) else {
            self.stats.rreq_rejected += 1;
            return;
        };
        if plain != req_plaintext(req_id, origin) {
            self.stats.rreq_rejected += 1;
            return;
        }
        if !self.replay.accept(origin.0, section.sealed.counter) {
            self.stats.rreq_rejected += 1;
            return;
        }
        self.stats.rreq_accepted += 1;
        let deadline = ctx.now() + self.cfg.collect_window_us;
        self.collecting.insert(
            (origin, req_id),
            Collect {
                candidates: vec![full],
                deadline,
            },
        );
        ctx.set_timer(self.cfg.collect_window_us, TIMER_COLLECT);
    }

    fn respond_expired(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let expired: Vec<(NodeId, u64)> = self
            .collecting
            .iter()
            .filter(|(_, c)| c.deadline <= now)
            .map(|(&k, _)| k)
            .collect();
        for (origin, req_id) in expired {
            let Some(c) = self.collecting.remove(&(origin, req_id)) else {
                continue;
            };
            // path_ij = Min(|path_ij(k)|) over all k (§6.2.2), ties
            // broken deterministically by lexicographic node ids.
            let Some(best) = c
                .candidates
                .into_iter()
                .min_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)))
            else {
                continue;
            };
            let Some(key) = self.keys.key_for(origin.0) else {
                continue;
            };
            let counter = self.counters.next_for(origin.0);
            let sealed = seal(&key, counter, &res_plaintext(req_id, self.place, &best));
            // Unicast back along the path: the next hop toward the origin
            // is the second-to-last node (the last is us).
            let prev = if best.len() >= 2 {
                best[best.len() - 2]
            } else {
                origin
            };
            let msg = SecMsg::Rres {
                origin,
                gateway: ctx.id(),
                place: self.place,
                path: best,
                sealed,
            };
            self.stats.rres_sent += 1;
            ctx.send(Some(prev), Tier::Sensor, PacketKind::Control, msg.encode());
        }
    }

    fn handle_data(&mut self, ctx: &mut Ctx<'_>, msg: SecMsg) {
        let SecMsg::Data {
            source,
            destination,
            ir,
            hops,
            sealed,
            ..
        } = msg
        else {
            return;
        };
        let me = ctx.id();
        if destination != me || ir != me {
            return;
        }
        let Some(key) = self.keys.key_for(source.0) else {
            self.stats.data_rejected += 1;
            return;
        };
        let Some(plain) = open(&key, &sealed) else {
            self.stats.data_rejected += 1;
            return;
        };
        if !self.replay.accept(source.0, sealed.counter) {
            self.stats.data_rejected += 1;
            return;
        }
        let mut r = Reader::new(&plain);
        let (Ok(msg_id), Ok(sent_at)) = (r.u64(), r.u64()) else {
            self.stats.data_rejected += 1;
            return;
        };
        self.stats.data_accepted += 1;
        self.absorbed += 1;
        ctx.record_delivery(source, msg_id, sent_at, hops);
    }
}

impl Behavior for SecMlrGateway {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.cfg.tesla_interval_us, TIMER_DISCLOSE);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: &Packet) {
        let Ok(msg) = SecMsg::decode(&pkt.payload) else {
            return;
        };
        match msg {
            m @ SecMsg::Rreq { .. } => self.handle_rreq(ctx, m),
            m @ SecMsg::Data { .. } => self.handle_data(ctx, m),
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        match tag {
            TIMER_COLLECT => self.respond_expired(ctx),
            TIMER_DISCLOSE => self.disclose_due(ctx),
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensor::{SecMlrSensor, SecSensorConfig};
    use wmsn_crypto::tesla::TeslaReceiver;
    use wmsn_sim::{NodeConfig, World, WorldConfig};
    use wmsn_util::Point;

    const MASTER: Key128 = Key128([0x42; 16]);

    fn short_range(seed: u64) -> WorldConfig {
        let mut c = WorldConfig::ideal(seed);
        c.sensor_phy.range_m = 10.0;
        c
    }

    /// A secured chain: sensors at x = 0..=(n-1)·10, gateway at x = n·10.
    /// Every sensor is keyed and μTESLA-anchored for the gateway; initial
    /// occupancy (place 0) is pre-loaded.
    pub(crate) fn secure_chain(n: usize, seed: u64) -> (World, Vec<NodeId>, NodeId) {
        let mut w = World::new(short_range(seed));
        let gw_id = NodeId(n as u32);
        let mut sensors = Vec::new();
        for i in 0..n {
            let keys = KeyStore::for_sensor(&MASTER, i as u32, &[gw_id.0]);
            sensors.push(w.add_node(
                NodeConfig::sensor(Point::new(i as f64 * 10.0, 0.0), 100.0),
                SecMlrSensor::boxed(SecSensorConfig::default(), keys),
            ));
        }
        let gw = w.add_node(
            NodeConfig::gateway(Point::new(n as f64 * 10.0, 0.0)),
            SecMlrGateway::boxed(SecGatewayConfig::default(), &MASTER, gw_id, 0),
        );
        assert_eq!(gw, gw_id);
        // Deployment-time anchoring.
        let params = w.behavior_as::<SecMlrGateway>(gw).unwrap().tesla_params();
        for &s in &sensors {
            w.with_behavior::<SecMlrSensor, _>(s, |b, _| {
                b.install_tesla(
                    gw_id,
                    TeslaReceiver::new(params.0, params.1, params.2, params.3, params.4),
                );
                b.set_initial_occupancy(&[(gw_id, 0)]);
            });
        }
        (w, sensors, gw)
    }

    #[test]
    fn secure_discovery_and_delivery() {
        let (mut w, sensors, gw) = secure_chain(5, 1);
        w.start();
        w.with_behavior::<SecMlrSensor, _>(sensors[0], |s, ctx| s.originate(ctx));
        w.run_for(3_000_000);
        let m = w.metrics();
        assert_eq!(m.deliveries.len(), 1, "secured chain must deliver");
        assert_eq!(m.deliveries[0].hops, 5);
        let g = w.behavior_as::<SecMlrGateway>(gw).unwrap();
        assert_eq!(g.stats.rreq_accepted, 1);
        assert_eq!(g.stats.data_accepted, 1);
        assert_eq!(g.stats.rreq_rejected + g.stats.data_rejected, 0);
    }

    #[test]
    fn gateway_collects_multiple_paths_and_picks_the_shortest() {
        // A diamond: S0 — (A|B, and a longer detour C—D) — GW.
        let mut w = World::new(short_range(4));
        let gw_id = NodeId(5);
        let mk = |i: u32| KeyStore::for_sensor(&MASTER, i, &[gw_id.0]);
        let s0 = w.add_node(
            NodeConfig::sensor(Point::new(0.0, 0.0), 100.0),
            SecMlrSensor::boxed(SecSensorConfig::default(), mk(0)),
        );
        let a = w.add_node(
            NodeConfig::sensor(Point::new(8.0, 5.0), 100.0),
            SecMlrSensor::boxed(SecSensorConfig::default(), mk(1)),
        );
        let c = w.add_node(
            NodeConfig::sensor(Point::new(5.0, -8.0), 100.0),
            SecMlrSensor::boxed(SecSensorConfig::default(), mk(2)),
        );
        let d = w.add_node(
            NodeConfig::sensor(Point::new(13.0, -8.0), 100.0),
            SecMlrSensor::boxed(SecSensorConfig::default(), mk(3)),
        );
        let _spare = w.add_node(
            NodeConfig::sensor(Point::new(0.0, 50.0), 100.0),
            SecMlrSensor::boxed(SecSensorConfig::default(), mk(4)),
        );
        let gw = w.add_node(
            NodeConfig::gateway(Point::new(16.0, 0.0)),
            SecMlrGateway::boxed(SecGatewayConfig::default(), &MASTER, gw_id, 0),
        );
        for s in [s0, a, c, d, _spare] {
            w.with_behavior::<SecMlrSensor, _>(s, |b, _| b.set_initial_occupancy(&[(gw_id, 0)]));
        }
        w.start();
        w.with_behavior::<SecMlrSensor, _>(s0, |s, ctx| s.originate(ctx));
        w.run_for(3_000_000);
        let g = w.behavior_as::<SecMlrGateway>(gw).unwrap();
        assert!(
            g.stats.paths_collected >= 1,
            "the detour path must also have arrived"
        );
        let m = w.metrics();
        assert_eq!(m.deliveries.len(), 1);
        assert_eq!(m.deliveries[0].hops, 2, "min-hop path via A wins");
        let route = &w.behavior_as::<SecMlrSensor>(s0).unwrap().routes[&gw];
        assert_eq!(route.path, vec![s0, a, gw]);
    }

    #[test]
    fn forged_query_is_rejected() {
        use wmsn_crypto::seal;
        let (mut w, sensors, gw) = secure_chain(3, 2);
        w.start();
        // Sensor 1 forges a query claiming to originate from sensor 0,
        // sealed under a key it invents.
        w.with_behavior::<SecMlrSensor, _>(sensors[1], |_, ctx| {
            let fake = SecMsg::Rreq {
                origin: NodeId(0),
                req_id: 99,
                path: vec![NodeId(0), ctx.id()],
                sections: vec![crate::wire::QuerySection {
                    gateway: NodeId(3),
                    sealed: seal(&Key128([0xEE; 16]), 1, b"whatever"),
                }],
            };
            ctx.send(None, Tier::Sensor, PacketKind::Control, fake.encode());
        });
        w.run_for(2_000_000);
        let g = w.behavior_as::<SecMlrGateway>(gw).unwrap();
        assert_eq!(g.stats.rreq_rejected, 1);
        assert_eq!(g.stats.rres_sent, 0);
    }

    #[test]
    fn replayed_query_is_rejected() {
        let (mut w, sensors, gw) = secure_chain(3, 3);
        w.start();
        w.with_behavior::<SecMlrSensor, _>(sensors[0], |s, ctx| s.originate(ctx));
        w.run_for(3_000_000);
        assert_eq!(w.metrics().deliveries.len(), 1);
        // Record the original query bytes and replay them as-is with a
        // different req_id marker (same sealed section ⇒ same counter).
        let replay = {
            let s0 = sensors[0];
            let key = KeyStore::for_sensor(&MASTER, 0, &[3]).key_for(3).unwrap();
            let c = 1; // the counter the original discovery used
            SecMsg::Rreq {
                origin: s0,
                req_id: 77, // new req id, old counter — classic replay
                path: vec![s0],
                sections: vec![crate::wire::QuerySection {
                    gateway: NodeId(3),
                    sealed: seal(&key, c, &req_plaintext(77, s0)),
                }],
            }
        };
        // Hand the replay to sensor 1 to inject (an adversary that
        // recorded traffic). Note: it even has a VALID MAC because we
        // reused the real key here — the counter alone must kill it.
        w.with_behavior::<SecMlrSensor, _>(sensors[1], |_, ctx| {
            ctx.send(None, Tier::Sensor, PacketKind::Control, replay.encode());
        });
        w.run_for(2_000_000);
        let g = w.behavior_as::<SecMlrGateway>(gw).unwrap();
        assert_eq!(g.stats.rreq_rejected, 1, "stale counter must be rejected");
        assert_eq!(g.stats.rres_sent, 1, "only the original got a response");
        let _ = seal(&Key128([0; 16]), 0, b""); // keep import used
    }

    #[test]
    fn tampered_data_is_rejected() {
        let (mut w, sensors, gw) = secure_chain(2, 5);
        w.start();
        w.with_behavior::<SecMlrSensor, _>(sensors[0], |s, ctx| s.originate(ctx));
        w.run_for(3_000_000);
        assert_eq!(w.metrics().deliveries.len(), 1);
        // Inject a data frame with a corrupted seal toward the gateway.
        w.with_behavior::<SecMlrSensor, _>(sensors[1], |_, ctx| {
            let key = KeyStore::for_sensor(&MASTER, 0, &[2]).key_for(2).unwrap();
            let mut sealed = seal(&key, 50, b"0123456789abcdef-payload");
            sealed.ciphertext[4] ^= 0xFF; // bit flip in transit
            let msg = SecMsg::Data {
                source: NodeId(0),
                destination: NodeId(2),
                is: ctx.id(),
                ir: NodeId(2),
                hops: 2,
                sealed,
            };
            ctx.send(
                Some(NodeId(2)),
                Tier::Sensor,
                PacketKind::Data,
                msg.encode(),
            );
        });
        w.run_for(1_000_000);
        let g = w.behavior_as::<SecMlrGateway>(gw).unwrap();
        assert_eq!(g.stats.data_rejected, 1);
        assert_eq!(g.stats.data_accepted, 1, "only the honest frame counted");
    }

    #[test]
    fn four_tuple_entries_are_installed_along_the_path() {
        let (mut w, sensors, gw) = secure_chain(4, 6);
        w.start();
        w.with_behavior::<SecMlrSensor, _>(sensors[0], |s, ctx| s.originate(ctx));
        w.run_for(3_000_000);
        // Relays 1 and 2 hold the (S0, GW) entry; the source holds its
        // route instead.
        for &mid in &sensors[1..3] {
            assert_eq!(
                w.behavior_as::<SecMlrSensor>(mid).unwrap().fwd_entries(),
                1,
                "relay {mid} missing its 4-tuple entry"
            );
        }
        assert!(w
            .behavior_as::<SecMlrSensor>(sensors[0])
            .unwrap()
            .routes
            .contains_key(&gw));
    }

    #[test]
    fn authenticated_move_announcement_updates_occupancy() {
        let (mut w, sensors, gw) = secure_chain(3, 7);
        w.start();
        // Gateway announces a move to place 4 in round 1.
        w.with_behavior::<SecMlrGateway, _>(gw, |g, ctx| g.set_place(ctx, 4, 1));
        // Run long enough for the key disclosure (delay 2 × 250 ms).
        w.run_for(2_000_000);
        for &s in &sensors {
            let b = w.behavior_as::<SecMlrSensor>(s).unwrap();
            assert_eq!(
                b.occupied_gateways(),
                vec![(gw, 4)],
                "sensor {s} did not apply the authenticated move"
            );
            assert!(b.stats.announce_applied >= 1);
        }
    }

    #[test]
    fn forged_move_announcement_is_never_applied() {
        let (mut w, sensors, gw) = secure_chain(3, 8);
        w.start();
        // Sensor 1 forges "gateway moved to place 9" with a garbage tag.
        w.with_behavior::<SecMlrSensor, _>(sensors[1], |_, ctx| {
            let fake = SecMsg::Announce {
                gateway: NodeId(3),
                place: 9,
                round: 2,
                interval: 1,
                tesla_tag: wmsn_crypto::mac::Tag([7; 8]),
            };
            ctx.send(None, Tier::Sensor, PacketKind::Control, fake.encode());
        });
        // And even discloses a forged "key" for that interval.
        w.with_behavior::<SecMlrSensor, _>(sensors[1], |_, ctx| {
            let fake_key = SecMsg::Disclose {
                gateway: NodeId(3),
                interval: 1,
                key: [0xAA; 16],
            };
            ctx.send(None, Tier::Sensor, PacketKind::Security, fake_key.encode());
        });
        w.run_for(2_000_000);
        for &s in &sensors {
            let b = w.behavior_as::<SecMlrSensor>(s).unwrap();
            assert_eq!(
                b.occupied_gateways(),
                vec![(gw, 0)],
                "forged move must not take effect"
            );
            assert_eq!(b.stats.announce_applied, 0);
        }
    }

    #[test]
    fn failover_to_second_gateway_after_blacklisting() {
        // Chain with gateways on both ends.
        let mut w = World::new(short_range(9));
        let g_right = NodeId(4);
        let g_left = NodeId(5);
        let mut sensors = Vec::new();
        for i in 0..4 {
            let keys = KeyStore::for_sensor(&MASTER, i, &[g_right.0, g_left.0]);
            sensors.push(w.add_node(
                NodeConfig::sensor(Point::new(i as f64 * 10.0, 0.0), 100.0),
                SecMlrSensor::boxed(SecSensorConfig::default(), keys),
            ));
        }
        let gr = w.add_node(
            NodeConfig::gateway(Point::new(40.0, 0.0)),
            SecMlrGateway::boxed(SecGatewayConfig::default(), &MASTER, g_right, 0),
        );
        let gl = w.add_node(
            NodeConfig::gateway(Point::new(-10.0, 0.0)),
            SecMlrGateway::boxed(SecGatewayConfig::default(), &MASTER, g_left, 1),
        );
        for &s in &sensors {
            w.with_behavior::<SecMlrSensor, _>(s, |b, _| {
                b.set_initial_occupancy(&[(g_right, 0), (g_left, 1)]);
            });
        }
        w.start();
        // Sensor 2 (x=20) is 3 hops from the left gateway, 2 from the
        // right: first message goes right.
        w.with_behavior::<SecMlrSensor, _>(sensors[2], |s, ctx| s.originate(ctx));
        w.run_for(3_000_000);
        assert_eq!(w.metrics().deliveries.last().unwrap().destination, gr);
        // The application observes losses via gr and fails over.
        w.with_behavior::<SecMlrSensor, _>(sensors[2], |s, ctx| {
            s.blacklist_gateway(g_right);
            s.originate(ctx);
        });
        w.run_for(3_000_000);
        assert_eq!(
            w.metrics().deliveries.last().unwrap().destination,
            gl,
            "failover must reroute to the left gateway"
        );
        let _ = gl;
    }

    #[test]
    fn topology_guard_accepts_honest_paths_and_rejects_wormholes() {
        use wmsn_util::Point;
        let layout: Vec<(NodeId, Point)> = (0..6u32)
            .map(|i| (NodeId(i), Point::new(f64::from(i) * 10.0, 0.0)))
            .collect();
        let guard = TopologyGuard::new(layout, 10.0);
        // Honest chain path: consecutive 10 m links.
        let honest: Vec<NodeId> = (0..6).map(NodeId).collect();
        assert!(guard.plausible(&honest));
        // Wormholed path: node 0 "adjacent" to node 5 (50 m apart).
        assert!(!guard.plausible(&[NodeId(0), NodeId(5)]));
        // Fabricated identity: unknown node id.
        assert!(!guard.plausible(&[NodeId(0), NodeId(99)]));
        // Trivial paths are fine.
        assert!(guard.plausible(&[NodeId(3)]));
        assert!(guard.plausible(&[]));
    }

    #[test]
    fn guarded_gateway_discards_wormhole_candidates() {
        let (mut w, sensors, gw) = secure_chain(5, 21);
        // Arm the guard with the true deployment.
        let layout: Vec<(NodeId, wmsn_util::Point)> = (0..=5u32)
            .map(|i| (NodeId(i), wmsn_util::Point::new(f64::from(i) * 10.0, 0.0)))
            .collect();
        w.with_behavior::<SecMlrGateway, _>(gw, |g, _| {
            g.guard = Some(TopologyGuard::new(layout, 10.0));
        });
        w.start();
        // Inject a forged RREQ copy whose path teleports S0 next to the
        // gateway (what a wormhole rebroadcast near the gateway looks
        // like after S0's genuine flood: path = [S0] only).
        w.with_behavior::<SecMlrSensor, _>(sensors[0], |s, ctx| s.originate(ctx));
        w.run_for(3_000_000);
        // The honest 5-hop route was selected despite any short-looking
        // single-copy path (the first copy the gateway hears IS [S0]-ish
        // only if tunnelled; in this honest run nothing is discarded).
        let g = w.behavior_as::<SecMlrGateway>(gw).unwrap();
        assert_eq!(
            g.stats.implausible_paths, 0,
            "honest run: nothing discarded"
        );
        assert_eq!(w.metrics().deliveries.len(), 1);
        assert_eq!(w.metrics().deliveries[0].hops, 5);
    }

    #[test]
    fn second_message_reuses_the_verified_route_without_control_traffic() {
        let (mut w, sensors, _gw) = secure_chain(4, 10);
        w.start();
        w.with_behavior::<SecMlrSensor, _>(sensors[0], |s, ctx| s.originate(ctx));
        w.run_for(3_000_000);
        let control = w.metrics().sent_control;
        w.with_behavior::<SecMlrSensor, _>(sensors[0], |s, ctx| s.originate(ctx));
        w.run_for(3_000_000);
        assert_eq!(
            w.metrics().sent_control,
            control,
            "second message must ride the cached secure route"
        );
        assert_eq!(w.metrics().deliveries.len(), 2);
    }
}
