//! `wmsn-secure` — SecMLR, the paper's secure routing protocol (§6).
//!
//! SecMLR hardens MLR against the network-layer attack taxonomy of §2.3
//! (spoofed/altered/replayed routing information, selective forwarding,
//! sinkhole, sybil, wormhole, HELLO flood, acknowledgment spoofing) using
//! only symmetric primitives, under the paper's trust model: **gateways
//! are trusted and resource-rich; individual sensors are not.**
//!
//! Protocol phases, faithful to §6.2:
//!
//! 1. **Routing query** (§6.2.1, Fig. 4): the source floods one RREQ
//!    carrying, *per gateway*, `{req}<K_ij,C>` and
//!    `MAC(K_ij, C | {req})`. Intermediate sensors cannot read or forge
//!    these sections — they only append themselves to the plaintext
//!    `path_ij(k)` field and re-flood. (No cached-route short-circuit
//!    here: an intermediate cannot produce a valid MAC for another
//!    sensor's pair key, which is exactly what blocks sinkhole replies.)
//! 2. **Response** (§6.2.2, Fig. 5): a gateway verifies origin (MAC) and
//!    freshness (counter `C`), then *collects* path candidates for a
//!    timeout window and answers with the minimum-hop path
//!    `path_ij = min_k |path_ij(k)|`, sealed and MACed. Relaying sensors
//!    install the paper's 4-tuple forwarding entries
//!    *(source, destination, immediate sender, immediate receiver)*.
//! 3. **Routing update** (§6.2.3): moved gateways broadcast their new
//!    place under **μTESLA** — sensors buffer announcements until the
//!    interval key is disclosed and discard any that fail the safety
//!    test or the MAC, defeating replayed/forged move announcements.
//! 4. **Data forwarding** (§6.2.4, Fig. 6): DATA carries the sealed
//!    payload plus the mutable RI header (source, destination, IS, IR);
//!    each hop matches its 4-tuple entry, rewrites IS/IR, and forwards.
//!    The gateway verifies MAC + counter before accepting.
//!
//! Intrusion tolerance (§8): sources keep one route per gateway; when the
//! preferred route is found to be losing data (a watchdog or
//! application-level observation), [`sensor::SecMlrSensor::blacklist_gateway`]
//! fails over to the next-best gateway — "if the best route fails to
//! transmit data correctly, sensor nodes may redirect data transmission
//! using other routes".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gateway;
pub mod sensor;
pub mod wire;

pub use gateway::{SecGatewayConfig, SecMlrGateway};
pub use sensor::{SecMlrSensor, SecSensorConfig};
