//! Trace replay: load a JSONL trace and answer debugging questions.
//!
//! This is the engine behind the `wmsn-trace` CLI — "show the path of
//! msg N", "why was packet X dropped", "per-node energy timeline" —
//! kept in the library so the queries are unit-testable and usable
//! from experiments directly.

use crate::event::TraceEvent;
use crate::parse::{get, parse_line, Record, Value};
use std::collections::BTreeMap;
use std::io::BufRead;

/// One hop of a reconstructed message path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PathHop {
    /// Time the hop transmitted.
    pub t: u64,
    /// Transmitting node.
    pub node: u64,
    /// Link-layer next hop, if the frame was unicast.
    pub next: Option<u64>,
    /// Hop count after this transmission.
    pub hops: u64,
}

/// The reconstructed journey of one application message.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MessagePath {
    /// Forwarding hops in time order (the first entry is the origination).
    pub hops: Vec<PathHop>,
    /// Final delivery `(t, destination, hops, latency_us)`, if it arrived.
    pub delivered: Option<(u64, u64, u64, u64)>,
}

/// A reception that was dropped: `(t, receiver, cause)`.
pub type DropRecord = (u64, u64, String);

/// A loaded trace file.
#[derive(Debug, Default)]
pub struct Replay {
    records: Vec<Record>,
}

impl Replay {
    /// Parse every line of a reader. Fails on the first malformed line
    /// with its 1-based line number.
    pub fn from_reader(r: impl BufRead) -> Result<Replay, String> {
        let mut records = Vec::new();
        for (i, line) in r.lines().enumerate() {
            let line = line.map_err(|e| format!("line {}: read error: {e}", i + 1))?;
            if line.trim().is_empty() {
                continue;
            }
            let rec = parse_line(&line).map_err(|e| format!("line {}: {e}", i + 1))?;
            if get(&rec, "ev").and_then(Value::as_str).is_none() {
                return Err(format!("line {}: missing \"ev\" field", i + 1));
            }
            records.push(rec);
        }
        Ok(Replay { records })
    }

    /// Parse an in-memory JSONL string.
    pub fn from_jsonl(s: &str) -> Result<Replay, String> {
        Self::from_reader(s.as_bytes())
    }

    /// Build a replay directly from decoded events (e.g. a binary
    /// capture). Each event is routed through its canonical JSONL
    /// rendering, so every query answers exactly as it would on the
    /// converted file.
    pub fn from_events(events: &[TraceEvent]) -> Replay {
        let records = events
            .iter()
            .map(|ev| parse_line(&ev.to_json().to_string()).expect("canonical event JSON parses"))
            .collect();
        Replay { records }
    }

    /// Number of events loaded.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    fn events_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Record> {
        self.records
            .iter()
            .filter(move |r| get(r, "ev").and_then(Value::as_str) == Some(name))
    }

    /// Event counts by variant name, deterministically ordered.
    pub fn counts(&self) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        for r in &self.records {
            if let Some(ev) = get(r, "ev").and_then(Value::as_str) {
                *out.entry(ev.to_string()).or_insert(0) += 1;
            }
        }
        out
    }

    /// Reconstruct the hop-by-hop path of message `(origin, msg_id)`
    /// from its `forward` and `deliver` events. Returns `None` if the
    /// message never appears in the trace.
    pub fn path_of(&self, origin: u64, msg_id: u64) -> Option<MessagePath> {
        let matches = |r: &Record| {
            get(r, "origin").and_then(Value::as_u64) == Some(origin)
                && get(r, "msg_id").and_then(Value::as_u64) == Some(msg_id)
        };
        let mut path = MessagePath::default();
        for r in self.events_named("forward").filter(|r| matches(r)) {
            path.hops.push(PathHop {
                t: get(r, "t").and_then(Value::as_u64).unwrap_or(0),
                node: get(r, "node").and_then(Value::as_u64).unwrap_or(0),
                next: get(r, "next").and_then(Value::as_u64),
                hops: get(r, "hops").and_then(Value::as_u64).unwrap_or(0),
            });
        }
        if let Some(r) = self.events_named("deliver").find(|r| matches(r)) {
            path.delivered = Some((
                get(r, "t").and_then(Value::as_u64).unwrap_or(0),
                get(r, "node").and_then(Value::as_u64).unwrap_or(0),
                get(r, "hops").and_then(Value::as_u64).unwrap_or(0),
                get(r, "latency_us").and_then(Value::as_u64).unwrap_or(0),
            ));
        }
        if path.hops.is_empty() && path.delivered.is_none() {
            None
        } else {
            Some(path)
        }
    }

    /// Every drop of frame `seq`: why a packet never arrived. A
    /// broadcast frame can be dropped independently at several
    /// receivers, so this is a list.
    pub fn drops_of_seq(&self, seq: u64) -> Vec<DropRecord> {
        self.events_named("drop")
            .filter(|r| get(r, "seq").and_then(Value::as_u64) == Some(seq))
            .map(|r| {
                (
                    get(r, "t").and_then(Value::as_u64).unwrap_or(0),
                    get(r, "node").and_then(Value::as_u64).unwrap_or(0),
                    get(r, "cause")
                        .and_then(Value::as_str)
                        .unwrap_or("?")
                        .to_string(),
                )
            })
            .collect()
    }

    /// Cumulative energy timeline `(t, joules)` for one node, in trace
    /// order.
    pub fn energy_of(&self, node: u64) -> Vec<(u64, f64)> {
        self.events_named("energy")
            .filter(|r| get(r, "node").and_then(Value::as_u64) == Some(node))
            .map(|r| {
                (
                    get(r, "t").and_then(Value::as_u64).unwrap_or(0),
                    get(r, "consumed_j").and_then(Value::as_f64).unwrap_or(0.0),
                )
            })
            .collect()
    }

    /// All `(origin, msg_id)` pairs that were delivered, in trace order
    /// without duplicates.
    pub fn delivered_messages(&self) -> Vec<(u64, u64)> {
        let mut seen = Vec::new();
        for r in self.events_named("deliver") {
            let key = (
                get(r, "origin").and_then(Value::as_u64).unwrap_or(0),
                get(r, "msg_id").and_then(Value::as_u64).unwrap_or(0),
            );
            if !seen.contains(&key) {
                seen.push(key);
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRACE: &str = "\
{\"ev\":\"forward\",\"t\":10,\"node\":5,\"origin\":5,\"msg_id\":1,\"next\":3,\"hops\":1}\n\
{\"ev\":\"forward\",\"t\":20,\"node\":3,\"origin\":5,\"msg_id\":1,\"next\":9,\"hops\":2}\n\
{\"ev\":\"deliver\",\"t\":30,\"node\":9,\"origin\":5,\"msg_id\":1,\"hops\":2,\"latency_us\":20}\n\
{\"ev\":\"drop\",\"t\":15,\"seq\":4,\"node\":7,\"cause\":\"collision\"}\n\
{\"ev\":\"energy\",\"t\":10,\"node\":5,\"consumed_j\":0.001}\n\
{\"ev\":\"energy\",\"t\":30,\"node\":5,\"consumed_j\":0.002}\n";

    #[test]
    fn reconstructs_a_message_path() {
        let r = Replay::from_jsonl(TRACE).unwrap();
        assert_eq!(r.len(), 6);
        let p = r.path_of(5, 1).unwrap();
        assert_eq!(p.hops.len(), 2);
        assert_eq!(p.hops[0].node, 5);
        assert_eq!(p.hops[1].next, Some(9));
        assert_eq!(p.delivered, Some((30, 9, 2, 20)));
        assert!(r.path_of(5, 99).is_none());
        assert_eq!(r.delivered_messages(), vec![(5, 1)]);
    }

    #[test]
    fn answers_drop_and_energy_queries() {
        let r = Replay::from_jsonl(TRACE).unwrap();
        assert_eq!(r.drops_of_seq(4), vec![(15, 7, "collision".to_string())]);
        assert!(r.drops_of_seq(5).is_empty());
        let e = r.energy_of(5);
        assert_eq!(e.len(), 2);
        assert!((e[1].1 - 0.002).abs() < 1e-12);
        assert_eq!(r.counts()["forward"], 2);
    }

    #[test]
    fn malformed_lines_fail_with_line_numbers() {
        let err = Replay::from_jsonl("{\"ev\":\"rx\",\"t\":1}\nnot json\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        let err = Replay::from_jsonl("{\"t\":1}\n").unwrap_err();
        assert!(err.contains("missing \"ev\""), "{err}");
        assert!(Replay::from_jsonl("\n\n").unwrap().is_empty());
    }
}
