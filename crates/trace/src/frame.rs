//! The binary trace frame: a fixed-size wire form of [`TraceEvent`].
//!
//! JSONL is the human-facing trace format; at n=100k a single round
//! emits tens of millions of events and serialising each to a JSON
//! object *on the simulation thread* is the dominant cost of leaving
//! tracing on. The binary frame is the cheap form: every event encodes
//! to exactly [`FRAME_LEN`] bytes at fixed offsets (no varints, no
//! length prefixes), so encoding is a handful of stores and decoding is
//! a handful of loads — cheap enough for the ring pipeline's drain
//! thread and compact enough that a binary capture is ~30–50% the size
//! of its JSONL twin.
//!
//! # Frame layout (version 1, little-endian)
//!
//! ```text
//! offset  size  field
//! 0       8     at   — causal merge position: sim time of the emitting event
//! 8       8     key  — causal merge position: event key (node<<32|counter)
//! 16      1     tag  — variant discriminant (see `tag` consts)
//! 17      7     zero padding
//! 24      8     t    — the event's own timestamp (µs)
//! 32      32    variant fields at fixed offsets, zero-padded
//! ```
//!
//! `(at, key)` ride in the frame so per-shard binary streams can be
//! merged back into reference emission order the same way
//! [`crate::sink::merge_keyed_traces`] merges JSONL. Conversion from
//! JSONL (which carries neither) stamps `at = t, key = 0`.
//!
//! `Option<NodeId>` fields use a presence byte rather than a sentinel
//! id, f64 fields are stored as IEEE-754 bits (`to_bits`), so decoding
//! is the *exact* inverse of encoding: `decode(encode(ev)) == ev`
//! bit-for-bit, which is what makes binary→JSONL conversion
//! byte-identical to what [`crate::JsonlSink`] writes (pinned by the
//! golden test).
//!
//! # Capture file format
//!
//! A binary capture is a 16-byte header — [`FRAME_MAGIC`] (8 bytes),
//! version `u32`, frame length `u32` — followed by back-to-back frames.
//! The magic's first byte can never open a JSONL document (`{`), which
//! is what lets the `wmsn-trace` CLI autodetect the format by sniffing
//! the first 8 bytes.

use crate::event::{DropCause, TraceEvent, TraceKind, TraceTier};
use crate::sink::TraceSink;
use std::any::Any;
use std::io::{Read, Write};
use wmsn_util::NodeId;

/// Magic bytes opening a binary trace capture.
pub const FRAME_MAGIC: [u8; 8] = *b"WMSNTRB\0";
/// Binary trace format version (bumped on any layout change).
pub const FRAME_VERSION: u32 = 1;
/// Size of one encoded frame, bytes.
pub const FRAME_LEN: usize = 64;
/// Size of the capture-file header, bytes.
pub const HEADER_LEN: usize = 16;

/// Number of distinct frame tags (tags are `1..=TAG_COUNT`).
pub const TAG_COUNT: usize = 17;

/// Variant discriminants. Stable wire values — append, never renumber.
mod tag {
    pub const TX_START: u8 = 1;
    pub const TX_DEFER: u8 = 2;
    pub const TX_GIVEUP: u8 = 3;
    pub const RX: u8 = 4;
    pub const DROP: u8 = 5;
    pub const FORWARD: u8 = 6;
    pub const DELIVER: u8 = 7;
    pub const RREQ_FLOOD: u8 = 8;
    pub const CACHE_REPLY: u8 = 9;
    pub const ROUTE_INSTALL: u8 = 10;
    pub const ROUTE_SELECT: u8 = 11;
    pub const GATEWAY_MOVE: u8 = 12;
    pub const NODE_MOVE: u8 = 13;
    pub const NODE_SLEEP: u8 = 14;
    pub const NODE_WAKE: u8 = 15;
    pub const NODE_KILL: u8 = 16;
    pub const ENERGY: u8 = 17;
}

/// The wire tag an event encodes under — the per-variant discriminant
/// the segmented capture index counts by. Kept in lockstep with
/// [`encode_frame`] (pinned by a test).
pub fn event_tag(ev: &TraceEvent) -> u8 {
    match ev {
        TraceEvent::TxStart { .. } => tag::TX_START,
        TraceEvent::TxDefer { .. } => tag::TX_DEFER,
        TraceEvent::TxGiveUp { .. } => tag::TX_GIVEUP,
        TraceEvent::Rx { .. } => tag::RX,
        TraceEvent::Drop { .. } => tag::DROP,
        TraceEvent::Forward { .. } => tag::FORWARD,
        TraceEvent::Deliver { .. } => tag::DELIVER,
        TraceEvent::RreqFlood { .. } => tag::RREQ_FLOOD,
        TraceEvent::CacheReply { .. } => tag::CACHE_REPLY,
        TraceEvent::RouteInstall { .. } => tag::ROUTE_INSTALL,
        TraceEvent::RouteSelect { .. } => tag::ROUTE_SELECT,
        TraceEvent::GatewayMove { .. } => tag::GATEWAY_MOVE,
        TraceEvent::NodeMove { .. } => tag::NODE_MOVE,
        TraceEvent::NodeSleep { .. } => tag::NODE_SLEEP,
        TraceEvent::NodeWake { .. } => tag::NODE_WAKE,
        TraceEvent::NodeKill { .. } => tag::NODE_KILL,
        TraceEvent::Energy { .. } => tag::ENERGY,
    }
}

/// Variant name for a wire tag — `Some("tx_start")` for
/// [`event_tag`]'s output, `None` for unknown tags. The names match
/// [`TraceEvent::name`], so index-derived counts key identically to
/// decode-derived ones.
pub fn tag_name(t: u8) -> Option<&'static str> {
    Some(match t {
        tag::TX_START => "tx_start",
        tag::TX_DEFER => "tx_defer",
        tag::TX_GIVEUP => "tx_giveup",
        tag::RX => "rx",
        tag::DROP => "drop",
        tag::FORWARD => "forward",
        tag::DELIVER => "deliver",
        tag::RREQ_FLOOD => "rreq_flood",
        tag::CACHE_REPLY => "cache_reply",
        tag::ROUTE_INSTALL => "route_install",
        tag::ROUTE_SELECT => "route_select",
        tag::GATEWAY_MOVE => "gateway_move",
        tag::NODE_MOVE => "node_move",
        tag::NODE_SLEEP => "node_sleep",
        tag::NODE_WAKE => "node_wake",
        tag::NODE_KILL => "node_kill",
        tag::ENERGY => "energy",
        _ => return None,
    })
}

fn tier_byte(t: TraceTier) -> u8 {
    match t {
        TraceTier::Sensor => 0,
        TraceTier::Mesh => 1,
    }
}

fn tier_of(b: u8) -> Result<TraceTier, String> {
    match b {
        0 => Ok(TraceTier::Sensor),
        1 => Ok(TraceTier::Mesh),
        other => Err(format!("bad tier byte {other}")),
    }
}

fn kind_byte(k: TraceKind) -> u8 {
    match k {
        TraceKind::Control => 0,
        TraceKind::Data => 1,
        TraceKind::Security => 2,
    }
}

fn kind_of(b: u8) -> Result<TraceKind, String> {
    match b {
        0 => Ok(TraceKind::Control),
        1 => Ok(TraceKind::Data),
        2 => Ok(TraceKind::Security),
        other => Err(format!("bad kind byte {other}")),
    }
}

fn cause_byte(c: DropCause) -> u8 {
    match c {
        DropCause::Collision => 0,
        DropCause::Loss => 1,
        DropCause::Dead => 2,
        DropCause::OutOfRange => 3,
        DropCause::Energy => 4,
    }
}

fn cause_of(b: u8) -> Result<DropCause, String> {
    match b {
        0 => Ok(DropCause::Collision),
        1 => Ok(DropCause::Loss),
        2 => Ok(DropCause::Dead),
        3 => Ok(DropCause::OutOfRange),
        4 => Ok(DropCause::Energy),
        other => Err(format!("bad drop-cause byte {other}")),
    }
}

/// Little write cursor over the fixed variant-field region.
struct Wr<'a>(&'a mut [u8; FRAME_LEN], usize);

impl Wr<'_> {
    fn u8(&mut self, v: u8) {
        self.0[self.1] = v;
        self.1 += 1;
    }
    fn u16(&mut self, v: u16) {
        self.0[self.1..self.1 + 2].copy_from_slice(&v.to_le_bytes());
        self.1 += 2;
    }
    fn u32(&mut self, v: u32) {
        self.0[self.1..self.1 + 4].copy_from_slice(&v.to_le_bytes());
        self.1 += 4;
    }
    fn u64(&mut self, v: u64) {
        self.0[self.1..self.1 + 8].copy_from_slice(&v.to_le_bytes());
        self.1 += 8;
    }
    fn id(&mut self, n: NodeId) {
        self.u32(n.0);
    }
    fn opt_id(&mut self, n: Option<NodeId>) {
        match n {
            Some(n) => {
                self.u8(1);
                self.id(n);
            }
            None => {
                self.u8(0);
                self.u32(0);
            }
        }
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
}

/// Read cursor, mirror of [`Wr`].
struct Rd<'a>(&'a [u8; FRAME_LEN], usize);

impl Rd<'_> {
    fn u8(&mut self) -> u8 {
        let v = self.0[self.1];
        self.1 += 1;
        v
    }
    fn u16(&mut self) -> u16 {
        let v = u16::from_le_bytes(self.0[self.1..self.1 + 2].try_into().unwrap());
        self.1 += 2;
        v
    }
    fn u32(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.0[self.1..self.1 + 4].try_into().unwrap());
        self.1 += 4;
        v
    }
    fn u64(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.0[self.1..self.1 + 8].try_into().unwrap());
        self.1 += 8;
        v
    }
    fn id(&mut self) -> NodeId {
        NodeId(self.u32())
    }
    fn opt_id(&mut self) -> Result<Option<NodeId>, String> {
        let flag = self.u8();
        let raw = self.u32();
        match flag {
            0 => Ok(None),
            1 => Ok(Some(NodeId(raw))),
            other => Err(format!("bad option flag {other}")),
        }
    }
    fn f64(&mut self) -> f64 {
        f64::from_bits(self.u64())
    }
}

/// Encode one event (plus its causal merge position) into a frame.
pub fn encode_frame(ev: &TraceEvent, at: u64, key: u64) -> [u8; FRAME_LEN] {
    let mut buf = [0u8; FRAME_LEN];
    buf[0..8].copy_from_slice(&at.to_le_bytes());
    buf[8..16].copy_from_slice(&key.to_le_bytes());
    buf[24..32].copy_from_slice(&ev.t().to_le_bytes());
    let (tag, mut w) = (16usize, Wr(&mut buf, 32));
    let t = match *ev {
        TraceEvent::TxStart {
            seq,
            src,
            dst,
            tier,
            kind,
            bytes,
            ..
        } => {
            w.u64(seq);
            w.id(src);
            w.opt_id(dst);
            w.u8(tier_byte(tier));
            w.u8(kind_byte(kind));
            w.u32(bytes);
            tag::TX_START
        }
        TraceEvent::TxDefer {
            src, tier, attempt, ..
        } => {
            w.id(src);
            w.u8(tier_byte(tier));
            w.u8(attempt);
            tag::TX_DEFER
        }
        TraceEvent::TxGiveUp { src, tier, .. } => {
            w.id(src);
            w.u8(tier_byte(tier));
            tag::TX_GIVEUP
        }
        TraceEvent::Rx { seq, node, .. } => {
            w.u64(seq);
            w.id(node);
            tag::RX
        }
        TraceEvent::Drop {
            seq, node, cause, ..
        } => {
            w.u64(seq);
            w.id(node);
            w.u8(cause_byte(cause));
            tag::DROP
        }
        TraceEvent::Forward {
            node,
            origin,
            msg_id,
            next,
            hops,
            ..
        } => {
            w.id(node);
            w.id(origin);
            w.u64(msg_id);
            w.opt_id(next);
            w.u32(hops);
            tag::FORWARD
        }
        TraceEvent::Deliver {
            node,
            origin,
            msg_id,
            hops,
            latency_us,
            ..
        } => {
            w.id(node);
            w.id(origin);
            w.u64(msg_id);
            w.u32(hops);
            w.u64(latency_us);
            tag::DELIVER
        }
        TraceEvent::RreqFlood {
            node,
            origin,
            req_id,
            forwarded,
            ..
        } => {
            w.id(node);
            w.id(origin);
            w.u64(req_id);
            w.u8(forwarded as u8);
            tag::RREQ_FLOOD
        }
        TraceEvent::CacheReply {
            node,
            origin,
            req_id,
            gateway,
            place,
            ..
        } => {
            w.id(node);
            w.id(origin);
            w.u64(req_id);
            w.id(gateway);
            w.u16(place);
            tag::CACHE_REPLY
        }
        TraceEvent::RouteInstall {
            node,
            gateway,
            place,
            hops,
            energy_pm,
            ..
        } => {
            w.id(node);
            w.id(gateway);
            w.u16(place);
            w.u32(hops);
            w.u16(energy_pm);
            tag::ROUTE_INSTALL
        }
        TraceEvent::RouteSelect {
            node,
            gateway,
            place,
            hops,
            energy_pm,
            ..
        } => {
            w.id(node);
            w.id(gateway);
            w.u16(place);
            w.u32(hops);
            w.u16(energy_pm);
            tag::ROUTE_SELECT
        }
        TraceEvent::GatewayMove { gateway, place, .. } => {
            w.id(gateway);
            w.u16(place);
            tag::GATEWAY_MOVE
        }
        TraceEvent::NodeMove { node, x, y, .. } => {
            w.id(node);
            w.f64(x);
            w.f64(y);
            tag::NODE_MOVE
        }
        TraceEvent::NodeSleep { node, .. } => {
            w.id(node);
            tag::NODE_SLEEP
        }
        TraceEvent::NodeWake { node, .. } => {
            w.id(node);
            tag::NODE_WAKE
        }
        TraceEvent::NodeKill { node, .. } => {
            w.id(node);
            tag::NODE_KILL
        }
        TraceEvent::Energy {
            node, consumed_j, ..
        } => {
            w.id(node);
            w.f64(consumed_j);
            tag::ENERGY
        }
    };
    buf[tag] = t;
    buf
}

/// Decode one frame back into `(event, at, key)` — the exact inverse of
/// [`encode_frame`]. Unknown tags and malformed enum bytes are hard
/// errors, same discipline as the JSONL decoder.
pub fn decode_frame(buf: &[u8; FRAME_LEN]) -> Result<(TraceEvent, u64, u64), String> {
    let at = u64::from_le_bytes(buf[0..8].try_into().unwrap());
    let key = u64::from_le_bytes(buf[8..16].try_into().unwrap());
    let t = u64::from_le_bytes(buf[24..32].try_into().unwrap());
    let mut r = Rd(buf, 32);
    let ev = match buf[16] {
        tag::TX_START => {
            let seq = r.u64();
            let src = r.id();
            let dst = r.opt_id()?;
            let tier = tier_of(r.u8())?;
            let kind = kind_of(r.u8())?;
            let bytes = r.u32();
            TraceEvent::TxStart {
                t,
                seq,
                src,
                dst,
                tier,
                kind,
                bytes,
            }
        }
        tag::TX_DEFER => {
            let src = r.id();
            let tier = tier_of(r.u8())?;
            let attempt = r.u8();
            TraceEvent::TxDefer {
                t,
                src,
                tier,
                attempt,
            }
        }
        tag::TX_GIVEUP => {
            let src = r.id();
            let tier = tier_of(r.u8())?;
            TraceEvent::TxGiveUp { t, src, tier }
        }
        tag::RX => {
            let seq = r.u64();
            let node = r.id();
            TraceEvent::Rx { t, seq, node }
        }
        tag::DROP => {
            let seq = r.u64();
            let node = r.id();
            let cause = cause_of(r.u8())?;
            TraceEvent::Drop {
                t,
                seq,
                node,
                cause,
            }
        }
        tag::FORWARD => {
            let node = r.id();
            let origin = r.id();
            let msg_id = r.u64();
            let next = r.opt_id()?;
            let hops = r.u32();
            TraceEvent::Forward {
                t,
                node,
                origin,
                msg_id,
                next,
                hops,
            }
        }
        tag::DELIVER => {
            let node = r.id();
            let origin = r.id();
            let msg_id = r.u64();
            let hops = r.u32();
            let latency_us = r.u64();
            TraceEvent::Deliver {
                t,
                node,
                origin,
                msg_id,
                hops,
                latency_us,
            }
        }
        tag::RREQ_FLOOD => {
            let node = r.id();
            let origin = r.id();
            let req_id = r.u64();
            let forwarded = match r.u8() {
                0 => false,
                1 => true,
                other => return Err(format!("bad bool byte {other}")),
            };
            TraceEvent::RreqFlood {
                t,
                node,
                origin,
                req_id,
                forwarded,
            }
        }
        tag::CACHE_REPLY => {
            let node = r.id();
            let origin = r.id();
            let req_id = r.u64();
            let gateway = r.id();
            let place = r.u16();
            TraceEvent::CacheReply {
                t,
                node,
                origin,
                req_id,
                gateway,
                place,
            }
        }
        tag::ROUTE_INSTALL => {
            let node = r.id();
            let gateway = r.id();
            let place = r.u16();
            let hops = r.u32();
            let energy_pm = r.u16();
            TraceEvent::RouteInstall {
                t,
                node,
                gateway,
                place,
                hops,
                energy_pm,
            }
        }
        tag::ROUTE_SELECT => {
            let node = r.id();
            let gateway = r.id();
            let place = r.u16();
            let hops = r.u32();
            let energy_pm = r.u16();
            TraceEvent::RouteSelect {
                t,
                node,
                gateway,
                place,
                hops,
                energy_pm,
            }
        }
        tag::GATEWAY_MOVE => {
            let gateway = r.id();
            let place = r.u16();
            TraceEvent::GatewayMove { t, gateway, place }
        }
        tag::NODE_MOVE => {
            let node = r.id();
            let x = r.f64();
            let y = r.f64();
            TraceEvent::NodeMove { t, node, x, y }
        }
        tag::NODE_SLEEP => TraceEvent::NodeSleep { t, node: r.id() },
        tag::NODE_WAKE => TraceEvent::NodeWake { t, node: r.id() },
        tag::NODE_KILL => TraceEvent::NodeKill { t, node: r.id() },
        tag::ENERGY => {
            let node = r.id();
            let consumed_j = r.f64();
            TraceEvent::Energy {
                t,
                node,
                consumed_j,
            }
        }
        other => return Err(format!("unknown frame tag {other}")),
    };
    Ok((ev, at, key))
}

/// Write the capture-file header.
pub fn write_header<W: Write>(w: &mut W) -> std::io::Result<()> {
    w.write_all(&FRAME_MAGIC)?;
    w.write_all(&FRAME_VERSION.to_le_bytes())?;
    w.write_all(&(FRAME_LEN as u32).to_le_bytes())
}

/// Check a capture-file header. Returns the frame length it declares.
pub fn read_header<R: Read>(r: &mut R) -> Result<usize, String> {
    let mut h = [0u8; HEADER_LEN];
    r.read_exact(&mut h)
        .map_err(|e| format!("short binary header: {e}"))?;
    if h[0..8] != FRAME_MAGIC {
        return Err("bad magic: not a binary trace capture".into());
    }
    let version = u32::from_le_bytes(h[8..12].try_into().unwrap());
    if version != FRAME_VERSION {
        return Err(format!(
            "unsupported binary trace version {version} (expected {FRAME_VERSION})"
        ));
    }
    let len = u32::from_le_bytes(h[12..16].try_into().unwrap()) as usize;
    if len != FRAME_LEN {
        return Err(format!(
            "unsupported frame length {len} (expected {FRAME_LEN})"
        ));
    }
    Ok(len)
}

/// Whether `head` (the first bytes of a file) opens a binary trace
/// capture. 8 bytes are enough; fewer can only be JSONL or garbage.
pub fn is_binary_capture(head: &[u8]) -> bool {
    head.len() >= FRAME_MAGIC.len() && head[..FRAME_MAGIC.len()] == FRAME_MAGIC
}

/// Read an entire binary capture: header check, then every frame
/// decoded to `(event, at, key)` in file order. A trailing partial
/// frame is a hard error (truncated capture).
pub fn read_binary_trace<R: Read>(mut r: R) -> Result<Vec<(TraceEvent, u64, u64)>, String> {
    read_header(&mut r)?;
    let mut out = Vec::new();
    let mut buf = [0u8; FRAME_LEN];
    loop {
        match read_frame(&mut r, &mut buf)? {
            false => break,
            true => {
                out.push(decode_frame(&buf).map_err(|e| format!("frame {}: {e}", out.len() + 1))?)
            }
        }
    }
    Ok(out)
}

/// Read one frame into `buf`. `Ok(false)` = clean EOF.
fn read_frame<R: Read>(r: &mut R, buf: &mut [u8; FRAME_LEN]) -> Result<bool, String> {
    let mut filled = 0;
    while filled < FRAME_LEN {
        let n = r
            .read(&mut buf[filled..])
            .map_err(|e| format!("read error: {e}"))?;
        if n == 0 {
            return if filled == 0 {
                Ok(false)
            } else {
                Err(format!(
                    "truncated capture: {filled} trailing bytes (frame is {FRAME_LEN})"
                ))
            };
        }
        filled += n;
    }
    Ok(true)
}

/// Streaming reader over a flat binary capture: header checked up
/// front, then one frame per [`BinaryTraceReader::next_frame`] call —
/// O(1) memory however large the capture, unlike
/// [`read_binary_trace`] which materialises every event. Decode errors
/// carry the frame's byte offset so a truncation or corruption can be
/// reported precisely.
#[derive(Debug)]
pub struct BinaryTraceReader<R: Read> {
    r: R,
    frames_read: u64,
}

impl<R: Read> BinaryTraceReader<R> {
    /// Check the capture header and position at the first frame.
    pub fn new(mut r: R) -> Result<Self, String> {
        read_header(&mut r)?;
        Ok(BinaryTraceReader { r, frames_read: 0 })
    }

    /// Byte offset of the *next* frame (header included).
    pub fn byte_offset(&self) -> u64 {
        HEADER_LEN as u64 + self.frames_read * FRAME_LEN as u64
    }

    /// Frames decoded so far.
    pub fn frames_read(&self) -> u64 {
        self.frames_read
    }

    /// Decode the next frame; `Ok(None)` = clean EOF. Truncation and
    /// malformed frames are hard errors.
    #[allow(clippy::type_complexity)]
    pub fn next_frame(&mut self) -> Result<Option<(TraceEvent, u64, u64)>, String> {
        let mut buf = [0u8; FRAME_LEN];
        if !read_frame(&mut self.r, &mut buf)? {
            return Ok(None);
        }
        let decoded = decode_frame(&buf).map_err(|e| {
            format!(
                "frame {} (offset {}): {e}",
                self.frames_read + 1,
                self.byte_offset()
            )
        })?;
        self.frames_read += 1;
        Ok(Some(decoded))
    }
}

/// Binary-capture sink over any writer: header first, then one
/// [`FRAME_LEN`]-byte frame per event. The binary twin of
/// [`crate::JsonlSink`] — write errors are likewise swallowed (tracing
/// is best-effort and must never alter simulation behaviour).
#[derive(Debug)]
pub struct BinarySink<W: Write + 'static> {
    w: W,
    frames: u64,
    header_ok: bool,
}

impl<W: Write + 'static> BinarySink<W> {
    /// Wrap a writer; the header is written immediately.
    pub fn new(mut w: W) -> Self {
        let header_ok = write_header(&mut w).is_ok();
        BinarySink {
            w,
            frames: 0,
            header_ok,
        }
    }

    /// Frames written so far (header excluded).
    pub fn frames_written(&self) -> u64 {
        self.frames
    }

    /// Unwrap the writer (flushing first).
    pub fn into_inner(mut self) -> W {
        let _ = self.w.flush();
        self.w
    }
}

impl<W: Write + 'static> TraceSink for BinarySink<W> {
    fn record(&mut self, ev: &TraceEvent) {
        self.record_keyed(ev, ev.t(), 0);
    }
    fn record_keyed(&mut self, ev: &TraceEvent, at: u64, key: u64) {
        if self.header_ok && self.w.write_all(&encode_frame(ev, at, key)).is_ok() {
            self.frames += 1;
        }
    }
    fn flush(&mut self) {
        let _ = self.w.flush();
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use wmsn_util::SplitMix64;

    /// One event of every variant, fields chosen to exercise option
    /// presence, enum extremes and float bit-exactness.
    pub(crate) fn exhaustive_events() -> Vec<TraceEvent> {
        let mut evs = Vec::new();
        for (tier, kind) in [
            (TraceTier::Sensor, TraceKind::Control),
            (TraceTier::Sensor, TraceKind::Data),
            (TraceTier::Mesh, TraceKind::Security),
        ] {
            evs.push(TraceEvent::TxStart {
                t: 1,
                seq: (7u64 << 32) | 3,
                src: NodeId(7),
                dst: if kind == TraceKind::Data {
                    None
                } else {
                    Some(NodeId(u32::MAX))
                },
                tier,
                kind,
                bytes: 48,
            });
        }
        evs.push(TraceEvent::TxDefer {
            t: 2,
            src: NodeId(5),
            tier: TraceTier::Sensor,
            attempt: 255,
        });
        evs.push(TraceEvent::TxGiveUp {
            t: 3,
            src: NodeId(5),
            tier: TraceTier::Mesh,
        });
        evs.push(TraceEvent::Rx {
            t: 4,
            seq: 9,
            node: NodeId(6),
        });
        for cause in [
            DropCause::Collision,
            DropCause::Loss,
            DropCause::Dead,
            DropCause::OutOfRange,
            DropCause::Energy,
        ] {
            evs.push(TraceEvent::Drop {
                t: 5,
                seq: u64::MAX,
                node: NodeId(6),
                cause,
            });
        }
        evs.push(TraceEvent::Forward {
            t: 6,
            node: NodeId(7),
            origin: NodeId(1),
            msg_id: 11,
            next: None,
            hops: 2,
        });
        evs.push(TraceEvent::Forward {
            t: 6,
            node: NodeId(7),
            origin: NodeId(1),
            msg_id: 11,
            next: Some(NodeId(0)),
            hops: u32::MAX,
        });
        evs.push(TraceEvent::Deliver {
            t: 7,
            node: NodeId(8),
            origin: NodeId(1),
            msg_id: 11,
            hops: 3,
            latency_us: 1234,
        });
        evs.push(TraceEvent::RreqFlood {
            t: 8,
            node: NodeId(2),
            origin: NodeId(2),
            req_id: 1,
            forwarded: false,
        });
        evs.push(TraceEvent::RreqFlood {
            t: 8,
            node: NodeId(2),
            origin: NodeId(3),
            req_id: 2,
            forwarded: true,
        });
        evs.push(TraceEvent::CacheReply {
            t: 9,
            node: NodeId(3),
            origin: NodeId(2),
            req_id: 1,
            gateway: NodeId(10),
            place: u16::MAX,
        });
        evs.push(TraceEvent::RouteInstall {
            t: 10,
            node: NodeId(3),
            gateway: NodeId(10),
            place: 2,
            hops: 4,
            energy_pm: 1000,
        });
        evs.push(TraceEvent::RouteSelect {
            t: 11,
            node: NodeId(3),
            gateway: NodeId(10),
            place: 2,
            hops: 4,
            energy_pm: 0,
        });
        evs.push(TraceEvent::GatewayMove {
            t: 12,
            gateway: NodeId(10),
            place: 0,
        });
        evs.push(TraceEvent::NodeMove {
            t: 13,
            node: NodeId(4),
            x: -0.0,
            y: f64::MIN_POSITIVE,
        });
        evs.push(TraceEvent::NodeSleep {
            t: 14,
            node: NodeId(4),
        });
        evs.push(TraceEvent::NodeWake {
            t: 15,
            node: NodeId(4),
        });
        evs.push(TraceEvent::NodeKill {
            t: u64::MAX,
            node: NodeId(4),
        });
        evs.push(TraceEvent::Energy {
            t: 17,
            node: NodeId(4),
            consumed_j: 0.1 + 0.2, // a value with no short decimal form
        });
        evs
    }

    #[test]
    fn event_tag_matches_encoded_discriminant() {
        for ev in exhaustive_events() {
            let frame = encode_frame(&ev, 0, 0);
            assert_eq!(frame[16], event_tag(&ev), "{}", ev.name());
            assert_eq!(tag_name(event_tag(&ev)), Some(ev.name()));
            assert!((event_tag(&ev) as usize) <= TAG_COUNT);
        }
        assert_eq!(tag_name(0), None);
        assert_eq!(tag_name(TAG_COUNT as u8 + 1), None);
    }

    #[test]
    fn streaming_reader_matches_bulk_decode_and_reports_offsets() {
        let evs = exhaustive_events();
        let mut sink = BinarySink::new(Vec::<u8>::new());
        for (i, ev) in evs.iter().enumerate() {
            sink.record_keyed(ev, i as u64, i as u64 + 7);
        }
        let bytes = sink.into_inner();
        let bulk = read_binary_trace(&bytes[..]).expect("bulk decode");
        let mut streaming = BinaryTraceReader::new(&bytes[..]).expect("header");
        let mut got = Vec::new();
        while let Some(f) = streaming.next_frame().expect("frame") {
            got.push(f);
        }
        assert_eq!(got, bulk);
        assert_eq!(streaming.frames_read(), evs.len() as u64);
        // A corrupted tag mid-capture is reported with its byte offset.
        let mut bad = bytes.clone();
        let victim = 3usize;
        bad[HEADER_LEN + victim * FRAME_LEN + 16] = 200;
        let mut r = BinaryTraceReader::new(&bad[..]).expect("header");
        for _ in 0..victim {
            r.next_frame().expect("frame").expect("present");
        }
        let err = r.next_frame().unwrap_err();
        assert!(
            err.contains(&format!("offset {}", HEADER_LEN + victim * FRAME_LEN)),
            "{err}"
        );
    }

    #[test]
    fn every_variant_round_trips_bit_exactly() {
        for (i, ev) in exhaustive_events().into_iter().enumerate() {
            let frame = encode_frame(&ev, 42 + i as u64, (3u64 << 32) | i as u64);
            let (back, at, key) = decode_frame(&frame).expect("decode");
            assert_eq!(back, ev, "event {i}");
            assert_eq!(at, 42 + i as u64);
            assert_eq!(key, (3u64 << 32) | i as u64);
        }
    }

    #[test]
    fn random_events_round_trip_through_frame_and_jsonl_agree() {
        // Property: for a pseudorandom population of events, frame
        // round-trip is identity AND the JSONL rendering of the decoded
        // event is byte-identical to the original's — the conversion
        // parity the `convert` subcommand relies on.
        let mut rng = SplitMix64::new(0xF00D);
        for i in 0..2000 {
            let ev = random_event(&mut rng);
            let (back, _, _) = decode_frame(&encode_frame(&ev, i, i)).expect("decode");
            assert_eq!(back, ev, "iteration {i}");
            assert_eq!(
                back.to_json().to_string(),
                ev.to_json().to_string(),
                "iteration {i}"
            );
        }
    }

    fn random_event(rng: &mut SplitMix64) -> TraceEvent {
        let t = rng.next_u64_raw() >> 20;
        let node = NodeId(rng.next_u64_raw() as u32 >> 12);
        let origin = NodeId(rng.next_u64_raw() as u32 >> 12);
        let opt = |rng: &mut SplitMix64| {
            if rng.next_u64_raw() & 1 == 0 {
                None
            } else {
                Some(NodeId(rng.next_u64_raw() as u32 >> 12))
            }
        };
        match rng.next_u64_raw() % 17 {
            0 => TraceEvent::TxStart {
                t,
                seq: rng.next_u64_raw(),
                src: node,
                dst: opt(rng),
                tier: if rng.next_u64_raw() & 1 == 0 {
                    TraceTier::Sensor
                } else {
                    TraceTier::Mesh
                },
                kind: match rng.next_u64_raw() % 3 {
                    0 => TraceKind::Control,
                    1 => TraceKind::Data,
                    _ => TraceKind::Security,
                },
                bytes: rng.next_u64_raw() as u32 >> 16,
            },
            1 => TraceEvent::TxDefer {
                t,
                src: node,
                tier: TraceTier::Sensor,
                attempt: rng.next_u64_raw() as u8,
            },
            2 => TraceEvent::TxGiveUp {
                t,
                src: node,
                tier: TraceTier::Mesh,
            },
            3 => TraceEvent::Rx {
                t,
                seq: rng.next_u64_raw(),
                node,
            },
            4 => TraceEvent::Drop {
                t,
                seq: rng.next_u64_raw(),
                node,
                cause: cause_of((rng.next_u64_raw() % 5) as u8).unwrap(),
            },
            5 => TraceEvent::Forward {
                t,
                node,
                origin,
                msg_id: rng.next_u64_raw(),
                next: opt(rng),
                hops: rng.next_u64_raw() as u32 >> 8,
            },
            6 => TraceEvent::Deliver {
                t,
                node,
                origin,
                msg_id: rng.next_u64_raw(),
                hops: rng.next_u64_raw() as u32 >> 8,
                latency_us: rng.next_u64_raw() >> 10,
            },
            7 => TraceEvent::RreqFlood {
                t,
                node,
                origin,
                req_id: rng.next_u64_raw(),
                forwarded: rng.next_u64_raw() & 1 == 1,
            },
            8 => TraceEvent::CacheReply {
                t,
                node,
                origin,
                req_id: rng.next_u64_raw(),
                gateway: NodeId(rng.next_u64_raw() as u32 >> 12),
                place: rng.next_u64_raw() as u16,
            },
            9 => TraceEvent::RouteInstall {
                t,
                node,
                gateway: NodeId(rng.next_u64_raw() as u32 >> 12),
                place: rng.next_u64_raw() as u16,
                hops: rng.next_u64_raw() as u32 >> 8,
                energy_pm: rng.next_u64_raw() as u16,
            },
            10 => TraceEvent::RouteSelect {
                t,
                node,
                gateway: NodeId(rng.next_u64_raw() as u32 >> 12),
                place: rng.next_u64_raw() as u16,
                hops: rng.next_u64_raw() as u32 >> 8,
                energy_pm: rng.next_u64_raw() as u16,
            },
            11 => TraceEvent::GatewayMove {
                t,
                gateway: node,
                place: rng.next_u64_raw() as u16,
            },
            12 => TraceEvent::NodeMove {
                t,
                node,
                x: f64::from_bits(rng.next_u64_raw() >> 2), // finite
                y: -(rng.next_u64_raw() as f64 / 1e6),
            },
            13 => TraceEvent::NodeSleep { t, node },
            14 => TraceEvent::NodeWake { t, node },
            15 => TraceEvent::NodeKill { t, node },
            _ => TraceEvent::Energy {
                t,
                node,
                consumed_j: rng.next_u64_raw() as f64 / 1e9,
            },
        }
    }

    #[test]
    fn capture_file_round_trips_and_detects_corruption() {
        let evs = exhaustive_events();
        let mut sink = BinarySink::new(Vec::<u8>::new());
        for (i, ev) in evs.iter().enumerate() {
            sink.record_keyed(ev, i as u64, 100 + i as u64);
        }
        assert_eq!(sink.frames_written(), evs.len() as u64);
        let bytes = sink.into_inner();
        assert!(is_binary_capture(&bytes));
        assert_eq!(bytes.len(), HEADER_LEN + evs.len() * FRAME_LEN);
        let back = read_binary_trace(&bytes[..]).expect("read capture");
        assert_eq!(back.len(), evs.len());
        for (i, ((ev, at, key), want)) in back.iter().zip(&evs).enumerate() {
            assert_eq!(ev, want, "frame {i}");
            assert_eq!((*at, *key), (i as u64, 100 + i as u64));
        }
        // Truncation is a hard error.
        assert!(read_binary_trace(&bytes[..bytes.len() - 1]).is_err());
        // Bad magic is a hard error.
        let mut corrupt = bytes.clone();
        corrupt[0] = b'{';
        assert!(read_binary_trace(&corrupt[..]).is_err());
        assert!(!is_binary_capture(&corrupt));
        // Unknown tag is a hard error.
        let mut badtag = bytes;
        badtag[HEADER_LEN + 16] = 200;
        assert!(read_binary_trace(&badtag[..]).is_err());
    }
}
