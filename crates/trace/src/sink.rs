//! Trace sinks: where events go.
//!
//! The world owns at most one `Box<dyn TraceSink>`; the disabled state
//! is `None`, so the hot path pays exactly one predictable branch. All
//! shipped sinks serialise through [`TraceEvent::to_json`], so a file
//! sink and an in-memory sink produce byte-identical lines.

use crate::event::TraceEvent;
use std::any::Any;
use std::collections::BTreeMap;
use std::io::Write;

/// Receives every emitted [`TraceEvent`].
///
/// `as_any` / `as_any_mut` allow experiments to take the sink back out
/// of the world after a run and downcast it to read captured state —
/// the same pattern the simulator uses for protocol behaviours.
pub trait TraceSink {
    /// Record one event.
    fn record(&mut self, ev: &TraceEvent);

    /// Record one event together with its causal position: the `(at,
    /// key)` of the simulation event (or driver call) that emitted it.
    /// `(at, key)` pairs are unique per emitting event and totally
    /// ordered across an entire run, so sinks that retain them (see
    /// [`KeyedBufferSink`]) can merge per-shard streams back into the
    /// exact single-threaded emission order. The default forwards to
    /// [`TraceSink::record`]; order-insensitive sinks need nothing more.
    fn record_keyed(&mut self, ev: &TraceEvent, at: u64, key: u64) {
        let _ = (at, key);
        self.record(ev);
    }

    /// Flush any buffered output (no-op by default).
    fn flush(&mut self) {}

    /// Downcast support.
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// A sink that discards everything — for measuring sink-dispatch
/// overhead in isolation.
#[derive(Default, Debug)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _ev: &TraceEvent) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// JSONL sink over any writer: one compact JSON object per line, fixed
/// key order, deterministic bytes for a deterministic run. Write errors
/// are deliberately swallowed (tracing is best-effort and must never
/// alter simulation behaviour).
#[derive(Debug)]
pub struct JsonlSink<W: Write + 'static> {
    w: W,
    lines: u64,
}

impl<W: Write + 'static> JsonlSink<W> {
    /// Wrap a writer.
    pub fn new(w: W) -> Self {
        JsonlSink { w, lines: 0 }
    }

    /// Number of lines written so far.
    pub fn lines_written(&self) -> u64 {
        self.lines
    }

    /// Unwrap the writer (flushing first).
    pub fn into_inner(mut self) -> W {
        let _ = self.w.flush();
        self.w
    }
}

impl<W: Write + 'static> TraceSink for JsonlSink<W> {
    fn record(&mut self, ev: &TraceEvent) {
        if writeln!(self.w, "{}", ev.to_json()).is_ok() {
            self.lines += 1;
        }
    }
    fn flush(&mut self) {
        let _ = self.w.flush();
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// In-memory JSONL sink: accumulates the exact bytes a
/// [`JsonlSink`] would write. Used by the golden-trace determinism
/// test and anywhere a file would be overkill.
#[derive(Default, Debug)]
pub struct BufferSink {
    /// Captured JSONL output.
    pub out: String,
}

impl BufferSink {
    /// An empty buffer sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TraceSink for BufferSink {
    fn record(&mut self, ev: &TraceEvent) {
        use std::fmt::Write as _;
        let _ = writeln!(self.out, "{}", ev.to_json());
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// In-memory JSONL sink that also retains each line's causal position
/// `(at, key)` — the per-shard capture half of deterministic trace
/// merging. One sink is installed per shard; afterwards
/// [`merge_keyed_traces`] interleaves the shards' lines back into the
/// byte-exact stream a single [`BufferSink`] over the unsharded run
/// would have produced.
#[derive(Default, Debug)]
pub struct KeyedBufferSink {
    /// Captured lines as `(at, key, json_line)` in emission order.
    pub entries: Vec<(u64, u64, String)>,
}

impl KeyedBufferSink {
    /// An empty keyed buffer sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TraceSink for KeyedBufferSink {
    fn record(&mut self, ev: &TraceEvent) {
        // Keyless recording falls back to the event's own timestamp;
        // only exercised by sinks driven outside a keyed world.
        self.entries.push((ev.t(), 0, ev.to_json().to_string()));
    }
    fn record_keyed(&mut self, ev: &TraceEvent, at: u64, key: u64) {
        self.entries.push((at, key, ev.to_json().to_string()));
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Merge per-shard keyed trace captures into one JSONL string ordered by
/// `(at, key, capture order)`. Every `(at, key)` pair originates on
/// exactly one shard (keys encode the scheduling node, nodes execute on
/// one shard), so the sort is unambiguous across shards, and the stable
/// tie-break on capture order preserves each event's internal line
/// sequence.
pub fn merge_keyed_traces(shards: Vec<KeyedBufferSink>) -> String {
    let mut all: Vec<(u64, u64, usize, String)> = shards
        .into_iter()
        .flat_map(|s| {
            s.entries
                .into_iter()
                .enumerate()
                .map(|(i, (at, key, line))| (at, key, i, line))
        })
        .collect();
    all.sort_by_key(|a| (a.0, a.1, a.2));
    let mut out = String::new();
    for (_, _, _, line) in all {
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Tallying sink: counts events by variant name and drops by cause.
/// Deterministically ordered (BTreeMap) for test assertions.
#[derive(Default, Debug)]
pub struct CountingSink {
    /// Total events recorded.
    pub total: u64,
    /// Events per variant name (see [`TraceEvent::name`]).
    pub by_kind: BTreeMap<&'static str, u64>,
    /// Drop events per cause string.
    pub drops_by_cause: BTreeMap<&'static str, u64>,
}

impl CountingSink {
    /// An empty counting sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count for one variant name (0 if never seen).
    pub fn count_of(&self, name: &str) -> u64 {
        self.by_kind.get(name).copied().unwrap_or(0)
    }

    /// Count of drops with the given cause string (0 if never seen).
    pub fn drops_of(&self, cause: &str) -> u64 {
        self.drops_by_cause.get(cause).copied().unwrap_or(0)
    }
}

impl TraceSink for CountingSink {
    fn record(&mut self, ev: &TraceEvent) {
        self.total += 1;
        *self.by_kind.entry(ev.name()).or_insert(0) += 1;
        if let TraceEvent::Drop { cause, .. } = ev {
            *self.drops_by_cause.entry(cause.as_str()).or_insert(0) += 1;
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DropCause, TraceEvent};
    use wmsn_util::NodeId;

    fn drop_ev(cause: DropCause) -> TraceEvent {
        TraceEvent::Drop {
            t: 1,
            seq: 0,
            node: NodeId(0),
            cause,
        }
    }

    #[test]
    fn buffer_and_jsonl_sinks_agree_byte_for_byte() {
        let evs = [
            drop_ev(DropCause::Loss),
            TraceEvent::Rx {
                t: 2,
                seq: 0,
                node: NodeId(1),
            },
        ];
        let mut buf = BufferSink::new();
        let mut jsonl = JsonlSink::new(Vec::<u8>::new());
        for ev in &evs {
            buf.record(ev);
            jsonl.record(ev);
        }
        assert_eq!(buf.out.as_bytes(), jsonl.into_inner().as_slice());
    }

    #[test]
    fn counting_sink_tallies_by_kind_and_cause() {
        let mut c = CountingSink::new();
        c.record(&drop_ev(DropCause::Loss));
        c.record(&drop_ev(DropCause::Loss));
        c.record(&drop_ev(DropCause::Collision));
        assert_eq!(c.total, 3);
        assert_eq!(c.count_of("drop"), 3);
        assert_eq!(c.drops_of("loss"), 2);
        assert_eq!(c.drops_of("collision"), 1);
        assert_eq!(c.drops_of("dead"), 0);
    }
}
